#pragma once
// Multiplicative noise schemes.
//
// The paper (§6.3.1) preconfigures worker speeds that are used for *bids*,
// then subjects the speeds to a noise scheme during *execution* "to better
// replicate real-world network throttling scenarios and ensure bidding costs
// differed from actual execution times". A NoiseModel produces the
// per-operation multiplicative factor applied to a nominal speed.

#include <string>

#include "util/rng.hpp"

namespace dlaja::net {

/// Configuration of a multiplicative noise scheme.
struct NoiseConfig {
  enum class Kind {
    kNone,       ///< factor == 1 (estimates are exact)
    kUniform,    ///< factor ~ U[lo, hi]
    kLognormal,  ///< factor ~ LogNormal with unit median, spread sigma
    kThrottle,   ///< mostly mild jitter; with probability p a deep throttle
  };

  Kind kind = Kind::kNone;

  // kUniform
  double uniform_lo = 0.8;
  double uniform_hi = 1.2;

  // kLognormal: exp(N(0, sigma)) — median 1.
  double lognormal_sigma = 0.25;

  // kThrottle: base jitter U[jitter_lo, jitter_hi]; with probability
  // throttle_probability the factor is additionally multiplied by
  // throttle_factor (e.g. an AWS burst-credit exhaustion or congested link).
  double jitter_lo = 0.9;
  double jitter_hi = 1.1;
  double throttle_probability = 0.10;
  double throttle_factor = 0.30;

  /// Shorthand constructors for the common schemes.
  [[nodiscard]] static NoiseConfig none() noexcept { return {}; }
  [[nodiscard]] static NoiseConfig uniform(double lo, double hi) noexcept;
  [[nodiscard]] static NoiseConfig lognormal(double sigma) noexcept;
  [[nodiscard]] static NoiseConfig throttle(double probability, double factor) noexcept;

  /// Parses the CLI/scenario grammar: "none", "uniform:lo,hi",
  /// "lognormal:sigma", "throttle:p,factor". Throws std::invalid_argument
  /// on malformed specs.
  [[nodiscard]] static NoiseConfig parse(const std::string& text);

  /// The spec string for this config; parse(spec()) reproduces the config
  /// exactly (the kind's parameters round-trip at full precision).
  [[nodiscard]] std::string spec() const;
};

/// Samples multiplicative speed factors per NoiseConfig. Factors are clamped
/// to a small positive floor so a sampled speed never reaches zero.
class NoiseModel {
 public:
  explicit NoiseModel(NoiseConfig config = {}) noexcept : config_(config) {}

  /// Draws one factor using the caller-supplied stream (so each worker's
  /// noise is an independent deterministic substream).
  [[nodiscard]] double sample(RandomStream& rng) const noexcept;

  [[nodiscard]] const NoiseConfig& config() const noexcept { return config_; }

  /// Human-readable description, e.g. "lognormal(sigma=0.25)".
  [[nodiscard]] std::string describe() const;

 private:
  NoiseConfig config_;
};

}  // namespace dlaja::net
