#pragma once
// Geographic topology: regions with pairwise base latencies.
//
// The paper's testbed was "geographically distributed, and their locations
// were randomly determined during configuration startup" (§6.2). A
// Topology assigns each node a region; control-plane latency between two
// nodes is the inter-region base latency plus per-node jitter. This layers
// under NetworkModel: build a Topology, then derive per-node LinkConfigs.

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace dlaja::net {

/// Identifier of a region within a Topology.
using RegionId = std::uint32_t;

/// A set of regions and the one-way base latencies between them (ms).
class Topology {
 public:
  /// Adds a region; `internal_latency_ms` is the one-way latency between
  /// two nodes of the same region.
  RegionId add_region(std::string name, double internal_latency_ms = 1.0);

  /// Sets the one-way base latency between two distinct regions
  /// (symmetric). Throws std::out_of_range for unknown ids.
  void set_latency(RegionId a, RegionId b, double latency_ms);

  /// One-way base latency between two regions (same region -> internal).
  /// Unset distinct pairs default to the mean of the two internal
  /// latencies plus 50 ms (a conservative WAN hop).
  [[nodiscard]] double latency_ms(RegionId a, RegionId b) const;

  [[nodiscard]] std::size_t region_count() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& name(RegionId id) const;

  /// Picks a region uniformly at random (the paper randomises placement).
  [[nodiscard]] RegionId random_region(RandomStream& rng) const;

 private:
  [[nodiscard]] std::size_t index(RegionId a, RegionId b) const;

  std::vector<std::string> names_;
  std::vector<double> internal_ms_;
  std::vector<double> pair_ms_;  // dense upper-triangular, -1 = unset
};

/// A classic three-continent AWS-like topology: us-east, eu-west,
/// ap-south; 1 ms internal, 40/110/130 ms between.
[[nodiscard]] Topology make_aws_like_topology();

/// Assigns each of `count` nodes a random region and returns the regions.
[[nodiscard]] std::vector<RegionId> scatter_nodes(const Topology& topology,
                                                  std::size_t count, RandomStream& rng);

/// Derives a LinkConfig for a node in `region` talking to a broker in
/// `broker_region`: the link keeps `base`'s bandwidth/jitter but its
/// latency becomes the inter-region base latency.
[[nodiscard]] LinkConfig regionalize(const LinkConfig& base, const Topology& topology,
                                     RegionId region, RegionId broker_region);

}  // namespace dlaja::net
