#include "net/network.hpp"

#include <cassert>
#include <stdexcept>

namespace dlaja::net {

NetworkModel::NetworkModel(const SeedSequencer& seeds, NoiseConfig noise)
    : seeds_(seeds), noise_(noise) {}

NodeId NetworkModel::register_node(const std::string& name, const LinkConfig& link) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{name, link, seeds_.stream("net/" + name)});
  return id;
}

NetworkModel::Node& NetworkModel::node_at(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("NetworkModel: bad NodeId");
  return nodes_[id];
}

const LinkConfig& NetworkModel::link(NodeId id) const {
  return const_cast<NetworkModel*>(this)->node_at(id).link;
}

const std::string& NetworkModel::name(NodeId id) const {
  return const_cast<NetworkModel*>(this)->node_at(id).name;
}

Tick NetworkModel::sample_message_delay(NodeId from, NodeId to) {
  Node& src = node_at(from);
  Node& dst = node_at(to);
  // Sender leg and receiver leg each contribute base latency plus jitter;
  // jitter draws come from the respective endpoint's stream.
  const double src_ms = src.link.latency_ms + src.rng.uniform(0.0, src.link.latency_jitter_ms);
  const double dst_ms = dst.link.latency_ms + dst.rng.uniform(0.0, dst.link.latency_jitter_ms);
  return ticks_from_millis(src_ms + dst_ms);
}

Tick NetworkModel::sample_message_delay_with(RandomStream& rng, NodeId from, NodeId to) const {
  const LinkConfig& src = link(from);
  const LinkConfig& dst = link(to);
  const double src_ms = src.latency_ms + rng.uniform(0.0, src.latency_jitter_ms);
  const double dst_ms = dst.latency_ms + rng.uniform(0.0, dst.latency_jitter_ms);
  return ticks_from_millis(src_ms + dst_ms);
}

double NetworkModel::sample_noise_factor(NodeId node) {
  return noise_.sample(node_at(node).rng);
}

MbPerSec NetworkModel::sample_effective_bandwidth(NodeId node) {
  // Multiplying by the default 1.0 is exact in IEEE arithmetic, so an
  // undegraded node samples bit-identical bandwidths.
  return link(node).bandwidth_mbps * sample_noise_factor(node) * node_at(node).degradation;
}

void NetworkModel::set_degradation(NodeId node, double factor) {
  if (factor <= 0.0) throw std::invalid_argument("NetworkModel: degradation must be > 0");
  node_at(node).degradation = factor;
}

double NetworkModel::degradation(NodeId node) const {
  return const_cast<NetworkModel*>(this)->node_at(node).degradation;
}

Tick NetworkModel::sample_transfer_ticks(NodeId node, MegaBytes volume) {
  assert(volume >= 0.0);
  return transfer_ticks(volume, sample_effective_bandwidth(node));
}

}  // namespace dlaja::net
