#include "net/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlaja::net {

RegionId Topology::add_region(std::string name, double internal_latency_ms) {
  const auto id = static_cast<RegionId>(names_.size());
  names_.push_back(std::move(name));
  internal_ms_.push_back(internal_latency_ms);
  // Grow the pair table: new row of (id) unset entries.
  pair_ms_.resize(pair_ms_.size() + id, -1.0);
  return id;
}

std::size_t Topology::index(RegionId a, RegionId b) const {
  // Upper triangle, a < b: offset = b*(b-1)/2 + a.
  const RegionId lo = std::min(a, b);
  const RegionId hi = std::max(a, b);
  return static_cast<std::size_t>(hi) * (hi - 1) / 2 + lo;
}

void Topology::set_latency(RegionId a, RegionId b, double latency_ms) {
  if (a >= names_.size() || b >= names_.size()) {
    throw std::out_of_range("Topology::set_latency: unknown region");
  }
  if (a == b) {
    internal_ms_[a] = latency_ms;
    return;
  }
  pair_ms_[index(a, b)] = latency_ms;
}

double Topology::latency_ms(RegionId a, RegionId b) const {
  if (a >= names_.size() || b >= names_.size()) {
    throw std::out_of_range("Topology::latency_ms: unknown region");
  }
  if (a == b) return internal_ms_[a];
  const double set = pair_ms_[index(a, b)];
  if (set >= 0.0) return set;
  return 0.5 * (internal_ms_[a] + internal_ms_[b]) + 50.0;
}

const std::string& Topology::name(RegionId id) const {
  if (id >= names_.size()) throw std::out_of_range("Topology::name: unknown region");
  return names_[id];
}

RegionId Topology::random_region(RandomStream& rng) const {
  if (names_.empty()) throw std::logic_error("Topology: no regions");
  return static_cast<RegionId>(
      rng.uniform_int(0, static_cast<std::int64_t>(names_.size()) - 1));
}

Topology make_aws_like_topology() {
  Topology topology;
  const RegionId us = topology.add_region("us-east", 1.0);
  const RegionId eu = topology.add_region("eu-west", 1.0);
  const RegionId ap = topology.add_region("ap-south", 1.5);
  topology.set_latency(us, eu, 40.0);
  topology.set_latency(us, ap, 110.0);
  topology.set_latency(eu, ap, 130.0);
  return topology;
}

std::vector<RegionId> scatter_nodes(const Topology& topology, std::size_t count,
                                    RandomStream& rng) {
  std::vector<RegionId> regions;
  regions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) regions.push_back(topology.random_region(rng));
  return regions;
}

LinkConfig regionalize(const LinkConfig& base, const Topology& topology, RegionId region,
                       RegionId broker_region) {
  LinkConfig link = base;
  link.latency_ms = topology.latency_ms(region, broker_region);
  return link;
}

}  // namespace dlaja::net
