#include "net/noise.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "util/table.hpp"

namespace dlaja::net {

NoiseConfig NoiseConfig::uniform(double lo, double hi) noexcept {
  NoiseConfig c;
  c.kind = Kind::kUniform;
  c.uniform_lo = lo;
  c.uniform_hi = hi;
  return c;
}

NoiseConfig NoiseConfig::lognormal(double sigma) noexcept {
  NoiseConfig c;
  c.kind = Kind::kLognormal;
  c.lognormal_sigma = sigma;
  return c;
}

NoiseConfig NoiseConfig::throttle(double probability, double factor) noexcept {
  NoiseConfig c;
  c.kind = Kind::kThrottle;
  c.throttle_probability = probability;
  c.throttle_factor = factor;
  return c;
}

NoiseConfig NoiseConfig::parse(const std::string& text) {
  const auto colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  std::vector<double> params;
  if (colon != std::string::npos) {
    const std::string rest = text.substr(colon + 1);
    std::size_t pos = 0;
    while (pos < rest.size()) {
      const auto comma = rest.find(',', pos);
      try {
        params.push_back(std::stod(rest.substr(pos, comma - pos)));
      } catch (const std::exception&) {
        params.clear();
        break;
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (kind == "none" && colon == std::string::npos) return none();
  if (kind == "uniform" && params.size() == 2) return uniform(params[0], params[1]);
  if (kind == "lognormal" && params.size() == 1) return lognormal(params[0]);
  if (kind == "throttle" && params.size() == 2) return throttle(params[0], params[1]);
  throw std::invalid_argument("bad noise spec '" + text +
                              "' (none | uniform:lo,hi | lognormal:sigma | "
                              "throttle:p,factor)");
}

std::string NoiseConfig::spec() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kUniform:
      return "uniform:" + fmt_shortest(uniform_lo) + "," + fmt_shortest(uniform_hi);
    case Kind::kLognormal:
      return "lognormal:" + fmt_shortest(lognormal_sigma);
    case Kind::kThrottle:
      return "throttle:" + fmt_shortest(throttle_probability) + "," +
             fmt_shortest(throttle_factor);
  }
  return "none";
}

double NoiseModel::sample(RandomStream& rng) const noexcept {
  constexpr double kFloor = 1e-3;
  double factor = 1.0;
  switch (config_.kind) {
    case NoiseConfig::Kind::kNone:
      factor = 1.0;
      break;
    case NoiseConfig::Kind::kUniform:
      factor = rng.uniform(config_.uniform_lo, config_.uniform_hi);
      break;
    case NoiseConfig::Kind::kLognormal:
      factor = rng.lognormal(0.0, config_.lognormal_sigma);
      break;
    case NoiseConfig::Kind::kThrottle:
      factor = rng.uniform(config_.jitter_lo, config_.jitter_hi);
      if (rng.bernoulli(config_.throttle_probability)) {
        factor *= config_.throttle_factor;
      }
      break;
  }
  return std::max(factor, kFloor);
}

std::string NoiseModel::describe() const {
  char buf[96];
  switch (config_.kind) {
    case NoiseConfig::Kind::kNone:
      return "none";
    case NoiseConfig::Kind::kUniform:
      std::snprintf(buf, sizeof buf, "uniform[%.2f,%.2f]", config_.uniform_lo,
                    config_.uniform_hi);
      return buf;
    case NoiseConfig::Kind::kLognormal:
      std::snprintf(buf, sizeof buf, "lognormal(sigma=%.2f)", config_.lognormal_sigma);
      return buf;
    case NoiseConfig::Kind::kThrottle:
      std::snprintf(buf, sizeof buf, "throttle(p=%.2f,factor=%.2f)",
                    config_.throttle_probability, config_.throttle_factor);
      return buf;
  }
  return "?";
}

}  // namespace dlaja::net
