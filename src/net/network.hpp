#pragma once
// Cluster network model: node registry, per-node link characteristics and
// control-plane message latency.
//
// The paper's testbed was geographically distributed AWS instances talking
// through a central messaging instance, so control messages (job broadcasts,
// bids, assignments) incur a broker round trip with per-node latency; bulk
// data transfers (repository clones) are governed by the *downloading*
// node's bandwidth, which is how the paper models them (size / network
// speed).

#include <cstdint>
#include <string>
#include <vector>

#include "net/noise.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dlaja::net {

/// Dense node identifier assigned by NetworkModel::register_node.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Static link characteristics of one node.
struct LinkConfig {
  /// Nominal download bandwidth (used for bulk data transfers).
  MbPerSec bandwidth_mbps = 50.0;
  /// One-way control-message latency to/from the broker, base value.
  double latency_ms = 5.0;
  /// Uniform jitter added on top of the base latency, [0, jitter].
  double latency_jitter_ms = 2.0;
};

/// The network substrate shared by all nodes of one simulated cluster.
///
/// Owns one deterministic RNG substream per node so that latency jitter and
/// bandwidth noise on one node never perturb another node's draws.
class NetworkModel {
 public:
  /// `seeds` provides the substreams; `noise` applies to bulk bandwidth.
  NetworkModel(const SeedSequencer& seeds, NoiseConfig noise = {});

  /// Adds a node and returns its id. `name` is used for seeding and logs.
  NodeId register_node(const std::string& name, const LinkConfig& link);

  /// Number of registered nodes.
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Nominal link of a node.
  [[nodiscard]] const LinkConfig& link(NodeId id) const;

  /// Node name (for logs/reports).
  [[nodiscard]] const std::string& name(NodeId id) const;

  /// Samples a one-way control-message delay from `from` to `to` (goes via
  /// the broker, so both endpoints' latencies contribute).
  [[nodiscard]] Tick sample_message_delay(NodeId from, NodeId to);

  /// Same distribution as sample_message_delay, but both jitter draws come
  /// from `rng` instead of the endpoints' node streams. Sharded runs give
  /// each shard its own delay stream so concurrent sends never contend on
  /// (or perturb) the per-node streams, which stay owned by their shard's
  /// bulk-transfer sampling.
  [[nodiscard]] Tick sample_message_delay_with(RandomStream& rng, NodeId from, NodeId to) const;

  /// Draws one multiplicative noise factor from `node`'s stream.
  [[nodiscard]] double sample_noise_factor(NodeId node);

  /// Samples the *effective* download bandwidth of `node` for one bulk
  /// transfer: nominal bandwidth times a noise factor times the node's
  /// current degradation multiplier.
  [[nodiscard]] MbPerSec sample_effective_bandwidth(NodeId node);

  /// Fault-injection hook: multiplies `node`'s effective bandwidth by
  /// `factor` until changed again (1.0 restores nominal behaviour). Layered
  /// on top of the noise model; the default of exactly 1.0 leaves every
  /// sampled bandwidth bit-identical to an undegraded run.
  void set_degradation(NodeId node, double factor);

  /// Current degradation multiplier of `node`.
  [[nodiscard]] double degradation(NodeId node) const;

  /// Ticks to download `volume` MB at node `node` under sampled noise.
  [[nodiscard]] Tick sample_transfer_ticks(NodeId node, MegaBytes volume);

  /// The configured noise model (shared by all nodes).
  [[nodiscard]] const NoiseModel& noise() const noexcept { return noise_; }

 private:
  struct Node {
    std::string name;
    LinkConfig link;
    RandomStream rng;
    double degradation = 1.0;  ///< fault-injection bandwidth multiplier
  };

  [[nodiscard]] Node& node_at(NodeId id);

  SeedSequencer seeds_;
  NoiseModel noise_;
  std::vector<Node> nodes_;
};

}  // namespace dlaja::net
