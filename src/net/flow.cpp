#include "net/flow.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.hpp"

namespace dlaja::net {

namespace {
constexpr MbPerSec kDefaultNodeCapacity = 50.0;
constexpr double kEpsilonMb = 1e-9;  // volumes below this count as finished
constexpr double kRateFloor = 1e-9;  // MB/s; keeps ETAs finite
constexpr double kShareSlack = 1e-12;
// Rate assigned to a flow no constraint binds (infinite origin AND infinite
// node capacity). The reference progressive-filling loop asserted (debug) or
// spun (release) on that input; a huge-but-finite rate instead completes the
// flow on the next tick while keeping every downstream ETA computation in
// normal floating-point range.
constexpr double kUnconstrainedRate = 1e12;
}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& simulator, MbPerSec origin_capacity_mbps)
    : sim_(simulator), origin_capacity_(origin_capacity_mbps) {}

void FlowNetwork::ensure_trace_names() {
  if (trace_names_ready_) return;
  trace_names_ready_ = true;
  obs::Tracer* tracer = sim_.tracer();
  trace_flow_ = tracer->intern("flow");
  trace_flow_cancel_ = tracer->intern("flow_cancel");
  trace_rate_ = tracer->intern("rate_mbps");
}

void FlowNetwork::ensure_node(NodeId node) {
  assert(node != kInvalidNode);
  if (node >= nodes_.size()) {
    nodes_.resize(static_cast<std::size_t>(node) + 1, NodeState{kDefaultNodeCapacity});
  }
}

void FlowNetwork::set_node_capacity(NodeId node, MbPerSec capacity_mbps) {
  ensure_node(node);
  nodes_[node].capacity = capacity_mbps;
  rates_dirty_ = true;
}

void FlowNetwork::reserve(std::size_t flows) {
  slots_.reserve(flows);
  done_scratch_.reserve(flows);
}

void FlowNetwork::advance_progress() {
  const Tick now = sim_.now();
  if (now <= last_update_) return;
  const double elapsed_s = seconds_from_ticks(now - last_update_);
  for (const NodeId node_id : active_nodes_) {
    const NodeState& node = nodes_[node_id];
    const double rate = node.rate;
    for (std::uint32_t s = node.head; s != kNil; s = slots_[s].next) {
      slots_[s].remaining_mb = std::max(0.0, slots_[s].remaining_mb - rate * elapsed_s);
    }
  }
  last_update_ = now;
}

void FlowNetwork::release_slot(std::uint32_t slot) {
  FlowSlot& f = slots_[slot];
  NodeState& node = nodes_[f.node];
  if (f.prev != kNil) {
    slots_[f.prev].next = f.next;
  } else {
    node.head = f.next;
  }
  if (f.next != kNil) slots_[f.next].prev = f.prev;
  if (--node.count == 0) {
    // Swap-remove from the active list.
    const std::uint32_t pos = node.active_pos;
    const NodeId last = active_nodes_.back();
    active_nodes_[pos] = last;
    nodes_[last].active_pos = pos;
    active_nodes_.pop_back();
    node.active_pos = kNil;
  }
  --total_flows_;
  f.on_done = nullptr;
  f.node = kInvalidNode;
  ++f.gen;  // outstanding FlowIds for this slot go stale
  f.next = free_head_;
  free_head_ = slot;
  rates_dirty_ = true;
}

void FlowNetwork::recompute_rates() {
  // Fast path: the origin constraint is slack (or absent), so rates are
  // purely per-node — capacity / count, no cross-node interaction, no sort.
  // The margin keeps the check conservative: anywhere near the boundary we
  // fall through to the full water-fill, whose arithmetic is canonical.
  bool origin_slack = origin_capacity_ == std::numeric_limits<double>::infinity();
  if (!origin_slack) {
    double cap_sum = 0.0;
    for (const NodeId node_id : active_nodes_) cap_sum += nodes_[node_id].capacity;
    origin_slack = cap_sum <= origin_capacity_ * (1.0 - 1e-9);
  }
  if (origin_slack) {
    for (const NodeId node_id : active_nodes_) {
      NodeState& node = nodes_[node_id];
      double share = node.capacity / static_cast<double>(node.count);
      if (!(share < kUnconstrainedRate)) share = kUnconstrainedRate;
      node.rate = std::max(share, kRateFloor);
    }
    return;
  }

  // Full water-fill: process nodes in ascending fair-share order. A node
  // freezes at capacity/count while that share is within the origin's
  // current per-flow budget; once a node's share exceeds it, the origin is
  // the bottleneck for every remaining flow. The origin residual is drained
  // with one subtraction per flow — exactly the operation sequence of the
  // reference round-based loop — so the resulting rates are bit-identical.
  fill_scratch_.clear();
  for (const NodeId node_id : active_nodes_) {
    const NodeState& node = nodes_[node_id];
    fill_scratch_.emplace_back(node.capacity / static_cast<double>(node.count), node_id);
  }
  std::sort(fill_scratch_.begin(), fill_scratch_.end());  // (share, node id)

  double origin_residual = origin_capacity_;
  std::size_t unfrozen = total_flows_;
  std::size_t i = 0;
  for (; i < fill_scratch_.size(); ++i) {
    const double share = fill_scratch_[i].first;
    const double origin_share = origin_residual / static_cast<double>(unfrozen);
    if (!(share <= origin_share + kShareSlack)) break;
    NodeState& node = nodes_[fill_scratch_[i].second];
    node.rate = std::max(share, kRateFloor);
    for (std::uint32_t k = 0; k < node.count; ++k) origin_residual -= share;
    unfrozen -= node.count;
  }
  if (i < fill_scratch_.size()) {
    // Freezing tolerates shares up to kShareSlack past the origin budget, so
    // the residual can undershoot zero by a sliver; clamp before dividing it
    // among the origin-bound flows so rates never go negative.
    if (origin_residual < 0.0) origin_residual = 0.0;
    const double rate =
        std::max(origin_residual / static_cast<double>(unfrozen), kRateFloor);
    for (; i < fill_scratch_.size(); ++i) nodes_[fill_scratch_[i].second].rate = rate;
  }
}

void FlowNetwork::reallocate_and_reschedule() {
  // --- fire anything that has (numerically) finished. Handlers run as
  // fresh zero-delay events so they may start new flows without re-entering
  // this function mid-computation; they fire in flow-start order, the
  // canonical tie-break for a same-tick completion batch. ------------------
  done_scratch_.clear();
  for (const NodeId node_id : active_nodes_) {
    for (std::uint32_t s = nodes_[node_id].head; s != kNil; s = slots_[s].next) {
      if (slots_[s].remaining_mb <= kEpsilonMb) done_scratch_.push_back(s);
    }
  }
  if (!done_scratch_.empty()) {
    std::sort(done_scratch_.begin(), done_scratch_.end(),
              [this](std::uint32_t a, std::uint32_t b) { return slots_[a].seq < slots_[b].seq; });
    // A moved std::function (32 bytes) rides in the action's inline storage;
    // only the callable *it* owns may live on the general heap.
    static_assert(sim::InlineAction::fits_inline<std::function<void()>>());
    const bool traced = DLAJA_TRACE_ACTIVE(sim_.tracer());
    if (traced) ensure_trace_names();
    for (const std::uint32_t s : done_scratch_) {
      if (traced) {
        // One span per completed transfer, tracked by the downloading node.
        sim_.tracer()->span(obs::Component::kNet, trace_flow_, slots_[s].node,
                            slots_[s].started, sim_.now(), slots_[s].seq);
      }
      auto handler = std::move(slots_[s].on_done);
      release_slot(s);
      if (handler) sim_.schedule_after(0, std::move(handler));
    }
  }
  if (total_flows_ == 0) {
    if (next_completion_.valid()) {
      sim_.cancel(next_completion_);
      next_completion_ = {};
      next_completion_tick_ = kNeverTick;
    }
    return;
  }

  // --- max-min fair rates. Rates are a pure function of each node's
  // (capacity, flow count), so when no flow arrived or departed since the
  // last computation the previous rates still hold. -----------------------
  if (rates_dirty_) {
    recompute_rates();
    rates_dirty_ = false;
    if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
      // Rate changes only happen here; sampling per recomputation gives the
      // exact step function of each node's per-flow rate.
      ensure_trace_names();
      for (const NodeId node_id : active_nodes_) {
        sim_.tracer()->counter(obs::Component::kNet, trace_rate_, node_id, sim_.now(),
                               nodes_[node_id].rate);
      }
    }
  }

  const Tick now = sim_.now();
  Tick soonest = kNeverTick;
  for (const NodeId node_id : active_nodes_) {
    const NodeState& node = nodes_[node_id];
    for (std::uint32_t s = node.head; s != kNil; s = slots_[s].next) {
      const Tick eta = now + transfer_ticks(slots_[s].remaining_mb, node.rate);
      soonest = std::min(soonest, eta);
    }
  }
  // Fire no earlier than one tick ahead so progress strictly advances.
  soonest = std::max(soonest, now + 1);
  // Keep the pending event when the ETA didn't move: cancelling and
  // re-inserting an identical event is observably equivalent (any handler
  // scheduled meanwhile carries a later sequence number either way).
  if (next_completion_.valid() && next_completion_tick_ == soonest) return;
  if (next_completion_.valid()) sim_.cancel(next_completion_);
  next_completion_tick_ = soonest;
  next_completion_ = sim_.schedule_at(soonest, [this] {
    next_completion_ = {};
    next_completion_tick_ = kNeverTick;
    advance_progress();
    reallocate_and_reschedule();
  });
}

FlowId FlowNetwork::start_flow(NodeId node_id, MegaBytes volume,
                               std::function<void()> on_done) {
  advance_progress();
  ensure_node(node_id);
  std::uint32_t s;
  if (free_head_ != kNil) {
    s = free_head_;
    free_head_ = slots_[s].next;
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  NodeState& node = nodes_[node_id];
  FlowSlot& f = slots_[s];
  f.remaining_mb = std::max(volume, 0.0);
  f.seq = next_seq_++;
  f.started = sim_.now();
  f.node = node_id;
  f.prev = kNil;
  f.next = node.head;
  f.on_done = std::move(on_done);
  if (node.head != kNil) slots_[node.head].prev = s;
  node.head = s;
  if (node.count++ == 0) {
    node.active_pos = static_cast<std::uint32_t>(active_nodes_.size());
    active_nodes_.push_back(node_id);
  }
  ++total_flows_;
  rates_dirty_ = true;
  const FlowId id{(static_cast<std::uint64_t>(f.gen) << 32) | s};
  reallocate_and_reschedule();
  return id;  // stale already if the flow completed instantly (zero volume)
}

bool FlowNetwork::cancel_flow(FlowId id) {
  if (!is_live(id)) return false;
  advance_progress();
  const std::uint32_t slot = slot_of(id);
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    ensure_trace_names();
    sim_.tracer()->instant(obs::Component::kNet, trace_flow_cancel_, slots_[slot].node,
                           sim_.now(), slots_[slot].seq);
  }
  release_slot(slot);
  reallocate_and_reschedule();
  return true;
}

MbPerSec FlowNetwork::current_rate(FlowId id) const {
  return is_live(id) ? nodes_[slots_[slot_of(id)].node].rate : 0.0;
}

MegaBytes FlowNetwork::remaining_mb(FlowId id) const {
  if (!is_live(id)) return 0.0;
  const FlowSlot& f = slots_[slot_of(id)];
  const double elapsed_s = seconds_from_ticks(sim_.now() - last_update_);
  return std::max(0.0, f.remaining_mb - nodes_[f.node].rate * elapsed_s);
}

MbPerSec FlowNetwork::allocated_mbps() const noexcept {
  // Rates are uniform within a node, so the per-node contribution is
  // rate * count. Iterating active_nodes_ keeps this O(active nodes); its
  // swap-removal order is deterministic per run, so the float sum is too.
  double total = 0.0;
  for (const NodeId node : active_nodes_) {
    const NodeState& st = nodes_[node];
    total += st.rate * static_cast<double>(st.count);
  }
  return total;
}

}  // namespace dlaja::net
