#include "net/flow.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace dlaja::net {

namespace {
constexpr MbPerSec kDefaultNodeCapacity = 50.0;
constexpr double kEpsilonMb = 1e-9;  // volumes below this count as finished
}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& simulator, MbPerSec origin_capacity_mbps)
    : sim_(simulator), origin_capacity_(origin_capacity_mbps) {}

void FlowNetwork::set_node_capacity(NodeId node, MbPerSec capacity_mbps) {
  node_capacity_[node] = capacity_mbps;
}

void FlowNetwork::advance_progress() {
  const Tick now = sim_.now();
  if (now <= last_update_) return;
  const double elapsed_s = seconds_from_ticks(now - last_update_);
  for (auto& [id, flow] : flows_) {
    flow.remaining_mb = std::max(0.0, flow.remaining_mb - flow.rate * elapsed_s);
  }
  last_update_ = now;
}

void FlowNetwork::reallocate_and_reschedule() {
  if (next_completion_.valid()) {
    sim_.cancel(next_completion_);
    next_completion_ = {};
  }

  // --- fire anything that has (numerically) finished. Handlers run as
  // fresh zero-delay events so they may start new flows without
  // re-entering this function mid-computation. ----------------------------
  std::vector<std::uint64_t> done;
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining_mb <= kEpsilonMb) done.push_back(id);
  }
  // A moved std::function (32 bytes) rides in the action's inline storage;
  // only the callable *it* owns may live on the general heap.
  static_assert(sim::InlineAction::fits_inline<std::function<void()>>());
  for (const std::uint64_t id : done) {
    auto handler = std::move(flows_.at(id).on_done);
    flows_.erase(id);
    if (handler) sim_.schedule_after(0, std::move(handler));
  }
  if (flows_.empty()) return;

  // --- max-min fair rates (progressive filling over two constraint
  // families: per-node capacity and the origin's total capacity) ----------
  std::unordered_map<NodeId, std::vector<std::uint64_t>> by_node;
  for (const auto& [id, flow] : flows_) by_node[flow.node].push_back(id);

  std::unordered_map<std::uint64_t, double> rate;
  std::unordered_map<NodeId, double> node_residual;
  std::unordered_map<NodeId, std::size_t> node_unfrozen;
  for (const auto& [node, ids] : by_node) {
    const auto it = node_capacity_.find(node);
    node_residual[node] = it != node_capacity_.end() ? it->second : kDefaultNodeCapacity;
    node_unfrozen[node] = ids.size();
  }
  double origin_residual = origin_capacity_;
  std::size_t unfrozen_total = flows_.size();

  while (unfrozen_total > 0) {
    // The tightest constraint determines the next fair-share level.
    double level = std::numeric_limits<double>::infinity();
    for (const auto& [node, residual] : node_residual) {
      if (node_unfrozen[node] > 0) {
        level = std::min(level, residual / static_cast<double>(node_unfrozen[node]));
      }
    }
    if (origin_residual < std::numeric_limits<double>::infinity()) {
      level = std::min(level, origin_residual / static_cast<double>(unfrozen_total));
    }
    assert(level < std::numeric_limits<double>::infinity());

    // Freeze every flow in constraints saturated at this level.
    bool froze = false;
    for (const auto& [node, ids] : by_node) {
      if (node_unfrozen[node] == 0) continue;
      const double share = node_residual[node] / static_cast<double>(node_unfrozen[node]);
      if (share <= level + 1e-12) {
        for (const std::uint64_t id : ids) {
          if (rate.count(id)) continue;
          rate[id] = share;
          origin_residual -= share;
          --unfrozen_total;
          froze = true;
        }
        node_residual[node] = 0.0;
        node_unfrozen[node] = 0;
      }
    }
    if (!froze) {
      // The origin is the bottleneck: everyone left gets the origin share.
      const double share = origin_residual / static_cast<double>(unfrozen_total);
      for (const auto& [id, flow] : flows_) {
        if (rate.count(id)) continue;
        rate[id] = share;
        node_residual[flow.node] -= share;
        --node_unfrozen[flow.node];
      }
      unfrozen_total = 0;
    }
  }

  Tick soonest = kNeverTick;
  for (auto& [id, flow] : flows_) {
    flow.rate = std::max(rate[id], 1e-9);
    const Tick eta = sim_.now() + transfer_ticks(flow.remaining_mb, flow.rate);
    soonest = std::min(soonest, eta);
  }
  // Fire no earlier than one tick ahead so progress strictly advances.
  soonest = std::max(soonest, sim_.now() + 1);
  next_completion_ = sim_.schedule_at(soonest, [this] {
    advance_progress();
    reallocate_and_reschedule();
  });
}

FlowId FlowNetwork::start_flow(NodeId node, MegaBytes volume, std::function<void()> on_done) {
  advance_progress();
  const std::uint64_t id = next_id_++;
  Flow flow;
  flow.node = node;
  flow.remaining_mb = std::max(volume, 0.0);
  flow.on_done = std::move(on_done);
  flows_.emplace(id, std::move(flow));
  reallocate_and_reschedule();
  return FlowId{id};
}

bool FlowNetwork::cancel_flow(FlowId id) {
  const auto it = flows_.find(id.value);
  if (it == flows_.end()) return false;
  advance_progress();
  flows_.erase(it);
  reallocate_and_reschedule();
  return true;
}

MbPerSec FlowNetwork::current_rate(FlowId id) const {
  const auto it = flows_.find(id.value);
  return it != flows_.end() ? it->second.rate : 0.0;
}

MegaBytes FlowNetwork::remaining_mb(FlowId id) const {
  const auto it = flows_.find(id.value);
  if (it == flows_.end()) return 0.0;
  const double elapsed_s = seconds_from_ticks(sim_.now() - last_update_);
  return std::max(0.0, it->second.remaining_mb - it->second.rate * elapsed_s);
}

}  // namespace dlaja::net
