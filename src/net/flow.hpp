#pragma once
// Flow-level network model with max-min fair bandwidth sharing.
//
// The basic NetworkModel gives every transfer the downloading node's full
// bandwidth — concurrent clones never contend. This model adds the two
// contention points that make "network bandwidth a scarce resource"
// (paper §1): each node's download capacity is shared by its concurrent
// flows, and the *origin* (the repository host, e.g. GitHub) has a global
// upload capacity shared by every clone in flight anywhere in the cluster.
//
// Rates follow max-min fairness (progressive filling); the simulation is
// progress-based: on every flow arrival/completion the remaining volumes
// are advanced at the old rates, rates are recomputed, and the next
// completion event is rescheduled.

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace dlaja::net {

/// Handle of an active flow.
struct FlowId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(FlowId, FlowId) = default;
};

class FlowNetwork {
 public:
  /// `origin_capacity_mbps` caps the sum of all flow rates (the repository
  /// host's upload). Use infinity for no origin bottleneck.
  FlowNetwork(sim::Simulator& simulator, MbPerSec origin_capacity_mbps);

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Sets a node's download capacity (shared by its concurrent flows).
  void set_node_capacity(NodeId node, MbPerSec capacity_mbps);

  /// Starts a transfer of `volume` MB to `node`; `on_done` fires at the
  /// simulated completion. Returns a handle usable with cancel_flow().
  FlowId start_flow(NodeId node, MegaBytes volume, std::function<void()> on_done);

  /// Aborts a flow (its on_done never fires). Returns false if unknown
  /// or already completed.
  bool cancel_flow(FlowId id);

  /// Current max-min rate of a flow (0 if unknown).
  [[nodiscard]] MbPerSec current_rate(FlowId id) const;

  /// Remaining volume of a flow as of now (0 if unknown).
  [[nodiscard]] MegaBytes remaining_mb(FlowId id) const;

  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }
  [[nodiscard]] MbPerSec origin_capacity() const noexcept { return origin_capacity_; }

 private:
  struct Flow {
    NodeId node = kInvalidNode;
    double remaining_mb = 0.0;
    double rate = 0.0;  // MB/s under the current allocation
    std::function<void()> on_done;
  };

  /// Advances all remaining volumes to now() at the current rates.
  void advance_progress();

  /// Recomputes max-min rates and reschedules the next completion event.
  void reallocate_and_reschedule();

  sim::Simulator& sim_;
  MbPerSec origin_capacity_;
  std::unordered_map<NodeId, MbPerSec> node_capacity_;
  std::unordered_map<std::uint64_t, Flow> flows_;
  std::uint64_t next_id_ = 1;
  Tick last_update_ = 0;
  sim::EventId next_completion_{};
};

}  // namespace dlaja::net
