#pragma once
// Flow-level network model with max-min fair bandwidth sharing.
//
// The basic NetworkModel gives every transfer the downloading node's full
// bandwidth — concurrent clones never contend. This model adds the two
// contention points that make "network bandwidth a scarce resource"
// (paper §1): each node's download capacity is shared by its concurrent
// flows, and the *origin* (the repository host, e.g. GitHub) has a global
// upload capacity shared by every clone in flight anywhere in the cluster.
//
// Rates follow max-min fairness; the simulation is progress-based: on every
// flow arrival/completion the remaining volumes are advanced at the old
// rates, rates are recomputed, and the next completion event is rescheduled.
//
// The engine is flat and allocation-free in steady state (the same
// discipline as the simulator's event core, src/sim/simulator.hpp):
//
//   * flows live in a generation-tagged slot slab threaded with intrusive
//     per-node membership lists — start_flow/cancel_flow/current_rate are
//     O(1) lookups with zero heap churn, and stale FlowIds are inert;
//   * max-min rates come from a water-filling pass that sorts the active
//     nodes by fair share (O(a log a) for a active nodes) into a reusable
//     scratch buffer instead of rebuilding hash maps per event, and a flow
//     arrival/departure that provably cannot change other nodes' rates
//     (the origin constraint is slack) skips the sort entirely;
//   * rescheduling is incremental: same-tick completions are flushed in one
//     batch (handlers fire in flow-start order), rate recomputation is
//     skipped when the node occupancy did not change, and the completion
//     event is only cancelled/rescheduled when the soonest ETA moves.
//
// Determinism: every ordering that reaches the simulation is canonical —
// the water-fill processes nodes sorted by (share, node id) and completion
// handlers fire in flow-start order — so runs are bit-reproducible by
// construction rather than by accident of hash-map iteration order.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace dlaja::net {

/// Handle of an active flow. Encodes (slot, generation) — a handle to a
/// completed or cancelled flow can never touch the slot's next tenant.
struct FlowId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(FlowId, FlowId) = default;
};

class FlowNetwork {
 public:
  /// `origin_capacity_mbps` caps the sum of all flow rates (the repository
  /// host's upload). Use infinity for no origin bottleneck.
  FlowNetwork(sim::Simulator& simulator, MbPerSec origin_capacity_mbps);

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Sets a node's download capacity (shared by its concurrent flows).
  void set_node_capacity(NodeId node, MbPerSec capacity_mbps);

  /// Pre-sizes the slot slab (and flush scratch) for `flows` simultaneously
  /// active flows, so bursts up to that size run without growth allocations.
  void reserve(std::size_t flows);

  /// Starts a transfer of `volume` MB to `node`; `on_done` fires at the
  /// simulated completion. Returns a handle usable with cancel_flow().
  FlowId start_flow(NodeId node, MegaBytes volume, std::function<void()> on_done);

  /// Aborts a flow (its on_done never fires). Returns false if unknown,
  /// already completed, or cancelled.
  bool cancel_flow(FlowId id);

  /// Current max-min rate of a flow (0 if unknown).
  [[nodiscard]] MbPerSec current_rate(FlowId id) const;

  /// Remaining volume of a flow as of now (0 if unknown).
  [[nodiscard]] MegaBytes remaining_mb(FlowId id) const;

  [[nodiscard]] std::size_t active_flows() const noexcept { return total_flows_; }
  [[nodiscard]] MbPerSec origin_capacity() const noexcept { return origin_capacity_; }

  /// Aggregate bandwidth currently allocated across all active flows
  /// (MB/s), as of the last rate computation. Read-only — telemetry gauges
  /// sample it between events without perturbing the lazy rate machinery.
  [[nodiscard]] MbPerSec allocated_mbps() const noexcept;

 private:
  static constexpr std::uint32_t kNil = UINT32_MAX;

  /// One slab entry. `next` doubles as the free-list link while the slot is
  /// vacant — safe because every public lookup validates the generation tag
  /// first. `seq` is the flow's start order: the canonical tie-break for
  /// same-tick completion batches.
  struct FlowSlot {
    double remaining_mb = 0.0;  ///< as of last_update_
    std::uint64_t seq = 0;
    Tick started = 0;  ///< start_flow() time; the trace span's begin
    NodeId node = kInvalidNode;
    std::uint32_t gen = 1;  ///< bumped on release; tags FlowIds
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::function<void()> on_done;
  };

  /// Per-node state: capacity, the intrusive list of resident flows, and
  /// the current per-flow rate (max-min rates are uniform within a node —
  /// node-frozen flows get capacity/count, origin-frozen flows all get the
  /// origin share — so one double per node carries every flow's rate).
  struct NodeState {
    MbPerSec capacity;  ///< kDefaultNodeCapacity until set_node_capacity()
    double rate = 0.0;  ///< current per-flow rate (floored), MB/s
    std::uint32_t head = kNil;
    std::uint32_t count = 0;
    std::uint32_t active_pos = kNil;  ///< index in active_nodes_, kNil if idle
  };

  /// Advances all remaining volumes to now() at the current rates.
  void advance_progress();

  /// Flushes finished flows, recomputes rates if the occupancy changed, and
  /// reschedules the next completion event if the soonest ETA moved.
  void reallocate_and_reschedule();

  /// Water-filling over the active nodes (sort-by-share progressive fill).
  void recompute_rates();

  /// Grows the node table so `node` is addressable.
  void ensure_node(NodeId node);

  /// Unlinks `slot` from its node, returns it to the free list, and bumps
  /// its generation so outstanding FlowIds go stale.
  void release_slot(std::uint32_t slot);

  [[nodiscard]] static std::uint32_t slot_of(FlowId id) noexcept {
    return static_cast<std::uint32_t>(id.value);
  }
  [[nodiscard]] static std::uint32_t gen_of(FlowId id) noexcept {
    return static_cast<std::uint32_t>(id.value >> 32);
  }
  [[nodiscard]] bool is_live(FlowId id) const noexcept {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].gen == gen_of(id) &&
           slots_[slot].node != kInvalidNode;
  }

  sim::Simulator& sim_;
  MbPerSec origin_capacity_;
  std::vector<FlowSlot> slots_;
  std::uint32_t free_head_ = kNil;
  std::vector<NodeState> nodes_;      ///< indexed by NodeId
  std::vector<NodeId> active_nodes_;  ///< nodes with count > 0 (swap-removed)
  std::size_t total_flows_ = 0;
  std::uint64_t next_seq_ = 1;
  Tick last_update_ = 0;
  sim::EventId next_completion_{};
  Tick next_completion_tick_ = kNeverTick;
  /// Set when the (node -> flow count) occupancy changed since the last
  /// rate computation; rates depend on nothing else, so a clean flag means
  /// the previous rates are still exact.
  bool rates_dirty_ = false;
  // Reusable scratch (kept across calls; no steady-state allocations).
  std::vector<std::pair<double, NodeId>> fill_scratch_;  ///< (share, node)
  std::vector<std::uint32_t> done_scratch_;              ///< finished slots

  /// Interns the span/counter names on first traced use.
  void ensure_trace_names();
  std::uint16_t trace_flow_ = 0;         ///< "flow": start->completion span
  std::uint16_t trace_flow_cancel_ = 0;  ///< "flow_cancel" instant
  std::uint16_t trace_rate_ = 0;         ///< per-node rate counter
  bool trace_names_ready_ = false;
};

}  // namespace dlaja::net
