#pragma once
// Workload generation: the five job configurations of §6.3.1 plus a
// general parameterized generator for the ablation sweeps.
//
// Each configuration produces a stream of 120 jobs with arrival times.
// Repositories vary in size (small/medium/large, 1 MB–1 GB) and jobs are
// either all-different or repetitive (80% of the dominant class's jobs
// require the same repository).

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workflow/workflow.hpp"
#include "workload/catalog.hpp"

namespace dlaja::workload {

/// The paper's five job configurations (§6.3.1).
enum class JobConfig {
  kAllDiffEqual,  ///< equal size mix, all repositories distinct
  kAllDiffLarge,  ///< mostly large, all distinct
  kAllDiffSmall,  ///< mostly small, all distinct
  k80Large,       ///< mostly large; 80% of large jobs share one repository
  k80Small,       ///< mostly small; 80% of small jobs share one repository
};

/// "all_diff_equal", "80%_large", ... (paper spelling).
[[nodiscard]] std::string job_config_name(JobConfig config);

/// Parses a config name; throws std::invalid_argument on unknown names.
[[nodiscard]] JobConfig job_config_from_name(const std::string& name);

/// All five configs in paper order.
[[nodiscard]] std::vector<JobConfig> all_job_configs();

/// Fully parameterized workload description.
struct WorkloadSpec {
  std::string name = "custom";
  std::size_t job_count = 120;

  /// Arrival process shape.
  enum class ArrivalProcess {
    kExponential,  ///< Poisson stream (default)
    kUniform,      ///< fixed spacing of arrival_mean_s
    kBursty,       ///< bursts of burst_size simultaneous jobs — the MSR
                   ///< pattern, where one search emits many analyzer jobs
  };
  ArrivalProcess arrival = ArrivalProcess::kExponential;

  /// Mean inter-arrival time of jobs at the master. The paper streams jobs
  /// in as upstream tasks emit them; 2 s keeps five workers saturated for
  /// the 1 MB–1 GB size range. For kBursty this is the *per-job* mean: a
  /// burst of B jobs follows the previous one after ~B x arrival_mean_s.
  double arrival_mean_s = 2.0;

  /// Jobs per burst (kBursty only).
  std::size_t burst_size = 10;

  /// Mixture weights over size classes (need not sum to 1).
  double weight_small = 1.0;
  double weight_medium = 1.0;
  double weight_large = 1.0;

  /// Fraction of the dominant class's jobs that reuse one hot repository
  /// (0 = all different).
  double hot_fraction = 0.0;
  SizeClass hot_class = SizeClass::kLarge;

  /// Fixed per-job cost (e.g. the API call preceding the clone).
  Tick fixed_cost = ticks_from_millis(200.0);

  /// Size-class boundaries; override to pin sizes (e.g. a sweep point can
  /// set small_lo == small_hi and weight only the small class).
  SizeRanges ranges{};

  bool operator==(const WorkloadSpec&) const = default;
};

/// The spec corresponding to one of the §6.3.1 configurations.
[[nodiscard]] WorkloadSpec make_workload_spec(JobConfig config);

/// A generated workload: jobs with `created_at` = arrival time (sorted
/// ascending), plus the catalog that owns the repository sizes.
struct GeneratedWorkload {
  std::string name;
  std::vector<workflow::Job> jobs;
  RepositoryCatalog catalog;

  /// Total MB across *distinct* repositories referenced by the jobs.
  [[nodiscard]] MegaBytes unique_mb() const;

  /// Total MB if every job downloaded its repository (no locality at all).
  [[nodiscard]] MegaBytes naive_mb() const;
};

/// Generates a workload deterministically from the spec and seeds. Jobs
/// target task id `task` and get ids 1..job_count in arrival order.
[[nodiscard]] GeneratedWorkload generate_workload(const WorkloadSpec& spec,
                                                  const SeedSequencer& seeds,
                                                  workflow::TaskId task = 0);

}  // namespace dlaja::workload
