#include "workload/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dlaja::workload {

namespace {

/// Instantaneous diurnal factor in [1-A, 1+A].
double diurnal_factor(const OpenArrivalSpec& spec, double t_s) noexcept {
  if (spec.diurnal_amplitude <= 0.0) return 1.0;
  return 1.0 + spec.diurnal_amplitude *
                   std::sin(2.0 * std::numbers::pi * t_s / spec.diurnal_period_s);
}

void check_spec_or_throw(const WorkloadSpec& body, const OpenArrivalSpec& spec) {
  const double weights[3] = {body.weight_small, body.weight_medium, body.weight_large};
  double sum = 0.0;
  for (const double w : weights) {
    if (!(w >= 0.0)) throw std::invalid_argument("open arrivals: negative size-class weight");
    sum += w;
  }
  if (!(sum > 0.0)) throw std::invalid_argument("open arrivals: size-class weights sum to zero");
  if (!(spec.rate_per_s > 0.0) || !std::isfinite(spec.rate_per_s)) {
    throw std::invalid_argument("open arrivals: rate_per_s must be positive and finite");
  }
  if (!(spec.duration_s > 0.0) || !std::isfinite(spec.duration_s)) {
    throw std::invalid_argument("open arrivals: duration_s must be positive and finite");
  }
  if (spec.diurnal_amplitude < 0.0 || spec.diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("open arrivals: diurnal_amplitude must be in [0, 1)");
  }
  if (spec.diurnal_amplitude > 0.0 && !(spec.diurnal_period_s > 0.0)) {
    throw std::invalid_argument("open arrivals: diurnal_period_s must be positive");
  }
  if (spec.process == OpenArrivalSpec::Process::kMmpp) {
    if (!(spec.burst_multiplier > 0.0) || !std::isfinite(spec.burst_multiplier)) {
      throw std::invalid_argument("open arrivals: burst_multiplier must be positive and finite");
    }
    if (!(spec.burst_dwell_s > 0.0) || !(spec.calm_dwell_s > 0.0)) {
      throw std::invalid_argument("open arrivals: MMPP dwell times must be positive");
    }
  }
  if (spec.repo_pool == 0) throw std::invalid_argument("open arrivals: repo_pool must be >= 1");
  if (!(spec.popularity_skew > 0.0)) {
    throw std::invalid_argument("open arrivals: popularity_skew must be positive");
  }
}

}  // namespace

std::string open_process_name(OpenArrivalSpec::Process process) {
  switch (process) {
    case OpenArrivalSpec::Process::kPoisson: return "poisson";
    case OpenArrivalSpec::Process::kMmpp: return "mmpp";
  }
  return "?";
}

OpenArrivalSpec::Process open_process_from_name(const std::string& name) {
  if (name == "poisson") return OpenArrivalSpec::Process::kPoisson;
  if (name == "mmpp") return OpenArrivalSpec::Process::kMmpp;
  throw std::invalid_argument("unknown arrival process: " + name +
                              " (expected poisson or mmpp)");
}

OpenArrivalStream::OpenArrivalStream(const WorkloadSpec& body, const OpenArrivalSpec& spec,
                                     const SeedSequencer& seeds, workflow::TaskId task)
    : body_(body),
      spec_(spec),
      task_(task),
      name_("open:" + open_process_name(spec.process)),
      catalog_(body.ranges),
      arrival_rng_(seeds.stream("open/arrivals/" + name_)),
      body_rng_(seeds.stream("open/body/" + name_)) {
  check_spec_or_throw(body_, spec_);

  // The pool is drawn once, in index order, so arrival count never changes
  // which repositories exist — only how often each is requested.
  const double weights[3] = {body_.weight_small, body_.weight_medium, body_.weight_large};
  pool_.reserve(spec_.repo_pool);
  for (std::size_t i = 0; i < spec_.repo_pool; ++i) {
    const auto cls = static_cast<SizeClass>(body_rng_.weighted_index(weights, 3));
    pool_.push_back(catalog_.add_random(cls, body_rng_));
  }

  if (spec_.process == OpenArrivalSpec::Process::kMmpp) {
    state_until_s_ = arrival_rng_.exponential(spec_.calm_dwell_s);
  }
}

bool OpenArrivalStream::advance() {
  // Lewis-Shedler thinning against the current state's peak rate. Inside
  // one MMPP dwell the rate only varies diurnally, so the peak is exact and
  // the exponential's memorylessness lets us restart the draw at each state
  // boundary without bias.
  const bool mmpp = spec_.process == OpenArrivalSpec::Process::kMmpp;
  while (true) {
    const double mult = (mmpp && burst_) ? spec_.burst_multiplier : 1.0;
    const double peak = spec_.rate_per_s * mult * (1.0 + spec_.diurnal_amplitude);
    const double candidate = now_s_ + arrival_rng_.exponential(1.0 / peak);
    if (mmpp && candidate >= state_until_s_) {
      now_s_ = state_until_s_;
      burst_ = !burst_;
      const double dwell = burst_ ? spec_.burst_dwell_s : spec_.calm_dwell_s;
      state_until_s_ += arrival_rng_.exponential(dwell);
      if (now_s_ > spec_.duration_s) return false;
      continue;
    }
    now_s_ = candidate;
    if (now_s_ > spec_.duration_s) return false;
    if (spec_.diurnal_amplitude > 0.0) {
      const double accept = diurnal_factor(spec_, now_s_) / (1.0 + spec_.diurnal_amplitude);
      if (!arrival_rng_.bernoulli(accept)) continue;
    }
    return true;
  }
}

std::optional<workflow::Job> OpenArrivalStream::next() {
  if (done_) return std::nullopt;
  if (spec_.max_jobs != 0 && emitted_ >= spec_.max_jobs) {
    done_ = true;
    return std::nullopt;
  }
  if (!advance()) {
    done_ = true;
    return std::nullopt;
  }

  workflow::Job job;
  job.id = static_cast<workflow::JobId>(++emitted_);
  job.task = task_;

  // Popularity skew: u^skew concentrates mass near index 0, giving the
  // Zipf-ish reuse structure locality scheduling exploits.
  const double u = body_rng_.uniform();
  const auto index = std::min(pool_.size() - 1,
                              static_cast<std::size_t>(std::pow(u, spec_.popularity_skew) *
                                                       static_cast<double>(pool_.size())));
  job.resource = pool_[index];
  job.resource_size_mb = catalog_.size_of(job.resource);
  job.process_mb = job.resource_size_mb;  // scanning the clone reads it all
  job.fixed_cost = body_.fixed_cost;
  job.created_at = ticks_from_seconds(now_s_);
  job.key = name_ + "#" + std::to_string(job.id);
  return job;
}

}  // namespace dlaja::workload
