#pragma once
// Open arrival processes: unbounded job streams for saturation runs.
//
// Every experiment so far replays a closed batch of jobs materialized up
// front. An OpenArrivalStream instead *generates* jobs lazily, one at a
// time, from a stationary-rate description — so a run can be pushed to
// millions of arrivals and measured in steady state (sustained jobs/s,
// queue-length distributions, sojourn-time percentiles) without ever
// holding the trace in memory.
//
// Two processes are supported:
//
//   * Poisson — exponential inter-arrivals at `rate_per_s`;
//   * MMPP — a 2-state Markov-modulated Poisson process: a calm state at
//     the base rate and a burst state at `burst_multiplier` x the base
//     rate, with exponentially distributed dwell times in each state (the
//     classic model for bursty data-center submission streams).
//
// Either process can additionally carry *diurnal* rate modulation: the
// instantaneous rate is scaled by (1 + A sin(2*pi*t / period)), which
// approximates the day/night swing of production clusters. Sampling uses
// Lewis-Shedler thinning against the state's peak rate, so the sequence is
// an exact draw from the non-homogeneous process and — like everything
// else in the simulator — a pure function of the seeds.
//
// Job bodies reuse the WorkloadSpec size-class machinery: a bounded pool of
// `repo_pool` repositories is drawn once from the size-class weights, and
// each arriving job picks a pool entry with a Zipf-ish popularity skew
// (u^skew, low indices dominate) — the reuse structure locality scheduling
// exploits, in O(repo_pool) memory regardless of how many jobs arrive.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workflow/workflow.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"

namespace dlaja::workload {

/// Declarative description of an open arrival process (scenario key
/// "arrivals"). Validated by ExperimentSpec::validate().
struct OpenArrivalSpec {
  enum class Process {
    kPoisson,  ///< exponential inter-arrivals at rate_per_s
    kMmpp,     ///< 2-state Markov-modulated Poisson (calm/burst)
  };
  Process process = Process::kPoisson;

  /// Base arrival rate (jobs per simulated second) of the calm state.
  double rate_per_s = 5.0;

  /// Arrivals stop after this much simulated time (the run then drains).
  double duration_s = 3600.0;

  /// Optional hard cap on emitted jobs (0 = bounded by duration only).
  std::uint64_t max_jobs = 0;

  /// Diurnal modulation: instantaneous rate x (1 + A sin(2 pi t / P)).
  /// A = 0 (default) disables it; A must stay in [0, 1).
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 86400.0;

  /// MMPP only: burst-state rate multiplier and the mean dwell times of
  /// the two states (dwells are exponential).
  double burst_multiplier = 4.0;
  double burst_dwell_s = 60.0;
  double calm_dwell_s = 600.0;

  /// Distinct repositories in the pool jobs draw from (O(1) memory per
  /// arrival regardless of the job count).
  std::size_t repo_pool = 256;

  /// Popularity skew exponent: pool index = floor(pool * u^skew). 1 =
  /// uniform popularity; larger values concentrate reuse on few repos.
  double popularity_skew = 2.0;

  bool operator==(const OpenArrivalSpec&) const = default;
};

/// "poisson" / "mmpp".
[[nodiscard]] std::string open_process_name(OpenArrivalSpec::Process process);

/// Parses a process name; throws std::invalid_argument on unknown names.
[[nodiscard]] OpenArrivalSpec::Process open_process_from_name(const std::string& name);

/// A lazy, deterministic job stream. next() returns jobs in arrival order
/// (created_at non-decreasing) until the duration or max_jobs bound is hit,
/// then nullopt forever. The stream holds O(repo_pool) state — no trace is
/// ever materialized. Substreams: "open/arrivals/<name>" for the arrival
/// process, "open/body/<name>" for pool construction and job bodies.
class OpenArrivalStream {
 public:
  /// `body` supplies the size-class weights, ranges and fixed cost; its
  /// arrival fields are ignored. Throws std::invalid_argument on weight
  /// vectors that violate weighted_index's precondition or an out-of-range
  /// OpenArrivalSpec (validate() reports the same problems structurally).
  OpenArrivalStream(const WorkloadSpec& body, const OpenArrivalSpec& spec,
                    const SeedSequencer& seeds, workflow::TaskId task = 0);

  /// The next arriving job, or nullopt once the stream is exhausted.
  [[nodiscard]] std::optional<workflow::Job> next();

  [[nodiscard]] const RepositoryCatalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  /// "open:poisson" / "open:mmpp" — used as the workload name in reports.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  /// Advances now_s_ to the next accepted arrival; false when exhausted.
  [[nodiscard]] bool advance();

  WorkloadSpec body_;
  OpenArrivalSpec spec_;
  workflow::TaskId task_;
  std::string name_;
  RepositoryCatalog catalog_;
  std::vector<storage::ResourceId> pool_;
  RandomStream arrival_rng_;
  RandomStream body_rng_;
  double now_s_ = 0.0;
  bool burst_ = false;          ///< MMPP state (calm/burst)
  double state_until_s_ = 0.0;  ///< MMPP: end of the current dwell
  std::uint64_t emitted_ = 0;
  bool done_ = false;
};

}  // namespace dlaja::workload
