#include "workload/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace dlaja::workload {

namespace {

constexpr const char* kHeader[] = {"job_id",     "key",          "resource",
                                   "resource_mb", "process_mb",  "fixed_cost_us",
                                   "created_at_us"};
constexpr std::size_t kColumns = std::size(kHeader);

[[nodiscard]] double parse_double(const std::string& field, const char* what) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error(std::string("trace: bad ") + what + ": '" + field + "'");
  }
  return value;
}

[[nodiscard]] std::int64_t parse_int(const std::string& field, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error(std::string("trace: bad ") + what + ": '" + field + "'");
  }
  return value;
}

}  // namespace

void write_trace(std::ostream& out, const GeneratedWorkload& workload) {
  CsvWriter csv(out);
  csv.write(kHeader[0], kHeader[1], kHeader[2], kHeader[3], kHeader[4], kHeader[5], kHeader[6]);
  for (const workflow::Job& job : workload.jobs) {
    csv.write(job.id, job.key, job.resource, job.resource_size_mb, job.process_mb,
              job.fixed_cost, job.created_at);
  }
}

GeneratedWorkload read_trace(std::istream& in, std::string name) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::vector<CsvRow> rows = csv_parse(buffer.str());
  if (rows.empty()) throw std::runtime_error("trace: empty input");
  const CsvRow& header = rows.front();
  if (header.size() != kColumns || header[0] != kHeader[0]) {
    throw std::runtime_error("trace: missing or malformed header");
  }

  GeneratedWorkload workload;
  workload.name = std::move(name);
  // resource id -> size, to rebuild the catalog consistently.
  std::map<storage::ResourceId, MegaBytes> resources;

  for (std::size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() != kColumns) {
      throw std::runtime_error("trace: row " + std::to_string(r) + " has " +
                               std::to_string(row.size()) + " fields, expected " +
                               std::to_string(kColumns));
    }
    workflow::Job job;
    job.id = static_cast<workflow::JobId>(parse_int(row[0], "job_id"));
    job.key = row[1];
    job.resource = static_cast<storage::ResourceId>(parse_int(row[2], "resource"));
    job.resource_size_mb = parse_double(row[3], "resource_mb");
    job.process_mb = parse_double(row[4], "process_mb");
    job.fixed_cost = parse_int(row[5], "fixed_cost_us");
    job.created_at = parse_int(row[6], "created_at_us");

    if (job.needs_resource()) {
      const auto [it, inserted] = resources.emplace(job.resource, job.resource_size_mb);
      if (!inserted && it->second != job.resource_size_mb) {
        throw std::runtime_error("trace: resource " + std::to_string(job.resource) +
                                 " has conflicting sizes");
      }
    }
    workload.jobs.push_back(std::move(job));
  }

  // Rebuild the catalog: ids must be dense from 1 for RepositoryCatalog, so
  // re-register in id order and remap jobs if the trace had gaps.
  std::map<storage::ResourceId, storage::ResourceId> remap;
  for (const auto& [id, size] : resources) remap[id] = workload.catalog.add(size);
  for (workflow::Job& job : workload.jobs) {
    if (job.needs_resource()) job.resource = remap.at(job.resource);
  }
  return workload;
}

void save_trace_file(const std::string& path, const GeneratedWorkload& workload) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot open for writing: " + path);
  write_trace(out, workload);
  if (!out.flush()) throw std::runtime_error("trace: write failed: " + path);
}

GeneratedWorkload load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open: " + path);
  return read_trace(in, path);
}

}  // namespace dlaja::workload
