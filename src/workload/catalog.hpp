#pragma once
// Repository catalog: the universe of cacheable resources a workload draws
// from. Sizes follow the paper's classes — small / medium / large, ranging
// between 1 MB and 1 GB for the controlled experiments (§6.3.1); the MSR
// application model (src/msr) uses larger multi-GB repositories.

#include <cstdint>
#include <string>
#include <vector>

#include "storage/cache.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dlaja::workload {

/// Size class of a repository.
enum class SizeClass { kSmall, kMedium, kLarge };

/// Human-readable class name.
[[nodiscard]] const char* size_class_name(SizeClass c) noexcept;

/// Size ranges per class (MB): small [1, 50), medium [50, 500),
/// large [500, 1024]. Matches the paper: "small, medium or large, ranging
/// between 1MB and 1GB"; small < 50 MB, large > 500 MB (§4).
struct SizeRanges {
  MegaBytes small_lo = 1.0, small_hi = 50.0;
  MegaBytes medium_lo = 50.0, medium_hi = 500.0;
  MegaBytes large_lo = 500.0, large_hi = 1024.0;

  bool operator==(const SizeRanges&) const = default;
};

/// A growing registry of repositories with stable ids (starting at 1; id 0
/// is reserved for "no resource").
class RepositoryCatalog {
 public:
  explicit RepositoryCatalog(SizeRanges ranges = {}) : ranges_(ranges) {}

  /// Registers a repository of an explicit size; returns its id.
  storage::ResourceId add(MegaBytes size_mb);

  /// Registers a repository with a size drawn uniformly from `cls`'s range.
  storage::ResourceId add_random(SizeClass cls, RandomStream& rng);

  /// Size of repository `id`; throws std::out_of_range for unknown ids.
  [[nodiscard]] MegaBytes size_of(storage::ResourceId id) const;

  [[nodiscard]] std::size_t count() const noexcept { return sizes_.size(); }

  /// Sum of all registered repository sizes.
  [[nodiscard]] MegaBytes total_mb() const noexcept;

  [[nodiscard]] const SizeRanges& ranges() const noexcept { return ranges_; }

  /// Classifies a size against the ranges (boundaries go to the larger class).
  [[nodiscard]] SizeClass classify(MegaBytes size_mb) const noexcept;

 private:
  SizeRanges ranges_;
  std::vector<MegaBytes> sizes_;  // index = id - 1
};

}  // namespace dlaja::workload
