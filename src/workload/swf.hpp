#pragma once
// Standard Workload Format (SWF) adapter.
//
// SWF is the format of the Parallel Workloads Archive (Feitelson et al.) —
// the de-facto public trace format for HPC job logs. This adapter maps SWF
// jobs onto dlaja jobs so that real arrival patterns and job-size
// distributions can drive the locality schedulers:
//
//   * submit time        -> job arrival (created_at)
//   * executable number  -> the job's data resource: successive runs of
//     the same application read the same input data, which is exactly the
//     reuse structure locality scheduling exploits (user id is the
//     fallback when the log omits executables);
//   * run time           -> processing volume (run_time x reference rw
//     speed, so the job takes ~run_time to process at reference speed);
//   * requested/used memory -> the resource's size (clamped), standing in
//     for the input data volume, with a deterministic synthetic fallback.
//
// Lines beginning with ';' are header comments; data lines hold 18
// whitespace-separated fields with -1 for unknown values.

#include <iosfwd>
#include <string>

#include "workload/generator.hpp"

namespace dlaja::workload {

/// One parsed SWF record (fields we consume; -1 = unknown).
struct SwfJob {
  std::int64_t job_number = -1;
  double submit_time_s = -1.0;
  double run_time_s = -1.0;
  std::int64_t requested_procs = -1;
  std::int64_t used_memory_kb = -1;
  std::int64_t requested_memory_kb = -1;
  std::int64_t status = -1;
  std::int64_t user_id = -1;
  std::int64_t executable = -1;
};

/// Conversion knobs.
struct SwfOptions {
  /// Processing volume = run_time x this speed (MB/s): a job that ran for
  /// T seconds becomes T x reference_rw_mbps MB of scanning work.
  MbPerSec reference_rw_mbps = 80.0;

  /// Resource size from memory fields (KB -> MB), clamped to this range;
  /// jobs with no memory information get a deterministic size derived from
  /// the resource id within the same range.
  MegaBytes min_resource_mb = 10.0;
  MegaBytes max_resource_mb = 4096.0;

  /// Compress/stretch the arrival timeline (0.1 = 10x denser).
  double time_scale = 1.0;

  /// Cap on converted jobs (0 = all). Failed/cancelled jobs (status 0 or 5
  /// with run_time <= 0) are skipped regardless.
  std::size_t max_jobs = 0;

  /// Per-job fixed cost (queueing/launch overhead).
  Tick fixed_cost = ticks_from_millis(100.0);
};

/// Parse behaviour knobs.
struct SwfParseOptions {
  /// Lenient (default): a line with a non-numeric field is skipped and
  /// counted — real archive logs carry the odd corrupted record, and one
  /// bad line should not abort a million-job load. Strict: throw
  /// std::runtime_error on the first malformed field (the historical
  /// behaviour), for callers that treat any corruption as fatal.
  bool strict = false;
};

/// What parse_swf saw (lenient-mode accounting).
struct SwfParseStats {
  std::size_t data_lines = 0;       ///< non-comment, non-blank lines seen
  std::size_t records = 0;          ///< lines parsed into records
  std::size_t malformed_lines = 0;  ///< lines skipped over a bad field
  std::size_t first_bad_line = 0;   ///< line number of the first skip (0 = none)
};

/// Parses SWF text into records. Tolerates short lines (missing trailing
/// fields become -1). Malformed fields: skipped + counted in `stats` with
/// a single warning log per call (lenient, default), or a thrown
/// std::runtime_error naming line and token (options.strict).
[[nodiscard]] std::vector<SwfJob> parse_swf(std::istream& in,
                                            const SwfParseOptions& options = {},
                                            SwfParseStats* stats = nullptr);

/// Converts records into a runnable workload per the mapping above.
/// Jobs are emitted in submit order with ids 1..N.
[[nodiscard]] GeneratedWorkload convert_swf(const std::vector<SwfJob>& records,
                                            const SwfOptions& options = {},
                                            std::string name = "swf");

/// File convenience: parse + convert. Throws std::runtime_error on I/O.
[[nodiscard]] GeneratedWorkload load_swf_file(const std::string& path,
                                              const SwfOptions& options = {});

/// Writes a small synthetic SWF log (deterministic per seed): `jobs` jobs
/// over `executables` applications with Zipf-ish reuse — handy for demos
/// and tests when no archive trace is at hand.
void write_synthetic_swf(std::ostream& out, std::size_t jobs, std::size_t executables,
                         std::uint64_t seed);

}  // namespace dlaja::workload
