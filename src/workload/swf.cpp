#include "workload/swf.hpp"

#include <algorithm>
#include <cmath>
#include <charconv>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace dlaja::workload {

namespace {

[[nodiscard]] bool field_to_double(const std::string& token, double& value) {
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

std::vector<SwfJob> parse_swf(std::istream& in, const SwfParseOptions& options,
                              SwfParseStats* stats) {
  std::vector<SwfJob> records;
  SwfParseStats local;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Header/comment lines and blanks.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == ';') continue;
    ++local.data_lines;

    std::istringstream fields(line);
    std::vector<double> values;
    std::string token;
    bool malformed = false;
    while (fields >> token) {
      double value = 0.0;
      if (!field_to_double(token, value)) {
        if (options.strict) {
          throw std::runtime_error("swf: non-numeric field '" + token + "' on line " +
                                   std::to_string(line_no));
        }
        malformed = true;
        break;
      }
      values.push_back(value);
    }
    if (malformed) {
      // Recoverable: drop the line, remember it happened, warn exactly once
      // per call — a million-line archive with scattered corruption should
      // not flood the log (or abort the load, as it used to).
      ++local.malformed_lines;
      if (local.first_bad_line == 0) {
        local.first_bad_line = line_no;
        DLAJA_LOG(kWarn, "swf") << "skipping malformed line " << line_no << " ('" << token
                                << "' is not numeric); further bad lines are counted "
                                   "silently";
      }
      continue;
    }
    if (values.empty()) continue;

    // SWF defines 18 fields; tolerate truncated logs.
    const auto get = [&](std::size_t index) {
      return index < values.size() ? values[index] : -1.0;
    };
    SwfJob job;
    job.job_number = static_cast<std::int64_t>(get(0));
    job.submit_time_s = get(1);
    job.run_time_s = get(3);
    job.requested_procs = static_cast<std::int64_t>(get(7));
    job.used_memory_kb = static_cast<std::int64_t>(get(6));
    job.requested_memory_kb = static_cast<std::int64_t>(get(9));
    job.status = static_cast<std::int64_t>(get(10));
    job.user_id = static_cast<std::int64_t>(get(11));
    job.executable = static_cast<std::int64_t>(get(13));
    records.push_back(job);
    ++local.records;
  }
  if (stats != nullptr) *stats = local;
  return records;
}

GeneratedWorkload convert_swf(const std::vector<SwfJob>& records, const SwfOptions& options,
                              std::string name) {
  GeneratedWorkload workload;
  workload.name = std::move(name);

  // Sort by submit time (archive logs are usually sorted already).
  std::vector<const SwfJob*> usable;
  for (const SwfJob& record : records) {
    if (record.run_time_s <= 0.0 || record.submit_time_s < 0.0) continue;  // failed/bogus
    usable.push_back(&record);
  }
  std::stable_sort(usable.begin(), usable.end(), [](const SwfJob* a, const SwfJob* b) {
    return a->submit_time_s < b->submit_time_s;
  });
  if (options.max_jobs > 0 && usable.size() > options.max_jobs) {
    usable.resize(options.max_jobs);
  }

  // Application (or user) identity -> one data resource, with a size taken
  // from the first job's memory fields or derived deterministically.
  std::map<std::int64_t, storage::ResourceId> resources;
  const auto resource_for = [&](const SwfJob& record) {
    const std::int64_t identity =
        record.executable >= 0 ? record.executable : 1'000'000 + record.user_id;
    const auto it = resources.find(identity);
    if (it != resources.end()) return it->second;

    MegaBytes size;
    const std::int64_t memory_kb =
        record.used_memory_kb > 0 ? record.used_memory_kb : record.requested_memory_kb;
    if (memory_kb > 0) {
      size = static_cast<MegaBytes>(memory_kb) / 1024.0;
    } else {
      // Deterministic synthetic size from the identity.
      std::uint64_t state = static_cast<std::uint64_t>(identity) * 0x9e3779b97f4a7c15ULL + 1;
      const double u =
          static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
      size = options.min_resource_mb +
             u * (options.max_resource_mb - options.min_resource_mb);
    }
    size = std::clamp(size, options.min_resource_mb, options.max_resource_mb);
    const storage::ResourceId id = workload.catalog.add(size);
    resources.emplace(identity, id);
    return id;
  };

  workflow::JobId next_id = 1;
  for (const SwfJob* record : usable) {
    workflow::Job job;
    job.id = next_id++;
    job.resource = resource_for(*record);
    job.resource_size_mb = workload.catalog.size_of(job.resource);
    job.process_mb = record->run_time_s * options.reference_rw_mbps;
    job.fixed_cost = options.fixed_cost;
    job.created_at =
        ticks_from_seconds(record->submit_time_s * options.time_scale);
    job.key = "swf#" + std::to_string(record->job_number);
    workload.jobs.push_back(std::move(job));
  }
  return workload;
}

GeneratedWorkload load_swf_file(const std::string& path, const SwfOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("swf: cannot open: " + path);
  return convert_swf(parse_swf(in), options, path);
}

void write_synthetic_swf(std::ostream& out, std::size_t jobs, std::size_t executables,
                         std::uint64_t seed) {
  RandomStream rng(seed);
  out << "; synthetic SWF log generated by dlaja (deterministic per seed)\n";
  out << "; Version: 2.2\n";
  out << "; MaxJobs: " << jobs << "\n";
  double submit = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    submit += rng.exponential(30.0);
    const double run = rng.bounded_pareto(60.0, 7200.0, 1.2);
    // Zipf-ish application popularity: low ids dominate.
    const auto executable = static_cast<std::int64_t>(
        static_cast<double>(executables) *
        std::pow(rng.uniform(), 2.0));  // quadratic skew toward 0
    const std::int64_t memory_kb = rng.uniform_int(64, 2048) * 1024;
    const std::int64_t user = 1 + executable % 7;
    // 18 SWF fields; unused ones are -1.
    out << (i + 1) << ' ' << static_cast<std::int64_t>(submit) << " -1 "
        << static_cast<std::int64_t>(run) << " 1 -1 " << memory_kb << " 1 "
        << static_cast<std::int64_t>(run * 1.5) << ' ' << memory_kb << " 1 " << user
        << " 1 " << (executable + 1) << " 1 1 -1 -1\n";
  }
}

}  // namespace dlaja::workload
