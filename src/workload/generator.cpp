#include "workload/generator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace dlaja::workload {

std::string job_config_name(JobConfig config) {
  switch (config) {
    case JobConfig::kAllDiffEqual: return "all_diff_equal";
    case JobConfig::kAllDiffLarge: return "all_diff_large";
    case JobConfig::kAllDiffSmall: return "all_diff_small";
    case JobConfig::k80Large: return "80%_large";
    case JobConfig::k80Small: return "80%_small";
  }
  return "?";
}

JobConfig job_config_from_name(const std::string& name) {
  for (const JobConfig c : all_job_configs()) {
    if (job_config_name(c) == name) return c;
  }
  throw std::invalid_argument("unknown job config: " + name);
}

std::vector<JobConfig> all_job_configs() {
  return {JobConfig::kAllDiffEqual, JobConfig::kAllDiffLarge, JobConfig::kAllDiffSmall,
          JobConfig::k80Large, JobConfig::k80Small};
}

WorkloadSpec make_workload_spec(JobConfig config) {
  WorkloadSpec spec;
  spec.name = job_config_name(config);
  switch (config) {
    case JobConfig::kAllDiffEqual:
      spec.weight_small = spec.weight_medium = spec.weight_large = 1.0;
      break;
    case JobConfig::kAllDiffLarge:
      spec.weight_small = 0.1;
      spec.weight_medium = 0.2;
      spec.weight_large = 0.7;
      break;
    case JobConfig::kAllDiffSmall:
      spec.weight_small = 0.7;
      spec.weight_medium = 0.2;
      spec.weight_large = 0.1;
      break;
    case JobConfig::k80Large:
      spec.weight_small = 0.1;
      spec.weight_medium = 0.2;
      spec.weight_large = 0.7;
      spec.hot_fraction = 0.8;
      spec.hot_class = SizeClass::kLarge;
      break;
    case JobConfig::k80Small:
      spec.weight_small = 0.7;
      spec.weight_medium = 0.2;
      spec.weight_large = 0.1;
      spec.hot_fraction = 0.8;
      spec.hot_class = SizeClass::kSmall;
      break;
  }
  return spec;
}

MegaBytes GeneratedWorkload::unique_mb() const {
  std::unordered_set<storage::ResourceId> seen;
  MegaBytes total = 0.0;
  for (const workflow::Job& job : jobs) {
    if (job.needs_resource() && seen.insert(job.resource).second) {
      total += job.resource_size_mb;
    }
  }
  return total;
}

MegaBytes GeneratedWorkload::naive_mb() const {
  MegaBytes total = 0.0;
  for (const workflow::Job& job : jobs) total += job.resource_size_mb;
  return total;
}

GeneratedWorkload generate_workload(const WorkloadSpec& spec, const SeedSequencer& seeds,
                                    workflow::TaskId task) {
  if (spec.job_count == 0) throw std::invalid_argument("generate_workload: zero jobs");
  if (spec.arrival == WorkloadSpec::ArrivalProcess::kBursty && spec.burst_size == 0) {
    throw std::invalid_argument(
        "generate_workload: burst_size must be >= 1 for bursty arrivals");
  }
  GeneratedWorkload result;
  result.name = spec.name;
  result.catalog = RepositoryCatalog(spec.ranges);

  RandomStream size_rng = seeds.stream("workload/sizes/" + spec.name);
  RandomStream arrival_rng = seeds.stream("workload/arrivals/" + spec.name);
  RandomStream hot_rng = seeds.stream("workload/hot/" + spec.name);

  // One shared hot repository per run (the paper: "80% require the same
  // large repository").
  storage::ResourceId hot_repo = 0;
  if (spec.hot_fraction > 0.0) {
    hot_repo = result.catalog.add_random(spec.hot_class, hot_rng);
  }

  const double weights[3] = {spec.weight_small, spec.weight_medium, spec.weight_large};

  Tick arrival = 0;
  for (std::size_t i = 0; i < spec.job_count; ++i) {
    workflow::Job job;
    job.id = static_cast<workflow::JobId>(i + 1);
    job.task = task;

    const auto cls = static_cast<SizeClass>(size_rng.weighted_index(weights, 3));
    const bool is_hot_class = spec.hot_fraction > 0.0 && cls == spec.hot_class;
    if (is_hot_class && hot_rng.bernoulli(spec.hot_fraction)) {
      job.resource = hot_repo;
    } else {
      job.resource = result.catalog.add_random(cls, size_rng);
    }
    job.resource_size_mb = result.catalog.size_of(job.resource);
    job.process_mb = job.resource_size_mb;  // scanning the clone reads it all
    job.fixed_cost = spec.fixed_cost;

    switch (spec.arrival) {
      case WorkloadSpec::ArrivalProcess::kExponential:
        arrival += ticks_from_seconds(arrival_rng.exponential(spec.arrival_mean_s));
        break;
      case WorkloadSpec::ArrivalProcess::kUniform:
        arrival += ticks_from_seconds(spec.arrival_mean_s);
        break;
      case WorkloadSpec::ArrivalProcess::kBursty:
        // Jobs inside a burst share an instant; bursts are spaced so the
        // long-run rate matches arrival_mean_s per job. burst_size >= 1 is
        // enforced above (and by ExperimentSpec::validate()).
        if (i % spec.burst_size == 0) {
          arrival += ticks_from_seconds(arrival_rng.exponential(
              spec.arrival_mean_s * static_cast<double>(spec.burst_size)));
        }
        break;
    }
    job.created_at = arrival;
    job.key = spec.name + "#" + std::to_string(job.id);

    result.jobs.push_back(std::move(job));
  }
  return result;
}

}  // namespace dlaja::workload
