#include "workload/catalog.hpp"

#include <stdexcept>

namespace dlaja::workload {

const char* size_class_name(SizeClass c) noexcept {
  switch (c) {
    case SizeClass::kSmall: return "small";
    case SizeClass::kMedium: return "medium";
    case SizeClass::kLarge: return "large";
  }
  return "?";
}

storage::ResourceId RepositoryCatalog::add(MegaBytes size_mb) {
  if (size_mb < 0.0) throw std::invalid_argument("RepositoryCatalog: negative size");
  sizes_.push_back(size_mb);
  return static_cast<storage::ResourceId>(sizes_.size());
}

storage::ResourceId RepositoryCatalog::add_random(SizeClass cls, RandomStream& rng) {
  switch (cls) {
    case SizeClass::kSmall:
      return add(rng.uniform(ranges_.small_lo, ranges_.small_hi));
    case SizeClass::kMedium:
      return add(rng.uniform(ranges_.medium_lo, ranges_.medium_hi));
    case SizeClass::kLarge:
      return add(rng.uniform(ranges_.large_lo, ranges_.large_hi));
  }
  throw std::invalid_argument("RepositoryCatalog: bad size class");
}

MegaBytes RepositoryCatalog::size_of(storage::ResourceId id) const {
  if (id == 0 || id > sizes_.size()) {
    throw std::out_of_range("RepositoryCatalog: unknown resource id");
  }
  return sizes_[id - 1];
}

MegaBytes RepositoryCatalog::total_mb() const noexcept {
  MegaBytes total = 0.0;
  for (const MegaBytes s : sizes_) total += s;
  return total;
}

SizeClass RepositoryCatalog::classify(MegaBytes size_mb) const noexcept {
  if (size_mb < ranges_.medium_lo) return SizeClass::kSmall;
  if (size_mb < ranges_.large_lo) return SizeClass::kMedium;
  return SizeClass::kLarge;
}

}  // namespace dlaja::workload
