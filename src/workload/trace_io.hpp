#pragma once
// Workload trace persistence: CSV round-trip for generated workloads so
// experiments can be replayed from files (public-trace style) and so the
// exact inputs behind a benchmark run can be archived with its results.

#include <iosfwd>
#include <string>
#include <vector>

#include "workflow/workflow.hpp"
#include "workload/generator.hpp"

namespace dlaja::workload {

/// Writes the workload as CSV with a header row:
/// job_id,key,resource,resource_mb,process_mb,fixed_cost_us,created_at_us
void write_trace(std::ostream& out, const GeneratedWorkload& workload);

/// Parses a trace produced by write_trace. Rebuilds a catalog from the
/// distinct (resource, size) pairs; throws std::runtime_error on malformed
/// input (missing header, short rows, non-numeric fields, or conflicting
/// sizes for the same resource id).
[[nodiscard]] GeneratedWorkload read_trace(std::istream& in, std::string name = "trace");

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_trace_file(const std::string& path, const GeneratedWorkload& workload);
[[nodiscard]] GeneratedWorkload load_trace_file(const std::string& path);

}  // namespace dlaja::workload
