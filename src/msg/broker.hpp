#pragma once
// Messaging substrate: a simulated broker offering topic broadcast
// (publish/subscribe) and point-to-point mailboxes.
//
// Models the dedicated messaging instance in the paper's 7-instance AWS
// deployment (Crossflow runs over ActiveMQ). Every delivery is an event on
// the simulator, delayed by the network model's sampled control-plane
// latency between sender and receiver.
//
// Built for fleet-scale fan-out: topics and mailboxes are interned to dense
// ids, each topic keeps a pre-resolved subscriber slab (generation-tagged
// slots, O(1) delivery resolution, no string hashing on the hot path), and a
// broadcast shares one refcounted immutable payload across all receivers
// instead of copying the `std::any` per subscriber. Optionally, same-tick
// deliveries to one node coalesce into a single kernel event (off by
// default: the per-message event schedule is part of the bit-reproducible
// run signature).

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dlaja::msg {

/// A refcounted immutable message payload. One broadcast wraps its value
/// exactly once; every receiver shares the same box (copying a Payload is a
/// shared_ptr bump, not a value copy). The receiver knows the concrete type
/// from the topic/mailbox contract and unwraps with `as<T>()`.
class Payload {
 public:
  Payload() = default;

  /// Implicit by design: `publish(topic, node, BidRequest{...})` keeps
  /// working exactly like the old `std::any` parameter did.
  template <typename T,
            typename = std::enable_if_t<!std::is_same_v<std::remove_cvref_t<T>, Payload> &&
                                        !std::is_same_v<std::remove_cvref_t<T>, std::any>>>
  Payload(T&& value)  // NOLINT(google-explicit-constructor)
      : box_(std::make_shared<const std::any>(std::in_place_type<std::remove_cvref_t<T>>,
                                              std::forward<T>(value))) {}

  /// Wraps an already-erased value (rare; tests mostly).
  explicit Payload(std::any value)
      : box_(std::make_shared<const std::any>(std::move(value))) {}

  [[nodiscard]] bool has_value() const noexcept { return box_ && box_->has_value(); }

  /// Runtime type of the stored value (typeid(void) when empty), for
  /// receivers that multiplex types over one mailbox.
  [[nodiscard]] const std::type_info& type() const noexcept {
    return box_ ? box_->type() : typeid(void);
  }

  /// The stored value; throws std::bad_any_cast on a type mismatch or an
  /// empty payload.
  template <typename T>
  [[nodiscard]] const T& as() const {
    if (!box_) throw std::bad_any_cast();
    return std::any_cast<const T&>(*box_);
  }

  /// Pointer to the stored value, or nullptr on mismatch/empty.
  template <typename T>
  [[nodiscard]] const T* try_as() const noexcept {
    return box_ ? std::any_cast<T>(box_.get()) : nullptr;
  }

 private:
  std::shared_ptr<const std::any> box_;
};

/// An in-flight message. All copies of one broadcast share the payload box.
struct Message {
  std::uint64_t id = 0;
  net::NodeId from = net::kInvalidNode;
  Tick sent_at = 0;
  Payload payload;
};

/// Handler invoked on delivery (at the receiver, in simulated time).
using Handler = std::function<void(const Message&)>;

/// Handle returned by subscribe(), usable to unsubscribe.
struct SubscriptionId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
};

/// Dense interned ids for topics and mailbox names. Resolve once at attach
/// time; publish/send by id skips all string hashing.
using TopicId = std::uint32_t;
using MailboxId = std::uint32_t;
inline constexpr std::uint32_t kInvalidInterned = 0xffffffffu;

/// Delivery counters for observability and the micro benchmarks.
struct BrokerStats {
  std::uint64_t published = 0;        ///< publish() calls
  std::uint64_t sent = 0;             ///< send() calls
  std::uint64_t enqueued = 0;         ///< message copies put in flight
  std::uint64_t delivered = 0;        ///< handler invocations
  std::uint64_t dropped = 0;          ///< sends to missing mailboxes / dead nodes
  std::uint64_t missed = 0;           ///< deliveries to since-retired subscriptions
  std::uint64_t fault_dropped = 0;    ///< deliveries lost to the fault policy
  std::uint64_t fault_duplicated = 0; ///< extra copies created by the fault policy
  std::uint64_t batches = 0;          ///< coalesced delivery events fired
  std::uint64_t batched = 0;          ///< messages that rode a coalesced event

  /// Conservation invariant at quiescence: every copy put in flight was
  /// either handled, dropped, or missed a retired subscription.
  [[nodiscard]] bool conserved() const noexcept {
    return enqueued == delivered + dropped + missed;
  }
};

/// Fault-injection hook consulted once per delivery: returns how many copies
/// of the message to put in flight (0 = drop, 1 = normal, 2 = duplicate).
using FaultPolicy = std::function<std::uint32_t(net::NodeId from, net::NodeId to)>;

/// Shard topology handed to Broker::enable_sharding. Index 0 is the control
/// shard (master + broker bookkeeping); 1..N are worker shards. Every
/// registered node is pinned to exactly one shard, and each shard gets its
/// own message-delay RNG substream so concurrent sends never touch the
/// per-node streams.
struct ShardLayout {
  std::vector<sim::Simulator*> sims;       ///< shard index -> its event queue
  std::vector<std::uint32_t> node_shard;   ///< NodeId -> shard index
  std::vector<std::uint64_t> delay_seeds;  ///< per-shard delay-stream seeds
};

/// The broker. Owned by the Engine; one per simulated cluster.
///
/// In sharded runs the broker is the synchronization boundary: each shard
/// delivers its own nodes' messages on its own simulator, and cross-shard
/// traffic is parked in per-(src,dst) outboxes that the engine drains at the
/// window barriers. All shard-crossing state (topic tables, mailbox tables,
/// down flags) is structurally frozen during a window — only handlers of
/// nodes owned by the running shard are invoked — so windows are race-free
/// by construction.
class Broker {
 public:
  Broker(sim::Simulator& simulator, net::NetworkModel& network)
      : sim_(simulator), net_(network) {
    shards_.emplace_back();
    shards_.front().sim = &simulator;
  }

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Interns a topic name (idempotent). Ids are dense and stable.
  TopicId topic(const std::string& name);

  /// Interns a mailbox name (idempotent).
  MailboxId mailbox(const std::string& name);

  /// Subscribes `node` to `topic`; `handler` runs for every later publish.
  SubscriptionId subscribe(TopicId topic, net::NodeId node, Handler handler);
  SubscriptionId subscribe(const std::string& topic, net::NodeId node, Handler handler);

  /// Removes a subscription. Returns false if unknown. Safe to call for
  /// another subscription from inside a delivery handler (the slab slot is
  /// retired in place; nothing shifts).
  bool unsubscribe(SubscriptionId id);

  /// Broadcasts `payload` on `topic`. Each current subscriber receives the
  /// shared payload after an independently sampled delay. Returns the number
  /// of subscribers the message was fanned out to.
  std::size_t publish(TopicId topic, net::NodeId from, Payload payload);
  std::size_t publish(const std::string& topic, net::NodeId from, Payload payload);

  /// Multicast: delivers `payload` only to `topic` subscribers living on the
  /// given nodes, in target order (the probe fan-out path — O(targets), not
  /// O(subscribers)). Returns the fan-out count.
  std::size_t publish_to(TopicId topic, net::NodeId from, Payload payload,
                         std::span<const net::NodeId> targets);

  /// Registers the point-to-point mailbox `name` at `node` (e.g. a worker's
  /// job queue). Overwrites any previous handler for (node, name).
  void register_mailbox(net::NodeId node, const std::string& name, Handler handler);

  /// Removes a mailbox; later sends to it count as dropped.
  void remove_mailbox(net::NodeId node, const std::string& name);

  /// Sends `payload` to mailbox `box`/`name` at `to`. Counts a drop if the
  /// mailbox does not exist *at delivery time*.
  void send(net::NodeId from, net::NodeId to, MailboxId box, Payload payload);
  void send(net::NodeId from, net::NodeId to, const std::string& name, Payload payload);

  /// Marks a node dead: its subscriptions/mailboxes stop receiving, and
  /// in-flight messages to it are dropped at delivery time. Used by the
  /// fault-injection tests.
  void set_node_down(net::NodeId node, bool down);

  /// Installs (or clears, with nullptr) the per-delivery fault policy. With
  /// no policy installed the broker behaves bit-identically to a fault-free
  /// build — the hook is never consulted. Single-shard form; sharded runs
  /// install one policy per shard with set_shard_fault_policy.
  void set_fault_policy(FaultPolicy policy) {
    shards_.front().fault_policy = std::move(policy);
  }

  /// Per-shard fault policy (sharded runs): consulted for deliveries whose
  /// *sender* lives on `shard`, from that shard's thread.
  void set_shard_fault_policy(std::size_t shard, FaultPolicy policy);

  // --- Sharded execution ------------------------------------------------

  /// Switches the broker to sharded operation. Must be called after all
  /// nodes are registered and before the first publish/send. Shard 0's sim
  /// must be the simulator the broker was constructed with.
  void enable_sharding(ShardLayout layout);

  [[nodiscard]] bool sharded() const noexcept { return !node_shard_.empty(); }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Builds per-shard interned-name tables on each shard's tracer so traced
  /// deliveries never intern (hash + mutate) from a shard thread. Call after
  /// attaching tracers to the shard simulators.
  void prepare_shard_tracing();

  /// Moves every parked cross-shard message onto its destination shard's
  /// event queue. Main thread only, at a window barrier (no shard running).
  /// Returns the number of messages drained.
  std::size_t drain_outboxes();

  [[nodiscard]] bool outboxes_empty() const noexcept;

  /// Same-tick delivery coalescing: consecutive deliveries to one node that
  /// land on the same tick share a single kernel event. Off by default —
  /// turning it on changes the kernel event counts (and thus the stats
  /// columns of a run's CSV), so it is reserved for scale runs that opt in.
  void set_coalescing(bool on) noexcept { coalesce_ = on; }
  [[nodiscard]] bool coalescing() const noexcept { return coalesce_; }

  [[nodiscard]] bool node_down(net::NodeId node) const;

  /// Delivery counters. Single-shard: the live counters. Sharded: the sum
  /// over all shards, refreshed on each call (main thread, barriers only).
  [[nodiscard]] const BrokerStats& stats() const noexcept;

  /// Messages currently in flight that shard `shard` accounts for: occupied
  /// slots in its delivery slab plus parcels parked in its cross-shard
  /// outbox rows (sent but not yet drained to the destination shard). Safe
  /// from the shard's own thread mid-window — both structures are written
  /// only by that shard between barriers — so the telemetry gauge reads it
  /// live; summed over all shards (barriers / single-shard) it completes the
  /// mid-run conservation identity
  ///   enqueued == delivered + dropped + missed + in_flight.
  [[nodiscard]] std::size_t in_flight_on(std::size_t shard) const noexcept;

  /// Sum of in_flight_on over all shards. Main thread at barriers only.
  [[nodiscard]] std::size_t in_flight_total() const noexcept;

 private:
  /// One subscriber slot in a topic's slab. `gen` bumps on unsubscribe so
  /// in-flight deliveries that captured {slot, gen} resolve to "gone".
  struct Subscriber {
    std::uint64_t id = 0;
    net::NodeId node = net::kInvalidNode;
    std::uint32_t gen = 0;
    Handler handler;
  };

  struct Topic {
    std::string name;
    std::vector<Subscriber> slots;
    std::vector<std::uint32_t> free_slots;
    /// Live slots in subscription order — publish iterates this, keeping the
    /// per-subscriber delay-sampling order identical to the historical
    /// vector-of-subscriptions implementation.
    std::vector<std::uint32_t> order;
    /// node -> live slots on that node (multicast index for publish_to).
    std::unordered_map<net::NodeId, std::vector<std::uint32_t>> by_node;
  };

  enum class Route : std::uint8_t { kSubscription, kMailbox };

  /// An in-flight message parked in the slab below until its delivery event
  /// fires. The scheduled action captures just {this, slot} — 16 bytes, the
  /// simulator's fixed small-copy tier. Routing is resolved at delivery time
  /// from the ids, not from a captured std::function.
  struct InFlight {
    net::NodeId to = net::kInvalidNode;
    Route route = Route::kSubscription;
    std::uint16_t trace_name = 0;  ///< interned topic/mailbox label (traced runs)
    std::uint32_t target = kInvalidInterned;  ///< TopicId or MailboxId
    std::uint32_t slot = 0;                   ///< subscriber slot (subscription route)
    std::uint32_t gen = 0;                    ///< subscriber generation at send time
    Message message;
  };

  /// A pending coalesced delivery event: every in-flight slot here lands on
  /// `to` at tick `at` under one kernel event.
  struct Batch {
    net::NodeId to = net::kInvalidNode;
    Tick at = 0;
    bool armed = false;
    std::vector<std::uint32_t> messages;
  };

  /// Per-shard delivery machinery. The single-shard broker is simply
  /// shards_[0] wired to the constructor's simulator — the hot path is the
  /// same code either way. Cache-line aligned so concurrently active shard
  /// states never false-share.
  struct alignas(64) ShardState {
    sim::Simulator* sim = nullptr;
    std::uint64_t id_tag = 0;        ///< shard tag ORed into message ids
    std::uint64_t next_message = 1;
    /// Sharded runs: the shard's own delay stream. Absent in single-shard
    /// mode, where delays keep drawing from the per-node streams.
    std::optional<RandomStream> delay_rng;
    FaultPolicy fault_policy;
    BrokerStats stats;
    std::vector<InFlight> inflight;            // slab of parked deliveries
    std::vector<std::uint32_t> inflight_free;  // recycled slab slots
    std::vector<Batch> batches;
    std::vector<std::uint32_t> batch_free;
  };

  /// A cross-shard message waiting for the next window barrier.
  struct Parcel {
    InFlight flight;
    Tick deliver_at = 0;
  };

  /// Pre-interned topic/mailbox labels per shard tracer (traced sharded
  /// runs only) — read-only during windows.
  struct ShardTraceNames {
    std::vector<std::uint16_t> topics;
    std::vector<std::uint16_t> boxes;
  };

  [[nodiscard]] std::uint32_t shard_of(net::NodeId node) const noexcept {
    return node_shard_.empty() ? 0 : node_shard_[node];
  }

  /// Applies the fault policy and schedules the copies. `trace_name` is only
  /// nonzero when tracing is active (sharded runs resolve it per destination
  /// shard instead).
  void deliver_later(net::NodeId from, net::NodeId to, std::uint16_t trace_name, Route route,
                     std::uint32_t target, std::uint32_t slot, std::uint32_t gen,
                     const Payload& payload);

  /// Parks one copy in `shard`'s in-flight slab and schedules (or batches)
  /// its delivery event at absolute tick `at` on that shard's simulator.
  void schedule_copy(std::uint32_t shard, InFlight flight, Tick at);

  /// Delivers one parked message now (frees the slot first: the handler may
  /// send again, reusing the slot or growing the slab).
  void deliver_now(std::uint32_t shard, std::uint32_t slot);

  /// Fires one coalesced batch: delivers every parked message in order.
  void fire_batch(std::uint32_t shard, std::uint32_t batch);

  [[nodiscard]] std::uint16_t intern_trace_name(const std::string& label);

  sim::Simulator& sim_;
  net::NetworkModel& net_;

  std::vector<Topic> topics_;
  std::unordered_map<std::string, TopicId> topic_ids_;
  /// subscription id -> (topic, slot, gen) for unsubscribe.
  struct SubRef {
    TopicId topic;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  std::unordered_map<std::uint64_t, SubRef> sub_index_;

  std::unordered_map<std::string, MailboxId> mailbox_ids_;
  std::vector<std::string> mailbox_names_;
  /// mailboxes_[node][mailbox] — empty Handler means "not registered".
  std::vector<std::vector<Handler>> mailboxes_;

  std::vector<std::uint8_t> down_;  // indexed by node; written at barriers only

  bool coalesce_ = false;
  /// node -> most recently armed batch in its shard (or kInvalidInterned).
  /// Only the latest batch per node accretes messages; an older same-tick
  /// batch that was superseded just fires with what it has. Each node is
  /// owned by one shard, so entries never contend across shards.
  std::vector<std::uint32_t> node_batch_;

  std::uint64_t next_subscription_ = 1;

  /// Shard states; exactly one entry (the constructor's simulator) until
  /// enable_sharding() is called.
  std::vector<ShardState> shards_;
  /// NodeId -> shard index; empty in single-shard mode.
  std::vector<std::uint32_t> node_shard_;
  /// Cross-shard outboxes, indexed [src * shard_count + dst]. Shard threads
  /// append to their own src rows; the main thread drains all rows at the
  /// window barriers.
  std::vector<std::vector<Parcel>> outboxes_;
  std::vector<ShardTraceNames> shard_trace_;
  /// Scratch for the sharded stats() aggregate.
  mutable BrokerStats agg_stats_;
};

}  // namespace dlaja::msg
