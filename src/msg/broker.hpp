#pragma once
// Messaging substrate: a simulated broker offering topic broadcast
// (publish/subscribe) and point-to-point mailboxes.
//
// Models the dedicated messaging instance in the paper's 7-instance AWS
// deployment (Crossflow runs over ActiveMQ). Every delivery is an event on
// the simulator, delayed by the network model's sampled control-plane
// latency between sender and receiver.

#include <any>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace dlaja::msg {

/// An in-flight message. `payload` carries an arbitrary typed value; the
/// receiver knows the concrete type from the topic/mailbox contract.
struct Message {
  std::uint64_t id = 0;
  net::NodeId from = net::kInvalidNode;
  Tick sent_at = 0;
  std::any payload;
};

/// Handler invoked on delivery (at the receiver, in simulated time).
using Handler = std::function<void(const Message&)>;

/// Handle returned by subscribe(), usable to unsubscribe.
struct SubscriptionId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
};

/// Delivery counters for observability and the micro benchmarks.
struct BrokerStats {
  std::uint64_t published = 0;        ///< publish() calls
  std::uint64_t sent = 0;             ///< send() calls
  std::uint64_t delivered = 0;        ///< handler invocations
  std::uint64_t dropped = 0;          ///< sends to missing mailboxes / dead nodes
  std::uint64_t fault_dropped = 0;    ///< deliveries lost to the fault policy
  std::uint64_t fault_duplicated = 0; ///< extra copies created by the fault policy
};

/// Fault-injection hook consulted once per delivery: returns how many copies
/// of the message to put in flight (0 = drop, 1 = normal, 2 = duplicate).
using FaultPolicy = std::function<std::uint32_t(net::NodeId from, net::NodeId to)>;

/// The broker. Owned by the Engine; one per simulated cluster.
class Broker {
 public:
  Broker(sim::Simulator& simulator, net::NetworkModel& network)
      : sim_(simulator), net_(network) {}

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Subscribes `node` to `topic`; `handler` runs for every later publish.
  SubscriptionId subscribe(const std::string& topic, net::NodeId node, Handler handler);

  /// Removes a subscription. Returns false if unknown.
  bool unsubscribe(SubscriptionId id);

  /// Broadcasts `payload` on `topic`. Each current subscriber receives its
  /// own copy after an independently sampled delay. Returns the number of
  /// subscribers the message was fanned out to.
  std::size_t publish(const std::string& topic, net::NodeId from, std::any payload);

  /// Registers the point-to-point mailbox `name` at `node` (e.g. a worker's
  /// job queue). Overwrites any previous handler for (node, name).
  void register_mailbox(net::NodeId node, const std::string& name, Handler handler);

  /// Removes a mailbox; later sends to it count as dropped.
  void remove_mailbox(net::NodeId node, const std::string& name);

  /// Sends `payload` to mailbox `name` at `to`. Returns false (and counts a
  /// drop) if the mailbox does not exist *at delivery time*.
  void send(net::NodeId from, net::NodeId to, const std::string& name, std::any payload);

  /// Marks a node dead: its subscriptions/mailboxes stop receiving, and
  /// in-flight messages to it are dropped at delivery time. Used by the
  /// fault-injection tests.
  void set_node_down(net::NodeId node, bool down);

  /// Installs (or clears, with nullptr) the per-delivery fault policy. With
  /// no policy installed the broker behaves bit-identically to a fault-free
  /// build — the hook is never consulted.
  void set_fault_policy(FaultPolicy policy) { fault_policy_ = std::move(policy); }

  [[nodiscard]] bool node_down(net::NodeId node) const;

  [[nodiscard]] const BrokerStats& stats() const noexcept { return stats_; }

 private:
  struct Subscription {
    std::uint64_t id;
    net::NodeId node;
    Handler handler;
  };

  /// An in-flight message parked in the slab below until its delivery event
  /// fires. Keeping the (wide) sink + payload here lets the scheduled action
  /// capture just `this` and a slot index, staying inside InlineAction's
  /// inline budget instead of spilling to the pooled fallback.
  struct InFlight {
    net::NodeId to = net::kInvalidNode;
    std::uint16_t trace_name = 0;  ///< interned topic/mailbox label (traced runs)
    std::function<void(Message&&)> sink;
    Message message;
  };

  /// `label` names the topic or mailbox for the delivery's trace span; it is
  /// only interned when tracing is active.
  void deliver_later(net::NodeId from, net::NodeId to, const std::string& label,
                     std::function<void(Message&&)> sink, std::any payload);

  sim::Simulator& sim_;
  net::NetworkModel& net_;
  std::unordered_map<std::string, std::vector<Subscription>> topics_;
  std::unordered_map<std::uint64_t, std::string> subscription_topics_;
  std::unordered_map<net::NodeId, std::unordered_map<std::string, Handler>> mailboxes_;
  std::unordered_map<net::NodeId, bool> down_;
  std::vector<InFlight> inflight_;            // slab of parked deliveries
  std::vector<std::uint32_t> inflight_free_;  // recycled slab slots
  std::uint64_t next_subscription_ = 1;
  std::uint64_t next_message_ = 1;
  BrokerStats stats_;
  FaultPolicy fault_policy_;
};

}  // namespace dlaja::msg
