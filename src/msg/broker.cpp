#include "msg/broker.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace dlaja::msg {

TopicId Broker::topic(const std::string& name) {
  const auto it = topic_ids_.find(name);
  if (it != topic_ids_.end()) return it->second;
  const auto id = static_cast<TopicId>(topics_.size());
  topics_.emplace_back();
  topics_.back().name = name;
  topic_ids_.emplace(name, id);
  return id;
}

MailboxId Broker::mailbox(const std::string& name) {
  const auto it = mailbox_ids_.find(name);
  if (it != mailbox_ids_.end()) return it->second;
  const auto id = static_cast<MailboxId>(mailbox_names_.size());
  mailbox_names_.push_back(name);
  mailbox_ids_.emplace(name, id);
  return id;
}

SubscriptionId Broker::subscribe(TopicId topic_id, net::NodeId node, Handler handler) {
  Topic& t = topics_.at(topic_id);
  const std::uint64_t id = next_subscription_++;
  std::uint32_t slot;
  if (!t.free_slots.empty()) {
    slot = t.free_slots.back();
    t.free_slots.pop_back();
    Subscriber& s = t.slots[slot];
    s.id = id;
    s.node = node;
    s.handler = std::move(handler);  // gen keeps the bump from unsubscribe
  } else {
    slot = static_cast<std::uint32_t>(t.slots.size());
    t.slots.push_back(Subscriber{id, node, 0, std::move(handler)});
  }
  t.order.push_back(slot);
  t.by_node[node].push_back(slot);
  sub_index_.emplace(id, SubRef{topic_id, slot, t.slots[slot].gen});
  return SubscriptionId{id};
}

SubscriptionId Broker::subscribe(const std::string& topic_name, net::NodeId node,
                                 Handler handler) {
  return subscribe(topic(topic_name), node, std::move(handler));
}

bool Broker::unsubscribe(SubscriptionId id) {
  const auto it = sub_index_.find(id.value);
  if (it == sub_index_.end()) return false;
  const SubRef ref = it->second;
  sub_index_.erase(it);
  Topic& t = topics_[ref.topic];
  Subscriber& s = t.slots[ref.slot];
  ++s.gen;  // in-flight deliveries that captured the old gen now miss
  s.id = 0;
  s.handler = nullptr;
  auto& order = t.order;
  order.erase(std::find(order.begin(), order.end(), ref.slot));
  auto& on_node = t.by_node[s.node];
  on_node.erase(std::find(on_node.begin(), on_node.end(), ref.slot));
  t.free_slots.push_back(ref.slot);
  return true;
}

std::uint16_t Broker::intern_trace_name(const std::string& label) {
  // Sharded runs resolve names from the pre-interned per-shard tables in
  // deliver_later — interning here would mutate a tracer from whichever
  // thread happens to be sending.
  if (sharded()) return 0;
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) return sim_.tracer()->intern(label);
  return 0;
}

void Broker::set_shard_fault_policy(std::size_t shard, FaultPolicy policy) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("Broker::set_shard_fault_policy: bad shard index");
  }
  shards_[shard].fault_policy = std::move(policy);
}

void Broker::enable_sharding(ShardLayout layout) {
  const std::size_t count = layout.sims.size();
  if (count < 2) {
    throw std::invalid_argument("Broker::enable_sharding: need at least 2 shards");
  }
  if (layout.sims.front() != &sim_) {
    throw std::invalid_argument(
        "Broker::enable_sharding: shard 0 must be the broker's own simulator");
  }
  if (layout.node_shard.size() != net_.node_count() || layout.delay_seeds.size() != count) {
    throw std::invalid_argument("Broker::enable_sharding: layout size mismatch");
  }
  for (const std::uint32_t s : layout.node_shard) {
    if (s >= count) throw std::invalid_argument("Broker::enable_sharding: bad node shard");
  }
  // Preserve whatever shard 0 already accumulated (normally nothing — the
  // engine enables sharding before the first message).
  ShardState control = std::move(shards_.front());
  shards_.clear();
  shards_.resize(count);
  shards_.front() = std::move(control);
  for (std::size_t s = 0; s < count; ++s) {
    shards_[s].sim = layout.sims[s];
    shards_[s].id_tag = static_cast<std::uint64_t>(s) << 48;
    shards_[s].delay_rng.emplace(layout.delay_seeds[s]);
  }
  node_shard_ = std::move(layout.node_shard);
  outboxes_.assign(count * count, {});
  // Pre-size node-indexed tables: growth during a window would race.
  node_batch_.assign(net_.node_count(), kInvalidInterned);
  if (down_.size() < net_.node_count()) down_.resize(net_.node_count(), 0);
}

void Broker::prepare_shard_tracing() {
  shard_trace_.assign(shards_.size(), ShardTraceNames{});
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardTraceNames& table = shard_trace_[s];
    table.topics.assign(topics_.size(), 0);
    table.boxes.assign(mailbox_names_.size(), 0);
    obs::Tracer* tracer = shards_[s].sim->tracer();
    if (!DLAJA_TRACE_ACTIVE(tracer)) continue;
    for (std::size_t i = 0; i < topics_.size(); ++i) {
      table.topics[i] = tracer->intern(topics_[i].name);
    }
    for (std::size_t i = 0; i < mailbox_names_.size(); ++i) {
      table.boxes[i] = tracer->intern(mailbox_names_[i]);
    }
  }
}

std::size_t Broker::drain_outboxes() {
  if (outboxes_.empty()) return 0;
  std::size_t drained = 0;
  const std::size_t count = shards_.size();
  for (std::size_t dst = 0; dst < count; ++dst) {
    for (std::size_t src = 0; src < count; ++src) {
      auto& box = outboxes_[src * count + dst];
      for (Parcel& parcel : box) {
        // The conservative lookahead guarantees the delivery tick lies
        // strictly beyond the window the message was sent in, so it is
        // never in the destination shard's past.
        assert(parcel.deliver_at >= shards_[dst].sim->now());
        schedule_copy(static_cast<std::uint32_t>(dst), std::move(parcel.flight),
                      parcel.deliver_at);
        ++drained;
      }
      box.clear();
    }
  }
  return drained;
}

bool Broker::outboxes_empty() const noexcept {
  for (const auto& box : outboxes_) {
    if (!box.empty()) return false;
  }
  return true;
}

std::size_t Broker::in_flight_on(std::size_t shard) const noexcept {
  const ShardState& st = shards_[shard];
  std::size_t count = st.inflight.size() - st.inflight_free.size();
  if (!outboxes_.empty()) {
    const std::size_t n = shards_.size();
    for (std::size_t dst = 0; dst < n; ++dst) {
      count += outboxes_[shard * n + dst].size();
    }
  }
  return count;
}

std::size_t Broker::in_flight_total() const noexcept {
  std::size_t count = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) count += in_flight_on(s);
  return count;
}

const BrokerStats& Broker::stats() const noexcept {
  if (shards_.size() == 1) return shards_.front().stats;
  agg_stats_ = BrokerStats{};
  for (const ShardState& s : shards_) {
    agg_stats_.published += s.stats.published;
    agg_stats_.sent += s.stats.sent;
    agg_stats_.enqueued += s.stats.enqueued;
    agg_stats_.delivered += s.stats.delivered;
    agg_stats_.dropped += s.stats.dropped;
    agg_stats_.missed += s.stats.missed;
    agg_stats_.fault_dropped += s.stats.fault_dropped;
    agg_stats_.fault_duplicated += s.stats.fault_duplicated;
    agg_stats_.batches += s.stats.batches;
    agg_stats_.batched += s.stats.batched;
  }
  return agg_stats_;
}

void Broker::deliver_later(net::NodeId from, net::NodeId to, std::uint16_t trace_name,
                           Route route, std::uint32_t target, std::uint32_t slot,
                           std::uint32_t gen, const Payload& payload) {
  const std::uint32_t src_shard = shard_of(from);
  ShardState& src = shards_[src_shard];
  // Fault policy (if any) decides the copy count per delivery: 0 drops the
  // message before it ever enters the in-flight slab, >1 duplicates it with
  // independently sampled delays. No policy installed = exactly one copy
  // through the original code path, bit-identical to a fault-free run.
  std::uint32_t copies = 1;
  if (src.fault_policy) {
    copies = src.fault_policy(from, to);
    if (copies == 0) {
      ++src.stats.fault_dropped;
      return;
    }
    if (copies > 1) src.stats.fault_duplicated += copies - 1;
  }

  const std::uint32_t dst_shard = shard_of(to);
  if (!shard_trace_.empty()) {
    const ShardTraceNames& table = shard_trace_[dst_shard];
    trace_name = route == Route::kSubscription
                     ? (target < table.topics.size() ? table.topics[target] : 0)
                     : (target < table.boxes.size() ? table.boxes[target] : 0);
  }

  for (std::uint32_t copy = 0; copy < copies; ++copy) {
    InFlight flight;
    flight.to = to;
    flight.route = route;
    flight.trace_name = trace_name;
    flight.target = target;
    flight.slot = slot;
    flight.gen = gen;
    flight.message.id = src.id_tag | src.next_message++;
    flight.message.from = from;
    flight.message.sent_at = src.sim->now();
    flight.message.payload = payload;  // shared box — a refcount bump
    const Tick delay = src.delay_rng
                           ? net_.sample_message_delay_with(*src.delay_rng, from, to)
                           : net_.sample_message_delay(from, to);
    ++src.stats.enqueued;
    const Tick at = src.sim->now() + delay;
    if (dst_shard == src_shard) {
      schedule_copy(dst_shard, std::move(flight), at);
    } else {
      // Cross-shard: park in this shard's outbox row; the engine drains it
      // into the destination shard at the next window barrier.
      outboxes_[src_shard * shards_.size() + dst_shard].push_back(
          Parcel{std::move(flight), at});
    }
  }
}

void Broker::schedule_copy(std::uint32_t shard, InFlight flight, Tick at) {
  ShardState& st = shards_[shard];
  const net::NodeId to = flight.to;
  std::uint32_t slot;
  if (!st.inflight_free.empty()) {
    slot = st.inflight_free.back();
    st.inflight_free.pop_back();
    st.inflight[slot] = std::move(flight);
  } else {
    slot = static_cast<std::uint32_t>(st.inflight.size());
    st.inflight.push_back(std::move(flight));
  }

  if (!coalesce_) {
    auto deliver = [this, shard, slot] { deliver_now(shard, slot); };
    static_assert(sim::InlineAction::fits_inline<decltype(deliver)>());
    st.sim->schedule_at(at, std::move(deliver));
    return;
  }

  // Coalescing: append to the node's armed batch when it lands on the same
  // tick; otherwise open a new batch with its own kernel event. Batches live
  // in the destination node's shard, as does the node_batch_ entry.
  if (to >= node_batch_.size()) node_batch_.resize(to + 1, kInvalidInterned);
  const std::uint32_t current = node_batch_[to];
  if (current != kInvalidInterned && st.batches[current].armed && st.batches[current].at == at) {
    st.batches[current].messages.push_back(slot);
    ++st.stats.batched;
    return;
  }
  std::uint32_t batch;
  if (!st.batch_free.empty()) {
    batch = st.batch_free.back();
    st.batch_free.pop_back();
  } else {
    batch = static_cast<std::uint32_t>(st.batches.size());
    st.batches.emplace_back();
  }
  Batch& b = st.batches[batch];
  b.to = to;
  b.at = at;
  b.armed = true;
  b.messages.push_back(slot);
  node_batch_[to] = batch;
  auto fire = [this, shard, batch] { fire_batch(shard, batch); };
  static_assert(sim::InlineAction::fits_inline<decltype(fire)>());
  st.sim->schedule_at(at, std::move(fire));
}

void Broker::fire_batch(std::uint32_t shard, std::uint32_t batch) {
  ShardState& st = shards_[shard];
  // Disarm before delivering: a handler that sends again with zero delay
  // must open a fresh batch instead of appending to the list being walked.
  st.batches[batch].armed = false;
  if (node_batch_[st.batches[batch].to] == batch) {
    node_batch_[st.batches[batch].to] = kInvalidInterned;
  }
  ++st.stats.batches;
  // Index-fresh access each step: deliveries may grow the batch slab.
  for (std::size_t i = 0; i < st.batches[batch].messages.size(); ++i) {
    deliver_now(shard, st.batches[batch].messages[i]);
  }
  st.batches[batch].messages.clear();
  st.batch_free.push_back(batch);
}

void Broker::deliver_now(std::uint32_t shard, std::uint32_t slot) {
  ShardState& st = shards_[shard];
  // Move out and free the slot before invoking: the handler may send again,
  // reusing the slot or growing the slab.
  InFlight flight = std::move(st.inflight[slot]);
  st.inflight_free.push_back(slot);
  sim::Simulator& sim = *st.sim;
  if (DLAJA_TRACE_ACTIVE(sim.tracer())) {
    // publish->deliver (or send->deliver) latency, one span per hop,
    // tracked by the receiving node.
    sim.tracer()->span(obs::Component::kMsg, flight.trace_name, flight.to,
                       flight.message.sent_at, sim.now(), flight.message.id);
  }
  if (node_down(flight.to)) {
    ++st.stats.dropped;
    return;
  }

  if (flight.route == Route::kSubscription) {
    Topic& t = topics_[flight.target];
    Subscriber& s = t.slots[flight.slot];
    // A subscriber that unsubscribed while the message was in flight must
    // not be invoked (and, matching the historical behavior, is not counted
    // as either delivered or dropped — `missed` tracks it for conservation).
    if (s.gen != flight.gen || !s.handler) {
      ++st.stats.missed;
      return;
    }
    ++st.stats.delivered;
    // Run the handler through a local: the call may unsubscribe this very
    // subscription (destroying the slot's handler mid-call otherwise) or
    // subscribe anew (growing the slot vector under our reference). Restore
    // it afterwards iff the slot is still the same live subscription.
    Handler live = std::move(s.handler);
    live(flight.message);
    Subscriber& after = topics_[flight.target].slots[flight.slot];
    if (after.gen == flight.gen && !after.handler) after.handler = std::move(live);
    return;
  }

  // Mailbox route: resolve at delivery time; missing counts as dropped.
  const std::uint32_t box = flight.target;
  if (flight.to >= mailboxes_.size() || box >= mailboxes_[flight.to].size() ||
      !mailboxes_[flight.to][box]) {
    ++st.stats.dropped;
    return;
  }
  ++st.stats.delivered;
  Handler live = std::move(mailboxes_[flight.to][box]);
  live(flight.message);
  if (flight.to < mailboxes_.size() && box < mailboxes_[flight.to].size() &&
      !mailboxes_[flight.to][box]) {
    mailboxes_[flight.to][box] = std::move(live);
  }
}

std::size_t Broker::publish(TopicId topic_id, net::NodeId from, Payload payload) {
  ++shards_[shard_of(from)].stats.published;
  if (topic_id >= topics_.size()) return 0;
  Topic& t = topics_[topic_id];
  const std::uint16_t trace_name = intern_trace_name(t.name);
  std::size_t fanout = 0;
  // Iterate by index: deliver_later never runs handlers synchronously, but
  // the order vector is the stable iteration contract regardless.
  for (std::size_t i = 0; i < t.order.size(); ++i) {
    const std::uint32_t slot = t.order[i];
    const Subscriber& s = t.slots[slot];
    if (node_down(s.node)) continue;
    deliver_later(from, s.node, trace_name, Route::kSubscription, topic_id, slot, s.gen,
                  payload);
    ++fanout;
  }
  return fanout;
}

std::size_t Broker::publish(const std::string& topic_name, net::NodeId from, Payload payload) {
  const auto it = topic_ids_.find(topic_name);
  if (it == topic_ids_.end()) {
    // A publish into the void still counts as published.
    ++shards_[shard_of(from)].stats.published;
    return 0;
  }
  return publish(it->second, from, std::move(payload));
}

std::size_t Broker::publish_to(TopicId topic_id, net::NodeId from, Payload payload,
                               std::span<const net::NodeId> targets) {
  ++shards_[shard_of(from)].stats.published;
  if (topic_id >= topics_.size()) return 0;
  Topic& t = topics_[topic_id];
  const std::uint16_t trace_name = intern_trace_name(t.name);
  std::size_t fanout = 0;
  for (const net::NodeId node : targets) {
    const auto it = t.by_node.find(node);
    if (it == t.by_node.end()) continue;
    if (node_down(node)) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      const std::uint32_t slot = it->second[i];
      deliver_later(from, node, trace_name, Route::kSubscription, topic_id, slot,
                    t.slots[slot].gen, payload);
      ++fanout;
    }
  }
  return fanout;
}

void Broker::register_mailbox(net::NodeId node, const std::string& name, Handler handler) {
  const MailboxId box = mailbox(name);
  if (node >= mailboxes_.size()) mailboxes_.resize(node + 1);
  if (box >= mailboxes_[node].size()) mailboxes_[node].resize(box + 1);
  mailboxes_[node][box] = std::move(handler);
}

void Broker::remove_mailbox(net::NodeId node, const std::string& name) {
  const auto it = mailbox_ids_.find(name);
  if (it == mailbox_ids_.end()) return;
  if (node < mailboxes_.size() && it->second < mailboxes_[node].size()) {
    mailboxes_[node][it->second] = nullptr;
  }
}

void Broker::send(net::NodeId from, net::NodeId to, MailboxId box, Payload payload) {
  ++shards_[shard_of(from)].stats.sent;
  const std::uint16_t trace_name =
      box < mailbox_names_.size() ? intern_trace_name(mailbox_names_[box]) : 0;
  deliver_later(from, to, trace_name, Route::kMailbox, box, 0, 0, payload);
}

void Broker::send(net::NodeId from, net::NodeId to, const std::string& name, Payload payload) {
  send(from, to, mailbox(name), std::move(payload));
}

void Broker::set_node_down(net::NodeId node, bool down) {
  if (node >= down_.size()) down_.resize(node + 1, 0);
  down_[node] = down ? 1 : 0;
}

bool Broker::node_down(net::NodeId node) const {
  return node < down_.size() && down_[node] != 0;
}

}  // namespace dlaja::msg
