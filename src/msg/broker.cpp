#include "msg/broker.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace dlaja::msg {

TopicId Broker::topic(const std::string& name) {
  const auto it = topic_ids_.find(name);
  if (it != topic_ids_.end()) return it->second;
  const auto id = static_cast<TopicId>(topics_.size());
  topics_.emplace_back();
  topics_.back().name = name;
  topic_ids_.emplace(name, id);
  return id;
}

MailboxId Broker::mailbox(const std::string& name) {
  const auto it = mailbox_ids_.find(name);
  if (it != mailbox_ids_.end()) return it->second;
  const auto id = static_cast<MailboxId>(mailbox_names_.size());
  mailbox_names_.push_back(name);
  mailbox_ids_.emplace(name, id);
  return id;
}

SubscriptionId Broker::subscribe(TopicId topic_id, net::NodeId node, Handler handler) {
  Topic& t = topics_.at(topic_id);
  const std::uint64_t id = next_subscription_++;
  std::uint32_t slot;
  if (!t.free_slots.empty()) {
    slot = t.free_slots.back();
    t.free_slots.pop_back();
    Subscriber& s = t.slots[slot];
    s.id = id;
    s.node = node;
    s.handler = std::move(handler);  // gen keeps the bump from unsubscribe
  } else {
    slot = static_cast<std::uint32_t>(t.slots.size());
    t.slots.push_back(Subscriber{id, node, 0, std::move(handler)});
  }
  t.order.push_back(slot);
  t.by_node[node].push_back(slot);
  sub_index_.emplace(id, SubRef{topic_id, slot, t.slots[slot].gen});
  return SubscriptionId{id};
}

SubscriptionId Broker::subscribe(const std::string& topic_name, net::NodeId node,
                                 Handler handler) {
  return subscribe(topic(topic_name), node, std::move(handler));
}

bool Broker::unsubscribe(SubscriptionId id) {
  const auto it = sub_index_.find(id.value);
  if (it == sub_index_.end()) return false;
  const SubRef ref = it->second;
  sub_index_.erase(it);
  Topic& t = topics_[ref.topic];
  Subscriber& s = t.slots[ref.slot];
  ++s.gen;  // in-flight deliveries that captured the old gen now miss
  s.id = 0;
  s.handler = nullptr;
  auto& order = t.order;
  order.erase(std::find(order.begin(), order.end(), ref.slot));
  auto& on_node = t.by_node[s.node];
  on_node.erase(std::find(on_node.begin(), on_node.end(), ref.slot));
  t.free_slots.push_back(ref.slot);
  return true;
}

std::uint16_t Broker::intern_trace_name(const std::string& label) {
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) return sim_.tracer()->intern(label);
  return 0;
}

void Broker::deliver_later(net::NodeId from, net::NodeId to, std::uint16_t trace_name,
                           Route route, std::uint32_t target, std::uint32_t slot,
                           std::uint32_t gen, const Payload& payload) {
  // Fault policy (if any) decides the copy count per delivery: 0 drops the
  // message before it ever enters the in-flight slab, >1 duplicates it with
  // independently sampled delays. No policy installed = exactly one copy
  // through the original code path, bit-identical to a fault-free run.
  std::uint32_t copies = 1;
  if (fault_policy_) {
    copies = fault_policy_(from, to);
    if (copies == 0) {
      ++stats_.fault_dropped;
      return;
    }
    if (copies > 1) stats_.fault_duplicated += copies - 1;
  }

  for (std::uint32_t copy = 0; copy < copies; ++copy) {
    InFlight flight;
    flight.to = to;
    flight.route = route;
    flight.trace_name = trace_name;
    flight.target = target;
    flight.slot = slot;
    flight.gen = gen;
    flight.message.id = next_message_++;
    flight.message.from = from;
    flight.message.sent_at = sim_.now();
    flight.message.payload = payload;  // shared box — a refcount bump
    const Tick delay = net_.sample_message_delay(from, to);
    schedule_copy(std::move(flight), delay);
  }
}

void Broker::schedule_copy(InFlight flight, Tick delay) {
  const net::NodeId to = flight.to;
  std::uint32_t slot;
  if (!inflight_free_.empty()) {
    slot = inflight_free_.back();
    inflight_free_.pop_back();
    inflight_[slot] = std::move(flight);
  } else {
    slot = static_cast<std::uint32_t>(inflight_.size());
    inflight_.push_back(std::move(flight));
  }

  if (!coalesce_) {
    auto deliver = [this, slot] { deliver_now(slot); };
    static_assert(sim::InlineAction::fits_inline<decltype(deliver)>());
    sim_.schedule_after(delay, std::move(deliver));
    return;
  }

  // Coalescing: append to the node's armed batch when it lands on the same
  // tick; otherwise open a new batch with its own kernel event.
  const Tick at = sim_.now() + delay;
  if (to >= node_batch_.size()) node_batch_.resize(to + 1, kInvalidInterned);
  const std::uint32_t current = node_batch_[to];
  if (current != kInvalidInterned && batches_[current].armed && batches_[current].at == at) {
    batches_[current].messages.push_back(slot);
    ++stats_.batched;
    return;
  }
  std::uint32_t batch;
  if (!batch_free_.empty()) {
    batch = batch_free_.back();
    batch_free_.pop_back();
  } else {
    batch = static_cast<std::uint32_t>(batches_.size());
    batches_.emplace_back();
  }
  Batch& b = batches_[batch];
  b.to = to;
  b.at = at;
  b.armed = true;
  b.messages.push_back(slot);
  node_batch_[to] = batch;
  auto fire = [this, batch] { fire_batch(batch); };
  static_assert(sim::InlineAction::fits_inline<decltype(fire)>());
  sim_.schedule_after(delay, std::move(fire));
}

void Broker::fire_batch(std::uint32_t batch) {
  // Disarm before delivering: a handler that sends again with zero delay
  // must open a fresh batch instead of appending to the list being walked.
  batches_[batch].armed = false;
  if (node_batch_[batches_[batch].to] == batch) {
    node_batch_[batches_[batch].to] = kInvalidInterned;
  }
  ++stats_.batches;
  // Index-fresh access each step: deliveries may grow batches_.
  for (std::size_t i = 0; i < batches_[batch].messages.size(); ++i) {
    deliver_now(batches_[batch].messages[i]);
  }
  batches_[batch].messages.clear();
  batch_free_.push_back(batch);
}

void Broker::deliver_now(std::uint32_t slot) {
  // Move out and free the slot before invoking: the handler may send again,
  // reusing the slot or growing the slab.
  InFlight flight = std::move(inflight_[slot]);
  inflight_free_.push_back(slot);
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    // publish->deliver (or send->deliver) latency, one span per hop,
    // tracked by the receiving node.
    sim_.tracer()->span(obs::Component::kMsg, flight.trace_name, flight.to,
                        flight.message.sent_at, sim_.now(), flight.message.id);
  }
  if (node_down(flight.to)) {
    ++stats_.dropped;
    return;
  }

  if (flight.route == Route::kSubscription) {
    Topic& t = topics_[flight.target];
    Subscriber& s = t.slots[flight.slot];
    // A subscriber that unsubscribed while the message was in flight must
    // not be invoked (and, matching the historical behavior, is not counted
    // as either delivered or dropped).
    if (s.gen != flight.gen || !s.handler) return;
    ++stats_.delivered;
    // Run the handler through a local: the call may unsubscribe this very
    // subscription (destroying the slot's handler mid-call otherwise) or
    // subscribe anew (growing the slot vector under our reference). Restore
    // it afterwards iff the slot is still the same live subscription.
    Handler live = std::move(s.handler);
    live(flight.message);
    Subscriber& after = topics_[flight.target].slots[flight.slot];
    if (after.gen == flight.gen && !after.handler) after.handler = std::move(live);
    return;
  }

  // Mailbox route: resolve at delivery time; missing counts as dropped.
  const std::uint32_t box = flight.target;
  if (flight.to >= mailboxes_.size() || box >= mailboxes_[flight.to].size() ||
      !mailboxes_[flight.to][box]) {
    ++stats_.dropped;
    return;
  }
  ++stats_.delivered;
  Handler live = std::move(mailboxes_[flight.to][box]);
  live(flight.message);
  if (flight.to < mailboxes_.size() && box < mailboxes_[flight.to].size() &&
      !mailboxes_[flight.to][box]) {
    mailboxes_[flight.to][box] = std::move(live);
  }
}

std::size_t Broker::publish(TopicId topic_id, net::NodeId from, Payload payload) {
  ++stats_.published;
  if (topic_id >= topics_.size()) return 0;
  Topic& t = topics_[topic_id];
  const std::uint16_t trace_name = intern_trace_name(t.name);
  std::size_t fanout = 0;
  // Iterate by index: deliver_later never runs handlers synchronously, but
  // the order vector is the stable iteration contract regardless.
  for (std::size_t i = 0; i < t.order.size(); ++i) {
    const std::uint32_t slot = t.order[i];
    const Subscriber& s = t.slots[slot];
    if (node_down(s.node)) continue;
    deliver_later(from, s.node, trace_name, Route::kSubscription, topic_id, slot, s.gen,
                  payload);
    ++fanout;
  }
  return fanout;
}

std::size_t Broker::publish(const std::string& topic_name, net::NodeId from, Payload payload) {
  const auto it = topic_ids_.find(topic_name);
  if (it == topic_ids_.end()) {
    ++stats_.published;  // a publish into the void still counts as published
    return 0;
  }
  return publish(it->second, from, std::move(payload));
}

std::size_t Broker::publish_to(TopicId topic_id, net::NodeId from, Payload payload,
                               std::span<const net::NodeId> targets) {
  ++stats_.published;
  if (topic_id >= topics_.size()) return 0;
  Topic& t = topics_[topic_id];
  const std::uint16_t trace_name = intern_trace_name(t.name);
  std::size_t fanout = 0;
  for (const net::NodeId node : targets) {
    const auto it = t.by_node.find(node);
    if (it == t.by_node.end()) continue;
    if (node_down(node)) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      const std::uint32_t slot = it->second[i];
      deliver_later(from, node, trace_name, Route::kSubscription, topic_id, slot,
                    t.slots[slot].gen, payload);
      ++fanout;
    }
  }
  return fanout;
}

void Broker::register_mailbox(net::NodeId node, const std::string& name, Handler handler) {
  const MailboxId box = mailbox(name);
  if (node >= mailboxes_.size()) mailboxes_.resize(node + 1);
  if (box >= mailboxes_[node].size()) mailboxes_[node].resize(box + 1);
  mailboxes_[node][box] = std::move(handler);
}

void Broker::remove_mailbox(net::NodeId node, const std::string& name) {
  const auto it = mailbox_ids_.find(name);
  if (it == mailbox_ids_.end()) return;
  if (node < mailboxes_.size() && it->second < mailboxes_[node].size()) {
    mailboxes_[node][it->second] = nullptr;
  }
}

void Broker::send(net::NodeId from, net::NodeId to, MailboxId box, Payload payload) {
  ++stats_.sent;
  const std::uint16_t trace_name =
      box < mailbox_names_.size() ? intern_trace_name(mailbox_names_[box]) : 0;
  deliver_later(from, to, trace_name, Route::kMailbox, box, 0, 0, payload);
}

void Broker::send(net::NodeId from, net::NodeId to, const std::string& name, Payload payload) {
  send(from, to, mailbox(name), std::move(payload));
}

void Broker::set_node_down(net::NodeId node, bool down) {
  if (node >= down_.size()) down_.resize(node + 1, 0);
  down_[node] = down ? 1 : 0;
}

bool Broker::node_down(net::NodeId node) const {
  return node < down_.size() && down_[node] != 0;
}

}  // namespace dlaja::msg
