#include "msg/broker.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace dlaja::msg {

SubscriptionId Broker::subscribe(const std::string& topic, net::NodeId node, Handler handler) {
  const std::uint64_t id = next_subscription_++;
  topics_[topic].push_back(Subscription{id, node, std::move(handler)});
  subscription_topics_.emplace(id, topic);
  return SubscriptionId{id};
}

bool Broker::unsubscribe(SubscriptionId id) {
  const auto topic_it = subscription_topics_.find(id.value);
  if (topic_it == subscription_topics_.end()) return false;
  auto& subs = topics_[topic_it->second];
  subs.erase(std::remove_if(subs.begin(), subs.end(),
                            [&](const Subscription& s) { return s.id == id.value; }),
             subs.end());
  subscription_topics_.erase(topic_it);
  return true;
}

void Broker::deliver_later(net::NodeId from, net::NodeId to, const std::string& label,
                           std::function<void(Message&&)> sink, std::any payload) {
  // Fault policy (if any) decides the copy count per delivery: 0 drops the
  // message before it ever enters the in-flight slab, >1 duplicates it with
  // independently sampled delays. No policy installed = exactly one copy
  // through the original code path, bit-identical to a fault-free run.
  std::uint32_t copies = 1;
  if (fault_policy_) {
    copies = fault_policy_(from, to);
    if (copies == 0) {
      ++stats_.fault_dropped;
      return;
    }
    if (copies > 1) stats_.fault_duplicated += copies - 1;
  }

  std::uint16_t trace_name = 0;
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    trace_name = sim_.tracer()->intern(label);
  }

  for (std::uint32_t copy = 0; copy < copies; ++copy) {
    const bool last = copy + 1 == copies;
    Message message;
    message.id = next_message_++;
    message.from = from;
    message.sent_at = sim_.now();
    message.payload = last ? std::move(payload) : payload;
    const Tick delay = net_.sample_message_delay(from, to);

    // Park the wide state (sink + payload) in the in-flight slab so the
    // scheduled action captures only {this, slot} — 16 bytes, the simulator's
    // fixed small-copy tier. Slots recycle through inflight_free_.
    std::uint32_t slot;
    InFlight flight{to, trace_name, last ? std::move(sink) : sink, std::move(message)};
    if (!inflight_free_.empty()) {
      slot = inflight_free_.back();
      inflight_free_.pop_back();
      inflight_[slot] = std::move(flight);
    } else {
      slot = static_cast<std::uint32_t>(inflight_.size());
      inflight_.push_back(std::move(flight));
    }

    auto deliver = [this, slot] {
      // Move out and free the slot before invoking: the sink may send again,
      // reusing the slot or growing the slab.
      InFlight in_flight = std::move(inflight_[slot]);
      inflight_free_.push_back(slot);
      if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
        // publish->deliver (or send->deliver) latency, one span per hop,
        // tracked by the receiving node.
        sim_.tracer()->span(obs::Component::kMsg, in_flight.trace_name, in_flight.to,
                            in_flight.message.sent_at, sim_.now(), in_flight.message.id);
      }
      if (node_down(in_flight.to)) {
        ++stats_.dropped;
        return;
      }
      // `delivered` is counted by the sink iff a live handler was invoked.
      in_flight.sink(std::move(in_flight.message));
    };
    static_assert(sim::InlineAction::fits_inline<decltype(deliver)>());
    sim_.schedule_after(delay, std::move(deliver));
  }
}

std::size_t Broker::publish(const std::string& topic, net::NodeId from, std::any payload) {
  ++stats_.published;
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return 0;
  std::size_t fanout = 0;
  for (const Subscription& sub : it->second) {
    if (node_down(sub.node)) continue;
    const std::uint64_t sub_id = sub.id;
    const std::string topic_name = topic;
    // Capture the subscription id, not the handler: a subscriber that
    // unsubscribes while a message is in flight must not be invoked.
    deliver_later(
        from, sub.node, topic,
        [this, topic_name, sub_id](Message&& message) {
          const auto topic_it = topics_.find(topic_name);
          if (topic_it == topics_.end()) return;
          for (const Subscription& live : topic_it->second) {
            if (live.id == sub_id) {
              ++stats_.delivered;
              live.handler(message);
              return;
            }
          }
        },
        payload);
    ++fanout;
  }
  return fanout;
}

void Broker::register_mailbox(net::NodeId node, const std::string& name, Handler handler) {
  mailboxes_[node][name] = std::move(handler);
}

void Broker::remove_mailbox(net::NodeId node, const std::string& name) {
  const auto it = mailboxes_.find(node);
  if (it != mailboxes_.end()) it->second.erase(name);
}

void Broker::send(net::NodeId from, net::NodeId to, const std::string& name,
                  std::any payload) {
  ++stats_.sent;
  deliver_later(
      from, to, name,
      [this, to, name](Message&& message) {
        const auto node_it = mailboxes_.find(to);
        if (node_it == mailboxes_.end()) {
          ++stats_.dropped;
          return;
        }
        const auto box_it = node_it->second.find(name);
        if (box_it == node_it->second.end()) {
          ++stats_.dropped;
          return;
        }
        ++stats_.delivered;
        box_it->second(message);
      },
      std::move(payload));
}

void Broker::set_node_down(net::NodeId node, bool down) { down_[node] = down; }

bool Broker::node_down(net::NodeId node) const {
  const auto it = down_.find(node);
  return it != down_.end() && it->second;
}

}  // namespace dlaja::msg
