#pragma once
// The MSR (mining software repositories) application model — the paper's
// motivating pipeline (Fig. 1) and the workload behind Tables 1-3.
//
// A stream of NPM libraries enters the pipeline. For each library the
// RepositorySearcher queries a (synthetic) GitHub for large favoured
// repositories whose package.json depends on it, producing one
// (library, repository) job per match. The RepositoryAnalyzer clones the
// repository (data-intensive: this is where locality matters) and scans it;
// the terminal aggregation stage counts library co-occurrences.
//
// GitHub, the repositories and the dependency structure are synthetic but
// deterministic per seed: repository sizes follow a bounded-Pareto
// distribution over the paper's "large-scale" range (>500 MB), and
// library popularity is skewed so some libraries match many repositories.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/config.hpp"
#include "util/rng.hpp"
#include "workflow/workflow.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"

namespace dlaja::msr {

struct MsrConfig {
  /// Libraries streamed into the pipeline (paper: popular NPM packages).
  std::size_t library_count = 30;

  /// Large-scale repositories in the synthetic GitHub.
  std::size_t repository_count = 90;

  /// Repository sizes: bounded Pareto [min, max] MB with shape alpha.
  /// Defaults give a mean around 1.5-2 GB, matching the per-clone volumes
  /// implied by Tables 2 and 3 (~2.2 GB per miss).
  MegaBytes repo_min_mb = 500.0;
  MegaBytes repo_max_mb = 8192.0;
  double repo_pareto_alpha = 1.05;

  /// Base probability that a repository depends on a given library;
  /// scaled by the library's popularity (Zipf-like, so the top libraries
  /// match many repositories — those are the locality opportunities).
  double match_probability = 0.15;

  /// Fixed costs: the GitHub search API call per library, and the per-job
  /// overhead of an analysis (process spawn, result upload).
  double search_s = 2.0;
  double analyze_fixed_s = 1.0;

  /// Mean inter-arrival of libraries at the pipeline entry.
  double library_arrival_mean_s = 10.0;
};

/// Counts co-occurrences of libraries across repositories — the pipeline's
/// business result (step 4 of the §2 protocol). Fed by the aggregator
/// task's expander as analyses complete.
class CoOccurrenceCounter {
 public:
  /// Records that `library` was found in `repository`.
  void record(std::uint32_t library, storage::ResourceId repository);

  /// Number of repositories in which both libraries were found.
  [[nodiscard]] std::uint64_t co_occurrences(std::uint32_t a, std::uint32_t b) const;

  /// Total (library, repository) hits recorded.
  [[nodiscard]] std::uint64_t total_hits() const noexcept { return hits_; }

  /// The co-occurrence matrix as (libA, libB) -> count, libA < libB.
  [[nodiscard]] std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> matrix() const;

  /// Step 4 of the §2 protocol: "Calculate the number of times libraries
  /// appear together and store the results in a CSV file". One row per
  /// co-occurring pair: library_a,library_b,co_occurrences (descending).
  void write_csv(std::ostream& out) const;

 private:
  std::map<storage::ResourceId, std::vector<std::uint32_t>> repo_libraries_;
  std::uint64_t hits_ = 0;
};

/// A fully built MSR pipeline, ready to hand to an Engine.
struct MsrPipeline {
  std::shared_ptr<workflow::Workflow> workflow;
  workflow::TaskId searcher = 0;
  workflow::TaskId analyzer = 0;
  workflow::TaskId aggregator = 0;

  /// One searcher job per library, with arrival times — the input stream.
  std::vector<workflow::Job> seed_jobs;

  /// The synthetic GitHub's repositories.
  workload::RepositoryCatalog catalog;

  /// Precomputed dependency structure: matches[lib] = repos containing it.
  std::vector<std::vector<storage::ResourceId>> matches;

  /// Business results accumulator (shared with the workflow's expanders).
  std::shared_ptr<CoOccurrenceCounter> results;

  /// Total analyzer jobs this pipeline will generate.
  [[nodiscard]] std::size_t analyzer_job_count() const;
};

/// Builds the pipeline deterministically from the config and seeds.
[[nodiscard]] MsrPipeline build_msr_pipeline(const MsrConfig& config,
                                             const SeedSequencer& seeds);

/// The AWS-like fleet used by the §6.4 experiments: five t3.micro-class
/// workers with mildly heterogeneous bandwidth/rw speeds.
[[nodiscard]] std::vector<cluster::WorkerConfig> make_msr_fleet(std::size_t worker_count = 5);

/// Flattens the pipeline's *analyzer* jobs into a standalone workload
/// (arrival = the library's arrival plus the search latency), so the MSR
/// job mix can be replayed through the generic experiment/trace tooling
/// without running the searcher stage. Job ids are 1..N in arrival order.
[[nodiscard]] workload::GeneratedWorkload flatten_to_workload(const MsrPipeline& pipeline,
                                                              const MsrConfig& config);

}  // namespace dlaja::msr
