#include "msr/msr.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/csv.hpp"

namespace dlaja::msr {

void CoOccurrenceCounter::record(std::uint32_t library, storage::ResourceId repository) {
  auto& libs = repo_libraries_[repository];
  if (std::find(libs.begin(), libs.end(), library) == libs.end()) {
    libs.push_back(library);
  }
  ++hits_;
}

std::uint64_t CoOccurrenceCounter::co_occurrences(std::uint32_t a, std::uint32_t b) const {
  std::uint64_t count = 0;
  for (const auto& [repo, libs] : repo_libraries_) {
    const bool has_a = std::find(libs.begin(), libs.end(), a) != libs.end();
    const bool has_b = std::find(libs.begin(), libs.end(), b) != libs.end();
    if (has_a && has_b) ++count;
  }
  return count;
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
CoOccurrenceCounter::matrix() const {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> result;
  for (const auto& [repo, libs] : repo_libraries_) {
    for (std::size_t i = 0; i < libs.size(); ++i) {
      for (std::size_t j = i + 1; j < libs.size(); ++j) {
        const auto a = std::min(libs[i], libs[j]);
        const auto b = std::max(libs[i], libs[j]);
        ++result[{a, b}];
      }
    }
  }
  return result;
}

void CoOccurrenceCounter::write_csv(std::ostream& out) const {
  using Entry = std::pair<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>;
  std::vector<Entry> entries;
  for (const auto& entry : matrix()) entries.push_back(entry);
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  CsvWriter csv(out);
  csv.write("library_a", "library_b", "co_occurrences");
  for (const Entry& entry : entries) {
    csv.write(static_cast<std::uint64_t>(entry.first.first),
              static_cast<std::uint64_t>(entry.first.second), entry.second);
  }
}

std::size_t MsrPipeline::analyzer_job_count() const {
  std::size_t total = 0;
  for (const auto& repos : matches) total += repos.size();
  return total;
}

MsrPipeline build_msr_pipeline(const MsrConfig& config, const SeedSequencer& seeds) {
  MsrPipeline pipeline;
  pipeline.results = std::make_shared<CoOccurrenceCounter>();

  // --- Synthetic GitHub -------------------------------------------------
  RandomStream repo_rng = seeds.stream("msr/repos");
  for (std::size_t r = 0; r < config.repository_count; ++r) {
    pipeline.catalog.add(repo_rng.bounded_pareto(config.repo_min_mb, config.repo_max_mb,
                                                 config.repo_pareto_alpha));
  }

  // Dependency structure: library popularity is Zipf-like, so library 0
  // matches ~3x the base rate and the tail matches rarely.
  RandomStream match_rng = seeds.stream("msr/matches");
  pipeline.matches.resize(config.library_count);
  for (std::uint32_t lib = 0; lib < config.library_count; ++lib) {
    const double popularity = 3.0 / (1.0 + std::log1p(static_cast<double>(lib)));
    const double p = std::min(0.9, config.match_probability * popularity);
    for (std::size_t r = 0; r < config.repository_count; ++r) {
      if (match_rng.bernoulli(p)) {
        pipeline.matches[lib].push_back(static_cast<storage::ResourceId>(r + 1));
      }
    }
  }

  // --- Workflow graph (Fig. 1) ------------------------------------------
  auto wf = std::make_shared<workflow::Workflow>();

  // Captured by the expanders below; the workflow may outlive `pipeline`'s
  // stack frame, so copy what is needed.
  const auto matches = pipeline.matches;
  // RepositoryCatalog is cheap to copy (vector of doubles).
  const auto catalog = pipeline.catalog;
  const auto results = pipeline.results;
  const Tick analyze_fixed = ticks_from_seconds(config.analyze_fixed_s);

  workflow::TaskSpec searcher;
  searcher.name = "RepositorySearcher";
  searcher.data_intensive = false;

  workflow::TaskSpec analyzer;
  analyzer.name = "RepositoryAnalyzer";
  analyzer.data_intensive = true;

  workflow::TaskSpec aggregator;
  aggregator.name = "CoOccurrenceAggregator";
  aggregator.data_intensive = false;

  pipeline.searcher = wf->add_task(std::move(searcher));
  pipeline.analyzer = wf->add_task(std::move(analyzer));
  pipeline.aggregator = wf->add_task(std::move(aggregator));
  wf->connect(pipeline.searcher, pipeline.analyzer);
  wf->connect(pipeline.analyzer, pipeline.aggregator);

  // Searcher expander: one analyzer job per matching repository. The
  // library index travels in the job key ("lib:<n>").
  const workflow::TaskId analyzer_id = pipeline.analyzer;
  wf->set_expander(
      pipeline.searcher,
      [matches, catalog, analyzer_id, analyze_fixed](const workflow::Job& done,
                                                     RandomStream&) {
        const auto lib = static_cast<std::uint32_t>(std::stoul(done.key.substr(4)));
        std::vector<workflow::Job> out;
        for (const storage::ResourceId repo : matches.at(lib)) {
          workflow::Job job;
          job.task = analyzer_id;
          job.resource = repo;
          job.resource_size_mb = catalog.size_of(repo);
          job.process_mb = job.resource_size_mb;  // scan the full clone
          job.fixed_cost = analyze_fixed;
          job.key = done.key + "@repo:" + std::to_string(repo);
          out.push_back(std::move(job));
        }
        return out;
      });

  // Analyzer expander: record the hit and emit one (cheap) aggregation job.
  const workflow::TaskId aggregator_id = pipeline.aggregator;
  wf->set_expander(
      pipeline.analyzer,
      [results, aggregator_id](const workflow::Job& done, RandomStream&) {
        const auto at = done.key.find("lib:");
        const auto end = done.key.find('@');
        if (at != std::string::npos && end != std::string::npos && results) {
          const auto lib = static_cast<std::uint32_t>(
              std::stoul(done.key.substr(at + 4, end - at - 4)));
          results->record(lib, done.resource);
        }
        workflow::Job job;
        job.task = aggregator_id;
        job.fixed_cost = ticks_from_millis(50.0);
        job.key = done.key + "#agg";
        return std::vector<workflow::Job>{job};
      });

  pipeline.workflow = std::move(wf);

  // --- Input stream: one searcher job per library -----------------------
  RandomStream arrival_rng = seeds.stream("msr/arrivals");
  Tick arrival = 0;
  for (std::uint32_t lib = 0; lib < config.library_count; ++lib) {
    workflow::Job job;
    job.id = lib + 1;
    job.task = pipeline.searcher;
    job.fixed_cost = ticks_from_seconds(config.search_s);
    job.created_at = arrival;
    job.key = "lib:" + std::to_string(lib);
    pipeline.seed_jobs.push_back(std::move(job));
    arrival += ticks_from_seconds(arrival_rng.exponential(config.library_arrival_mean_s));
  }
  return pipeline;
}

workload::GeneratedWorkload flatten_to_workload(const MsrPipeline& pipeline,
                                                const MsrConfig& config) {
  workload::GeneratedWorkload result;
  result.name = "msr-analyzers";
  // Rebuild a catalog with the same ids/sizes (catalog ids are dense).
  for (storage::ResourceId id = 1; id <= pipeline.catalog.count(); ++id) {
    result.catalog.add(pipeline.catalog.size_of(id));
  }

  struct Pending {
    Tick arrival;
    std::uint32_t lib;
    storage::ResourceId repo;
  };
  std::vector<Pending> pending;
  for (const workflow::Job& seed : pipeline.seed_jobs) {
    const auto lib = static_cast<std::uint32_t>(std::stoul(seed.key.substr(4)));
    const Tick arrival = seed.created_at + ticks_from_seconds(config.search_s);
    for (const storage::ResourceId repo : pipeline.matches.at(lib)) {
      pending.push_back(Pending{arrival, lib, repo});
    }
  }
  std::sort(pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.lib != b.lib) return a.lib < b.lib;
    return a.repo < b.repo;
  });

  workflow::JobId next_id = 1;
  for (const Pending& p : pending) {
    workflow::Job job;
    job.id = next_id++;
    job.task = pipeline.analyzer;
    job.resource = p.repo;
    job.resource_size_mb = result.catalog.size_of(p.repo);
    job.process_mb = job.resource_size_mb;
    job.fixed_cost = ticks_from_seconds(config.analyze_fixed_s);
    job.created_at = p.arrival;
    job.key = "lib:" + std::to_string(p.lib) + "@repo:" + std::to_string(p.repo);
    result.jobs.push_back(std::move(job));
  }
  return result;
}

std::vector<cluster::WorkerConfig> make_msr_fleet(std::size_t worker_count) {
  std::vector<cluster::WorkerConfig> fleet;
  fleet.reserve(worker_count);
  // t3.micro-class nodes in different regions: mildly heterogeneous
  // bandwidth and disk speeds (deterministic pattern).
  constexpr MbPerSec kNet[] = {55.0, 40.0, 48.0, 34.0, 60.0};
  constexpr MbPerSec kRw[] = {110.0, 85.0, 95.0, 70.0, 120.0};
  for (std::size_t i = 0; i < worker_count; ++i) {
    cluster::WorkerConfig w;
    w.name = "msr-worker-" + std::to_string(i);
    w.network_mbps = kNet[i % std::size(kNet)];
    w.rw_mbps = kRw[i % std::size(kRw)];
    w.latency_ms = 8.0 + 4.0 * static_cast<double>(i % 3);
    w.latency_jitter_ms = 4.0;
    fleet.push_back(std::move(w));
  }
  return fleet;
}

}  // namespace dlaja::msr
