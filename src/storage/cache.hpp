#pragma once
// Worker-local resource storage.
//
// In the paper, a worker that has already cloned a repository keeps it on
// its local filesystem and bids (or accepts) accordingly; a job whose
// resource is absent causes a *cache miss* — one of the paper's three
// metrics — and the resource's size is added to the *data load* metric.
//
// The cache supports unbounded storage (the paper's setting: clones are
// kept for later use) as well as LRU/FIFO eviction under a capacity, used
// by the capacity-pressure extension experiments.

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace dlaja::storage {

/// Identifier of a cacheable resource (e.g. a Git repository).
using ResourceId = std::uint64_t;

/// A cacheable resource and its size.
struct Resource {
  ResourceId id = 0;
  MegaBytes size_mb = 0.0;
  friend bool operator==(const Resource&, const Resource&) = default;
};

/// Eviction behaviour when a capacity is configured.
enum class EvictionPolicy {
  kUnbounded,  ///< never evict (capacity ignored)
  kLru,        ///< evict least-recently-used first
  kFifo,       ///< evict oldest-admitted first
};

/// Cache configuration.
struct CacheConfig {
  EvictionPolicy policy = EvictionPolicy::kUnbounded;
  /// Capacity in MB; only meaningful for kLru / kFifo.
  MegaBytes capacity_mb = 0.0;
};

/// Hit/miss/eviction counters.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  MegaBytes admitted_mb = 0.0;
  MegaBytes evicted_mb = 0.0;
};

/// A single worker's resource cache.
class ResourceCache {
 public:
  explicit ResourceCache(CacheConfig config = {});

  /// True if the resource is currently resident. Does not touch LRU order
  /// and does not count as a hit/miss (pure query, used when estimating
  /// bids — estimating must not perturb metrics).
  [[nodiscard]] bool contains(ResourceId id) const noexcept;

  /// Records an access: counts a hit (touching LRU order) or a miss.
  /// Returns true on hit.
  bool access(ResourceId id);

  /// Admits a resource after a miss, evicting per policy if over capacity.
  /// Admitting a resident resource only refreshes its recency.
  void admit(const Resource& resource);

  /// Removes a resource explicitly; returns true if it was resident.
  bool evict(ResourceId id);

  /// Drops all contents (stats retained).
  void clear();

  /// Sum of resident resource sizes. Internally accounted in whole bytes,
  /// so admit/evict churn can never drift the total away from the true sum
  /// (repeated double add/subtract of unequal sizes accumulates error and
  /// could leave a phantom residue that triggers spurious evictions).
  [[nodiscard]] MegaBytes used_mb() const noexcept {
    return static_cast<double>(used_bytes_) / 1048576.0;
  }

  /// Number of resident resources.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Zeroes the counters (e.g. between experiment iterations).
  void reset_stats() noexcept { stats_ = {}; }

  /// Resident resources in recency order (most recent first, LRU;
  /// admission order for FIFO/unbounded).
  [[nodiscard]] std::vector<Resource> snapshot() const;

  /// Replaces contents with `resources` (used to carry caches across
  /// iterations of an experiment). Stats are untouched. The capacity is
  /// enforced after the restore: carrying a snapshot into a smaller cache
  /// must not leave it silently over budget.
  void restore(std::span<const Resource> resources);

 private:
  void enforce_capacity();

  /// Exact size in whole bytes (accounting currency; see used_mb()).
  [[nodiscard]] static std::uint64_t bytes_of(MegaBytes mb) noexcept;

  CacheConfig config_;
  CacheStats stats_;
  std::uint64_t used_bytes_ = 0;
  // Recency list: front = most recently used / most recently admitted.
  std::list<Resource> order_;
  std::unordered_map<ResourceId, std::list<Resource>::iterator> entries_;
};

}  // namespace dlaja::storage
