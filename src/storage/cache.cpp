#include "storage/cache.hpp"

#include <cassert>

namespace dlaja::storage {

ResourceCache::ResourceCache(CacheConfig config) : config_(config) {}

bool ResourceCache::contains(ResourceId id) const noexcept {
  return entries_.find(id) != entries_.end();
}

bool ResourceCache::access(ResourceId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (config_.policy == EvictionPolicy::kLru) {
    order_.splice(order_.begin(), order_, it->second);
  }
  return true;
}

void ResourceCache::admit(const Resource& resource) {
  const auto it = entries_.find(resource.id);
  if (it != entries_.end()) {
    if (config_.policy == EvictionPolicy::kLru) {
      order_.splice(order_.begin(), order_, it->second);
    }
    return;
  }
  order_.push_front(resource);
  entries_.emplace(resource.id, order_.begin());
  used_mb_ += resource.size_mb;
  stats_.admitted_mb += resource.size_mb;
  enforce_capacity();
}

void ResourceCache::enforce_capacity() {
  if (config_.policy == EvictionPolicy::kUnbounded) return;
  // Evict from the back (least recent / oldest) until under capacity, but
  // never evict the just-admitted front entry even if it alone exceeds the
  // capacity — a clone in use cannot be deleted out from under its job.
  while (used_mb_ > config_.capacity_mb && order_.size() > 1) {
    const Resource victim = order_.back();
    order_.pop_back();
    entries_.erase(victim.id);
    used_mb_ -= victim.size_mb;
    ++stats_.evictions;
    stats_.evicted_mb += victim.size_mb;
  }
}

bool ResourceCache::evict(ResourceId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  const Resource victim = *it->second;
  order_.erase(it->second);
  entries_.erase(it);
  used_mb_ -= victim.size_mb;
  ++stats_.evictions;
  stats_.evicted_mb += victim.size_mb;
  return true;
}

void ResourceCache::clear() {
  order_.clear();
  entries_.clear();
  used_mb_ = 0.0;
}

std::vector<Resource> ResourceCache::snapshot() const {
  return std::vector<Resource>(order_.begin(), order_.end());
}

void ResourceCache::restore(std::span<const Resource> resources) {
  clear();
  // Iterate in reverse so the first element of `resources` ends up at the
  // front (most recent), matching what snapshot() produced.
  for (auto it = resources.rbegin(); it != resources.rend(); ++it) {
    order_.push_front(*it);
    entries_.emplace(it->id, order_.begin());
    used_mb_ += it->size_mb;
  }
  assert(entries_.size() == order_.size());
}

}  // namespace dlaja::storage
