#include "storage/cache.hpp"

#include <cassert>
#include <cmath>

namespace dlaja::storage {

ResourceCache::ResourceCache(CacheConfig config) : config_(config) {}

std::uint64_t ResourceCache::bytes_of(MegaBytes mb) noexcept {
  if (!(mb > 0.0)) return 0;  // negative / NaN sizes account as empty
  return static_cast<std::uint64_t>(std::llround(mb * 1048576.0));
}

bool ResourceCache::contains(ResourceId id) const noexcept {
  return entries_.find(id) != entries_.end();
}

bool ResourceCache::access(ResourceId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (config_.policy == EvictionPolicy::kLru) {
    order_.splice(order_.begin(), order_, it->second);
  }
  return true;
}

void ResourceCache::admit(const Resource& resource) {
  const auto it = entries_.find(resource.id);
  if (it != entries_.end()) {
    if (config_.policy == EvictionPolicy::kLru) {
      order_.splice(order_.begin(), order_, it->second);
    }
    return;
  }
  order_.push_front(resource);
  entries_.emplace(resource.id, order_.begin());
  used_bytes_ += bytes_of(resource.size_mb);
  stats_.admitted_mb += resource.size_mb;
  enforce_capacity();
}

void ResourceCache::enforce_capacity() {
  if (config_.policy == EvictionPolicy::kUnbounded) return;
  const std::uint64_t capacity = bytes_of(config_.capacity_mb);
  // Evict from the back (least recent / oldest) until under capacity, but
  // never evict the front entry even if it alone exceeds the capacity — a
  // clone in use cannot be deleted out from under its job.
  while (used_bytes_ > capacity && order_.size() > 1) {
    const Resource victim = order_.back();
    order_.pop_back();
    entries_.erase(victim.id);
    const std::uint64_t bytes = bytes_of(victim.size_mb);
    used_bytes_ = used_bytes_ >= bytes ? used_bytes_ - bytes : 0;
    ++stats_.evictions;
    stats_.evicted_mb += victim.size_mb;
  }
}

bool ResourceCache::evict(ResourceId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  const Resource victim = *it->second;
  order_.erase(it->second);
  entries_.erase(it);
  const std::uint64_t bytes = bytes_of(victim.size_mb);
  used_bytes_ = used_bytes_ >= bytes ? used_bytes_ - bytes : 0;
  ++stats_.evictions;
  stats_.evicted_mb += victim.size_mb;
  return true;
}

void ResourceCache::clear() {
  order_.clear();
  entries_.clear();
  used_bytes_ = 0;
}

std::vector<Resource> ResourceCache::snapshot() const {
  return std::vector<Resource>(order_.begin(), order_.end());
}

void ResourceCache::restore(std::span<const Resource> resources) {
  clear();
  // Iterate in reverse so the first element of `resources` ends up at the
  // front (most recent), matching what snapshot() produced. Duplicate ids
  // keep the most recent copy only (first in `resources`).
  for (auto it = resources.rbegin(); it != resources.rend(); ++it) {
    const auto existing = entries_.find(it->id);
    if (existing != entries_.end()) {
      used_bytes_ -= bytes_of(existing->second->size_mb);
      order_.erase(existing->second);
      entries_.erase(existing);
    }
    order_.push_front(*it);
    entries_.emplace(it->id, order_.begin());
    used_bytes_ += bytes_of(it->size_mb);
  }
  assert(entries_.size() == order_.size());
  enforce_capacity();
}

}  // namespace dlaja::storage
