#pragma once
// Worker-side speed estimation.
//
// The controlled experiments (§6.3) use the *preconfigured* nominal speeds
// for bids; the MSR experiments (§6.4) instead measure the speed achieved
// on every completed job and bid with the *historic average* of all
// measurements, seeded by probing a 100 MB repository in advance. Both
// modes are provided here.

#include <cstdint>

#include "util/units.hpp"

namespace dlaja::cluster {

class SpeedEstimator {
 public:
  enum class Mode {
    kNominal,   ///< always report the configured nominal speed (§6.3)
    kHistoric,  ///< report the running average of measured speeds (§6.4)
  };

  SpeedEstimator(Mode mode, MbPerSec nominal) noexcept
      : mode_(mode), nominal_(nominal) {}

  /// Folds one measured speed (e.g. size / download duration) into the
  /// historic average. No-op for values <= 0.
  void observe(MbPerSec measured) noexcept;

  /// The speed to use in the next bid. In historic mode with no
  /// observations yet, falls back to the nominal speed (the paper seeds
  /// the history with an up-front probe; the engine feeds that probe in
  /// via observe()).
  [[nodiscard]] MbPerSec estimate() const noexcept;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] MbPerSec nominal() const noexcept { return nominal_; }
  [[nodiscard]] std::uint64_t observations() const noexcept { return count_; }

 private:
  Mode mode_;
  MbPerSec nominal_;
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace dlaja::cluster
