#pragma once
// The simulated worker node.
//
// A worker owns a FIFO queue of assigned jobs (the paper: "worker nodes
// schedule tasks in FIFO order"), a local resource cache, and nominal
// network / read-write speeds. It provides the two halves of the paper's
// worker logic:
//
//   * estimation (Listing 2, sendBid): backlog cost + data-transfer
//     estimate + processing estimate, computed from the speed estimators
//     (nominal speeds in §6.3, historic averages in §6.4);
//   * execution (Listing 2, consumeJob): on a cache miss the resource is
//     downloaded at a noise-perturbed effective bandwidth (recording the
//     cache miss and the data load), then the job is processed at a
//     noise-perturbed read/write speed.
//
// The worker is protocol-agnostic: schedulers drive it through enqueue()
// and the estimation queries, and observe it through the on_complete /
// on_idle callbacks.

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/protocol.hpp"
#include "cluster/speed_estimator.hpp"
#include "metrics/collector.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "storage/cache.hpp"
#include "workflow/workflow.hpp"

namespace dlaja::cluster {

class WorkerNode {
 public:
  /// `node` must already be registered with `network` using the worker's
  /// link characteristics. `estimation_mode` selects nominal (§6.3) or
  /// historic-average (§6.4) speeds for bids.
  WorkerNode(WorkerIndex index, const WorkerConfig& config, sim::Simulator& simulator,
             net::NetworkModel& network, net::NodeId node,
             metrics::MetricsCollector& metrics, const SeedSequencer& seeds,
             SpeedEstimator::Mode estimation_mode = SpeedEstimator::Mode::kNominal);

  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  // --- Estimation (pure queries; never touch the metrics) ---------------

  /// True if the job's resource is resident locally (or it needs none).
  [[nodiscard]] bool has_local(const workflow::Job& job) const noexcept;

  /// True if the resource is resident *or will be*: a job already accepted
  /// into the FIFO queue (or in flight) downloads it before any later job
  /// runs. Listing 2's estimate covers "all unfinished jobs that have been
  /// previously allocated", so a worker quoting a job whose resource is
  /// pending quotes zero transfer for it.
  [[nodiscard]] bool has_local_or_pending(storage::ResourceId resource) const noexcept;

  /// Estimated seconds to finish every unfinished job already allocated:
  /// the remaining estimate of the in-flight job plus the estimates of all
  /// queued jobs (Listing 2 line 2, totalCostOfUnfinishedJobs).
  [[nodiscard]] double backlog_cost_s() const;

  /// Estimated seconds to obtain the job's resource: 0 when cached, else
  /// size / estimated network speed (Listing 2 line 4).
  [[nodiscard]] double estimate_transfer_s(const workflow::Job& job) const;

  /// Estimated seconds to process: volume / estimated rw speed plus the
  /// job's fixed cost (Listing 2 line 5).
  [[nodiscard]] double estimate_processing_s(const workflow::Job& job) const;

  /// The full bid: backlog + transfer + processing (Listing 2 lines 2-5).
  [[nodiscard]] double estimate_bid_s(const workflow::Job& job) const;

  /// Samples the delay before this worker's bid reaches the wire: the
  /// bidding thread's compute time, occasionally stretched by a straggle
  /// (which can exceed the master's window). Deterministic per stream.
  [[nodiscard]] Tick sample_bid_delay();

  // --- Execution --------------------------------------------------------

  /// Accepts an assignment into the FIFO queue and starts it if idle.
  /// Assignments to a failed worker are dropped (no fault tolerance — the
  /// paper explicitly leaves this open; see §5).
  void enqueue(const workflow::Job& job);

  /// Routes this worker's bulk downloads through a shared-bandwidth flow
  /// network instead of the independent-bandwidth model. Call before any
  /// job executes. The worker keeps estimating with its nominal bandwidth
  /// (it cannot know future contention), so estimates degrade honestly
  /// under congestion.
  void set_flow_network(net::FlowNetwork* flows) noexcept { flows_ = flows; }

  /// Simulates the §6.4 up-front speed probe: measures effective network
  /// and rw speed on a `probe_mb` resource and seeds the estimators.
  void probe_speeds(MegaBytes probe_mb = 100.0);

  /// Kills / revives the worker. Killing cancels in-flight completions and
  /// drains the queue; the jobs that were lost (in-flight + queued, FIFO
  /// order) are *returned* so a fault-tolerant caller can resubmit them —
  /// the paper itself has no such policy (§5) and simply drops them.
  /// Reviving returns an empty vector; callers re-probe and re-register the
  /// worker themselves.
  [[nodiscard]] std::vector<workflow::Job> set_failed(bool failed);

  /// True if `id` is currently held by this worker (queued or in flight).
  /// Used by the lifecycle's lease probe.
  [[nodiscard]] bool has_job(workflow::JobId id) const noexcept;

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// Current tick of the simulator this worker runs on. Telemetry keys its
  /// per-sample backlog memo on this.
  [[nodiscard]] Tick now() const noexcept { return sim_.now(); }
  [[nodiscard]] bool busy() const noexcept { return busy_slots() > 0; }
  [[nodiscard]] bool idle() const noexcept { return !busy() && queue_.empty(); }
  /// Occupied execution slots (0..config().slots).
  [[nodiscard]] std::size_t busy_slots() const noexcept;
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] WorkerIndex index() const noexcept { return index_; }
  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] const WorkerConfig& config() const noexcept { return config_; }
  [[nodiscard]] storage::ResourceCache& cache() noexcept { return cache_; }
  [[nodiscard]] const storage::ResourceCache& cache() const noexcept { return cache_; }
  [[nodiscard]] SpeedEstimator& network_estimator() noexcept { return net_est_; }
  [[nodiscard]] SpeedEstimator& rw_estimator() noexcept { return rw_est_; }

  /// Invoked (if set) when a job finishes, before the next one starts.
  std::function<void(const workflow::Job&, WorkerIndex)> on_complete;

  /// Invoked (if set) when the worker becomes idle (queue drained).
  std::function<void(WorkerIndex)> on_idle;

 private:
  /// One parallel execution lane.
  struct ExecSlot {
    workflow::Job job;
    Tick est_finish = 0;  ///< frozen completion estimate (backlog queries)
    sim::EventId event{};
    net::FlowId flow{};
    Tick transfer_started = 0;
  };

  /// Starts queued jobs on free slots (FIFO order).
  void fill_slots();
  /// Phase 1 of a missing-resource job: the download (fixed-duration event
  /// or shared flow).
  void begin_transfer(std::size_t slot);
  /// Transfer done: admit the clone, move to processing.
  void complete_transfer(std::size_t slot);
  /// Phase 2: processing (always a fixed-duration event).
  void begin_processing(std::size_t slot, Tick transfer_ticks_taken,
                        MegaBytes transferred_mb, bool was_miss);
  void finish_slot(std::size_t slot, Tick duration, Tick transfer_ticks_taken,
                   MegaBytes transferred_mb, bool was_miss);

  WorkerIndex index_;
  WorkerConfig config_;
  sim::Simulator& sim_;
  net::NetworkModel& net_;
  net::NodeId node_;
  metrics::MetricsCollector& metrics_;
  storage::ResourceCache cache_;
  SpeedEstimator net_est_;
  SpeedEstimator rw_est_;
  RandomStream disk_rng_;  ///< rw-speed noise draws
  RandomStream bid_rng_;   ///< bid-delay / straggle draws

  std::deque<workflow::Job> queue_;
  /// The four Job fields backlog_cost_s reads, mirrored densely and kept in
  /// lockstep with queue_: the estimate walks ~32 bytes per queued job
  /// instead of dragging each Job's correlation-key string through the
  /// cache (the walk sits on the bidding and telemetry hot paths).
  struct QueuedCost {
    storage::ResourceId resource = 0;
    MegaBytes resource_size_mb = 0.0;
    MegaBytes process_mb = 0.0;
    Tick fixed_cost = 0;
  };
  std::deque<QueuedCost> queue_costs_;
  /// Execution lanes; null = free. Size == config().slots.
  std::vector<std::unique_ptr<ExecSlot>> slots_;
  /// Resources of unfinished (in-flight + queued) jobs, with multiplicity.
  std::unordered_map<storage::ResourceId, std::uint32_t> pending_resources_;
  net::FlowNetwork* flows_ = nullptr;
  bool failed_ = false;
  /// Reused assumed-local scratch for backlog_cost_s (avoids a heap
  /// allocation per estimate on the bidding / telemetry hot paths).
  mutable std::vector<storage::ResourceId> backlog_scratch_;

  /// Interns the worker's span names on first traced use.
  void ensure_trace_names();
  std::uint16_t trace_transfer_ = 0;  ///< "transfer": miss download span
  std::uint16_t trace_process_ = 0;   ///< "process": processing span
  bool trace_names_ready_ = false;
};

}  // namespace dlaja::cluster
