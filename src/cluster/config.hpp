#pragma once
// Worker configuration and the paper's four worker-fleet presets (§6.3.1).

#include <string>
#include <vector>

#include "net/noise.hpp"
#include "net/topology.hpp"
#include "storage/cache.hpp"
#include "util/units.hpp"

namespace dlaja::cluster {

/// Static configuration of one worker node.
struct WorkerConfig {
  std::string name = "worker";

  /// Nominal download bandwidth, MB/s. Used for bid estimates; actual
  /// transfers multiply in a noise factor (§6.3.1's "noise scheme").
  MbPerSec network_mbps = 40.0;

  /// Nominal read/write (processing) speed, MB/s — the paper computes
  /// processing time as repository size / read-write speed.
  MbPerSec rw_mbps = 80.0;

  /// Parallel execution slots. The paper's workers process their FIFO
  /// queue serially (slots = 1, the default); more slots model multi-core
  /// workers running several jobs concurrently, each at full rw speed
  /// (Crossflow's acceptance criteria mention CPU capacity as a worker
  /// attribute). Bids estimate completion as backlog / slots.
  std::uint32_t slots = 1;

  /// Control-plane latency to the broker (one way) and its jitter.
  double latency_ms = 5.0;
  double latency_jitter_ms = 3.0;

  /// Local storage configuration (unbounded by default, as in the paper).
  storage::CacheConfig cache;

  /// Time the worker's bidding thread needs to compute an estimate before
  /// replying to a bid request.
  double bid_compute_ms = 2.0;

  /// With this probability a bid reply stalls by `bid_straggle_ms` (models
  /// CPU contention on t3.micro-class instances); stalls longer than the
  /// master's bidding window make the worker miss the contest.
  double bid_straggle_probability = 0.02;
  double bid_straggle_ms = 1500.0;

  /// Idle-poll interval for pull-based schedulers (Baseline, Matchmaking).
  double heartbeat_ms = 100.0;
};

/// The four §6.3.1 fleet presets. `worker_count` defaults to the paper's 5.
enum class FleetPreset { kAllEqual, kOneFast, kOneSlow, kFastSlow };

/// Human-readable preset name ("all-equal", "one-fast", ...).
[[nodiscard]] std::string fleet_preset_name(FleetPreset preset);

/// Parses a preset name; throws std::invalid_argument on unknown names.
[[nodiscard]] FleetPreset fleet_preset_from_name(const std::string& name);

/// Builds the worker configs for a preset.
///
/// Speeds (MB/s): average worker ~(net 40, rw 80); fast ~(120, 200);
/// slow ~(8, 30). "All equal" applies small deterministic offsets so the
/// workers are "the same, or nearly the same" as the paper puts it.
[[nodiscard]] std::vector<WorkerConfig> make_fleet(FleetPreset preset,
                                                   std::size_t worker_count = 5);

/// All four presets, for sweep-style benches.
[[nodiscard]] std::vector<FleetPreset> all_fleet_presets();

/// Geographically scatters a fleet (§6.2: instance locations "randomly
/// determined during configuration startup"): each worker lands in a random
/// region of `topology` and its control-plane latency to the broker (in
/// `broker_region`) becomes the inter-region latency. Returns each worker's
/// region, index-aligned with `fleet`.
[[nodiscard]] std::vector<net::RegionId> scatter_fleet(std::vector<WorkerConfig>& fleet,
                                                       const net::Topology& topology,
                                                       net::RegionId broker_region,
                                                       RandomStream& rng);

}  // namespace dlaja::cluster
