#include "cluster/worker.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace dlaja::cluster {

WorkerNode::WorkerNode(WorkerIndex index, const WorkerConfig& config,
                       sim::Simulator& simulator, net::NetworkModel& network,
                       net::NodeId node, metrics::MetricsCollector& metrics,
                       const SeedSequencer& seeds, SpeedEstimator::Mode estimation_mode)
    : index_(index),
      config_(config),
      sim_(simulator),
      net_(network),
      node_(node),
      metrics_(metrics),
      cache_(config.cache),
      net_est_(estimation_mode, config.network_mbps),
      rw_est_(estimation_mode, config.rw_mbps),
      disk_rng_(seeds.seed_for("disk/" + config.name)),
      bid_rng_(seeds.seed_for("bid/" + config.name)) {
  slots_.resize(std::max<std::uint32_t>(1, config_.slots));
  metrics_.worker(index_).name = config_.name;
}

void WorkerNode::ensure_trace_names() {
  if (trace_names_ready_) return;
  trace_names_ready_ = true;
  obs::Tracer* tracer = sim_.tracer();
  trace_transfer_ = tracer->intern("transfer");
  trace_process_ = tracer->intern("process");
}

std::size_t WorkerNode::busy_slots() const noexcept {
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (slot != nullptr) ++count;
  }
  return count;
}

bool WorkerNode::has_local(const workflow::Job& job) const noexcept {
  return !job.needs_resource() || cache_.contains(job.resource);
}

bool WorkerNode::has_local_or_pending(storage::ResourceId resource) const noexcept {
  return cache_.contains(resource) || pending_resources_.count(resource) > 0;
}

double WorkerNode::estimate_transfer_s(const workflow::Job& job) const {
  if (!job.needs_resource() || has_local_or_pending(job.resource)) return 0.0;
  return job.resource_size_mb / std::max(net_est_.estimate(), 1e-9);
}

double WorkerNode::estimate_processing_s(const workflow::Job& job) const {
  return job.process_mb / std::max(rw_est_.estimate(), 1e-9) +
         seconds_from_ticks(job.fixed_cost);
}

double WorkerNode::backlog_cost_s() const {
  double total = 0.0;
  // Simulate the FIFO queue in order, tracking which resources will have
  // become local by the time each queued job runs: the first queued job
  // for an absent resource pays the transfer; later ones do not. The
  // assumed-local set is a reused scratch vector with linear membership
  // scans: these sets hold a handful of distinct resources, and this query
  // sits on both the bidding hot path and the telemetry gauges, where a
  // hash set rebuilt on every call dominated the cost.
  std::vector<storage::ResourceId>& assumed_local = backlog_scratch_;
  assumed_local.clear();
  const auto assumed = [&assumed_local](storage::ResourceId r) {
    return std::find(assumed_local.begin(), assumed_local.end(), r) != assumed_local.end();
  };
  for (const auto& slot : slots_) {
    if (slot == nullptr) continue;
    const Tick remaining = slot->est_finish - sim_.now();
    if (remaining > 0) total += seconds_from_ticks(remaining);
    if (slot->job.needs_resource() && !assumed(slot->job.resource)) {
      assumed_local.push_back(slot->job.resource);
    }
  }
  // Speeds are frozen for the duration of the walk (estimators only move on
  // completions), so hoisting them out of the loop is value-identical to
  // calling estimate_transfer_s / estimate_processing_s per job.
  const double net_speed = std::max(net_est_.estimate(), 1e-9);
  const double rw_speed = std::max(rw_est_.estimate(), 1e-9);
  for (const QueuedCost& job : queue_costs_) {
    if (job.resource != 0) {
      if (!assumed(job.resource)) {
        if (!cache_.contains(job.resource)) {
          total += job.resource_size_mb / net_speed;
        }
        assumed_local.push_back(job.resource);
      }
    }
    total += job.process_mb / rw_speed + seconds_from_ticks(job.fixed_cost);
  }
  return total;
}

double WorkerNode::estimate_bid_s(const workflow::Job& job) const {
  // Listing 2, lines 2-5. With parallel slots the backlog drains S-wide,
  // so the expected wait for a lane is the total divided by the slots.
  const double lanes = static_cast<double>(std::max<std::uint32_t>(1, config_.slots));
  return backlog_cost_s() / lanes + estimate_transfer_s(job) + estimate_processing_s(job);
}

Tick WorkerNode::sample_bid_delay() {
  double ms = bid_rng_.uniform(0.5 * config_.bid_compute_ms, 1.5 * config_.bid_compute_ms);
  if (bid_rng_.bernoulli(config_.bid_straggle_probability)) {
    ms += bid_rng_.uniform(0.5 * config_.bid_straggle_ms, 1.5 * config_.bid_straggle_ms);
  }
  return ticks_from_millis(ms);
}

void WorkerNode::enqueue(const workflow::Job& job) {
  if (failed_) {
    DLAJA_LOG(kWarn, "worker") << sim_.log_prefix() << config_.name << " dropped job "
                               << job.id << " (worker failed; no fault tolerance)";
    return;
  }
  queue_.push_back(job);
  queue_costs_.push_back(
      QueuedCost{job.resource, job.resource_size_mb, job.process_mb, job.fixed_cost});
  if (job.needs_resource()) ++pending_resources_[job.resource];
  fill_slots();
}

void WorkerNode::probe_speeds(MegaBytes probe_mb) {
  // §6.4: "speeds were obtained by examining a repository of 100MB in
  // advance". One effective-bandwidth draw and one effective-rw draw.
  const MbPerSec net_measured = net_.sample_effective_bandwidth(node_);
  net_est_.observe(net_measured);
  const double rw_factor = net_.noise().sample(disk_rng_);
  rw_est_.observe(config_.rw_mbps * rw_factor);
  (void)probe_mb;  // the measured *speed* is size-independent in this model
}

std::vector<workflow::Job> WorkerNode::set_failed(bool failed) {
  std::vector<workflow::Job> lost;
  if (failed_ == failed) return lost;
  failed_ = failed;
  if (failed_) {
    for (auto& slot : slots_) {
      if (slot == nullptr) continue;
      if (slot->event.valid()) sim_.cancel(slot->event);
      if (slot->flow.valid() && flows_ != nullptr) {
        flows_->cancel_flow(slot->flow);  // a partial clone is not a clone
      }
      lost.push_back(std::move(slot->job));
      slot.reset();
    }
    // The in-flight jobs and the queue die with the worker (paper §5: no
    // policies for a worker dying after winning a bid). They are handed
    // back to the caller: the engine's lifecycle resubmits them, the
    // legacy paths ignore the return value and keep the paper's semantics.
    for (workflow::Job& job : queue_) lost.push_back(std::move(job));
    queue_.clear();
    queue_costs_.clear();
    pending_resources_.clear();
  }
  return lost;
}

bool WorkerNode::has_job(workflow::JobId id) const noexcept {
  for (const auto& slot : slots_) {
    if (slot != nullptr && slot->job.id == id) return true;
  }
  for (const workflow::Job& job : queue_) {
    if (job.id == id) return true;
  }
  return false;
}

void WorkerNode::fill_slots() {
  if (failed_) return;
  for (std::size_t index = 0; index < slots_.size() && !queue_.empty(); ++index) {
    if (slots_[index] != nullptr) continue;
    workflow::Job job = queue_.front();
    queue_.pop_front();
    queue_costs_.pop_front();

    auto slot = std::make_unique<ExecSlot>();
    slot->job = std::move(job);
    // The estimate of this job's duration, frozen now, gives the remaining-
    // cost component of later backlog queries. The job runs immediately, so
    // only the *actual* cache matters (its own pending entry must not mask
    // its transfer cost).
    double est_s = estimate_processing_s(slot->job);
    if (slot->job.needs_resource() && !cache_.contains(slot->job.resource)) {
      est_s += slot->job.resource_size_mb / std::max(net_est_.estimate(), 1e-9);
    }
    slot->est_finish = sim_.now() + ticks_from_seconds(est_s);

    metrics::JobRecord& record = metrics_.job(slot->job.id);
    record.worker = index_;
    record.started = sim_.now();

    bool miss = false;
    if (slot->job.needs_resource()) {
      const bool hit = cache_.access(slot->job.resource);
      if (hit) {
        ++metrics_.worker(index_).cache_hits;
      } else {
        miss = true;
      }
    }
    slots_[index] = std::move(slot);
    if (miss) {
      begin_transfer(index);
    } else {
      begin_processing(index, /*transfer_ticks_taken=*/0, /*transferred_mb=*/0.0,
                       /*was_miss=*/false);
    }
  }
}

void WorkerNode::begin_transfer(std::size_t slot_index) {
  ExecSlot& slot = *slots_[slot_index];
  assert(slot.job.needs_resource());
  slot.transfer_started = sim_.now();
  if (flows_ != nullptr) {
    // Shared bandwidth: the flow network paces the transfer; the noise
    // factor inflates the volume (equivalent slowdown under a fixed rate).
    const double factor = net_.sample_noise_factor(node_);
    const MegaBytes effective_volume = slot.job.resource_size_mb / std::max(factor, 1e-3);
    slot.flow = flows_->start_flow(node_, effective_volume, [this, slot_index] {
      slots_[slot_index]->flow = {};
      complete_transfer(slot_index);
    });
  } else {
    const Tick transfer = net_.sample_transfer_ticks(node_, slot.job.resource_size_mb);
    auto on_transfer_done = [this, slot_index] {
      slots_[slot_index]->event = {};
      complete_transfer(slot_index);
    };
    static_assert(sim::InlineAction::fits_inline<decltype(on_transfer_done)>());
    slot.event = sim_.schedule_after(transfer, std::move(on_transfer_done));
  }
}

void WorkerNode::complete_transfer(std::size_t slot_index) {
  ExecSlot& slot = *slots_[slot_index];
  // The clone exists — and counts as local for estimates and acceptance
  // checks — from this moment on.
  cache_.admit(storage::Resource{slot.job.resource, slot.job.resource_size_mb});
  const Tick taken = sim_.now() - slot.transfer_started;
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    // A transfer span under the net component regardless of which transport
    // carried it (flow network or fixed-duration event).
    ensure_trace_names();
    sim_.tracer()->span(obs::Component::kNet, trace_transfer_, index_,
                        slot.transfer_started, sim_.now(), slot.job.id);
  }
  metrics_.registry().histogram("net.transfer_s").record(seconds_from_ticks(taken));
  metrics_.registry().histogram("net.transfer_mb").record(slot.job.resource_size_mb);
  begin_processing(slot_index, taken, slot.job.resource_size_mb, /*was_miss=*/true);
}

void WorkerNode::begin_processing(std::size_t slot_index, Tick transfer_ticks_taken,
                                  MegaBytes transferred_mb, bool was_miss) {
  ExecSlot& slot = *slots_[slot_index];
  const double rw_factor = net_.noise().sample(disk_rng_);
  const Tick processing =
      transfer_ticks(slot.job.process_mb, config_.rw_mbps * rw_factor) +
      slot.job.fixed_cost;
  const Tick duration = transfer_ticks_taken + processing;
  // The widest capture in the cluster model (48 bytes) — must stay inside
  // the simulator's inline action budget.
  auto on_processing_done =
      [this, slot_index, duration, transfer_ticks_taken, transferred_mb, was_miss] {
        slots_[slot_index]->event = {};
        finish_slot(slot_index, duration, transfer_ticks_taken, transferred_mb, was_miss);
      };
  static_assert(sim::InlineAction::fits_inline<decltype(on_processing_done)>());
  slot.event = sim_.schedule_after(processing, std::move(on_processing_done));
}

void WorkerNode::finish_slot(std::size_t slot_index, Tick duration,
                             Tick transfer_ticks_taken, MegaBytes transferred_mb,
                             bool was_miss) {
  assert(slots_[slot_index] != nullptr);
  const workflow::Job job = slots_[slot_index]->job;

  metrics::JobRecord& record = metrics_.job(job.id);
  record.finished = sim_.now();
  record.cache_miss = was_miss;
  record.downloaded_mb += transferred_mb;

  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    // The processing phase only (the transfer span was emitted separately),
    // tracked by worker index.
    ensure_trace_names();
    const Tick processing_started = sim_.now() - (duration - transfer_ticks_taken);
    sim_.tracer()->span(obs::Component::kWorker, trace_process_, index_,
                        processing_started, sim_.now(), job.id);
  }
  metrics_.registry().histogram("worker.job_s").record(seconds_from_ticks(duration));

  metrics::WorkerRecord& wrec = metrics_.worker(index_);
  ++wrec.jobs_completed;
  wrec.busy_ticks += duration;
  wrec.downloading_ticks += transfer_ticks_taken;
  if (was_miss) {
    ++wrec.cache_misses;
    wrec.downloaded_mb += transferred_mb;
  }

  // §6.4: after each job the worker re-measures its speeds and folds them
  // into the historic averages used for subsequent bids.
  if (was_miss && transfer_ticks_taken > 0) {
    net_est_.observe(transferred_mb / seconds_from_ticks(transfer_ticks_taken));
  }
  const Tick processing = duration - transfer_ticks_taken - job.fixed_cost;
  if (processing > 0 && job.process_mb > 0.0) {
    rw_est_.observe(job.process_mb / seconds_from_ticks(processing));
  }

  if (job.needs_resource()) {
    const auto it = pending_resources_.find(job.resource);
    if (it != pending_resources_.end() && --it->second == 0) pending_resources_.erase(it);
  }
  slots_[slot_index].reset();
  if (on_complete) on_complete(job, index_);
  // on_complete may have enqueued more work or failed the worker.
  if (failed_) return;
  fill_slots();
  if (idle() && on_idle) on_idle(index_);
}

}  // namespace dlaja::cluster
