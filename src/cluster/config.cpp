#include "cluster/config.hpp"

#include <stdexcept>

namespace dlaja::cluster {

std::string fleet_preset_name(FleetPreset preset) {
  switch (preset) {
    case FleetPreset::kAllEqual: return "all-equal";
    case FleetPreset::kOneFast: return "one-fast";
    case FleetPreset::kOneSlow: return "one-slow";
    case FleetPreset::kFastSlow: return "fast-slow";
  }
  return "?";
}

FleetPreset fleet_preset_from_name(const std::string& name) {
  if (name == "all-equal") return FleetPreset::kAllEqual;
  if (name == "one-fast") return FleetPreset::kOneFast;
  if (name == "one-slow") return FleetPreset::kOneSlow;
  if (name == "fast-slow") return FleetPreset::kFastSlow;
  throw std::invalid_argument("unknown fleet preset: " + name);
}

namespace {

constexpr MbPerSec kAvgNet = 40.0, kAvgRw = 80.0;
constexpr MbPerSec kFastNet = 120.0, kFastRw = 200.0;
constexpr MbPerSec kSlowNet = 4.0, kSlowRw = 20.0;

[[nodiscard]] WorkerConfig average_worker(std::size_t index) {
  WorkerConfig w;
  w.name = "worker-" + std::to_string(index);
  // Small deterministic spread (+/- up to 7.5%) so "all equal" workers are
  // nearly but not exactly identical, matching the paper's description.
  const double spread = 1.0 + 0.025 * (static_cast<double>(index % 5) - 2.0);
  w.network_mbps = kAvgNet * spread;
  w.rw_mbps = kAvgRw * spread;
  return w;
}

}  // namespace

std::vector<WorkerConfig> make_fleet(FleetPreset preset, std::size_t worker_count) {
  if (worker_count == 0) throw std::invalid_argument("make_fleet: need at least one worker");
  std::vector<WorkerConfig> fleet;
  fleet.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) fleet.push_back(average_worker(i));

  switch (preset) {
    case FleetPreset::kAllEqual:
      break;
    case FleetPreset::kOneFast:
      fleet[0].network_mbps = kFastNet;
      fleet[0].rw_mbps = kFastRw;
      fleet[0].name += "-fast";
      break;
    case FleetPreset::kOneSlow:
      fleet[0].network_mbps = kSlowNet;
      fleet[0].rw_mbps = kSlowRw;
      fleet[0].name += "-slow";
      break;
    case FleetPreset::kFastSlow:
      fleet[0].network_mbps = kFastNet;
      fleet[0].rw_mbps = kFastRw;
      fleet[0].name += "-fast";
      if (worker_count > 1) {
        fleet[1].network_mbps = kSlowNet;
        fleet[1].rw_mbps = kSlowRw;
        fleet[1].name += "-slow";
      }
      break;
  }
  return fleet;
}

std::vector<FleetPreset> all_fleet_presets() {
  return {FleetPreset::kAllEqual, FleetPreset::kOneFast, FleetPreset::kOneSlow,
          FleetPreset::kFastSlow};
}

std::vector<net::RegionId> scatter_fleet(std::vector<WorkerConfig>& fleet,
                                         const net::Topology& topology,
                                         net::RegionId broker_region, RandomStream& rng) {
  std::vector<net::RegionId> regions;
  regions.reserve(fleet.size());
  for (WorkerConfig& worker : fleet) {
    const net::RegionId region = topology.random_region(rng);
    worker.latency_ms = topology.latency_ms(region, broker_region);
    worker.name += "@" + topology.name(region);
    regions.push_back(region);
  }
  return regions;
}

}  // namespace dlaja::cluster
