#pragma once
// Wire payloads exchanged between master and workers via the broker.
//
// Topic / mailbox contract:
//   topic  "bids/requests"   -> BidRequest        (master broadcasts)
//   mailbox master "bids"    -> BidSubmission     (workers reply)
//   mailbox worker "jobs"    -> JobAssignment     (master assigns)
//   mailbox worker "offers"  -> JobOffer          (pull schedulers offer)
//   mailbox master "offers"  -> OfferResponse     (worker accepts/declines)
//   mailbox master "done"    -> CompletionReport  (worker reports results)

#include <cstdint>
#include <vector>

#include "util/units.hpp"
#include "workflow/workflow.hpp"

namespace dlaja::cluster {

/// Dense worker index within the cluster (0..worker_count-1).
using WorkerIndex = std::uint32_t;

inline constexpr WorkerIndex kNoWorker = static_cast<WorkerIndex>(-1);

/// Master -> all workers: a job is open for bidding (Listing 1, sendJob).
struct BidRequest {
  std::uint64_t contest = 0;
  workflow::Job job;
};

/// Worker -> master: completion-time estimate (Listing 2, sendBid).
struct BidSubmission {
  std::uint64_t contest = 0;
  workflow::JobId job_id = 0;
  WorkerIndex worker = kNoWorker;
  double cost_s = 0.0;  ///< estimated seconds until this worker finishes the job
};

/// Master -> winning worker: job assignment (Listing 1, sendToWorker).
struct JobAssignment {
  workflow::Job job;
};

/// Master -> one worker (pull schedulers): would you take this job?
struct JobOffer {
  std::uint64_t offer = 0;
  workflow::Job job;
  std::uint32_t round = 0;  ///< how many times this job has been offered before
};

/// Worker -> master: accept/decline an offer.
struct OfferResponse {
  std::uint64_t offer = 0;
  workflow::JobId job_id = 0;
  WorkerIndex worker = kNoWorker;
  bool accepted = false;
};

/// Worker -> master: job finished (Listing 2, consumeJob tail).
struct CompletionReport {
  workflow::JobId job_id = 0;
  WorkerIndex worker = kNoWorker;
};

/// Worker -> master (pull schedulers): I am idle, give me work.
struct WorkRequest {
  WorkerIndex worker = kNoWorker;
};

/// Master -> worker (pull schedulers): nothing suitable right now; poll
/// again after your heartbeat (Matchmaking's "remain idle for a single
/// heartbeat").
struct NoWorkNotice {};

namespace topics {
inline constexpr const char* kBidRequests = "bids/requests";
}
namespace mailboxes {
inline constexpr const char* kBids = "bids";
inline constexpr const char* kJobs = "jobs";
inline constexpr const char* kOffers = "offers";
inline constexpr const char* kOfferResponses = "offer-responses";
inline constexpr const char* kCompletions = "done";
inline constexpr const char* kWorkRequests = "work-requests";
}  // namespace mailboxes

}  // namespace dlaja::cluster
