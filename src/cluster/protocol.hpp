#pragma once
// Wire payloads exchanged between master and workers via the broker.
//
// Topic / mailbox contract:
//   topic  "bids/requests"   -> BidRequest        (master broadcasts)
//   mailbox master "bids"    -> BidSubmission     (workers reply)
//   mailbox worker "jobs"    -> JobAssignment     (master assigns)
//   mailbox worker "offers"  -> JobOffer          (pull schedulers offer)
//   mailbox master "offers"  -> OfferResponse     (worker accepts/declines)
//   mailbox master "done"    -> CompletionReport  (worker reports results)
//   mailbox worker "placements"     -> DirectPlacement   (cached fan-out)
//   mailbox master "placement-acks" -> PlacementResponse (accept/decline)
//   mailbox master "load-reports"   -> LoadReport        (async load refresh)

#include <cstdint>
#include <vector>

#include "util/units.hpp"
#include "workflow/workflow.hpp"

namespace dlaja::cluster {

/// Dense worker index within the cluster (0..worker_count-1).
using WorkerIndex = std::uint32_t;

inline constexpr WorkerIndex kNoWorker = static_cast<WorkerIndex>(-1);

/// Master -> all workers: a job is open for bidding (Listing 1, sendJob).
struct BidRequest {
  std::uint64_t contest = 0;
  workflow::Job job;
};

/// Worker -> master: completion-time estimate (Listing 2, sendBid).
struct BidSubmission {
  std::uint64_t contest = 0;
  workflow::JobId job_id = 0;
  WorkerIndex worker = kNoWorker;
  double cost_s = 0.0;  ///< estimated seconds until this worker finishes the job
  /// Piggy-backed raw backlog for the master's load cache (cached fan-out
  /// only; full/probe bids leave it 0 and the master never reads it).
  double backlog_s = 0.0;
};

/// Master -> winning worker: job assignment (Listing 1, sendToWorker).
struct JobAssignment {
  workflow::Job job;
};

/// Master -> one worker (pull schedulers): would you take this job?
struct JobOffer {
  std::uint64_t offer = 0;
  workflow::Job job;
  std::uint32_t round = 0;  ///< how many times this job has been offered before
};

/// Worker -> master: accept/decline an offer.
struct OfferResponse {
  std::uint64_t offer = 0;
  workflow::JobId job_id = 0;
  WorkerIndex worker = kNoWorker;
  bool accepted = false;
};

/// Master -> one worker (cached fan-out): a direct placement decided from
/// the master's load cache — no contest, no bid round-trip. The worker
/// accepts (enqueue) or declines when its actual backlog is meaningfully
/// worse than the master's cached view (late binding).
struct DirectPlacement {
  workflow::Job job;
  double expected_backlog_s = 0.0;  ///< the cached backlog the decision used
};

/// Worker -> master: accept/decline of a direct placement. Carries the
/// worker's authoritative backlog either way, so the cache refreshes even
/// from a decline. Kept small: the worker-side delayed send captures it
/// inline within the kernel's 64-byte action budget.
struct PlacementResponse {
  workflow::JobId job_id = 0;
  WorkerIndex worker = kNoWorker;
  bool accepted = false;
  double backlog_s = 0.0;  ///< backlog after the decision (post-enqueue on accept)
};

/// Worker -> master (cached fan-out): asynchronous load refresh, sent when
/// a job finishes (a queue slot freed) — the cache's heartbeat channel.
struct LoadReport {
  WorkerIndex worker = kNoWorker;
  double backlog_s = 0.0;
};

/// Federation router -> scheduler instance: a job handed to partition
/// `hops == 0 ? home : spill target` of a federated control plane. `hops`
/// counts cross-partition forwards; at most one spill per job keeps the
/// protocol loop-free.
struct RouteJob {
  workflow::Job job;
  std::uint32_t hops = 0;
};

/// Scheduler instance -> all instances (topic "fed/digests"): periodic
/// eventually-consistent load advertisement. `load` is queued+running jobs
/// per live worker of `partition`; `at_tick` stamps when it was measured so
/// receivers can enforce the staleness bound.
struct LoadDigest {
  std::uint32_t partition = 0;
  double load = 0.0;
  std::int64_t at_tick = 0;
};

/// Worker -> master: job finished (Listing 2, consumeJob tail).
struct CompletionReport {
  workflow::JobId job_id = 0;
  WorkerIndex worker = kNoWorker;
};

/// Worker -> master (pull schedulers): I am idle, give me work.
struct WorkRequest {
  WorkerIndex worker = kNoWorker;
};

/// Master -> worker (pull schedulers): nothing suitable right now; poll
/// again after your heartbeat (Matchmaking's "remain idle for a single
/// heartbeat").
struct NoWorkNotice {};

namespace topics {
inline constexpr const char* kBidRequests = "bids/requests";
/// All federated scheduler instances subscribe: LoadDigest broadcasts.
/// Deliberately unscoped — the digest bus is the one shared channel.
inline constexpr const char* kFedDigests = "fed/digests";
}  // namespace topics
namespace mailboxes {
inline constexpr const char* kBids = "bids";
inline constexpr const char* kJobs = "jobs";
inline constexpr const char* kOffers = "offers";
inline constexpr const char* kOfferResponses = "offer-responses";
inline constexpr const char* kCompletions = "done";
inline constexpr const char* kWorkRequests = "work-requests";
inline constexpr const char* kPlacements = "placements";          ///< worker: DirectPlacement
inline constexpr const char* kPlacementAcks = "placement-acks";   ///< master: PlacementResponse
inline constexpr const char* kLoadReports = "load-reports";       ///< master: LoadReport
inline constexpr const char* kFedJobs = "fed/jobs";               ///< sched instance: RouteJob
}  // namespace mailboxes

}  // namespace dlaja::cluster
