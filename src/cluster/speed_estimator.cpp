#include "cluster/speed_estimator.hpp"

namespace dlaja::cluster {

void SpeedEstimator::observe(MbPerSec measured) noexcept {
  if (measured <= 0.0) return;
  sum_ += measured;
  ++count_;
}

MbPerSec SpeedEstimator::estimate() const noexcept {
  if (mode_ == Mode::kNominal || count_ == 0) return nominal_;
  return sum_ / static_cast<double>(count_);
}

}  // namespace dlaja::cluster
