#pragma once
// Metrics collection for one simulation run.
//
// Captures the paper's three evaluation metrics (§6.1):
//   1. end-to-end execution time,
//   2. data load — MB transferred to workers because data was not local,
//   3. cache misses — jobs whose worker had to download the resource,
// plus per-job timelines and per-worker utilisation used by the deeper
// analyses and the ablation benches.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/registry.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"
#include "workflow/workflow.hpp"

namespace dlaja::metrics {

/// Per-job lifecycle record. Timestamps are kNeverTick until set.
struct JobRecord {
  workflow::JobId id = 0;
  std::uint32_t worker = static_cast<std::uint32_t>(-1);
  Tick arrived = kNeverTick;         ///< submitted to the master
  Tick contest_opened = kNeverTick;  ///< bidding contest opened (Bidding only)
  Tick assigned = kNeverTick;        ///< sent to the winning/accepting worker
  Tick started = kNeverTick;         ///< worker began download/processing
  Tick finished = kNeverTick;
  bool cache_miss = false;
  MegaBytes downloaded_mb = 0.0;
  double winning_bid_s = -1.0;  ///< winning estimate in seconds (Bidding only)
  std::uint32_t bids_received = 0;
  std::uint32_t offers_rejected = 0;  ///< Baseline: rejections before acceptance

  [[nodiscard]] bool completed() const noexcept { return finished != kNeverTick; }
};

/// Per-worker aggregate counters.
struct WorkerRecord {
  std::string name;
  std::uint64_t jobs_completed = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_hits = 0;
  MegaBytes downloaded_mb = 0.0;
  Tick busy_ticks = 0;         ///< downloading + processing
  Tick downloading_ticks = 0;  ///< subset of busy spent transferring
  std::uint64_t bids_submitted = 0;
  std::uint64_t bids_won = 0;
  std::uint64_t offers_declined = 0;
};

/// Aggregates of job records folded away by retire_job() during streaming
/// (open-arrival) runs, so memory stays O(live jobs) no matter how many
/// arrivals flow through. Classification mirrors make_report()'s per-job
/// loop exactly; the turnaround histogram stands in for the exact
/// percentiles the closed path computes from the full sample.
struct RetiredJobStats {
  std::uint64_t count = 0;          ///< retired (completed) jobs
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_hits = 0;
  MegaBytes downloaded_mb = 0.0;
  Tick last_finished = 0;
  RunningStats turnaround_s;
  RunningStats alloc_latency_s;
  RunningStats queue_wait_s;
  Histogram turnaround_hist;
};

/// Mutable metrics sink for one run. Components write via the accessors;
/// the final RunReport is derived by make_report().
class MetricsCollector {
 public:
  explicit MetricsCollector(std::size_t worker_count = 0) { set_worker_count(worker_count); }

  /// (Re)sizes the per-worker table, preserving existing entries.
  void set_worker_count(std::size_t count) { workers_.resize(count); }

  /// Record for `id`, created on first access.
  JobRecord& job(workflow::JobId id);

  /// Read-only lookup; nullptr if the job was never recorded.
  [[nodiscard]] const JobRecord* find_job(workflow::JobId id) const;

  [[nodiscard]] WorkerRecord& worker(std::uint32_t index);
  [[nodiscard]] const std::vector<WorkerRecord>& workers() const noexcept { return workers_; }

  /// Named counters/histograms fed by schedulers, workers and the network
  /// (decision latencies, transfer times, queue depths). Flattened into
  /// RunReport::stats by make_report().
  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }

  /// Folds `other` into this collector after a sharded run: job records
  /// merge field-wise (a timestamp or worker id set on either side wins;
  /// per-job counters add), worker records and the registry add. Each
  /// field is written by exactly one shard during a run, so the merge has
  /// no ambiguous collisions. Worker tables must have equal sizes.
  void absorb(const MetricsCollector& other);

  /// Folds a *completed* job's record into the retired aggregates and
  /// drops it, keeping streaming-run memory O(live jobs). No-op for
  /// unknown or incomplete jobs. Only safe when no other collector still
  /// holds half of the record (i.e. single-shard runs).
  void retire_job(workflow::JobId id);

  [[nodiscard]] const RetiredJobStats& retired() const noexcept { return retired_; }

  /// All *live* (non-retired) job records in arrival order.
  [[nodiscard]] std::vector<const JobRecord*> jobs_in_arrival_order() const;

  /// Jobs ever recorded, retired ones included.
  [[nodiscard]] std::size_t job_count() const noexcept { return retired_.count + jobs_.size(); }

  // --- Derived aggregates (paper metrics) ------------------------------

  /// Total cache misses across all completed jobs.
  [[nodiscard]] std::uint64_t total_cache_misses() const noexcept;

  /// Total MB downloaded (data load).
  [[nodiscard]] MegaBytes total_data_load_mb() const noexcept;

  /// Completion time of the last finished job (0 if none finished).
  [[nodiscard]] Tick last_completion() const noexcept;

  /// Number of completed jobs.
  [[nodiscard]] std::uint64_t completed_jobs() const noexcept;

 private:
  std::unordered_map<workflow::JobId, JobRecord> jobs_;
  std::vector<workflow::JobId> order_;  // first-touch order == arrival order
  std::vector<WorkerRecord> workers_;
  Registry registry_;
  RetiredJobStats retired_;
};

}  // namespace dlaja::metrics
