#include "metrics/registry.hpp"

#include <algorithm>
#include <cmath>

namespace dlaja::metrics {

int Histogram::bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5, 1)
  const int octave = exp - 1;                   // value = m * 2^octave, m in [1, 2)
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kBucketCount - 1;
  const double mantissa = frac * 2.0;
  int sub = static_cast<int>((mantissa - 1.0) * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return (octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int index) noexcept {
  const int octave = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

void Histogram::record(double value) noexcept {
  if (buckets_.empty()) buckets_.resize(kBucketCount, 0);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
}

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  const std::uint64_t rank = std::max<std::uint64_t>(target, 1);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (cumulative >= rank) {
      const double lower = bucket_lower(i);
      const double upper = bucket_lower(i + 1);
      return std::clamp((lower + upper) / 2.0, min_, max_);
    }
  }
  return max_;
}

void Histogram::absorb(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (buckets_.empty()) buckets_.resize(kBucketCount, 0);
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  }
}

void Registry::absorb(const Registry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].add(counter.value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].absorb(histogram);
  }
}

std::vector<std::pair<std::string, double>> Registry::flatten() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + histograms_.size() * 5);
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, static_cast<double>(counter.value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name + ".count", static_cast<double>(histogram.count()));
    out.emplace_back(name + ".mean", histogram.mean());
    out.emplace_back(name + ".p50", histogram.percentile(50.0));
    out.emplace_back(name + ".p95", histogram.percentile(95.0));
    out.emplace_back(name + ".max", histogram.max());
  }
  return out;
}

}  // namespace dlaja::metrics
