#pragma once
// Run-level summaries and multi-run aggregation.

#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "metrics/collector.hpp"
#include "util/stats.hpp"

namespace dlaja::metrics {

/// Immutable summary of one simulation run, in report units (seconds, MB).
struct RunReport {
  // Identity (filled by the experiment runner).
  std::string scheduler;
  std::string workload;
  std::string worker_config;
  int iteration = 0;
  std::uint64_t seed = 0;

  // The paper's three metrics.
  double exec_time_s = 0.0;  ///< end-to-end execution time
  std::uint64_t cache_misses = 0;
  double data_load_mb = 0.0;

  // Supporting detail.
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_retried = 0;        ///< lifecycle resubmissions (faults)
  std::uint64_t jobs_dead_lettered = 0;  ///< jobs that exhausted retries
  std::uint64_t jobs_lost = 0;           ///< attempts unresolved at run end
  double avg_turnaround_s = 0.0;    ///< mean (finished - arrived)
  double p50_turnaround_s = 0.0;    ///< median per-job turnaround
  double p95_turnaround_s = 0.0;    ///< tail per-job turnaround
  double p99_turnaround_s = 0.0;
  double avg_alloc_latency_s = 0.0; ///< mean (assigned - arrived): scheduling overhead
  double avg_queue_wait_s = 0.0;    ///< mean (started - assigned)
  double cache_hit_rate = 0.0;      ///< hits / (hits + misses) over resource jobs

  /// Jain's fairness index over per-worker busy time in [1/N, 1]: 1 means
  /// perfectly even load. The paper (§3) frames data-aware scheduling as
  /// "compromising the fairness of task allocation" — this quantifies it.
  double fairness_index = 0.0;

  std::vector<WorkerRecord> workers;

  // Messaging cost.
  std::uint64_t messages_delivered = 0;

  /// Host wall-clock spent simulating this run (not simulated time), stamped
  /// by the experiment runner; the BENCH JSONs report per-cell cost from it.
  double wall_time_s = 0.0;

  /// Flattened counter/histogram registry (see metrics/registry.hpp) in
  /// deterministic name order. Empty when nothing fed the registry. The CSV
  /// export appends these as trailing columns (named after the first row's
  /// entries) so the fixed schema above stays stable.
  std::vector<std::pair<std::string, double>> stats;

  /// Value of a flattened stat; `fallback` if absent.
  [[nodiscard]] double stat(const std::string& name, double fallback = 0.0) const {
    for (const auto& [key, value] : stats) {
      if (key == name) return value;
    }
    return fallback;
  }
};

/// Derives a RunReport from a collector. `end_time` is the simulated end of
/// the run (usually last completion; kept explicit so empty runs report 0).
[[nodiscard]] RunReport make_report(const MetricsCollector& collector, Tick end_time);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 0 for empty/all-zero.
[[nodiscard]] double jain_fairness(std::span<const double> values) noexcept;

/// Writes a header + one row per report as CSV.
void write_reports_csv(std::ostream& out, const std::vector<RunReport>& reports);

/// Mean/stddev of the three paper metrics over a group of runs.
struct AggregateCell {
  RunningStats exec_time_s;
  RunningStats cache_misses;
  RunningStats data_load_mb;
  RunningStats alloc_latency_s;
};

/// Groups runs by a caller-chosen key (e.g. "scheduler|workload") and
/// accumulates the paper metrics for each group.
class Aggregator {
 public:
  /// Folds `report` into the group `key`.
  void add(const std::string& key, const RunReport& report);

  /// Cell for `key`; throws std::out_of_range if the key was never added.
  [[nodiscard]] const AggregateCell& cell(const std::string& key) const;

  /// True if any run was recorded under `key`.
  [[nodiscard]] bool has(const std::string& key) const;

  /// All keys in insertion order.
  [[nodiscard]] const std::vector<std::string>& keys() const noexcept { return order_; }

 private:
  std::map<std::string, AggregateCell> cells_;
  std::vector<std::string> order_;
};

}  // namespace dlaja::metrics
