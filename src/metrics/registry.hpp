#pragma once
// Counter/histogram registry.
//
// Schedulers, workers and the network feed named monotonic counters and
// log-linear histograms during a run; make_report() flattens the registry
// into RunReport::stats so the values reach the CSV export alongside the
// paper metrics.
//
// The histogram is log-linear (HdrHistogram-style): octaves (powers of two)
// split into a fixed number of linear sub-buckets, giving a bounded
// relative error (< 1/kSubBuckets) at any magnitude with a small fixed
// bucket table — recording is O(1) with no per-sample allocation.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dlaja::metrics {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Log-linear histogram over positive doubles. Non-positive samples are
/// tracked in count/sum/min/max but land in the lowest bucket.
class Histogram {
 public:
  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Approximate percentile (p in [0,100]): the geometric midpoint of the
  /// bucket holding the target rank, clamped to the observed [min, max].
  /// Relative bucket error is below 1/kSubBuckets (12.5%). An empty
  /// histogram reports 0.0 for every p (mirrors min()/max()/mean()).
  [[nodiscard]] double percentile(double p) const noexcept;

  /// Folds `other` into this histogram: bucket-wise addition of counts plus
  /// merged count/sum/min/max. Bucket layouts are identical by construction,
  /// so the merged percentiles match recording every sample into one
  /// histogram (up to summation order in sum_).
  void absorb(const Histogram& other);

 private:
  // 8 sub-buckets per octave over 2^-20 .. 2^40 (~1e-6 .. ~1e12): covers
  // microseconds-as-seconds up to terabyte-scale volumes.
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 40;
  static constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets;

  [[nodiscard]] static int bucket_index(double value) noexcept;
  [[nodiscard]] static double bucket_lower(int index) noexcept;

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> buckets_;  ///< sized lazily on first record()
};

/// Named counters and histograms. References returned by counter() and
/// histogram() stay valid for the registry's lifetime (node-based map).
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && histograms_.empty();
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Flattens to (name, value) pairs in deterministic (sorted) order:
  /// counters as-is, histograms expanded to .count/.mean/.p50/.p95/.max.
  [[nodiscard]] std::vector<std::pair<std::string, double>> flatten() const;

  /// Folds every counter and histogram of `other` into this registry,
  /// creating entries that don't exist yet. Used to merge per-shard
  /// registries into the master's after a sharded run.
  void absorb(const Registry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dlaja::metrics
