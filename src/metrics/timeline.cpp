#include "metrics/timeline.hpp"

#include <algorithm>
#include <ostream>

#include "util/csv.hpp"

namespace dlaja::metrics {

std::vector<std::vector<Interval>> busy_intervals(const MetricsCollector& collector,
                                                  std::size_t worker_count) {
  std::vector<std::vector<Interval>> result(worker_count);
  for (const JobRecord* job : collector.jobs_in_arrival_order()) {
    if (job->started == kNeverTick || job->finished == kNeverTick) continue;
    if (job->worker >= worker_count) continue;
    result[job->worker].push_back(Interval{job->started, job->finished, job->id});
  }
  for (auto& intervals : result) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  }
  return result;
}

double utilization(const std::vector<Interval>& intervals, Tick horizon) {
  if (horizon <= 0) return 0.0;
  Tick busy = 0;
  for (const Interval& interval : intervals) {
    const Tick begin = std::max<Tick>(interval.begin, 0);
    const Tick end = std::min(interval.end, horizon);
    if (end > begin) busy += end - begin;
  }
  return static_cast<double>(busy) / static_cast<double>(horizon);
}

Tick longest_idle_gap(const std::vector<Interval>& intervals, Tick horizon) {
  Tick cursor = 0;
  Tick longest = 0;
  for (const Interval& interval : intervals) {
    // Clamp to [0, horizon]: busy time past the horizon neither closes a
    // gap nor opens one (the contract is gaps *inside* the window).
    const Tick begin = std::min(interval.begin, horizon);
    if (begin > cursor) longest = std::max(longest, begin - cursor);
    cursor = std::max(cursor, std::min(interval.end, horizon));
    if (cursor >= horizon) break;
  }
  if (horizon > cursor) longest = std::max(longest, horizon - cursor);
  return longest;
}

UtilizationReport utilization_report(const MetricsCollector& collector,
                                     std::size_t worker_count, Tick horizon) {
  UtilizationReport report;
  const auto intervals = busy_intervals(collector, worker_count);
  report.per_worker.reserve(worker_count);
  double total = 0.0;
  double min_util = worker_count > 0 ? 1.0 : 0.0;
  for (const auto& worker_intervals : intervals) {
    const double u = utilization(worker_intervals, horizon);
    report.per_worker.push_back(u);
    total += u;
    min_util = std::min(min_util, u);
    report.longest_gap = std::max(report.longest_gap,
                                  longest_idle_gap(worker_intervals, horizon));
  }
  report.mean = worker_count > 0 ? total / static_cast<double>(worker_count) : 0.0;
  report.min = min_util;
  return report;
}

std::vector<ConcurrencyPoint> concurrency_series(const MetricsCollector& collector,
                                                 std::size_t worker_count, Tick horizon,
                                                 Tick step) {
  std::vector<ConcurrencyPoint> series;
  if (step <= 0 || horizon <= 0) return series;
  const auto intervals = busy_intervals(collector, worker_count);
  // Per-worker cursor into its sorted interval list.
  std::vector<std::size_t> cursor(worker_count, 0);
  for (Tick at = 0; at <= horizon; at += step) {
    std::uint32_t busy = 0;
    for (std::size_t w = 0; w < worker_count; ++w) {
      auto& c = cursor[w];
      const auto& list = intervals[w];
      while (c < list.size() && list[c].end <= at) ++c;
      if (c < list.size() && list[c].begin <= at && at < list[c].end) ++busy;
    }
    series.push_back(ConcurrencyPoint{at, busy});
  }
  return series;
}

void write_concurrency_csv(std::ostream& out, const std::vector<ConcurrencyPoint>& series) {
  CsvWriter csv(out);
  csv.write("time_s", "busy_workers");
  for (const ConcurrencyPoint& point : series) {
    csv.write(seconds_from_ticks(point.at), static_cast<std::uint64_t>(point.busy_workers));
  }
}

void write_jobs_csv(std::ostream& out, const MetricsCollector& collector) {
  CsvWriter csv(out);
  csv.write("job_id", "worker", "arrived_s", "assigned_s", "started_s", "finished_s",
            "cache_miss", "downloaded_mb", "bids_received", "offers_rejected");
  const auto stamp = [](Tick t) {
    return t == kNeverTick ? std::string{} : std::to_string(seconds_from_ticks(t));
  };
  for (const JobRecord* job : collector.jobs_in_arrival_order()) {
    csv.write(job->id,
              job->worker == static_cast<std::uint32_t>(-1)
                  ? std::string{}
                  : std::to_string(job->worker),
              stamp(job->arrived), stamp(job->assigned), stamp(job->started),
              stamp(job->finished), job->cache_miss ? "1" : "0", job->downloaded_mb,
              static_cast<std::uint64_t>(job->bids_received),
              static_cast<std::uint64_t>(job->offers_rejected));
  }
}

}  // namespace dlaja::metrics
