#include "metrics/collector.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlaja::metrics {

JobRecord& MetricsCollector::job(workflow::JobId id) {
  const auto [it, inserted] = jobs_.try_emplace(id);
  if (inserted) {
    it->second.id = id;
    order_.push_back(id);
  }
  return it->second;
}

const JobRecord* MetricsCollector::find_job(workflow::JobId id) const {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? &it->second : nullptr;
}

WorkerRecord& MetricsCollector::worker(std::uint32_t index) {
  if (index >= workers_.size()) {
    throw std::out_of_range("MetricsCollector::worker: bad index");
  }
  return workers_[index];
}

void MetricsCollector::absorb(const MetricsCollector& other) {
  if (workers_.size() != other.workers_.size()) {
    throw std::invalid_argument("MetricsCollector::absorb: worker table size mismatch");
  }
  for (const workflow::JobId id : other.order_) {
    const JobRecord& src = other.jobs_.at(id);
    JobRecord& dst = job(id);
    if (src.worker != static_cast<std::uint32_t>(-1)) dst.worker = src.worker;
    if (src.arrived != kNeverTick) dst.arrived = src.arrived;
    if (src.contest_opened != kNeverTick) dst.contest_opened = src.contest_opened;
    if (src.assigned != kNeverTick) dst.assigned = src.assigned;
    if (src.started != kNeverTick) dst.started = src.started;
    if (src.finished != kNeverTick) dst.finished = src.finished;
    if (src.cache_miss) dst.cache_miss = true;
    dst.downloaded_mb += src.downloaded_mb;
    if (src.winning_bid_s >= 0.0) dst.winning_bid_s = src.winning_bid_s;
    dst.bids_received += src.bids_received;
    dst.offers_rejected += src.offers_rejected;
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const WorkerRecord& src = other.workers_[w];
    WorkerRecord& dst = workers_[w];
    if (dst.name.empty()) dst.name = src.name;
    dst.jobs_completed += src.jobs_completed;
    dst.cache_misses += src.cache_misses;
    dst.cache_hits += src.cache_hits;
    dst.downloaded_mb += src.downloaded_mb;
    dst.busy_ticks += src.busy_ticks;
    dst.downloading_ticks += src.downloading_ticks;
    dst.bids_submitted += src.bids_submitted;
    dst.bids_won += src.bids_won;
    dst.offers_declined += src.offers_declined;
  }
  registry_.absorb(other.registry_);
  if (other.retired_.count > 0) {
    retired_.count += other.retired_.count;
    retired_.cache_misses += other.retired_.cache_misses;
    retired_.cache_hits += other.retired_.cache_hits;
    retired_.downloaded_mb += other.retired_.downloaded_mb;
    retired_.last_finished = std::max(retired_.last_finished, other.retired_.last_finished);
    retired_.turnaround_s.merge(other.retired_.turnaround_s);
    retired_.alloc_latency_s.merge(other.retired_.alloc_latency_s);
    retired_.queue_wait_s.merge(other.retired_.queue_wait_s);
    retired_.turnaround_hist.absorb(other.retired_.turnaround_hist);
  }
}

void MetricsCollector::retire_job(workflow::JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || !it->second.completed()) return;
  const JobRecord& job = it->second;

  // Mirror make_report()'s per-job classification exactly, so a streaming
  // run's report equals what the full sample would have produced (modulo
  // histogram-approximated percentiles).
  ++retired_.count;
  if (job.arrived != kNeverTick) {
    const double t = seconds_from_ticks(job.finished - job.arrived);
    retired_.turnaround_s.add(t);
    retired_.turnaround_hist.record(t);
    if (job.assigned != kNeverTick) {
      retired_.alloc_latency_s.add(seconds_from_ticks(job.assigned - job.arrived));
    }
  }
  if (job.assigned != kNeverTick && job.started != kNeverTick) {
    retired_.queue_wait_s.add(seconds_from_ticks(job.started - job.assigned));
  }
  if (job.cache_miss) {
    ++retired_.cache_misses;
  } else if (job.downloaded_mb == 0.0 && job.worker != static_cast<std::uint32_t>(-1)) {
    ++retired_.cache_hits;
  }
  retired_.downloaded_mb += job.downloaded_mb;
  retired_.last_finished = std::max(retired_.last_finished, job.finished);
  jobs_.erase(it);

  // order_ keeps tombstones until mostly dead, then compacts — amortized
  // O(1) per retirement, and arrival order of survivors is preserved.
  if (order_.size() > 64 && jobs_.size() < order_.size() / 2) {
    std::vector<workflow::JobId> live;
    live.reserve(jobs_.size());
    for (const workflow::JobId kept : order_) {
      if (jobs_.count(kept) > 0) live.push_back(kept);
    }
    order_.swap(live);
  }
}

std::vector<const JobRecord*> MetricsCollector::jobs_in_arrival_order() const {
  std::vector<const JobRecord*> result;
  result.reserve(jobs_.size());
  for (const workflow::JobId id : order_) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) result.push_back(&it->second);
  }
  return result;
}

std::uint64_t MetricsCollector::total_cache_misses() const noexcept {
  std::uint64_t total = retired_.cache_misses;
  for (const auto& [id, record] : jobs_) {
    if (record.cache_miss) ++total;
  }
  return total;
}

MegaBytes MetricsCollector::total_data_load_mb() const noexcept {
  MegaBytes total = retired_.downloaded_mb;
  for (const auto& [id, record] : jobs_) total += record.downloaded_mb;
  return total;
}

Tick MetricsCollector::last_completion() const noexcept {
  Tick last = retired_.last_finished;
  for (const auto& [id, record] : jobs_) {
    if (record.completed() && record.finished > last) last = record.finished;
  }
  return last;
}

std::uint64_t MetricsCollector::completed_jobs() const noexcept {
  std::uint64_t total = retired_.count;
  for (const auto& [id, record] : jobs_) {
    if (record.completed()) ++total;
  }
  return total;
}

}  // namespace dlaja::metrics
