#include "metrics/collector.hpp"

#include <stdexcept>

namespace dlaja::metrics {

JobRecord& MetricsCollector::job(workflow::JobId id) {
  const auto [it, inserted] = jobs_.try_emplace(id);
  if (inserted) {
    it->second.id = id;
    order_.push_back(id);
  }
  return it->second;
}

const JobRecord* MetricsCollector::find_job(workflow::JobId id) const {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? &it->second : nullptr;
}

WorkerRecord& MetricsCollector::worker(std::uint32_t index) {
  if (index >= workers_.size()) {
    throw std::out_of_range("MetricsCollector::worker: bad index");
  }
  return workers_[index];
}

std::vector<const JobRecord*> MetricsCollector::jobs_in_arrival_order() const {
  std::vector<const JobRecord*> result;
  result.reserve(order_.size());
  for (const workflow::JobId id : order_) result.push_back(&jobs_.at(id));
  return result;
}

std::uint64_t MetricsCollector::total_cache_misses() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.cache_miss) ++total;
  }
  return total;
}

MegaBytes MetricsCollector::total_data_load_mb() const noexcept {
  MegaBytes total = 0.0;
  for (const auto& [id, record] : jobs_) total += record.downloaded_mb;
  return total;
}

Tick MetricsCollector::last_completion() const noexcept {
  Tick last = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.completed() && record.finished > last) last = record.finished;
  }
  return last;
}

std::uint64_t MetricsCollector::completed_jobs() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.completed()) ++total;
  }
  return total;
}

}  // namespace dlaja::metrics
