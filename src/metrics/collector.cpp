#include "metrics/collector.hpp"

#include <stdexcept>

namespace dlaja::metrics {

JobRecord& MetricsCollector::job(workflow::JobId id) {
  const auto [it, inserted] = jobs_.try_emplace(id);
  if (inserted) {
    it->second.id = id;
    order_.push_back(id);
  }
  return it->second;
}

const JobRecord* MetricsCollector::find_job(workflow::JobId id) const {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? &it->second : nullptr;
}

WorkerRecord& MetricsCollector::worker(std::uint32_t index) {
  if (index >= workers_.size()) {
    throw std::out_of_range("MetricsCollector::worker: bad index");
  }
  return workers_[index];
}

void MetricsCollector::absorb(const MetricsCollector& other) {
  if (workers_.size() != other.workers_.size()) {
    throw std::invalid_argument("MetricsCollector::absorb: worker table size mismatch");
  }
  for (const workflow::JobId id : other.order_) {
    const JobRecord& src = other.jobs_.at(id);
    JobRecord& dst = job(id);
    if (src.worker != static_cast<std::uint32_t>(-1)) dst.worker = src.worker;
    if (src.arrived != kNeverTick) dst.arrived = src.arrived;
    if (src.contest_opened != kNeverTick) dst.contest_opened = src.contest_opened;
    if (src.assigned != kNeverTick) dst.assigned = src.assigned;
    if (src.started != kNeverTick) dst.started = src.started;
    if (src.finished != kNeverTick) dst.finished = src.finished;
    if (src.cache_miss) dst.cache_miss = true;
    dst.downloaded_mb += src.downloaded_mb;
    if (src.winning_bid_s >= 0.0) dst.winning_bid_s = src.winning_bid_s;
    dst.bids_received += src.bids_received;
    dst.offers_rejected += src.offers_rejected;
  }
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const WorkerRecord& src = other.workers_[w];
    WorkerRecord& dst = workers_[w];
    if (dst.name.empty()) dst.name = src.name;
    dst.jobs_completed += src.jobs_completed;
    dst.cache_misses += src.cache_misses;
    dst.cache_hits += src.cache_hits;
    dst.downloaded_mb += src.downloaded_mb;
    dst.busy_ticks += src.busy_ticks;
    dst.downloading_ticks += src.downloading_ticks;
    dst.bids_submitted += src.bids_submitted;
    dst.bids_won += src.bids_won;
    dst.offers_declined += src.offers_declined;
  }
  registry_.absorb(other.registry_);
}

std::vector<const JobRecord*> MetricsCollector::jobs_in_arrival_order() const {
  std::vector<const JobRecord*> result;
  result.reserve(order_.size());
  for (const workflow::JobId id : order_) result.push_back(&jobs_.at(id));
  return result;
}

std::uint64_t MetricsCollector::total_cache_misses() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.cache_miss) ++total;
  }
  return total;
}

MegaBytes MetricsCollector::total_data_load_mb() const noexcept {
  MegaBytes total = 0.0;
  for (const auto& [id, record] : jobs_) total += record.downloaded_mb;
  return total;
}

Tick MetricsCollector::last_completion() const noexcept {
  Tick last = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.completed() && record.finished > last) last = record.finished;
  }
  return last;
}

std::uint64_t MetricsCollector::completed_jobs() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [id, record] : jobs_) {
    if (record.completed()) ++total;
  }
  return total;
}

}  // namespace dlaja::metrics
