#include "metrics/report.hpp"

#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace dlaja::metrics {

RunReport make_report(const MetricsCollector& collector, Tick end_time) {
  RunReport report;
  report.exec_time_s = seconds_from_ticks(end_time);
  report.cache_misses = collector.total_cache_misses();
  report.data_load_mb = collector.total_data_load_mb();
  report.jobs_submitted = collector.job_count();
  report.jobs_completed = collector.completed_jobs();
  report.workers = collector.workers();

  RunningStats turnaround, alloc_latency, queue_wait;
  std::vector<double> turnarounds;
  std::uint64_t hits = 0, misses = 0;
  for (const JobRecord* job : collector.jobs_in_arrival_order()) {
    if (!job->completed()) continue;
    if (job->arrived != kNeverTick) {
      const double t = seconds_from_ticks(job->finished - job->arrived);
      turnaround.add(t);
      turnarounds.push_back(t);
      if (job->assigned != kNeverTick) {
        alloc_latency.add(seconds_from_ticks(job->assigned - job->arrived));
      }
    }
    if (job->assigned != kNeverTick && job->started != kNeverTick) {
      queue_wait.add(seconds_from_ticks(job->started - job->assigned));
    }
    if (job->cache_miss) {
      ++misses;
    } else if (job->downloaded_mb == 0.0 && job->worker != static_cast<std::uint32_t>(-1)) {
      ++hits;
    }
  }
  // Streaming runs retire completed records as they go; fold their
  // aggregates back in. When nothing was retired (every closed-batch run)
  // this block is skipped and the arithmetic below is bit-identical to the
  // pre-retirement code.
  const RetiredJobStats& retired = collector.retired();
  if (retired.count > 0) {
    turnaround.merge(retired.turnaround_s);
    alloc_latency.merge(retired.alloc_latency_s);
    queue_wait.merge(retired.queue_wait_s);
    hits += retired.cache_hits;
    misses += retired.cache_misses;
  }
  report.avg_turnaround_s = turnaround.mean();
  report.avg_alloc_latency_s = alloc_latency.mean();
  report.avg_queue_wait_s = queue_wait.mean();
  if (retired.count > 0) {
    // Percentiles come from the log-linear histogram (<12.5% error) since
    // the exact sample is gone; live stragglers are folded in too.
    Histogram merged = retired.turnaround_hist;
    for (const double t : turnarounds) merged.record(t);
    report.p50_turnaround_s = merged.percentile(50.0);
    report.p95_turnaround_s = merged.percentile(95.0);
    report.p99_turnaround_s = merged.percentile(99.0);
  } else {
    const Summary turnaround_summary = summarize(turnarounds);
    report.p50_turnaround_s = turnaround_summary.p50;
    report.p95_turnaround_s = turnaround_summary.p95;
    report.p99_turnaround_s = turnaround_summary.p99;
  }
  const std::uint64_t resource_jobs = hits + misses;
  report.cache_hit_rate =
      resource_jobs > 0 ? static_cast<double>(hits) / static_cast<double>(resource_jobs) : 0.0;

  std::vector<double> busy;
  busy.reserve(report.workers.size());
  for (const WorkerRecord& w : report.workers) {
    busy.push_back(static_cast<double>(w.busy_ticks));
  }
  report.fairness_index = jain_fairness(busy);
  report.stats = collector.registry().flatten();
  return report;
}

double jain_fairness(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

void write_reports_csv(std::ostream& out, const std::vector<RunReport>& reports) {
  CsvWriter csv(out);
  // Registry stats ride as trailing columns so downstream readers of the
  // fixed schema keep working. The first report's stat names define the
  // columns (runs in one experiment share a registry shape).
  const std::vector<std::pair<std::string, double>>* stat_schema =
      reports.empty() ? nullptr : &reports.front().stats;

  CsvRow header = {"scheduler", "workload", "worker_config", "iteration", "seed",
                   "exec_time_s", "cache_misses", "data_load_mb", "jobs_submitted",
                   "jobs_completed", "jobs_retried", "jobs_dead_lettered", "jobs_lost",
                   "avg_turnaround_s", "p50_turnaround_s",
                   "p95_turnaround_s", "p99_turnaround_s", "avg_alloc_latency_s",
                   "avg_queue_wait_s", "cache_hit_rate", "fairness_index",
                   "messages_delivered", "wall_time_s"};
  if (stat_schema != nullptr) {
    for (const auto& [name, value] : *stat_schema) header.push_back(name);
  }
  csv.write_row(header);

  for (const RunReport& r : reports) {
    CsvRow row;
    row.reserve(header.size());
    auto add = [&row](const auto& value) { row.push_back(CsvWriter::to_field(value)); };
    row.push_back(r.scheduler);
    row.push_back(r.workload);
    row.push_back(r.worker_config);
    add(r.iteration);
    add(r.seed);
    add(r.exec_time_s);
    add(r.cache_misses);
    add(r.data_load_mb);
    add(r.jobs_submitted);
    add(r.jobs_completed);
    add(r.jobs_retried);
    add(r.jobs_dead_lettered);
    add(r.jobs_lost);
    add(r.avg_turnaround_s);
    add(r.p50_turnaround_s);
    add(r.p95_turnaround_s);
    add(r.p99_turnaround_s);
    add(r.avg_alloc_latency_s);
    add(r.avg_queue_wait_s);
    add(r.cache_hit_rate);
    add(r.fairness_index);
    add(r.messages_delivered);
    add(r.wall_time_s);
    if (stat_schema != nullptr) {
      for (const auto& [name, unused] : *stat_schema) add(r.stat(name));
    }
    csv.write_row(row);
  }
}

void Aggregator::add(const std::string& key, const RunReport& report) {
  const auto [it, inserted] = cells_.try_emplace(key);
  if (inserted) order_.push_back(key);
  it->second.exec_time_s.add(report.exec_time_s);
  it->second.cache_misses.add(static_cast<double>(report.cache_misses));
  it->second.data_load_mb.add(report.data_load_mb);
  it->second.alloc_latency_s.add(report.avg_alloc_latency_s);
}

const AggregateCell& Aggregator::cell(const std::string& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) throw std::out_of_range("Aggregator: unknown key " + key);
  return it->second;
}

bool Aggregator::has(const std::string& key) const { return cells_.count(key) > 0; }

}  // namespace dlaja::metrics
