#pragma once
// Timeline analysis: reconstructs per-worker busy intervals from the job
// records and derives utilisation, idle gaps and a cluster-concurrency
// series. Used by the deeper benches to show *where* a scheduler loses
// time (idle tails vs transfer stalls), which aggregate counters hide.

#include <iosfwd>
#include <vector>

#include "metrics/collector.hpp"

namespace dlaja::metrics {

/// One busy interval of a worker (a job's start..finish).
struct Interval {
  Tick begin = 0;
  Tick end = 0;
  workflow::JobId job = 0;

  [[nodiscard]] Tick length() const noexcept { return end - begin; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Busy intervals per worker, sorted by start time. Jobs without a start
/// or finish timestamp are skipped.
[[nodiscard]] std::vector<std::vector<Interval>> busy_intervals(
    const MetricsCollector& collector, std::size_t worker_count);

/// Fraction of [0, horizon] the intervals cover (intervals are naturally
/// disjoint per worker — the worker is a FIFO server). 0 if horizon == 0.
[[nodiscard]] double utilization(const std::vector<Interval>& intervals, Tick horizon);

/// Longest idle gap inside [0, horizon] (including leading/trailing gaps).
[[nodiscard]] Tick longest_idle_gap(const std::vector<Interval>& intervals, Tick horizon);

/// Per-worker utilisation summary of a run.
struct UtilizationReport {
  std::vector<double> per_worker;   ///< busy fraction per worker
  double mean = 0.0;                ///< average across workers
  double min = 0.0;                 ///< the most idle worker
  Tick longest_gap = 0;             ///< worst idle gap anywhere
};

/// Computes the utilisation report against `horizon` (use the run's
/// last_completion()).
[[nodiscard]] UtilizationReport utilization_report(const MetricsCollector& collector,
                                                   std::size_t worker_count, Tick horizon);

/// One sample of cluster concurrency.
struct ConcurrencyPoint {
  Tick at = 0;
  std::uint32_t busy_workers = 0;
};

/// Number of busy workers sampled every `step` ticks over [0, horizon].
[[nodiscard]] std::vector<ConcurrencyPoint> concurrency_series(
    const MetricsCollector& collector, std::size_t worker_count, Tick horizon, Tick step);

/// CSV export: time_s,busy_workers.
void write_concurrency_csv(std::ostream& out, const std::vector<ConcurrencyPoint>& series);

/// Per-job Gantt export (one row per recorded job, arrival order):
/// job_id,worker,arrived_s,assigned_s,started_s,finished_s,cache_miss,
/// downloaded_mb,bids_received,offers_rejected. Unset timestamps are empty.
void write_jobs_csv(std::ostream& out, const MetricsCollector& collector);

}  // namespace dlaja::metrics
