#include "sched/spark_like.hpp"

#include <algorithm>
#include <any>

#include "obs/trace.hpp"

namespace dlaja::sched {

using cluster::JobAssignment;
using cluster::WorkerIndex;

void SparkLikeScheduler::attach(const SchedulerContext& ctx) {
  ctx_ = ctx;
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    cluster::WorkerNode* worker = ctx_.workers[w];
    if (worker == nullptr) continue;  // outside this context's partition
    ctx_.broker->register_mailbox(
        ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
        [worker](const msg::Message& message) {
          worker->enqueue(message.payload.as<JobAssignment>().job);
        });
  }

  if (ctx_.probes != nullptr) {
    // Tasks of the current wave still running (control shard).
    ctx_.probes->add_gauge("sched.wave_outstanding", 0, [this] {
      return static_cast<double>(outstanding_);
    });
  }
}

WorkerIndex SparkLikeScheduler::place(const workflow::Job& job) {
  const std::size_t n = ctx_.worker_count();
  // Even Spark's driver knows which executors are lost: placement skips
  // failed workers (probing forward from the policy's first choice).
  WorkerIndex start = 0;
  switch (config_.placement) {
    case SparkLikeConfig::Placement::kRoundRobin:
      start = static_cast<WorkerIndex>(cursor_++ % n);
      break;
    case SparkLikeConfig::Placement::kHashByResource:
      start = job.needs_resource() ? static_cast<WorkerIndex>(job.resource % n)
                                   : static_cast<WorkerIndex>(cursor_++ % n);
      break;
  }
  const auto excluded = static_cast<WorkerIndex>(job.excluded_worker);
  WorkerIndex excluded_alive = cluster::kNoWorker;
  for (std::size_t probe = 0; probe < n; ++probe) {
    const auto w = static_cast<WorkerIndex>((start + probe) % n);
    if (ctx_.workers[w] == nullptr || ctx_.workers[w]->failed()) continue;
    if (w == excluded) {
      excluded_alive = w;  // soft exclusion: only if nobody else is alive
      continue;
    }
    return w;
  }
  if (excluded_alive != cluster::kNoWorker) return excluded_alive;
  // All workers dead. With a lifecycle the job goes back for retry or
  // dead-lettering; without one keep the legacy behaviour (the send is
  // dropped at delivery).
  return ctx_.notify_unassignable ? cluster::kNoWorker : start;
}

bool SparkLikeScheduler::assign(const workflow::Job& job) {
  const WorkerIndex w = place(job);
  if (w == cluster::kNoWorker) {
    ctx_.notify_unassignable(job);  // place() returns kNoWorker only when set
    return false;
  }
  metrics::JobRecord& record = ctx_.metrics->job(job.id);
  record.assigned = ctx_.sim->now();
  record.worker = w;
  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
                    JobAssignment{job});
  if (ctx_.notify_assigned) {
    ctx_.notify_assigned(job.id, w, ctx_.workers[w]->estimate_bid_s(job));
  }
  return true;
}

void SparkLikeScheduler::ensure_trace_names() {
  if (trace_names_ready_) return;
  trace_names_ready_ = true;
  trace_wave_ = ctx_.sim->tracer()->intern("wave");
}

void SparkLikeScheduler::dispatch_wave() {
  const std::size_t wave = std::min(pending_.size(), std::max<std::size_t>(
                                                         1, ctx_.active_workers()));
  std::size_t launched = 0;
  for (std::size_t i = 0; i < wave; ++i) {
    if (assign(pending_.front())) ++launched;
    pending_.pop_front();
  }
  outstanding_ = launched;
  wave_started_ = ctx_.sim->now();
  ++wave_index_;
  ctx_.metrics->registry().counter("sched.waves").add(1);
  ctx_.metrics->registry().histogram("sched.wave_size").record(static_cast<double>(wave));
  // Every task of this wave went to the lifecycle (all workers dead): keep
  // draining the backlog rather than waiting for a completion that will
  // never come. Each round pops at least one job, so this terminates.
  if (launched == 0 && !pending_.empty()) schedule_dispatch();
}

void SparkLikeScheduler::schedule_dispatch() {
  if (dispatch_pending_) return;
  dispatch_pending_ = true;
  ctx_.sim->schedule_after(0, [this] {
    dispatch_pending_ = false;
    if (outstanding_ == 0 && !pending_.empty()) dispatch_wave();
  });
}

void SparkLikeScheduler::submit(const workflow::Job& job) {
  if (!config_.wave_barrier) {
    assign(job);
    return;
  }
  pending_.push_back(job);
  if (outstanding_ == 0) schedule_dispatch();
}

void SparkLikeScheduler::on_completion(const cluster::CompletionReport& report) {
  (void)report;
  if (!config_.wave_barrier || outstanding_ == 0) return;
  wave_slot_freed();
}

void SparkLikeScheduler::on_assignment_void(workflow::JobId id, cluster::WorkerIndex w) {
  (void)id;
  (void)w;
  // A voided assignment will never report completion; release its wave slot
  // or the barrier deadlocks. Best-effort: a void landing after its wave
  // already closed is simply ignored (outstanding_ guard).
  if (!config_.wave_barrier || outstanding_ == 0) return;
  wave_slot_freed();
}

void SparkLikeScheduler::wave_slot_freed() {
  if (--outstanding_ == 0) {
    // The allocation round closes at the wave barrier: slowest task gates it.
    if (DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) {
      ensure_trace_names();
      ctx_.sim->tracer()->span(obs::Component::kSched, trace_wave_, 0, wave_started_,
                               ctx_.sim->now(), wave_index_);
    }
    ctx_.metrics->registry()
        .histogram("sched.wave_s")
        .record(seconds_from_ticks(ctx_.sim->now() - wave_started_));
    if (!pending_.empty()) schedule_dispatch();
  }
}

}  // namespace dlaja::sched
