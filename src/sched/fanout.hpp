#pragma once
// Contest fan-out policy for the bidding scheduler.
//
// `full` is the paper's protocol: every contest is broadcast to every
// subscribed worker and the quorum is "all active workers have bid" —
// bit-identical to the pre-policy implementation and the default.
//
// `probe:k` is the Dodoor-style scale path (arXiv:2510.12889): each contest
// solicits a seeded random k-subset of the currently alive workers and
// closes once those k have bid (or the window elapses). Contest cost drops
// from O(workers) messages to O(k), which is what lets a single master run
// 1,000+ worker fleets. This is an extension beyond the source paper.

#include <cstdint>
#include <string>

namespace dlaja::sched {

struct FanoutPolicy {
  enum class Mode : std::uint8_t {
    kFull,   ///< broadcast to all subscribers (paper-faithful, default)
    kProbe,  ///< solicit a random k-subset of alive workers
  };

  Mode mode = Mode::kFull;
  std::uint32_t probe_k = 4;

  [[nodiscard]] bool probing() const noexcept { return mode == Mode::kProbe; }

  /// Parses "full" or "probe:K" (K >= 1). Throws std::invalid_argument.
  [[nodiscard]] static FanoutPolicy parse(const std::string& text);

  /// "full" or "probe:K" — the inverse of parse().
  [[nodiscard]] std::string describe() const;

  bool operator==(const FanoutPolicy&) const = default;
};

}  // namespace dlaja::sched
