#pragma once
// Contest fan-out policy for the bidding scheduler.
//
// `full` is the paper's protocol: every contest is broadcast to every
// subscribed worker and the quorum is "all active workers have bid" —
// bit-identical to the pre-policy implementation and the default.
//
// `probe:k` is the Dodoor-style scale path (arXiv:2510.12889): each contest
// solicits a seeded random k-subset of the currently alive workers and
// closes once those k have bid (or the window elapses). Contest cost drops
// from O(workers) messages to O(k), which is what lets a single master run
// 1,000+ worker fleets. This is an extension beyond the source paper.
//
// `cached:k` goes one step further (Dodoor's load cache): the master keeps
// a per-worker load/locality cache refreshed asynchronously and places each
// job directly on the best of k seeded-random cached candidates — O(1)
// messages per job, no solicit round-trip. The placed worker may *decline*
// a stale placement (late binding), which triggers exactly one fallback
// `probe:k` re-contest, so correctness never depends on cache freshness.

#include <cstdint>
#include <string>

namespace dlaja::sched {

struct FanoutPolicy {
  enum class Mode : std::uint8_t {
    kFull,    ///< broadcast to all subscribers (paper-faithful, default)
    kProbe,   ///< solicit a random k-subset of alive workers
    kCached,  ///< place directly on cached load estimates, probe on decline
  };

  Mode mode = Mode::kFull;
  /// Candidate-set size: solicited workers per contest (probe) or cached
  /// candidates per placement and fallback probes per decline (cached).
  std::uint32_t probe_k = 4;

  [[nodiscard]] bool probing() const noexcept { return mode == Mode::kProbe; }
  [[nodiscard]] bool cached() const noexcept { return mode == Mode::kCached; }

  /// True when contests solicit a k-subset instead of broadcasting: probe
  /// mode always, cached mode for its decline-fallback re-contests.
  [[nodiscard]] bool contest_probes() const noexcept { return mode != Mode::kFull; }

  /// Parses "full", "probe:K" or "cached:K" (K >= 1). Throws
  /// std::invalid_argument listing the valid modes.
  [[nodiscard]] static FanoutPolicy parse(const std::string& text);

  /// "full", "probe:K" or "cached:K" — the inverse of parse().
  [[nodiscard]] std::string describe() const;

  bool operator==(const FanoutPolicy&) const = default;
};

}  // namespace dlaja::sched
