#include "sched/fanout.hpp"

#include <stdexcept>

namespace dlaja::sched {

namespace {

constexpr const char* kValidModes = "'full', 'probe:K' or 'cached:K' (K >= 1)";

std::uint32_t parse_k(const std::string& text, const std::string& count, const char* mode) {
  std::size_t used = 0;
  unsigned long k = 0;
  try {
    k = std::stoul(count, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != count.size() || k == 0) {
    throw std::invalid_argument("bad fan-out '" + text + "': " + mode +
                                ":K needs K >= 1 (valid modes: " + kValidModes + ")");
  }
  return static_cast<std::uint32_t>(k);
}

}  // namespace

FanoutPolicy FanoutPolicy::parse(const std::string& text) {
  FanoutPolicy policy;
  if (text == "full") return policy;
  if (text.rfind("probe:", 0) == 0) {
    policy.mode = Mode::kProbe;
    policy.probe_k = parse_k(text, text.substr(6), "probe");
    return policy;
  }
  if (text.rfind("cached:", 0) == 0) {
    policy.mode = Mode::kCached;
    policy.probe_k = parse_k(text, text.substr(7), "cached");
    return policy;
  }
  throw std::invalid_argument("bad fan-out '" + text +
                              "' (valid modes: " + std::string(kValidModes) + ")");
}

std::string FanoutPolicy::describe() const {
  switch (mode) {
    case Mode::kProbe: return "probe:" + std::to_string(probe_k);
    case Mode::kCached: return "cached:" + std::to_string(probe_k);
    case Mode::kFull: break;
  }
  return "full";
}

}  // namespace dlaja::sched
