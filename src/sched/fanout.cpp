#include "sched/fanout.hpp"

#include <stdexcept>

namespace dlaja::sched {

FanoutPolicy FanoutPolicy::parse(const std::string& text) {
  FanoutPolicy policy;
  if (text == "full") return policy;
  if (text.rfind("probe:", 0) == 0) {
    const std::string count = text.substr(6);
    std::size_t used = 0;
    unsigned long k = 0;
    try {
      k = std::stoul(count, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != count.size() || k == 0) {
      throw std::invalid_argument("bad fan-out '" + text + "': probe:K needs K >= 1");
    }
    policy.mode = Mode::kProbe;
    policy.probe_k = static_cast<std::uint32_t>(k);
    return policy;
  }
  throw std::invalid_argument("bad fan-out '" + text + "' (expected 'full' or 'probe:K')");
}

std::string FanoutPolicy::describe() const {
  if (mode == Mode::kFull) return "full";
  return "probe:" + std::to_string(probe_k);
}

}  // namespace dlaja::sched
