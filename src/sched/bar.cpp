#include "sched/bar.hpp"

#include <algorithm>
#include <any>
#include <cassert>
#include <limits>

namespace dlaja::sched {

using cluster::JobAssignment;
using cluster::WorkerIndex;

void BarScheduler::attach(const SchedulerContext& ctx) {
  ctx_ = ctx;
  known_.assign(ctx_.worker_count(), {});
  est_free_at_.assign(ctx_.worker_count(), 0);
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    cluster::WorkerNode* worker = ctx_.workers[w];
    if (worker == nullptr) continue;  // outside this context's partition
    ctx_.broker->register_mailbox(
        ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
        [worker](const msg::Message& message) {
          worker->enqueue(message.payload.as<JobAssignment>().job);
        });
  }
}

bool BarScheduler::is_local(WorkerIndex w, const workflow::Job& job) const {
  return !job.needs_resource() || known_[w].count(job.resource) > 0;
}

double BarScheduler::cost_s(WorkerIndex w, const workflow::Job& job) const {
  const cluster::WorkerConfig& config = ctx_.workers[w]->config();
  double cost = job.process_mb / std::max(config.rw_mbps, 1e-9) +
                seconds_from_ticks(job.fixed_cost);
  if (!is_local(w, job)) {
    cost += job.resource_size_mb / std::max(config.network_mbps, 1e-9);
  }
  return cost;
}

double BarScheduler::load_s(WorkerIndex w) const {
  const Tick remaining = est_free_at_[w] - ctx_.sim->now();
  return remaining > 0 ? seconds_from_ticks(remaining) : 0.0;
}

void BarScheduler::submit(const workflow::Job& job) {
  batch_.push_back(job);
  if (!batch_scheduled_) {
    batch_scheduled_ = true;
    ctx_.sim->schedule_after(ticks_from_seconds(config_.batch_window_s), [this] {
      batch_scheduled_ = false;
      process_batch();
    });
  }
}

void BarScheduler::on_completion(const cluster::CompletionReport& report) {
  (void)report;  // loads decay with simulated time via est_free_at_
}

void BarScheduler::process_batch() {
  if (batch_.empty()) return;
  ++stats_.batches;
  std::vector<workflow::Job> jobs;
  jobs.swap(batch_);
  // Largest first: classic LPT ordering tightens the phase-2 makespan.
  std::sort(jobs.begin(), jobs.end(), [](const workflow::Job& a, const workflow::Job& b) {
    if (a.process_mb != b.process_mb) return a.process_mb > b.process_mb;
    return a.id < b.id;
  });

  const std::size_t n = ctx_.worker_count();
  // Working copy of loads; assignment[i] = worker for jobs[i].
  std::vector<double> load(n);
  for (WorkerIndex w = 0; w < n; ++w) {
    load[w] = (ctx_.workers[w] == nullptr || ctx_.workers[w]->failed())
                  ? std::numeric_limits<double>::infinity()
                  : load_s(w);
  }
  std::vector<WorkerIndex> assignment(jobs.size(), cluster::kNoWorker);
  // The batch evolves the placement map as it assigns (a job's download
  // makes the resource local for later jobs in the same batch).
  std::vector<std::unordered_set<storage::ResourceId>> local = known_;

  // --- phase 1: maximum locality ---------------------------------------
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const workflow::Job& job = jobs[i];
    const auto excluded = static_cast<WorkerIndex>(job.excluded_worker);
    bool excluded_alive = false;
    WorkerIndex best = cluster::kNoWorker;
    double best_finish = std::numeric_limits<double>::infinity();
    bool local_hit = false;
    // Least-loaded holder first. A retry's excluded worker is a soft
    // preference: skipped here, used below only if nothing else is alive.
    for (WorkerIndex w = 0; w < n; ++w) {
      if (ctx_.workers[w] == nullptr || ctx_.workers[w]->failed()) continue;
      if (w == excluded) {
        excluded_alive = true;
        continue;
      }
      if (!job.needs_resource() || local[w].count(job.resource) > 0) {
        const double finish = load[w] + cost_s(w, job);
        if (finish < best_finish) {
          best_finish = finish;
          best = w;
        }
      }
    }
    if (best != cluster::kNoWorker) {
      local_hit = true;
    } else {
      // No holder: globally least completion time (cost_s charges the
      // transfer for non-local placements).
      for (WorkerIndex w = 0; w < n; ++w) {
        if (ctx_.workers[w] == nullptr || ctx_.workers[w]->failed() || w == excluded) continue;
        const double finish = load[w] + cost_s(w, job);
        if (finish < best_finish) {
          best_finish = finish;
          best = w;
        }
      }
    }
    if (best == cluster::kNoWorker && excluded_alive) best = excluded;
    if (best == cluster::kNoWorker && !ctx_.notify_unassignable) {
      // All workers failed: legacy blind dispatch (to the first worker this
      // context can see).
      for (WorkerIndex w = 0; w < n; ++w) {
        if (ctx_.workers[w] != nullptr) {
          best = w;
          break;
        }
      }
    }
    if (best == cluster::kNoWorker) {
      // All workers dead and a lifecycle is attached: let it retry or
      // dead-letter instead of dispatching into a void.
      continue;
    }
    if (local_hit) {
      ++stats_.local_assignments;
    } else {
      ++stats_.remote_assignments;
    }
    assignment[i] = best;
    // Recompute against the evolving local map: the transfer may now be free.
    double cost = jobs[i].process_mb /
                      std::max(ctx_.workers[best]->config().rw_mbps, 1e-9) +
                  seconds_from_ticks(jobs[i].fixed_cost);
    if (job.needs_resource() && local[best].count(job.resource) == 0) {
      cost += job.resource_size_mb /
              std::max(ctx_.workers[best]->config().network_mbps, 1e-9);
      local[best].insert(job.resource);
    }
    load[best] += cost;
  }

  // --- phase 2: balance-reduce ------------------------------------------
  for (std::uint32_t move = 0; move < config_.max_rebalance_moves; ++move) {
    const auto max_it = std::max_element(load.begin(), load.end());
    const auto min_it = std::min_element(load.begin(), load.end());
    const auto from = static_cast<WorkerIndex>(max_it - load.begin());
    const auto to = static_cast<WorkerIndex>(min_it - load.begin());
    if (from == to) break;
    // Find a job on `from` whose move shrinks the makespan.
    bool moved = false;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (assignment[i] != from) continue;
      const double cost_from = cost_s(from, jobs[i]);
      // Moving to `to` pays a transfer unless `to` holds the data.
      double cost_to = jobs[i].process_mb /
                           std::max(ctx_.workers[to]->config().rw_mbps, 1e-9) +
                       seconds_from_ticks(jobs[i].fixed_cost);
      if (jobs[i].needs_resource() && local[to].count(jobs[i].resource) == 0) {
        cost_to += jobs[i].resource_size_mb /
                   std::max(ctx_.workers[to]->config().network_mbps, 1e-9);
      }
      const double new_from = load[from] - cost_from;
      const double new_to = load[to] + cost_to;
      if (std::max(new_from, new_to) + 1e-9 < load[from]) {
        assignment[i] = to;
        load[from] = new_from;
        load[to] = new_to;
        if (jobs[i].needs_resource()) local[to].insert(jobs[i].resource);
        ++stats_.rebalance_moves;
        moved = true;
        break;
      }
    }
    if (!moved) break;
  }

  // --- dispatch -----------------------------------------------------------
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (assignment[i] == cluster::kNoWorker) {
      ctx_.notify_unassignable(jobs[i]);
      continue;
    }
    dispatch(assignment[i], jobs[i]);
  }
  // Refresh drain estimates from the final plan.
  for (WorkerIndex w = 0; w < n; ++w) {
    if (ctx_.workers[w] != nullptr && !ctx_.workers[w]->failed()) {
      est_free_at_[w] = ctx_.sim->now() + ticks_from_seconds(load[w]);
    }
  }
}

void BarScheduler::dispatch(WorkerIndex w, const workflow::Job& job) {
  assert(w < ctx_.worker_count());
  if (job.needs_resource()) known_[w].insert(job.resource);
  metrics::JobRecord& record = ctx_.metrics->job(job.id);
  record.assigned = ctx_.sim->now();
  record.worker = w;
  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
                    JobAssignment{job});
  if (ctx_.notify_assigned) {
    ctx_.notify_assigned(job.id, w, ctx_.workers[w]->estimate_bid_s(job));
  }
}

}  // namespace dlaja::sched
