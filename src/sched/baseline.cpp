#include "sched/baseline.hpp"

#include <any>
#include <cassert>

#include "obs/trace.hpp"

namespace dlaja::sched {

using cluster::JobOffer;
using cluster::OfferResponse;
using cluster::WorkerIndex;
using cluster::WorkRequest;

void BaselineScheduler::attach_extra() {
  declines_.assign(ctx_.worker_count(), {});
  request_pending_.assign(ctx_.worker_count(), false);

  // Workers evaluate offers locally (this is where the "opinion" lives).
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    if (ctx_.workers[w] == nullptr) continue;  // outside this context's partition
    ctx_.broker->register_mailbox(
        ctx_.worker_nodes[w], cluster::mailboxes::kOffers,
        [this, w](const msg::Message& message) {
          if (message.payload.type() == typeid(cluster::NoWorkNotice)) {
            request_pending_[w] = false;
            worker_request(w);
            return;
          }
          worker_handle_offer(w, message.payload.as<JobOffer>());
        });
  }

  ctx_.broker->register_mailbox(
      ctx_.master_node, cluster::mailboxes::kOfferResponses,
      [this](const msg::Message& message) {
        master_handle_response(message.payload.as<OfferResponse>());
      });

  if (ctx_.probes != nullptr) {
    // Offers the master sent and has not heard back about (control shard).
    ctx_.probes->add_gauge("sched.offers_in_flight", 0, [this] {
      return static_cast<double>(in_flight_.size());
    });
  }
}

void BaselineScheduler::ensure_trace_names() {
  if (trace_names_ready_) return;
  trace_names_ready_ = true;
  trace_accept_ = ctx_.sim->tracer()->intern("offer_accept");
  trace_reject_ = ctx_.sim->tracer()->intern("offer_reject");
}

bool BaselineScheduler::has_capacity(WorkerIndex w) const {
  const cluster::WorkerNode* worker = ctx_.workers[w];
  const std::size_t in_hand = worker->queue_length() + worker->busy_slots();
  return in_hand < worker->config().slots + static_cast<std::size_t>(config_.prefetch_depth);
}

void BaselineScheduler::worker_request(WorkerIndex w) {
  if (request_pending_[w]) return;
  cluster::WorkerNode* worker = ctx_.workers[w];
  if (worker == nullptr || worker->failed() || !has_capacity(w)) return;
  request_pending_[w] = true;
  const Tick heartbeat = ticks_from_millis(worker->config().heartbeat_ms);
  ctx_.sim->schedule_after(heartbeat, [this, w] {
    cluster::WorkerNode* again = ctx_.workers[w];
    if (again->failed() || !has_capacity(w)) {
      request_pending_[w] = false;
      return;
    }
    // The flag stays set until the master answers (offer) or the worker is
    // parked and later served — there is exactly one request in flight.
    ctx_.broker->send(ctx_.worker_nodes[w], ctx_.master_node,
                      cluster::mailboxes::kWorkRequests, WorkRequest{w});
  });
}

namespace {
/// Fault injection: how long the master waits for an offer's response before
/// reclaiming the job. Generous versus the heartbeat so it only fires when
/// the offer or its response was actually lost.
constexpr double kOfferTimeoutS = 10.0;
}  // namespace

void BaselineScheduler::handle_work_request(WorkerIndex w) {
  // The requesting worker pulls the job at the head of the master's queue.
  assert(!queue_.empty());
  workflow::Job job = queue_.front();
  queue_.pop_front();

  const std::uint64_t offer_id = next_offer_++;
  JobOffer offer;
  offer.offer = offer_id;
  offer.job = job;
  offer.round = ctx_.metrics->job(job.id).offers_rejected;
  in_flight_.emplace(offer_id, PendingOffer{std::move(job), ctx_.sim->now()});
  ++stats_.offers_made;
  ctx_.metrics->registry().counter("sched.offers").add(1);
  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[w], cluster::mailboxes::kOffers,
                    offer);
  if (ctx_.fault_aware) {
    auto expire = [this, offer_id] { expire_offer(offer_id); };
    static_assert(sim::InlineAction::fits_inline<decltype(expire)>());
    ctx_.sim->schedule_after(ticks_from_seconds(kOfferTimeoutS), std::move(expire));
  }
}

void BaselineScheduler::expire_offer(std::uint64_t offer_id) {
  const auto it = in_flight_.find(offer_id);
  if (it == in_flight_.end()) return;  // answered in time
  workflow::Job job = std::move(it->second.job);
  in_flight_.erase(it);
  ++stats_.offers_timed_out;
  // Back to the head: the job keeps its place while another worker is found.
  // If the worker did accept and only the response was lost, the re-offer
  // causes at most a duplicate execution — at-least-once, never lost.
  queue_.push_front(std::move(job));
  dispatch_parked();
  arm_watchdog();
}

void BaselineScheduler::watchdog_poke(WorkerIndex w) {
  // A dropped offer leaves request_pending_ stuck true and the worker mute;
  // forget it and poll again (worker_request dedupes healthy chains only
  // when the flag is accurate, and a spurious duplicate is harmless).
  request_pending_[w] = false;
  worker_request(w);
}

void BaselineScheduler::worker_handle_offer(WorkerIndex w, const JobOffer& offer) {
  request_pending_[w] = false;
  cluster::WorkerNode* worker = ctx_.workers[w];
  if (worker == nullptr || worker->failed()) return;  // the offer is lost with the worker

  auto& declined = declines_[w];
  const auto it = declined.find(offer.job.id);
  const std::uint32_t decline_count = it != declined.end() ? it->second : 0;

  // Acceptance criteria (application-defined in Crossflow; data locality
  // here): accept when the data is local, when the job needs no data, or
  // when this worker has exhausted its declines for the job. A lifecycle
  // retry's excluded worker (the one that just failed the job) declines
  // until the cap forces it — soft exclusion, so a lone survivor still
  // takes the job instead of livelocking.
  const bool excluded = offer.job.excluded_worker == w;
  const bool must_accept = decline_count >= config_.max_declines_per_worker;
  const bool accept = (worker->has_local(offer.job) && !excluded) || must_accept;

  OfferResponse response;
  response.offer = offer.offer;
  response.job_id = offer.job.id;
  response.worker = w;
  response.accepted = accept;

  if (accept) {
    if (must_accept && !worker->has_local(offer.job)) ++stats_.forced_accepts;
    // The worker already holds the pulled job: acceptance *is* the
    // allocation decision, so stamp the assignment here and start work;
    // the response only informs the master.
    metrics::JobRecord& record = ctx_.metrics->job(offer.job.id);
    record.assigned = ctx_.sim->now();
    record.worker = w;
    worker->enqueue(offer.job);
    if (ctx_.notify_assigned) {
      ctx_.notify_assigned(offer.job.id, w, worker->estimate_bid_s(offer.job));
    }
  } else {
    declined[offer.job.id] = decline_count + 1;
    ++ctx_.metrics->worker(w).offers_declined;
  }
  ctx_.broker->send(ctx_.worker_nodes[w], ctx_.master_node,
                    cluster::mailboxes::kOfferResponses, response);
  // Whether the job was taken or returned, the worker may still have (or
  // have regained) capacity: keep pulling, one heartbeat at a time.
  worker_request(w);
}

void BaselineScheduler::master_handle_response(const OfferResponse& response) {
  const auto it = in_flight_.find(response.offer);
  if (it == in_flight_.end()) return;  // duplicate/unknown
  workflow::Job job = std::move(it->second.job);
  const Tick offered_at = it->second.offered_at;
  in_flight_.erase(it);

  if (DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) {
    ensure_trace_names();
    ctx_.sim->tracer()->span(obs::Component::kSched,
                             response.accepted ? trace_accept_ : trace_reject_,
                             response.worker, offered_at, ctx_.sim->now(), job.id);
  }
  ctx_.metrics->registry()
      .histogram("sched.offer_roundtrip_s")
      .record(seconds_from_ticks(ctx_.sim->now() - offered_at));

  if (response.accepted) return;  // assignment was stamped at the worker
  metrics::JobRecord& record = ctx_.metrics->job(job.id);
  ++stats_.offers_declined;
  ++record.offers_rejected;
  // "It is returned to the master so another worker can consider it."
  if (config_.requeue_to_back) {
    queue_.push_back(std::move(job));
  } else {
    queue_.push_front(std::move(job));
  }
  dispatch_parked();
}

}  // namespace dlaja::sched
