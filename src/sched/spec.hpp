#pragma once
// SchedulerSpec: the one structured description of a scheduler setup.
//
// Every way a scheduler reaches the engine — factory config strings
// ("bidding:fanout=probe:4"), scenario JSON (a "scheduler" string or
// object), CLI flags — parses into this struct once and flows from here:
// validation, serialization, and construction all read the same fields, so
// no call site re-parses strings and no two surfaces can drift apart.
//
// Two interchangeable wire forms round-trip through the struct:
//
//   config string   "bidding:fanout=probe:4,fed.partitions=2"
//   JSON            {"type": "bidding", "fanout": "probe:4",
//                    "federation": {"partitions": 2}}
//
// A JSON "scheduler" value may be either form (a plain string is
// parse-sugar). to_json() emits the string form when no federation is
// configured — existing scenario files stay byte-identical — and the
// object form otherwise.
//
// Federation ("fed." config keys / the "federation" JSON object) splits the
// fleet across N concurrent scheduler instances, each running this spec's
// policy over its own worker partition (see sched/federation.hpp).
// `partitions <= 1` builds the plain policy scheduler with no federation
// layer at all, bit-identical to a spec with no federation keys.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/json.hpp"

namespace dlaja::sched {

/// One structured problem found by SchedulerSpec::validate().
/// ExperimentSpec::validate() folds these into its own issue list.
struct SpecIssue {
  std::string field;    ///< "scheduler" or "scheduler.federation.<key>"
  std::string message;  ///< what is wrong and what would be valid
};

/// Federated control-plane shape: how many scheduler instances share the
/// fleet and how they coordinate. Inert at the default `partitions = 1`.
struct FederationSpec {
  /// Concurrent scheduler instances; workers are split across them
  /// (`i % N` without weights, size-weighted contiguous blocks with).
  std::uint32_t partitions = 1;

  /// Relative partition sizes (one per partition, positive). Empty =
  /// unweighted `i % N` striping.
  std::vector<double> weights;

  /// Cadence of each instance's broker-published load digest (simulated
  /// seconds). Digests are the *only* cross-partition load signal.
  double digest_interval_s = 5.0;

  /// A digest older than this is treated as unknown: its partition is not
  /// eligible as a spill target (the eventual-consistency staleness bound).
  double staleness_bound_s = 15.0;

  /// Spill when an instance's own load (queued+running jobs per live
  /// worker) exceeds this and a fresher digest shows a lighter partition.
  /// 0 disables spill (jobs stay in their home partition).
  double spill_threshold = 0.0;

  /// Partition that adopts a crashed instance's pending jobs after its
  /// leases expire. -1 = the next live partition in index order.
  std::int32_t successor = -1;

  /// How long after a scheduler crash adoption kicks in (lets in-flight
  /// completions land; the analogue of waiting out the crashed instance's
  /// leases).
  double adoption_grace_s = 30.0;

  [[nodiscard]] bool active() const noexcept { return partitions > 1; }
  [[nodiscard]] bool spilling() const noexcept { return spill_threshold > 0.0; }
  bool operator==(const FederationSpec&) const = default;

  /// Partition sizes for a fleet of `worker_count` (largest-remainder for
  /// weighted specs, near-equal otherwise). The federation layer and
  /// validate() share this so they can never disagree.
  [[nodiscard]] std::vector<std::uint32_t> partition_sizes(std::size_t worker_count) const;

  /// The partition worker `w` belongs to under this spec.
  [[nodiscard]] std::uint32_t partition_of(std::uint32_t w, std::size_t worker_count) const;
};

class SchedulerSpec {
 public:
  using Option = std::pair<std::string, std::string>;

  /// Default: the paper's bidding scheduler, no options, no federation.
  SchedulerSpec() = default;

  /// Parse-sugar: a config string converts implicitly, so call sites keep
  /// writing `spec.scheduler = "bidding:fanout=probe:4"`. A malformed
  /// string does NOT throw here — the error is stored and surfaces from
  /// validate() (as an issue) or build() (as std::invalid_argument),
  /// matching where string errors always surfaced.
  SchedulerSpec(const std::string& config);  // NOLINT(google-explicit-constructor)
  SchedulerSpec(const char* config);         // NOLINT(google-explicit-constructor)

  /// The config-string form (see factory.hpp for the per-scheduler keys;
  /// federation fields ride along as "fed.partitions=2,fed.spill=1.5",
  /// with "fed.weights" colon-separated: "fed.weights=2:1").
  [[nodiscard]] static SchedulerSpec parse(const std::string& config);

  /// The JSON form: a string (config-string sugar) or an object with
  /// "type", per-scheduler option keys, and an optional "federation"
  /// object. Throws std::invalid_argument on structural errors (non-string
  /// non-object values, unknown federation keys, a missing "type").
  [[nodiscard]] static SchedulerSpec from_json(const json::Value& doc);

  /// String form when no federation is configured (so scenario files that
  /// never asked for federation stay unchanged), object form otherwise.
  /// from_json(to_json(s)) == s.
  [[nodiscard]] json::Value to_json() const;

  /// Canonical config string; parse(to_config_string(s)) == s. Legacy '+'
  /// aliases normalize ("bidding+learned" emits as "bidding:learn=true").
  [[nodiscard]] std::string to_config_string() const;

  /// Structured validation: the stored parse error if any, unknown
  /// scheduler names / option keys / bad values (messages verbatim from
  /// the factory grammar), a probe/cached fan-out k exceeding the fleet —
  /// or, federated, the smallest partition — and federation field checks.
  /// `worker_count = 0` skips the fleet-dependent checks.
  [[nodiscard]] std::vector<SpecIssue> validate(std::size_t worker_count = 0) const;

  /// Constructs the scheduler this spec describes: the plain policy
  /// scheduler when `federation.partitions <= 1`, a FederatedScheduler
  /// wrapping `partitions` instances of the policy otherwise. Throws
  /// std::invalid_argument on any problem validate() would report about
  /// the policy itself.
  [[nodiscard]] std::unique_ptr<Scheduler> build(std::uint64_t seed = 1) const;

  /// The single-instance policy scheduler, ignoring `federation` — what
  /// each federated instance runs internally.
  [[nodiscard]] std::unique_ptr<Scheduler> build_policy(std::uint64_t seed = 1) const;

  /// Base scheduler name after alias normalization ("bidding", ...).
  [[nodiscard]] const std::string& type() const noexcept { return type_; }

  /// Policy options in declaration order (federation keys live in
  /// `federation`, not here).
  [[nodiscard]] const std::vector<Option>& options() const noexcept { return options_; }

  /// Last value of `key`, or "" when absent (later options win, matching
  /// the builders' application order).
  [[nodiscard]] std::string option(const std::string& key) const;

  /// Sets (replacing any prior occurrence) or appends a policy option.
  void set_option(const std::string& key, const std::string& value);

  /// The config-string parse error carried by this spec ("" = none).
  [[nodiscard]] const std::string& parse_error() const noexcept { return parse_error_; }

  bool operator==(const SchedulerSpec& other) const {
    return type_ == other.type_ && options_ == other.options_ &&
           federation == other.federation && parse_error_ == other.parse_error_;
  }

  FederationSpec federation;

 private:
  std::string type_ = "bidding";
  std::vector<Option> options_;
  /// Deferred config-string error: parse() never throws so that assigning
  /// a bad string to ExperimentSpec::scheduler keeps failing at
  /// validate()/build() time, exactly as the raw string field did.
  std::string parse_error_;
  /// The original config string when parse_error_ is set (so error
  /// messages and to_config_string() can echo what the user wrote).
  std::string raw_;
};

}  // namespace dlaja::sched
