#include "sched/factory.hpp"

#include <stdexcept>

#include "sched/bar.hpp"
#include "sched/baseline.hpp"
#include "sched/bidding.hpp"
#include "sched/delay.hpp"
#include "sched/matchmaking.hpp"
#include "sched/simple.hpp"
#include "sched/spark_like.hpp"

namespace dlaja::sched {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name, std::uint64_t seed) {
  if (name == "bidding") return std::make_unique<BiddingScheduler>();
  if (name == "bidding+learned") {
    BiddingConfig config;
    config.learn_correction = true;
    return std::make_unique<BiddingScheduler>(config);
  }
  if (name == "baseline") return std::make_unique<BaselineScheduler>();
  if (name == "spark-like") return std::make_unique<SparkLikeScheduler>();
  if (name == "spark-like+hash") {
    SparkLikeConfig config;
    config.placement = SparkLikeConfig::Placement::kHashByResource;
    return std::make_unique<SparkLikeScheduler>(config);
  }
  if (name == "spark-like+wave") {
    SparkLikeConfig config;
    config.wave_barrier = true;
    return std::make_unique<SparkLikeScheduler>(config);
  }
  if (name == "matchmaking") return std::make_unique<MatchmakingScheduler>();
  if (name == "delay") return std::make_unique<DelayScheduler>();
  if (name == "bar") return std::make_unique<BarScheduler>();
  if (name == "random") return std::make_unique<SimplePushScheduler>(PushPolicy::kRandom, seed);
  if (name == "round-robin") {
    return std::make_unique<SimplePushScheduler>(PushPolicy::kRoundRobin, seed);
  }
  if (name == "least-queue") {
    return std::make_unique<SimplePushScheduler>(PushPolicy::kLeastQueue, seed);
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

std::vector<std::string> scheduler_names() {
  return {"bidding",         "bidding+learned", "baseline",    "spark-like",
          "spark-like+hash", "spark-like+wave", "matchmaking", "delay",
          "bar",             "random",          "round-robin", "least-queue"};
}

}  // namespace dlaja::sched
