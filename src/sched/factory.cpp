#include "sched/factory.hpp"

#include <stdexcept>
#include <utility>

#include "sched/bar.hpp"
#include "sched/baseline.hpp"
#include "sched/bidding.hpp"
#include "sched/delay.hpp"
#include "sched/matchmaking.hpp"
#include "sched/simple.hpp"
#include "sched/spark_like.hpp"

namespace dlaja::sched {

namespace {

using Option = std::pair<std::string, std::string>;

/// A spec split into its base name and key=value options. Legacy '+' alias
/// suffixes are rewritten into implied options before the per-scheduler
/// builder sees them.
struct ParsedSpec {
  std::string name;
  std::vector<Option> options;
};

ParsedSpec split_spec(const std::string& spec) {
  ParsedSpec parsed;
  const std::size_t colon = spec.find(':');
  parsed.name = spec.substr(0, colon);

  // Legacy aliases: still accepted everywhere, and they compose with
  // options ("spark-like+hash:wave=true" works).
  if (parsed.name == "bidding+learned") {
    parsed.name = "bidding";
    parsed.options.emplace_back("learn", "true");
  } else if (parsed.name == "spark-like+hash") {
    parsed.name = "spark-like";
    parsed.options.emplace_back("placement", "hash");
  } else if (parsed.name == "spark-like+wave") {
    parsed.name = "spark-like";
    parsed.options.emplace_back("wave", "true");
  }

  if (colon == std::string::npos) return parsed;
  const std::string body = spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string pair =
        body.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? body.size() + 1 : comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("bad scheduler spec '" + spec + "': expected key=value, got '" +
                                  pair + "'");
    }
    parsed.options.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
  }
  return parsed;
}

[[noreturn]] void unknown_key(const ParsedSpec& spec, const std::string& key,
                              const char* valid) {
  throw std::invalid_argument("scheduler '" + spec.name + "': unknown key '" + key +
                              "' (valid keys: " + valid + ")");
}

[[noreturn]] void no_keys(const ParsedSpec& spec) {
  throw std::invalid_argument("scheduler '" + spec.name + "' takes no options (got '" +
                              spec.options.front().first + "')");
}

bool parse_bool(const ParsedSpec& spec, const Option& option) {
  const std::string& v = option.second;
  if (v == "true" || v == "1" || v == "on" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "off" || v == "no") return false;
  throw std::invalid_argument("scheduler '" + spec.name + "': key '" + option.first +
                              "' wants a bool, got '" + v + "'");
}

double parse_double(const ParsedSpec& spec, const Option& option) {
  try {
    std::size_t used = 0;
    const double value = std::stod(option.second, &used);
    if (used == option.second.size()) return value;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("scheduler '" + spec.name + "': key '" + option.first +
                              "' wants a number, got '" + option.second + "'");
}

std::uint32_t parse_uint(const ParsedSpec& spec, const Option& option) {
  const double value = parse_double(spec, option);
  if (value < 0.0 || value != static_cast<double>(static_cast<std::uint32_t>(value))) {
    throw std::invalid_argument("scheduler '" + spec.name + "': key '" + option.first +
                                "' wants a non-negative integer, got '" + option.second + "'");
  }
  return static_cast<std::uint32_t>(value);
}

BiddingConfig bidding_config(const ParsedSpec& spec) {
  BiddingConfig config;
  for (const Option& option : spec.options) {
    const std::string& key = option.first;
    if (key == "fanout") {
      config.fanout = FanoutPolicy::parse(option.second);
    } else if (key == "window") {
      config.window_s = parse_double(spec, option);
    } else if (key == "serialize") {
      config.serialize_contests = parse_bool(spec, option);
    } else if (key == "learn") {
      config.learn_correction = parse_bool(spec, option);
    } else if (key == "alpha") {
      config.correction_alpha = parse_double(spec, option);
    } else if (key == "slack") {
      config.decline_slack_s = parse_double(spec, option);
    } else {
      unknown_key(spec, key, "fanout, window, serialize, learn, alpha, slack");
    }
  }
  return config;
}

BaselineConfig baseline_config(const ParsedSpec& spec) {
  BaselineConfig config;
  for (const Option& option : spec.options) {
    const std::string& key = option.first;
    if (key == "declines") {
      config.max_declines_per_worker = parse_uint(spec, option);
    } else if (key == "prefetch") {
      config.prefetch_depth = parse_uint(spec, option);
    } else if (key == "requeue_back") {
      config.requeue_to_back = parse_bool(spec, option);
    } else {
      unknown_key(spec, key, "declines, prefetch, requeue_back");
    }
  }
  return config;
}

SparkLikeConfig spark_like_config(const ParsedSpec& spec) {
  SparkLikeConfig config;
  for (const Option& option : spec.options) {
    const std::string& key = option.first;
    if (key == "placement") {
      if (option.second == "rr") {
        config.placement = SparkLikeConfig::Placement::kRoundRobin;
      } else if (option.second == "hash") {
        config.placement = SparkLikeConfig::Placement::kHashByResource;
      } else {
        throw std::invalid_argument("scheduler 'spark-like': placement must be rr|hash, got '" +
                                    option.second + "'");
      }
    } else if (key == "wave") {
      config.wave_barrier = parse_bool(spec, option);
    } else {
      unknown_key(spec, key, "placement, wave");
    }
  }
  return config;
}

DelayConfig delay_config(const ParsedSpec& spec) {
  DelayConfig config;
  for (const Option& option : spec.options) {
    if (option.first == "skips") {
      config.max_skips = parse_uint(spec, option);
    } else {
      unknown_key(spec, option.first, "skips");
    }
  }
  return config;
}

BarConfig bar_config(const ParsedSpec& spec) {
  BarConfig config;
  for (const Option& option : spec.options) {
    const std::string& key = option.first;
    if (key == "window") {
      config.batch_window_s = parse_double(spec, option);
    } else if (key == "moves") {
      config.max_rebalance_moves = parse_uint(spec, option);
    } else {
      unknown_key(spec, key, "window, moves");
    }
  }
  return config;
}

std::unique_ptr<Scheduler> build(const ParsedSpec& spec, std::uint64_t seed) {
  if (spec.name == "bidding") {
    return std::make_unique<BiddingScheduler>(bidding_config(spec));
  }
  if (spec.name == "baseline") {
    return std::make_unique<BaselineScheduler>(baseline_config(spec));
  }
  if (spec.name == "spark-like") {
    return std::make_unique<SparkLikeScheduler>(spark_like_config(spec));
  }
  if (spec.name == "delay") {
    return std::make_unique<DelayScheduler>(delay_config(spec));
  }
  if (spec.name == "bar") {
    return std::make_unique<BarScheduler>(bar_config(spec));
  }
  if (spec.name == "matchmaking") {
    if (!spec.options.empty()) no_keys(spec);
    return std::make_unique<MatchmakingScheduler>();
  }
  if (spec.name == "random") {
    if (!spec.options.empty()) no_keys(spec);
    return std::make_unique<SimplePushScheduler>(PushPolicy::kRandom, seed);
  }
  if (spec.name == "round-robin") {
    if (!spec.options.empty()) no_keys(spec);
    return std::make_unique<SimplePushScheduler>(PushPolicy::kRoundRobin, seed);
  }
  if (spec.name == "least-queue") {
    if (!spec.options.empty()) no_keys(spec);
    return std::make_unique<SimplePushScheduler>(PushPolicy::kLeastQueue, seed);
  }
  std::string names;
  for (const std::string& name : scheduler_names()) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  throw std::invalid_argument("unknown scheduler: " + spec.name + " (known: " + names + ")");
}

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const std::string& spec, std::uint64_t seed) {
  return build(split_spec(spec), seed);
}

std::vector<std::string> scheduler_names() {
  return {"bidding",         "bidding+learned", "baseline",    "spark-like",
          "spark-like+hash", "spark-like+wave", "matchmaking", "delay",
          "bar",             "random",          "round-robin", "least-queue"};
}

std::string check_scheduler_spec(const std::string& spec, std::size_t worker_count) {
  try {
    const ParsedSpec parsed = split_spec(spec);
    (void)build(parsed, 1);
    if (parsed.name == "bidding" && worker_count > 0) {
      const BiddingConfig config = bidding_config(parsed);
      if (config.fanout.probing() && config.fanout.probe_k > worker_count) {
        return "scheduler '" + spec + "': probe fan-out k=" +
               std::to_string(config.fanout.probe_k) + " exceeds the fleet (" +
               std::to_string(worker_count) + " workers)";
      }
      if (config.fanout.cached() && config.fanout.probe_k > worker_count) {
        return "scheduler '" + spec + "': cached fan-out k=" +
               std::to_string(config.fanout.probe_k) + " exceeds the fleet (" +
               std::to_string(worker_count) + " workers)";
      }
    }
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return {};
}

}  // namespace dlaja::sched
