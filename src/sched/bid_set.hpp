#pragma once
// Fixed small-buffer bid collection for contests.
//
// A contest needs exactly three things from its bids: the distinct-bidder
// count (quorum + metrics), the winning (worker, cost) under the exclusion
// rule, and per-worker dedupe. None of that requires storing every bid: the
// set keeps running minima plus a dedupe structure — a 16-entry inline
// buffer that spills to a worker-index bitmap only when a contest actually
// collects more than 16 distinct bidders. A 2,000-worker full-fanout
// contest therefore costs one 256-byte bitmap instead of a 2,000-entry
// vector of BidSubmissions per contest.
//
// Winner semantics replicate the historical scan over a bid vector exactly:
// lowest cost wins, first-arrived wins ties (strict `<` on a running
// minimum), and the excluded worker (a lifecycle retry avoiding the worker
// that just failed the job) wins only when nobody else bid.

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/protocol.hpp"

namespace dlaja::sched {

class BidSet {
 public:
  /// Clears the set and pins the contest's excluded worker (kNoWorker for
  /// none). Must be called before the first insert of each contest.
  void reset(cluster::WorkerIndex excluded);

  /// Records a bid. Returns false (and changes nothing) when this worker
  /// already bid in this contest.
  bool insert(cluster::WorkerIndex worker, double cost_s);

  /// Distinct workers that bid so far.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// The contest winner under the exclusion rule, or kNoWorker when empty.
  /// `cost_out` (optional) receives the winning bid.
  [[nodiscard]] cluster::WorkerIndex winner(double* cost_out = nullptr) const;

 private:
  static constexpr std::size_t kInlineCapacity = 16;

  struct Entry {
    cluster::WorkerIndex worker = cluster::kNoWorker;
    double cost_s = 0.0;
  };

  [[nodiscard]] bool contains(cluster::WorkerIndex worker) const;

  std::array<Entry, kInlineCapacity> inline_{};
  std::uint32_t count_ = 0;
  cluster::WorkerIndex excluded_ = cluster::kNoWorker;
  Entry best_;           ///< running minimum over non-excluded bidders
  Entry best_excluded_;  ///< the excluded worker's bid, if it made one
  /// Dedupe bitmap, built lazily from the inline buffer on the 17th
  /// distinct bidder; empty until then (the paper-scale 5-worker runs
  /// never allocate).
  std::vector<std::uint64_t> seen_;
};

}  // namespace dlaja::sched
