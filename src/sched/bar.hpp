#pragma once
// BAR-style scheduler (Jin, Luo, Song, Dong & Xiong, "BAR: An Efficient
// Data Locality Driven Task Scheduling Algorithm for Cloud Computing",
// CCGrid 2011) — the second related-work comparator the paper discusses
// (§3): "at first, they attempt to assign all the tasks so they are
// entirely local, only to iteratively produce alternative execution
// scenarios which reduce completion time on account of the locality."
//
// Adapted to the streaming setting as a micro-batch scheduler: arrivals
// accumulate for a short window, then the batch is assigned in two phases:
//   phase 1 (locality): every task goes to the least-loaded worker that
//     holds its data; tasks with no local candidate go to the globally
//     least-loaded worker (paying the transfer);
//   phase 2 (balance-reduce): while it shortens the batch makespan, move
//     a task from the most-loaded worker to the least-loaded one, trading
//     locality for completion time.
//
// BAR is centralized: the master uses its assignment history for data
// placement and the fleet's nominal speeds for cost estimates (a MapReduce
// master has exactly this information).

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sched/scheduler.hpp"

namespace dlaja::sched {

struct BarConfig {
  /// Micro-batch window: arrivals within this span are assigned together.
  double batch_window_s = 2.0;

  /// Phase-2 iteration cap (defensive; convergence is monotone).
  std::uint32_t max_rebalance_moves = 1000;
};

class BarScheduler final : public Scheduler {
 public:
  explicit BarScheduler(BarConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "bar"; }

  void attach(const SchedulerContext& ctx) override;
  void submit(const workflow::Job& job) override;
  void on_completion(const cluster::CompletionReport& report) override;
  [[nodiscard]] std::size_t pending_jobs() const override { return batch_.size(); }

  struct Stats {
    std::uint64_t batches = 0;
    std::uint64_t local_assignments = 0;   ///< phase 1 placed on a data holder
    std::uint64_t remote_assignments = 0;  ///< no holder available
    std::uint64_t rebalance_moves = 0;     ///< phase 2 moves
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Estimated seconds worker `w` needs for `job` if assigned now
  /// (transfer unless local per the master's knowledge, plus processing).
  [[nodiscard]] double cost_s(cluster::WorkerIndex w, const workflow::Job& job) const;

  /// Master's view: does `w` hold the job's resource?
  [[nodiscard]] bool is_local(cluster::WorkerIndex w, const workflow::Job& job) const;

  /// Seconds until worker `w` is estimated to drain its assigned work.
  [[nodiscard]] double load_s(cluster::WorkerIndex w) const;

  void process_batch();
  void dispatch(cluster::WorkerIndex w, const workflow::Job& job);

  BarConfig config_;
  SchedulerContext ctx_;
  Stats stats_;
  std::vector<workflow::Job> batch_;
  bool batch_scheduled_ = false;
  /// Master-side resource placement knowledge (assignment history).
  std::vector<std::unordered_set<storage::ResourceId>> known_;
  /// Estimated drain time (absolute tick) per worker.
  std::vector<Tick> est_free_at_;
};

}  // namespace dlaja::sched
