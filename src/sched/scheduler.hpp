#pragma once
// Scheduler interface.
//
// A Scheduler implements one job-allocation protocol end to end: the
// master-side decision logic plus the worker-side message handlers, wired
// together through the broker exactly as the distributed system would be.
// The engine owns the nodes and the clock; the scheduler owns the policy.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/protocol.hpp"
#include "cluster/worker.hpp"
#include "metrics/collector.hpp"
#include "msg/broker.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workflow/workflow.hpp"

namespace dlaja::sched {

/// Everything a scheduler may touch, provided by the engine at attach time.
/// Master-side logic must confine itself to information a real master would
/// have (messages it received, assignments it made); worker-side handlers
/// run "at the worker" and may use that worker's local state.
struct SchedulerContext {
  sim::Simulator* sim = nullptr;
  msg::Broker* broker = nullptr;
  net::NetworkModel* network = nullptr;
  metrics::MetricsCollector* metrics = nullptr;
  net::NodeId master_node = net::kInvalidNode;
  std::vector<cluster::WorkerNode*> workers;  ///< index == WorkerIndex
  std::vector<net::NodeId> worker_nodes;      ///< broker node id per worker

  /// The engine's seed sequencer: schedulers that need their own randomness
  /// (e.g. probe fan-out) derive named substreams from it so they never
  /// perturb the engine's other streams. May be null in bare-bones tests;
  /// schedulers must fall back to a fixed seed then.
  const SeedSequencer* seeds = nullptr;

  /// Lifecycle hooks (null unless the engine runs with a job lifecycle —
  /// fault-free runs leave them unset and schedulers behave bit-identically).
  /// notify_assigned: the master committed `job` to `worker` with the given
  /// completion estimate (<= 0 when unknown) — starts the lease clock.
  std::function<void(workflow::JobId, cluster::WorkerIndex, double)> notify_assigned;
  /// notify_unassignable: the scheduler cannot place the job at all (e.g.
  /// every worker is dead) and hands it back for retry/dead-lettering.
  std::function<void(const workflow::Job&)> notify_unassignable;

  /// True when fault injection is active: schedulers may arm watchdogs /
  /// timeouts that would otherwise perturb fault-free determinism.
  bool fault_aware = false;

  /// Namespace prefix for broker *topics* ("" outside federation). Topics
  /// are global — two scheduler instances interning the same topic name
  /// would hear each other's broadcasts — so federated instances get a
  /// per-instance prefix. Mailboxes are keyed by (node, name) and never
  /// collide; they stay unscoped.
  std::string scope;

  /// A topic name qualified by this context's scope.
  [[nodiscard]] std::string scoped(const std::string& topic) const {
    return scope.empty() ? topic : scope + topic;
  }

  /// Telemetry probe registry (null when telemetry is off). Schedulers
  /// register read-only gauges/invariants in attach(); gauges tagged with a
  /// worker's shard (see worker_shard()) are sampled on that shard's thread
  /// and must read only that worker's state.
  obs::ProbeRegistry* probes = nullptr;

  /// Probe shard tag per worker: the index of the worker's simulator in the
  /// engine's shard array (0 = the master/control shard). Empty in
  /// single-shard runs — everything lives on shard 0 then.
  std::vector<std::uint32_t> worker_shards;

  /// The telemetry shard tag gauges over worker `w`'s state must use.
  [[nodiscard]] std::uint32_t worker_shard(cluster::WorkerIndex w) const {
    return worker_shards.empty() ? 0u : worker_shards[w];
  }

  /// Sharded runs: per-worker event queue and metrics sink. Worker-side
  /// handlers (which run on the worker's shard thread) must schedule and
  /// record through these instead of `sim`/`metrics`, which belong to the
  /// master's shard. Empty in single-shard runs — worker_sim()/
  /// worker_metrics() fall back to the shared objects.
  std::vector<sim::Simulator*> worker_sims;
  std::vector<metrics::MetricsCollector*> worker_metrics;

  /// The simulator worker-side logic of `w` must schedule on.
  [[nodiscard]] sim::Simulator* worker_sim(cluster::WorkerIndex w) const {
    return worker_sims.empty() ? sim : worker_sims[w];
  }

  /// The metrics sink worker-side logic of `w` must record into.
  [[nodiscard]] metrics::MetricsCollector* worker_metrics_for(cluster::WorkerIndex w) const {
    return worker_metrics.empty() ? metrics : worker_metrics[w];
  }

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers.size(); }

  /// Workers that are currently alive (the paper's "activeWorkers").
  [[nodiscard]] std::size_t active_workers() const noexcept {
    std::size_t n = 0;
    for (const cluster::WorkerNode* w : workers) {
      if (w != nullptr && !w->failed()) ++n;
    }
    return n;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Stable name used in reports ("bidding", "baseline", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Wires topics/mailboxes. Called exactly once, before any submit().
  virtual void attach(const SchedulerContext& ctx) = 0;

  /// A job arrived at the master (Listing 1, sendJob). The job's metrics
  /// record already has `arrived` set by the engine.
  virtual void submit(const workflow::Job& job) = 0;

  /// A completion report reached the master. Default: ignore.
  virtual void on_completion(const cluster::CompletionReport& report) { (void)report; }

  /// Notification that worker `w` became idle, delivered at the worker
  /// (pull-based schedulers use it to trigger work requests). Default: ignore.
  virtual void on_worker_idle(cluster::WorkerIndex w) { (void)w; }

  /// Notification that worker `w` finished a job (a queue slot freed),
  /// delivered at the worker even when more jobs remain queued. Pull
  /// schedulers with prefetch use it to top their local queue back up.
  /// Default: ignore.
  virtual void on_worker_capacity(cluster::WorkerIndex w) { (void)w; }

  /// Notification that worker `w` recovered from a crash (fault injection).
  /// The engine has already revived the node and re-probed its speeds.
  /// Default: treat it like the initial idle notification, which restarts
  /// pull-based polling; push schedulers need nothing more.
  virtual void on_worker_recovered(cluster::WorkerIndex w) { on_worker_idle(w); }

  /// Notification that a previously committed assignment of `id` to `w` was
  /// voided (lease broken by a crash or message loss); the lifecycle is
  /// retrying or dead-lettering the job. Schedulers drop any per-job state
  /// keyed on the dead attempt. Default: ignore.
  virtual void on_assignment_void(workflow::JobId id, cluster::WorkerIndex w) {
    (void)id;
    (void)w;
  }

  /// Fault injection: scheduler instance `instance` of a federated control
  /// plane crashed (fault-plan `sched_crash` clause). Non-federated
  /// schedulers never see this. Default: ignore.
  virtual void on_scheduler_crash(std::uint32_t instance) { (void)instance; }

  /// Fault injection: scheduler instance `instance` came back. Default:
  /// ignore.
  virtual void on_scheduler_recovered(std::uint32_t instance) { (void)instance; }

  /// Number of jobs the scheduler accepted but has not yet durably handed
  /// to a worker (used by the engine's quiescence diagnostics).
  [[nodiscard]] virtual std::size_t pending_jobs() const { return 0; }

  /// Whether this scheduler's worker-side handlers are safe to run on shard
  /// threads: they must confine themselves to the worker's own state plus
  /// the ctx worker_sim()/worker_metrics_for() accessors, and communicate
  /// with the master only through the broker. Default: no — the engine
  /// rejects `shards > 1` for schedulers that haven't opted in.
  [[nodiscard]] virtual bool supports_sharding() const { return false; }
};

}  // namespace dlaja::sched
