#include "sched/pull_base.hpp"

#include <algorithm>
#include <any>

namespace dlaja::sched {

using cluster::JobAssignment;
using cluster::NoWorkNotice;
using cluster::WorkerIndex;
using cluster::WorkRequest;

void PullSchedulerBase::attach(const SchedulerContext& ctx) {
  ctx_ = ctx;
  parked_.assign(ctx_.worker_count(), false);

  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    cluster::WorkerNode* worker = ctx_.workers[w];
    if (worker == nullptr) continue;  // outside this context's partition
    // Direct assignments land in the worker's FIFO queue.
    ctx_.broker->register_mailbox(
        ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
        [worker](const msg::Message& message) {
          worker->enqueue(message.payload.as<JobAssignment>().job);
        });
    // "Nothing for you": poll again after the heartbeat.
    ctx_.broker->register_mailbox(
        ctx_.worker_nodes[w], cluster::mailboxes::kOffers,
        [this, w](const msg::Message& message) {
          if (message.payload.type() == typeid(NoWorkNotice)) {
            worker_request_work_later(w);
          }
        });
  }

  ctx_.broker->register_mailbox(
      ctx_.master_node, cluster::mailboxes::kWorkRequests,
      [this](const msg::Message& message) {
        master_handle_request(message.payload.as<WorkRequest>().worker);
      });

  attach_extra();
}

namespace {
/// Watchdog period. Much longer than any heartbeat, so it only matters when
/// the normal poll chain broke (a dropped message, a crashed worker).
constexpr double kWatchdogPeriodS = 5.0;
}  // namespace

void PullSchedulerBase::submit(const workflow::Job& job) {
  queue_.push_back(job);
  dispatch_parked();
  arm_watchdog();
}

void PullSchedulerBase::arm_watchdog() {
  if (!ctx_.fault_aware || watchdog_armed_) return;
  watchdog_armed_ = true;
  auto fire = [this] { watchdog_fire(); };
  static_assert(sim::InlineAction::fits_inline<decltype(fire)>());
  ctx_.sim->schedule_after(ticks_from_seconds(kWatchdogPeriodS), std::move(fire));
}

void PullSchedulerBase::watchdog_fire() {
  watchdog_armed_ = false;
  if (!watchdog_needed()) return;  // self-disarm: no work could be stranded
  bool any_alive = false;
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    if (ctx_.workers[w] == nullptr || ctx_.workers[w]->failed()) continue;
    any_alive = true;
    watchdog_poke(w);
  }
  if (!any_alive && ctx_.notify_unassignable) {
    // Nobody can ever pull these. Hand them to the lifecycle: it retries
    // after a backoff (by which time a worker may have recovered) and
    // dead-letters once the attempt budget runs out.
    std::deque<workflow::Job> stranded;
    stranded.swap(queue_);
    for (const workflow::Job& job : stranded) ctx_.notify_unassignable(job);
  }
  arm_watchdog();
}

void PullSchedulerBase::watchdog_poke(WorkerIndex w) {
  // An idle, unparked worker with work pending means its poll chain broke
  // (the poll or the answer was dropped). A duplicate WorkRequest from a
  // healthy chain is harmless: it either parks (deduped) or pulls a job.
  if (ctx_.workers[w]->idle() && !parked_[w]) worker_request_work_later(w);
}

void PullSchedulerBase::on_worker_idle(WorkerIndex w) {
  // Runs at the worker: poll the master after one heartbeat.
  worker_request_work_later(w);
}

void PullSchedulerBase::worker_request_work_later(WorkerIndex w) {
  cluster::WorkerNode* worker = ctx_.workers[w];
  if (worker == nullptr) return;  // outside this context's partition
  const Tick heartbeat = ticks_from_millis(worker->config().heartbeat_ms);
  auto poll = [this, w] {
    cluster::WorkerNode* again = ctx_.workers[w];
    if (again->failed() || !again->idle()) return;
    ctx_.broker->send(ctx_.worker_nodes[w], ctx_.master_node,
                      cluster::mailboxes::kWorkRequests, WorkRequest{w});
  };
  static_assert(sim::InlineAction::fits_inline<decltype(poll)>());
  ctx_.sim->schedule_after(heartbeat, std::move(poll));
}

void PullSchedulerBase::master_handle_request(WorkerIndex w) {
  if (queue_.empty()) {
    park_worker(w);
    return;
  }
  handle_work_request(w);
}

void PullSchedulerBase::assign_to(WorkerIndex w, const workflow::Job& job) {
  metrics::JobRecord& record = ctx_.metrics->job(job.id);
  record.assigned = ctx_.sim->now();
  record.worker = w;
  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
                    JobAssignment{job});
  if (ctx_.notify_assigned) ctx_.notify_assigned(job.id, w, ctx_.workers[w]->estimate_bid_s(job));
}

void PullSchedulerBase::send_no_work(WorkerIndex w) {
  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[w], cluster::mailboxes::kOffers,
                    NoWorkNotice{});
}

void PullSchedulerBase::park_worker(WorkerIndex w) {
  if (w < parked_.size() && !parked_[w]) {
    parked_[w] = true;
    parked_order_.push_back(w);
  }
}

void PullSchedulerBase::dispatch_parked() {
  while (!queue_.empty() && !parked_order_.empty()) {
    // Drop dead workers from the front before letting the policy choose.
    while (!parked_order_.empty() && ctx_.workers[parked_order_.front()]->failed()) {
      parked_[parked_order_.front()] = false;
      parked_order_.pop_front();
    }
    if (parked_order_.empty()) break;
    const WorkerIndex w = choose_parked(parked_order_);
    const auto it = std::find(parked_order_.begin(), parked_order_.end(), w);
    parked_order_.erase(it);
    parked_[w] = false;
    if (ctx_.workers[w]->failed()) continue;
    handle_work_request(w);
  }
}

}  // namespace dlaja::sched
