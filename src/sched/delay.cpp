#include "sched/delay.hpp"

#include <algorithm>

namespace dlaja::sched {

using cluster::WorkerIndex;

void DelayScheduler::attach_extra() { known_.assign(ctx_.worker_count(), {}); }

cluster::WorkerIndex DelayScheduler::choose_parked(const std::deque<WorkerIndex>& parked) {
  for (const WorkerIndex w : parked) {
    for (const workflow::Job& job : queue_) {
      if (!job.needs_resource() || known_[w].count(job.resource) > 0) return w;
    }
  }
  return parked.front();
}

void DelayScheduler::handle_work_request(WorkerIndex w) {
  // Prefer any pending job local to the requester.
  const auto local_it = std::find_if(queue_.begin(), queue_.end(), [&](const workflow::Job& job) {
    return !job.needs_resource() || known_[w].count(job.resource) > 0;
  });
  if (local_it != queue_.end()) {
    const workflow::Job job = *local_it;
    queue_.erase(local_it);
    skip_count_.erase(job.id);
    ++stats_.local_assignments;
    if (job.needs_resource()) known_[w].insert(job.resource);
    assign_to(w, job);
    return;
  }

  // No local job. The head job accumulates a skip; once the budget is
  // spent, locality is abandoned for it.
  workflow::Job& head = queue_.front();
  std::uint32_t& skips = skip_count_[head.id];
  if (skips < config_.max_skips) {
    ++skips;
    ++stats_.skips;
    send_no_work(w);
    return;
  }
  const workflow::Job job = head;
  queue_.pop_front();
  skip_count_.erase(job.id);
  ++stats_.expired_assignments;
  if (job.needs_resource()) known_[w].insert(job.resource);
  assign_to(w, job);
}

}  // namespace dlaja::sched
