#pragma once
// Federated multi-scheduler control plane.
//
// N concurrent scheduler instances share one fleet, each owning a worker
// partition and running the spec's policy over it in isolation: instance p
// sees a masked SchedulerContext whose out-of-partition worker slots are
// null, gets its own broker node (so its mailboxes never collide with a
// sibling's), its own topic scope ("fed<p>/") and its own seed substream.
// Any existing policy runs unmodified inside a partition.
//
// Coordination is deliberately thin and eventually consistent:
//
//   routing   A submitted job is homed by a round-robin walk over the
//             partition map (size-weighted partitions get proportionally
//             more of the ring) and sent to its home instance as a RouteJob
//             message — the master never touches partition-internal state.
//   digests   Each instance with outstanding work periodically publishes a
//             LoadDigest (queued+running jobs per live worker) on the
//             shared "fed/digests" topic, plus one final digest when it
//             drains, then disarms — timers never hold the simulator open.
//   spill     An overloaded instance (own load > spill_threshold) forwards
//             an incoming job once (hops == 1 max, loop-free) to the
//             lightest partition whose digest is fresher than the
//             staleness bound. Stale digests make a partition invisible —
//             the staleness bound is the consistency contract.
//   crashes   A fault-plan "sched_crash" clause downs an instance: its node
//             stops receiving (routes, bids, work requests park or drop),
//             and after adoption_grace_s the configured successor adopts
//             every routed job the crashed instance had not yet committed
//             to a worker. Jobs already assigned ride out on their workers;
//             completions are deduplicated by the engine (the same
//             at-least-once machinery that absorbs dup:p message faults),
//             so `submitted == completed + dead_lettered` survives a crash.
//
// With fault injection active a resend watchdog re-sends routes that
// strand in flight (their target crashed before delivery); when every
// instance is down the lifecycle dead-letters the job instead of losing it.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sched/spec.hpp"

namespace dlaja::sched {

/// Cumulative control-plane counters, exposed for tests and folded into the
/// metrics registry ("fed.*" columns) as they happen.
struct FederationStats {
  std::uint64_t routed = 0;    ///< jobs sent to a home instance
  std::uint64_t spills = 0;    ///< cross-partition forwards
  std::uint64_t digests = 0;   ///< load digests published
  std::uint64_t adoptions = 0; ///< jobs re-homed after a scheduler crash
  std::uint64_t resends = 0;   ///< watchdog route retransmissions
};

class FederatedScheduler : public Scheduler {
 public:
  /// Builds the `spec.federation.partitions` policy instances up front
  /// (throws std::invalid_argument on a bad policy spec, like any factory
  /// construction would). Worker partitions and broker wiring happen in
  /// attach().
  FederatedScheduler(const SchedulerSpec& spec, std::uint64_t seed);

  [[nodiscard]] std::string name() const override;
  void attach(const SchedulerContext& ctx) override;
  void submit(const workflow::Job& job) override;
  void on_completion(const cluster::CompletionReport& report) override;
  void on_worker_idle(cluster::WorkerIndex w) override;
  void on_worker_capacity(cluster::WorkerIndex w) override;
  void on_worker_recovered(cluster::WorkerIndex w) override;
  void on_assignment_void(workflow::JobId id, cluster::WorkerIndex w) override;
  void on_scheduler_crash(std::uint32_t instance) override;
  void on_scheduler_recovered(std::uint32_t instance) override;
  [[nodiscard]] std::size_t pending_jobs() const override;
  [[nodiscard]] bool supports_sharding() const override;

  [[nodiscard]] const FederationStats& stats() const noexcept { return stats_; }

  /// The partition worker `w` was placed in (valid after attach()).
  [[nodiscard]] std::uint32_t partition_of(cluster::WorkerIndex w) const {
    return part_of_[w];
  }

  /// Queued+running routed jobs per live worker of partition `p` — the
  /// quantity digests advertise and the spill threshold compares against.
  [[nodiscard]] double own_load(std::uint32_t p) const;

 private:
  /// Lifecycle of one routed job, tracked master-side. std::map keeps the
  /// watchdog / adoption scans in deterministic id order.
  struct Routed {
    workflow::Job job;
    std::uint32_t partition = 0;  ///< current home instance
    enum class State : std::uint8_t {
      kRouting,   ///< RouteJob in flight to `partition`
      kQueued,    ///< accepted by the instance's policy, not yet on a worker
      kAssigned,  ///< committed to a worker (lease started)
    } state = State::kRouting;
    Tick sent_at = 0;
    std::uint32_t hops = 0;  ///< cross-partition forwards so far (max 1)
  };

  struct Instance {
    std::unique_ptr<Scheduler> policy;
    std::unique_ptr<SeedSequencer> seeds;  ///< policy substream root
    net::NodeId node = net::kInvalidNode;
    std::vector<cluster::WorkerIndex> members;
    bool down = false;
    bool digest_armed = false;
    std::uint64_t outstanding = 0;  ///< routed jobs homed here (queued or assigned)
    /// This instance's believed fleet load, refreshed only by digests
    /// (eventual consistency): per-partition load and receipt stamp
    /// (kNeverSeen until the first digest arrives).
    std::vector<double> view_load;
    std::vector<Tick> view_at;
  };

  static constexpr Tick kNeverSeen = -1;

  [[nodiscard]] std::uint32_t partitions() const noexcept {
    return static_cast<std::uint32_t>(inst_.size());
  }
  [[nodiscard]] std::size_t live_members(std::uint32_t p) const;
  /// Next live partition on the routing ring, or partitions() if all down.
  [[nodiscard]] std::uint32_t pick_home();
  /// Spill target for a job arriving at `p`, or partitions() to keep it.
  [[nodiscard]] std::uint32_t pick_spill_target(std::uint32_t p) const;
  [[nodiscard]] std::uint32_t successor_of(std::uint32_t crashed) const;

  void route(workflow::JobId id, Routed& entry, std::uint32_t target,
             std::uint32_t hops, net::NodeId from);
  void on_route(std::uint32_t p, const cluster::RouteJob& route);
  void on_digest(std::uint32_t p, const cluster::LoadDigest& digest);
  void mark_assigned(workflow::JobId id);
  void drop_routed(std::map<workflow::JobId, Routed>::iterator it);
  void arm_digest(std::uint32_t p);
  void tick_digest(std::uint32_t p);
  void arm_watchdog();
  void tick_watchdog();
  void adopt(std::uint32_t crashed);
  void count(const char* name, double delta) const;

  SchedulerSpec spec_;
  std::uint64_t seed_ = 1;
  SchedulerContext ctx_;
  Tick digest_interval_ = 0;
  Tick staleness_bound_ = 0;
  Tick adoption_grace_ = 0;

  msg::TopicId digest_topic_ = msg::kInvalidInterned;
  msg::MailboxId fed_jobs_box_ = msg::kInvalidInterned;

  std::vector<std::uint32_t> part_of_;  ///< worker -> partition
  std::vector<Instance> inst_;
  std::map<workflow::JobId, Routed> routed_;
  std::size_t routing_count_ = 0;  ///< entries in State::kRouting
  std::uint64_t cursor_ = 0;       ///< routing ring position (worker index space)
  bool watchdog_armed_ = false;
  FederationStats stats_;
};

}  // namespace dlaja::sched
