#include "sched/spec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sched/bar.hpp"
#include "sched/baseline.hpp"
#include "sched/bidding.hpp"
#include "sched/delay.hpp"
#include "sched/factory.hpp"
#include "sched/federation.hpp"
#include "sched/matchmaking.hpp"
#include "sched/simple.hpp"
#include "sched/spark_like.hpp"
#include "util/table.hpp"

namespace dlaja::sched {

namespace {

using Option = SchedulerSpec::Option;

/// Config-string keys addressing FederationSpec fields (everything else in
/// a spec's option list belongs to the policy).
constexpr const char* kFedPrefix = "fed.";
constexpr const char* kFedKeys =
    "fed.partitions, fed.weights, fed.digest_interval, fed.staleness_bound, "
    "fed.spill_threshold, fed.successor, fed.adoption_grace";

[[noreturn]] void unknown_key(const std::string& name, const std::string& key,
                              const char* valid) {
  throw std::invalid_argument("scheduler '" + name + "': unknown key '" + key +
                              "' (valid keys: " + valid + ")");
}

[[noreturn]] void no_keys(const std::string& name, const std::string& key) {
  throw std::invalid_argument("scheduler '" + name + "' takes no options (got '" + key +
                              "')");
}

bool parse_bool(const std::string& name, const Option& option) {
  const std::string& v = option.second;
  if (v == "true" || v == "1" || v == "on" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "off" || v == "no") return false;
  throw std::invalid_argument("scheduler '" + name + "': key '" + option.first +
                              "' wants a bool, got '" + v + "'");
}

double parse_double(const std::string& name, const Option& option) {
  try {
    std::size_t used = 0;
    const double value = std::stod(option.second, &used);
    if (used == option.second.size()) return value;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("scheduler '" + name + "': key '" + option.first +
                              "' wants a number, got '" + option.second + "'");
}

std::uint32_t parse_uint(const std::string& name, const Option& option) {
  const double value = parse_double(name, option);
  if (value < 0.0 || value != static_cast<double>(static_cast<std::uint32_t>(value))) {
    throw std::invalid_argument("scheduler '" + name + "': key '" + option.first +
                                "' wants a non-negative integer, got '" + option.second + "'");
  }
  return static_cast<std::uint32_t>(value);
}

std::int32_t parse_int(const std::string& name, const Option& option) {
  const double value = parse_double(name, option);
  if (value != static_cast<double>(static_cast<std::int32_t>(value))) {
    throw std::invalid_argument("scheduler '" + name + "': key '" + option.first +
                                "' wants an integer, got '" + option.second + "'");
  }
  return static_cast<std::int32_t>(value);
}

BiddingConfig bidding_config(const std::string& name, const std::vector<Option>& options) {
  BiddingConfig config;
  for (const Option& option : options) {
    const std::string& key = option.first;
    if (key == "fanout") {
      config.fanout = FanoutPolicy::parse(option.second);
    } else if (key == "window") {
      config.window_s = parse_double(name, option);
    } else if (key == "serialize") {
      config.serialize_contests = parse_bool(name, option);
    } else if (key == "learn") {
      config.learn_correction = parse_bool(name, option);
    } else if (key == "alpha") {
      config.correction_alpha = parse_double(name, option);
    } else if (key == "slack") {
      config.decline_slack_s = parse_double(name, option);
    } else {
      unknown_key(name, key, "fanout, window, serialize, learn, alpha, slack");
    }
  }
  return config;
}

BaselineConfig baseline_config(const std::string& name, const std::vector<Option>& options) {
  BaselineConfig config;
  for (const Option& option : options) {
    const std::string& key = option.first;
    if (key == "declines") {
      config.max_declines_per_worker = parse_uint(name, option);
    } else if (key == "prefetch") {
      config.prefetch_depth = parse_uint(name, option);
    } else if (key == "requeue_back") {
      config.requeue_to_back = parse_bool(name, option);
    } else {
      unknown_key(name, key, "declines, prefetch, requeue_back");
    }
  }
  return config;
}

SparkLikeConfig spark_like_config(const std::string& name,
                                  const std::vector<Option>& options) {
  SparkLikeConfig config;
  for (const Option& option : options) {
    const std::string& key = option.first;
    if (key == "placement") {
      if (option.second == "rr") {
        config.placement = SparkLikeConfig::Placement::kRoundRobin;
      } else if (option.second == "hash") {
        config.placement = SparkLikeConfig::Placement::kHashByResource;
      } else {
        throw std::invalid_argument("scheduler 'spark-like': placement must be rr|hash, got '" +
                                    option.second + "'");
      }
    } else if (key == "wave") {
      config.wave_barrier = parse_bool(name, option);
    } else {
      unknown_key(name, key, "placement, wave");
    }
  }
  return config;
}

DelayConfig delay_config(const std::string& name, const std::vector<Option>& options) {
  DelayConfig config;
  for (const Option& option : options) {
    if (option.first == "skips") {
      config.max_skips = parse_uint(name, option);
    } else {
      unknown_key(name, option.first, "skips");
    }
  }
  return config;
}

BarConfig bar_config(const std::string& name, const std::vector<Option>& options) {
  BarConfig config;
  for (const Option& option : options) {
    const std::string& key = option.first;
    if (key == "window") {
      config.batch_window_s = parse_double(name, option);
    } else if (key == "moves") {
      config.max_rebalance_moves = parse_uint(name, option);
    } else {
      unknown_key(name, key, "window, moves");
    }
  }
  return config;
}

/// "2:1:1" -> {2, 1, 1}. Non-numeric entries throw with the fed.weights key.
std::vector<double> parse_weights(const std::string& name, const Option& option) {
  std::vector<double> weights;
  std::size_t pos = 0;
  const std::string& text = option.second;
  while (pos <= text.size()) {
    const std::size_t colon = text.find(':', pos);
    const std::string part =
        text.substr(pos, colon == std::string::npos ? std::string::npos : colon - pos);
    pos = colon == std::string::npos ? text.size() + 1 : colon + 1;
    if (part.empty()) continue;
    weights.push_back(parse_double(name, {option.first, part}));
  }
  return weights;
}

/// Applies one "fed.*" option to the federation block. Returns false when
/// the key is not a federation key at all.
bool apply_fed_option(const std::string& name, const Option& option, FederationSpec& fed) {
  const std::string& key = option.first;
  if (key.rfind(kFedPrefix, 0) != 0) return false;
  if (key == "fed.partitions") {
    fed.partitions = parse_uint(name, option);
  } else if (key == "fed.weights") {
    fed.weights = parse_weights(name, option);
  } else if (key == "fed.digest_interval") {
    fed.digest_interval_s = parse_double(name, option);
  } else if (key == "fed.staleness_bound") {
    fed.staleness_bound_s = parse_double(name, option);
  } else if (key == "fed.spill_threshold") {
    fed.spill_threshold = parse_double(name, option);
  } else if (key == "fed.successor") {
    fed.successor = parse_int(name, option);
  } else if (key == "fed.adoption_grace") {
    fed.adoption_grace_s = parse_double(name, option);
  } else {
    unknown_key(name, key, kFedKeys);
  }
  return true;
}

std::string join_names() {
  std::string names;
  for (const std::string& name : scheduler_names()) {
    if (!names.empty()) names += ", ";
    names += name;
  }
  return names;
}

}  // namespace

// ---------------------------------------------------------------------------
// FederationSpec

std::vector<std::uint32_t> FederationSpec::partition_sizes(std::size_t worker_count) const {
  const std::uint32_t n = std::max<std::uint32_t>(partitions, 1);
  std::vector<std::uint32_t> sizes(n, 0);
  if (weights.empty() || weights.size() != n) {
    // Unweighted striping: worker w lives in partition w % n.
    for (std::size_t w = 0; w < worker_count; ++w) ++sizes[w % n];
    return sizes;
  }
  // Largest-remainder apportionment of the weighted sizes: deterministic,
  // sums exactly to worker_count, ties broken by partition index.
  double total = 0.0;
  for (const double weight : weights) total += weight;
  std::vector<std::pair<double, std::uint32_t>> remainders(n);
  std::size_t assigned = 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    const double exact = total > 0.0
                             ? static_cast<double>(worker_count) * weights[p] / total
                             : 0.0;
    sizes[p] = static_cast<std::uint32_t>(exact);
    assigned += sizes[p];
    remainders[p] = {exact - std::floor(exact), p};
  }
  std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (std::size_t i = 0; assigned < worker_count; ++assigned, ++i) {
    ++sizes[remainders[i % n].second];
  }
  return sizes;
}

std::uint32_t FederationSpec::partition_of(std::uint32_t w, std::size_t worker_count) const {
  const std::uint32_t n = std::max<std::uint32_t>(partitions, 1);
  if (weights.empty() || weights.size() != n) return w % n;
  // Weighted partitions own contiguous worker blocks in index order.
  const std::vector<std::uint32_t> sizes = partition_sizes(worker_count);
  std::uint32_t start = 0;
  for (std::uint32_t p = 0; p < n; ++p) {
    if (w < start + sizes[p]) return p;
    start += sizes[p];
  }
  return n - 1;
}

// ---------------------------------------------------------------------------
// SchedulerSpec: parsing

SchedulerSpec::SchedulerSpec(const std::string& config) { *this = parse(config); }
SchedulerSpec::SchedulerSpec(const char* config) { *this = parse(config); }

SchedulerSpec SchedulerSpec::parse(const std::string& config) {
  SchedulerSpec spec;
  spec.raw_ = config;
  const std::size_t colon = config.find(':');
  spec.type_ = config.substr(0, colon);

  // Legacy aliases: still accepted everywhere, and they compose with
  // options ("spark-like+hash:wave=true" works).
  if (spec.type_ == "bidding+learned") {
    spec.type_ = "bidding";
    spec.options_.emplace_back("learn", "true");
  } else if (spec.type_ == "spark-like+hash") {
    spec.type_ = "spark-like";
    spec.options_.emplace_back("placement", "hash");
  } else if (spec.type_ == "spark-like+wave") {
    spec.type_ = "spark-like";
    spec.options_.emplace_back("wave", "true");
  }

  if (colon == std::string::npos) return spec;
  const std::string body = config.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string pair =
        body.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? body.size() + 1 : comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      spec.parse_error_ = "bad scheduler spec '" + config + "': expected key=value, got '" +
                          pair + "'";
      spec.options_.clear();
      return spec;
    }
    Option option{pair.substr(0, eq), pair.substr(eq + 1)};
    try {
      if (!apply_fed_option(spec.type_, option, spec.federation)) {
        spec.options_.push_back(std::move(option));
      }
    } catch (const std::invalid_argument& error) {
      spec.parse_error_ = error.what();
      spec.options_.clear();
      return spec;
    }
  }
  return spec;
}

std::string SchedulerSpec::to_config_string() const {
  if (!parse_error_.empty()) return raw_;
  std::string out = type_;
  char sep = ':';
  const auto append = [&out, &sep](const std::string& key, const std::string& value) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  };
  for (const Option& option : options_) append(option.first, option.second);
  const FederationSpec defaults;
  const FederationSpec& fed = federation;
  if (fed.partitions != defaults.partitions) {
    append("fed.partitions", std::to_string(fed.partitions));
  }
  if (!fed.weights.empty()) {
    std::string joined;
    for (const double weight : fed.weights) {
      if (!joined.empty()) joined += ':';
      joined += fmt_shortest(weight);
    }
    append("fed.weights", joined);
  }
  if (fed.digest_interval_s != defaults.digest_interval_s) {
    append("fed.digest_interval", fmt_shortest(fed.digest_interval_s));
  }
  if (fed.staleness_bound_s != defaults.staleness_bound_s) {
    append("fed.staleness_bound", fmt_shortest(fed.staleness_bound_s));
  }
  if (fed.spill_threshold != defaults.spill_threshold) {
    append("fed.spill_threshold", fmt_shortest(fed.spill_threshold));
  }
  if (fed.successor != defaults.successor) {
    append("fed.successor", std::to_string(fed.successor));
  }
  if (fed.adoption_grace_s != defaults.adoption_grace_s) {
    append("fed.adoption_grace", fmt_shortest(fed.adoption_grace_s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// SchedulerSpec: JSON

SchedulerSpec SchedulerSpec::from_json(const json::Value& doc) {
  if (doc.is_string()) return parse(doc.as_string());
  if (!doc.is_object()) {
    throw std::invalid_argument(
        "scheduler: wants a config string or an object with \"type\"");
  }
  SchedulerSpec spec;
  bool has_type = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "type") {
      if (!value.is_string()) {
        throw std::invalid_argument("scheduler: key 'type' wants a string");
      }
      // Run the alias normalization the string form gets ("bidding+learned"
      // as a type behaves like the config string would).
      const SchedulerSpec alias = parse(value.as_string());
      spec.type_ = alias.type_;
      // Alias-implied options go first so explicit keys can override them.
      spec.options_.insert(spec.options_.begin(), alias.options_.begin(),
                           alias.options_.end());
      has_type = true;
    } else if (key == "federation") {
      if (!value.is_object()) {
        throw std::invalid_argument("scheduler: key 'federation' wants an object");
      }
      FederationSpec fed;
      for (const auto& [fkey, fvalue] : value.as_object()) {
        const auto need_number = [&](const json::Value& v) {
          if (!v.is_number()) {
            throw std::invalid_argument("scheduler: federation key '" + fkey +
                                        "' wants a number");
          }
          return v.as_number();
        };
        if (fkey == "partitions") {
          const double n = need_number(fvalue);
          if (n < 0.0 || n != static_cast<double>(static_cast<std::uint32_t>(n))) {
            throw std::invalid_argument(
                "scheduler: federation key 'partitions' wants a non-negative integer");
          }
          fed.partitions = static_cast<std::uint32_t>(n);
        } else if (fkey == "weights") {
          if (!fvalue.is_array()) {
            throw std::invalid_argument(
                "scheduler: federation key 'weights' wants an array of numbers");
          }
          fed.weights.clear();
          for (const json::Value& entry : fvalue.as_array()) {
            if (!entry.is_number()) {
              throw std::invalid_argument(
                  "scheduler: federation key 'weights' wants an array of numbers");
            }
            fed.weights.push_back(entry.as_number());
          }
        } else if (fkey == "digest_interval_s") {
          fed.digest_interval_s = need_number(fvalue);
        } else if (fkey == "staleness_bound_s") {
          fed.staleness_bound_s = need_number(fvalue);
        } else if (fkey == "spill_threshold") {
          fed.spill_threshold = need_number(fvalue);
        } else if (fkey == "successor") {
          const double s = need_number(fvalue);
          if (s != static_cast<double>(static_cast<std::int32_t>(s))) {
            throw std::invalid_argument(
                "scheduler: federation key 'successor' wants an integer");
          }
          fed.successor = static_cast<std::int32_t>(s);
        } else if (fkey == "adoption_grace_s") {
          fed.adoption_grace_s = need_number(fvalue);
        } else {
          throw std::invalid_argument(
              "scheduler: unknown federation key '" + fkey +
              "' (valid: partitions, weights, digest_interval_s, staleness_bound_s, "
              "spill_threshold, successor, adoption_grace_s)");
        }
      }
      spec.federation = std::move(fed);
    } else {
      // A policy option: values serialize to the same strings the config
      // form uses, so the builders see identical input either way.
      std::string text;
      if (value.is_string()) {
        text = value.as_string();
      } else if (value.is_number()) {
        text = fmt_shortest(value.as_number());
      } else if (value.is_bool()) {
        text = value.as_bool() ? "true" : "false";
      } else {
        throw std::invalid_argument("scheduler: key '" + key +
                                    "' wants a string, number or bool");
      }
      spec.options_.emplace_back(key, std::move(text));
    }
  }
  if (!has_type) {
    throw std::invalid_argument("scheduler: object form needs a \"type\" key");
  }
  return spec;
}

json::Value SchedulerSpec::to_json() const {
  if (!federation.active() && federation == FederationSpec{}) {
    return json::Value{to_config_string()};
  }
  json::Object obj;
  obj["type"] = type_;
  for (const Option& option : options_) obj[option.first] = option.second;
  json::Object fed;
  const FederationSpec defaults;
  fed["partitions"] = static_cast<std::uint64_t>(federation.partitions);
  if (!federation.weights.empty()) {
    json::Array weights;
    for (const double weight : federation.weights) weights.emplace_back(weight);
    fed["weights"] = json::Value{std::move(weights)};
  }
  if (federation.digest_interval_s != defaults.digest_interval_s) {
    fed["digest_interval_s"] = federation.digest_interval_s;
  }
  if (federation.staleness_bound_s != defaults.staleness_bound_s) {
    fed["staleness_bound_s"] = federation.staleness_bound_s;
  }
  if (federation.spill_threshold != defaults.spill_threshold) {
    fed["spill_threshold"] = federation.spill_threshold;
  }
  if (federation.successor != defaults.successor) {
    fed["successor"] = static_cast<std::int64_t>(federation.successor);
  }
  if (federation.adoption_grace_s != defaults.adoption_grace_s) {
    fed["adoption_grace_s"] = federation.adoption_grace_s;
  }
  obj["federation"] = json::Value{std::move(fed)};
  return json::Value{std::move(obj)};
}

// ---------------------------------------------------------------------------
// SchedulerSpec: options

std::string SchedulerSpec::option(const std::string& key) const {
  std::string value;
  for (const Option& entry : options_) {
    if (entry.first == key) value = entry.second;
  }
  return value;
}

void SchedulerSpec::set_option(const std::string& key, const std::string& value) {
  // Drop duplicates so option()'s later-wins read cannot resurrect a value
  // this call was meant to replace.
  bool found = false;
  for (auto it = options_.begin(); it != options_.end();) {
    if (it->first != key) {
      ++it;
    } else if (!found) {
      it->second = value;
      found = true;
      ++it;
    } else {
      it = options_.erase(it);
    }
  }
  if (!found) options_.emplace_back(key, value);
}

// ---------------------------------------------------------------------------
// SchedulerSpec: build + validate

std::unique_ptr<Scheduler> SchedulerSpec::build_policy(std::uint64_t seed) const {
  if (!parse_error_.empty()) throw std::invalid_argument(parse_error_);
  if (type_ == "bidding") {
    return std::make_unique<BiddingScheduler>(bidding_config(type_, options_));
  }
  if (type_ == "baseline") {
    return std::make_unique<BaselineScheduler>(baseline_config(type_, options_));
  }
  if (type_ == "spark-like") {
    return std::make_unique<SparkLikeScheduler>(spark_like_config(type_, options_));
  }
  if (type_ == "delay") {
    return std::make_unique<DelayScheduler>(delay_config(type_, options_));
  }
  if (type_ == "bar") {
    return std::make_unique<BarScheduler>(bar_config(type_, options_));
  }
  if (type_ == "matchmaking") {
    if (!options_.empty()) no_keys(type_, options_.front().first);
    return std::make_unique<MatchmakingScheduler>();
  }
  if (type_ == "random") {
    if (!options_.empty()) no_keys(type_, options_.front().first);
    return std::make_unique<SimplePushScheduler>(PushPolicy::kRandom, seed);
  }
  if (type_ == "round-robin") {
    if (!options_.empty()) no_keys(type_, options_.front().first);
    return std::make_unique<SimplePushScheduler>(PushPolicy::kRoundRobin, seed);
  }
  if (type_ == "least-queue") {
    if (!options_.empty()) no_keys(type_, options_.front().first);
    return std::make_unique<SimplePushScheduler>(PushPolicy::kLeastQueue, seed);
  }
  throw std::invalid_argument("unknown scheduler: " + type_ + " (known: " + join_names() + ")");
}

std::unique_ptr<Scheduler> SchedulerSpec::build(std::uint64_t seed) const {
  // partitions <= 1 constructs the plain policy with no federation layer —
  // the bit-identity guarantee every pre-federation golden relies on.
  if (!federation.active()) return build_policy(seed);
  return std::make_unique<FederatedScheduler>(*this, seed);
}

std::vector<SpecIssue> SchedulerSpec::validate(std::size_t worker_count) const {
  std::vector<SpecIssue> issues;
  if (!parse_error_.empty()) {
    issues.push_back({"scheduler", parse_error_});
    return issues;
  }

  bool policy_ok = true;
  try {
    (void)build_policy(1);
  } catch (const std::invalid_argument& error) {
    issues.push_back({"scheduler", error.what()});
    policy_ok = false;
  }

  const FederationSpec& fed = federation;
  if (fed.partitions == 0) {
    issues.push_back(
        {"scheduler.federation.partitions", "need at least one partition (got 0)"});
  }
  if (worker_count > 0 && fed.partitions > worker_count) {
    issues.push_back({"scheduler.federation.partitions",
                      "more partitions (" + std::to_string(fed.partitions) +
                          ") than workers (" + std::to_string(worker_count) + ")"});
  }
  if (!fed.weights.empty() && fed.weights.size() != fed.partitions) {
    issues.push_back({"scheduler.federation.weights",
                      "need one weight per partition (got " +
                          std::to_string(fed.weights.size()) + " for " +
                          std::to_string(fed.partitions) + " partitions)"});
  }
  bool weights_ok = fed.weights.empty() || fed.weights.size() == fed.partitions;
  for (const double weight : fed.weights) {
    if (!(weight > 0.0) || !std::isfinite(weight)) {
      issues.push_back(
          {"scheduler.federation.weights", "weights must be positive and finite"});
      weights_ok = false;
      break;
    }
  }
  if (!(fed.digest_interval_s > 0.0) || !std::isfinite(fed.digest_interval_s)) {
    issues.push_back({"scheduler.federation.digest_interval_s",
                      "digest cadence must be positive and finite"});
  }
  if (!(fed.staleness_bound_s >= fed.digest_interval_s)) {
    issues.push_back({"scheduler.federation.staleness_bound_s",
                      "staleness bound must be >= digest_interval_s (a digest must "
                      "outlive at least one publishing period to ever be fresh)"});
  }
  if (fed.spill_threshold < 0.0 || std::isnan(fed.spill_threshold)) {
    issues.push_back({"scheduler.federation.spill_threshold",
                      "spill threshold must be >= 0 (0 disables spill)"});
  }
  if (fed.successor < -1 ||
      (fed.successor >= 0 && static_cast<std::uint32_t>(fed.successor) >= fed.partitions)) {
    issues.push_back({"scheduler.federation.successor",
                      "successor must be -1 (auto) or a partition index below " +
                          std::to_string(fed.partitions)});
  }
  if (fed.adoption_grace_s < 0.0 || std::isnan(fed.adoption_grace_s)) {
    issues.push_back(
        {"scheduler.federation.adoption_grace", "adoption grace must be >= 0 seconds"});
  }

  std::size_t min_partition = worker_count;
  if (fed.active() && weights_ok && worker_count > 0 && fed.partitions <= worker_count) {
    const std::vector<std::uint32_t> sizes = fed.partition_sizes(worker_count);
    for (std::uint32_t p = 0; p < sizes.size(); ++p) {
      min_partition = std::min<std::size_t>(min_partition, sizes[p]);
      if (sizes[p] == 0) {
        issues.push_back({"scheduler.federation.weights",
                          "weights leave partition " + std::to_string(p) +
                              " with zero workers"});
      }
    }
  }

  if (policy_ok && type_ == "bidding" && worker_count > 0) {
    const BiddingConfig config = bidding_config(type_, options_);
    // Non-federated: the verbatim fleet-level check. Federated: each
    // instance only ever sees its own partition, so k is bounded by the
    // smallest one.
    const bool fleet_check = !fed.active();
    const std::size_t bound = fleet_check ? worker_count : min_partition;
    if (config.fanout.probing() && config.fanout.probe_k > bound) {
      issues.push_back(
          {"scheduler",
           fleet_check
               ? "scheduler '" + to_config_string() + "': probe fan-out k=" +
                     std::to_string(config.fanout.probe_k) + " exceeds the fleet (" +
                     std::to_string(worker_count) + " workers)"
               : "scheduler '" + to_config_string() + "': probe fan-out k=" +
                     std::to_string(config.fanout.probe_k) +
                     " exceeds the smallest partition (" + std::to_string(bound) +
                     " workers)"});
    }
    if (config.fanout.cached() && config.fanout.probe_k > bound) {
      issues.push_back(
          {"scheduler",
           fleet_check
               ? "scheduler '" + to_config_string() + "': cached fan-out k=" +
                     std::to_string(config.fanout.probe_k) + " exceeds the fleet (" +
                     std::to_string(worker_count) + " workers)"
               : "scheduler '" + to_config_string() + "': cached fan-out k=" +
                     std::to_string(config.fanout.probe_k) +
                     " exceeds the smallest partition (" + std::to_string(bound) +
                     " workers)"});
    }
  }
  return issues;
}

// ---------------------------------------------------------------------------
// Legacy factory surface: thin wrappers over SchedulerSpec.

std::unique_ptr<Scheduler> make_scheduler(const std::string& spec, std::uint64_t seed) {
  return SchedulerSpec::parse(spec).build(seed);
}

std::vector<std::string> scheduler_names() {
  return {"bidding",         "bidding+learned", "baseline",    "spark-like",
          "spark-like+hash", "spark-like+wave", "matchmaking", "delay",
          "bar",             "random",          "round-robin", "least-queue"};
}

std::string check_scheduler_spec(const std::string& spec, std::size_t worker_count) {
  const std::vector<SpecIssue> issues =
      SchedulerSpec::parse(spec).validate(worker_count);
  return issues.empty() ? std::string{} : issues.front().message;
}

}  // namespace dlaja::sched
