#pragma once
// The Baseline scheduler: Crossflow's opinionated-worker job allocation
// (paper §4), used as the comparison point for the Bidding Scheduler.
//
// Workers pull jobs from the master and evaluate each pulled job against
// their acceptance criteria — here, data locality: a worker accepts a job
// whose resource it holds locally and *declines* a job it would have to
// download. Workers track the jobs they declined and must accept them on a
// later offer, so every job completes even though the first round of offers
// for an unseen resource is rejected by everyone (paper constraint #1).
//
// Crossflow performs "impromptu task allocation as jobs arrive": workers
// do not wait to be idle before pulling — they keep a small local prefetch
// of accepted jobs (`prefetch_depth`). Pulling early means the acceptance
// decision is made before clones from in-flight jobs exist, which is
// exactly what produces the redundant clones the paper observes.

#include <unordered_map>
#include <vector>

#include "sched/pull_base.hpp"

namespace dlaja::sched {

struct BaselineConfig {
  /// Number of times a worker may decline the same job before it must
  /// accept (paper: once).
  std::uint32_t max_declines_per_worker = 1;

  /// How many accepted jobs a worker holds beyond the one being processed
  /// (Crossflow consumers prefetch from the message queue). 0 = pull only
  /// when idle.
  std::uint32_t prefetch_depth = 1;

  /// Where a declined job re-enters the master's queue. false (default)
  /// re-offers the declined job immediately at the head — §4's "returned
  /// to the master so another worker can consider it" — which fixes its
  /// placement while clones are still scarce (the redundant-clone
  /// behaviour the paper observes). true defers it behind the backlog
  /// (ActiveMQ redelivery-at-tail), which incidentally *helps* locality
  /// by letting clones appear before the job resurfaces.
  bool requeue_to_back = false;
};

class BaselineScheduler final : public PullSchedulerBase {
 public:
  explicit BaselineScheduler(BaselineConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "baseline"; }

  void on_worker_idle(cluster::WorkerIndex w) override { worker_request(w); }
  void on_worker_capacity(cluster::WorkerIndex w) override { worker_request(w); }
  void on_worker_recovered(cluster::WorkerIndex w) override {
    // The crash may have eaten an in-flight request/offer; forget the
    // pending flag so the recovered worker polls again.
    request_pending_[w] = false;
    worker_request(w);
  }

  /// Offer/decline counters.
  struct Stats {
    std::uint64_t offers_made = 0;
    std::uint64_t offers_declined = 0;
    std::uint64_t forced_accepts = 0;   ///< accepted only because of the decline cap
    std::uint64_t offers_timed_out = 0; ///< fault injection: offer/response lost
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 protected:
  void attach_extra() override;
  void handle_work_request(cluster::WorkerIndex w) override;
  [[nodiscard]] bool watchdog_needed() const override {
    return !queue_.empty() || !in_flight_.empty();
  }
  void watchdog_poke(cluster::WorkerIndex w) override;

 private:
  /// Fault injection: an offer (or its response) was lost; reclaim the job.
  void expire_offer(std::uint64_t offer_id);
  /// Worker-side: true if `w` can take one more job into its local queue.
  [[nodiscard]] bool has_capacity(cluster::WorkerIndex w) const;

  /// Worker-side: sends a WorkRequest after one heartbeat, unless one is
  /// already pending (scheduled, in flight, or parked at the master).
  void worker_request(cluster::WorkerIndex w);

  /// Worker-side: evaluate an offer against the acceptance criteria.
  void worker_handle_offer(cluster::WorkerIndex w, const cluster::JobOffer& offer);

  /// Master-side: handle the worker's accept/decline.
  void master_handle_response(const cluster::OfferResponse& response);

  /// Interns the scheduler's span names on first traced use.
  void ensure_trace_names();

  /// Master-side view of an offer in flight (job travelling with it).
  struct PendingOffer {
    workflow::Job job;
    Tick offered_at = 0;
  };

  BaselineConfig config_;
  Stats stats_;
  /// Worker-side memory of declined jobs: declines_[w][job] = count.
  std::vector<std::unordered_map<workflow::JobId, std::uint32_t>> declines_;
  /// Worker-side: a request is scheduled/in flight/parked for this worker.
  std::vector<bool> request_pending_;
  /// Master-side: offers in flight.
  std::unordered_map<std::uint64_t, PendingOffer> in_flight_;
  std::uint64_t next_offer_ = 1;
  std::uint16_t trace_accept_ = 0;  ///< "offer_accept": offer -> accepted span
  std::uint16_t trace_reject_ = 0;  ///< "offer_reject": offer -> declined span
  bool trace_names_ready_ = false;
};

}  // namespace dlaja::sched
