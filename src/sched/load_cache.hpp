#pragma once
// The master's per-worker load/locality cache (cached fan-out).
//
// One generation-tagged slot per worker — the same staleness discipline as
// the broker's subscriber slab: state that can be invalidated bumps a
// generation, and late information stamped with an older generation is
// ignored instead of overwriting fresh state. Slots hold the most recently
// observed backlog (seconds of queued work), optimistically charged on every
// placement and authoritatively overwritten by placement responses, load
// reports and piggy-backed bids, plus the set of resources the master
// believes resident on the worker (from its own placement history — the
// master never peeks into worker caches).
//
// The cache is advisory by construction: a stale entry costs at most one
// declined placement and a fallback probe re-contest (late binding), never
// a wrong outcome.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cluster/protocol.hpp"
#include "storage/cache.hpp"

namespace dlaja::sched {

class LoadCache {
 public:
  struct Stats {
    std::uint64_t refreshes = 0;      ///< authoritative overwrites accepted
    std::uint64_t stale_ignored = 0;  ///< refreshes rejected by the generation tag
  };

  /// (Re)initialises one slot per worker. Workers start idle with empty
  /// queues, so a zero backlog is genuine knowledge, not a guess.
  void reset(std::size_t worker_count) {
    slots_.assign(worker_count, Slot{});
    stats_ = Stats{};
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  [[nodiscard]] double backlog_s(cluster::WorkerIndex w) const { return slots_[w].backlog_s; }
  [[nodiscard]] std::uint32_t generation(cluster::WorkerIndex w) const {
    return slots_[w].generation;
  }

  /// True if the master believes `resource` is resident on `w` (it placed a
  /// job needing it there and nothing invalidated the slot since).
  [[nodiscard]] bool believes_resident(cluster::WorkerIndex w,
                                       storage::ResourceId resource) const {
    return slots_[w].resident.count(resource) > 0;
  }

  /// Optimistic projection after a placement: the worker's backlog grows by
  /// the placed job's cost and its resource becomes resident.
  void charge(cluster::WorkerIndex w, double cost_s, storage::ResourceId resource) {
    slots_[w].backlog_s += cost_s;
    if (resource != 0) slots_[w].resident.insert(resource);
  }

  /// Authoritative overwrite from a response/report stamped with the
  /// generation current when the conversation started. A refresh tagged
  /// with an older generation (the slot was invalidated in between) is
  /// dropped — the slab-slot rule.
  void refresh(cluster::WorkerIndex w, std::uint32_t generation, double backlog_s) {
    Slot& slot = slots_[w];
    if (generation != slot.generation) {
      ++stats_.stale_ignored;
      return;
    }
    slot.backlog_s = backlog_s;
    ++stats_.refreshes;
  }

  /// Invalidates the slot (a voided assignment: the worker crashed or the
  /// conversation died). Keeps the resident set — worker resource caches
  /// survive crashes — but in-flight refreshes for the old life are stale.
  void invalidate(cluster::WorkerIndex w) { ++slots_[w].generation; }

  /// A revived worker rejoins with an empty queue: zero backlog is genuine
  /// knowledge again, and any refresh from its previous life is stale.
  void revive(cluster::WorkerIndex w) {
    Slot& slot = slots_[w];
    ++slot.generation;
    slot.backlog_s = 0.0;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Slot {
    double backlog_s = 0.0;
    std::uint32_t generation = 0;
    std::unordered_set<storage::ResourceId> resident;
  };

  std::vector<Slot> slots_;
  Stats stats_;
};

}  // namespace dlaja::sched
