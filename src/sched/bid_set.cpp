#include "sched/bid_set.hpp"

namespace dlaja::sched {

void BidSet::reset(cluster::WorkerIndex excluded) {
  count_ = 0;
  excluded_ = excluded;
  best_ = Entry{};
  best_excluded_ = Entry{};
  seen_.clear();
}

bool BidSet::contains(cluster::WorkerIndex worker) const {
  if (!seen_.empty()) {
    const std::size_t word = worker >> 6;
    return word < seen_.size() && ((seen_[word] >> (worker & 63)) & 1) != 0;
  }
  for (std::uint32_t i = 0; i < count_; ++i) {
    if (inline_[i].worker == worker) return true;
  }
  return false;
}

bool BidSet::insert(cluster::WorkerIndex worker, double cost_s) {
  if (contains(worker)) return false;

  if (count_ < kInlineCapacity) {
    inline_[count_] = Entry{worker, cost_s};
    if (!seen_.empty()) {
      const std::size_t word = worker >> 6;
      if (word >= seen_.size()) seen_.resize(word + 1, 0);
      seen_[word] |= std::uint64_t{1} << (worker & 63);
    }
  } else {
    if (seen_.empty()) {
      // Spill: seed the bitmap from the inline entries, then keep only the
      // bitmap for dedupe.
      for (std::uint32_t i = 0; i < count_; ++i) {
        const std::size_t word = inline_[i].worker >> 6;
        if (word >= seen_.size()) seen_.resize(word + 1, 0);
        seen_[word] |= std::uint64_t{1} << (inline_[i].worker & 63);
      }
    }
    const std::size_t word = worker >> 6;
    if (word >= seen_.size()) seen_.resize(word + 1, 0);
    seen_[word] |= std::uint64_t{1} << (worker & 63);
  }
  ++count_;

  // Running minima with strict `<`: the first bid at the minimal cost wins
  // ties, matching a forward scan over an insertion-ordered vector.
  if (worker == excluded_) {
    best_excluded_ = Entry{worker, cost_s};
  } else if (best_.worker == cluster::kNoWorker || cost_s < best_.cost_s) {
    best_ = Entry{worker, cost_s};
  }
  return true;
}

cluster::WorkerIndex BidSet::winner(double* cost_out) const {
  // A non-excluded bidder always beats the excluded one; the excluded
  // worker's bid only stands when it was the sole bidder (soft exclusion
  // beats dropping the job — the retry is bounded either way).
  const Entry& pick = best_.worker != cluster::kNoWorker ? best_ : best_excluded_;
  if (cost_out != nullptr && pick.worker != cluster::kNoWorker) *cost_out = pick.cost_s;
  return pick.worker;
}

}  // namespace dlaja::sched
