#pragma once
// Delay scheduling (Zaharia et al., EuroSys 2010) — the classic technique
// the paper cites for postponing assignment until a data-local node frees
// up (§3).
//
// When a worker requests work, the master scans the queue for a job local
// to that worker. The *head* job, if not local, is skipped — but only a
// bounded number of times; once a job has been skipped `max_skips` times
// it is handed to the next requester regardless of locality. This directly
// models "the allocation will be postponed, which can occur a fixed number
// of times", including the pathology the paper points out: under load,
// waiting for locality wastes time.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/pull_base.hpp"

namespace dlaja::sched {

struct DelayConfig {
  /// How often a job may be passed over before locality is given up.
  std::uint32_t max_skips = 5;
};

class DelayScheduler final : public PullSchedulerBase {
 public:
  explicit DelayScheduler(DelayConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "delay"; }

  struct Stats {
    std::uint64_t local_assignments = 0;
    std::uint64_t skips = 0;
    std::uint64_t expired_assignments = 0;  ///< skip budget exhausted
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 protected:
  void attach_extra() override;
  void handle_work_request(cluster::WorkerIndex w) override;

  /// Prefer a waiting worker that holds the head job's data, so a local
  /// candidate is consulted before skips are spent.
  [[nodiscard]] cluster::WorkerIndex choose_parked(
      const std::deque<cluster::WorkerIndex>& parked) override;

 private:
  DelayConfig config_;
  Stats stats_;
  std::vector<std::unordered_set<storage::ResourceId>> known_;
  std::unordered_map<workflow::JobId, std::uint32_t> skip_count_;
};

}  // namespace dlaja::sched
