#include "sched/matchmaking.hpp"

#include <algorithm>

namespace dlaja::sched {

using cluster::WorkerIndex;

void MatchmakingScheduler::attach_extra() {
  known_.assign(ctx_.worker_count(), {});
  missed_once_.assign(ctx_.worker_count(), false);
}

cluster::WorkerIndex MatchmakingScheduler::choose_parked(
    const std::deque<WorkerIndex>& parked) {
  for (const WorkerIndex w : parked) {
    for (const workflow::Job& job : queue_) {
      if (!job.needs_resource() || known_[w].count(job.resource) > 0) return w;
    }
  }
  return parked.front();
}

void MatchmakingScheduler::handle_work_request(WorkerIndex w) {
  // First choice: a pending job whose resource this worker already holds
  // (or that needs no resource at all).
  const auto local_it = std::find_if(queue_.begin(), queue_.end(), [&](const workflow::Job& job) {
    return !job.needs_resource() || known_[w].count(job.resource) > 0;
  });
  if (local_it != queue_.end()) {
    const workflow::Job job = *local_it;
    queue_.erase(local_it);
    missed_once_[w] = false;
    ++stats_.local_assignments;
    if (job.needs_resource()) known_[w].insert(job.resource);
    assign_to(w, job);
    return;
  }

  if (!missed_once_[w]) {
    // "The node will remain idle for a single heartbeat if no such task is
    // present."
    missed_once_[w] = true;
    ++stats_.idle_passes;
    send_no_work(w);
    return;
  }

  // "On the second attempt, it is bound to accept a task even if it does
  // not have data locally."
  missed_once_[w] = false;
  ++stats_.forced_assignments;
  workflow::Job job = queue_.front();
  queue_.pop_front();
  if (job.needs_resource()) known_[w].insert(job.resource);
  assign_to(w, job);
}

}  // namespace dlaja::sched
