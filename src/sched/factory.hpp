#pragma once
// Scheduler factory: construct any scheduler by its report name. Used by
// benches and examples to sweep algorithms uniformly.

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace dlaja::sched {

/// Creates a scheduler by name: "bidding", "bidding+learned", "baseline",
/// "spark-like", "spark-like+hash", "matchmaking", "delay", "random",
/// "round-robin", "least-queue". Throws std::invalid_argument on unknown
/// names. `seed` only affects the random policy.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                                        std::uint64_t seed = 1);

/// All scheduler names the factory accepts.
[[nodiscard]] std::vector<std::string> scheduler_names();

}  // namespace dlaja::sched
