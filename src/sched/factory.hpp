#pragma once
// Scheduler factory: construct any scheduler from a config string. Used by
// benches, tools, and scenarios to sweep algorithms uniformly.
//
// These functions are thin wrappers over sched::SchedulerSpec (spec.hpp),
// which is the structured form every configuration surface now flows
// through; prefer the spec when you hold one (it validates once and never
// re-parses). The config-string grammar below is unchanged and additionally
// accepts "fed.*" keys for the federated control plane (see spec.hpp).
//
// Spec grammar: "name" or "name:key=val,key=val,...". Values may themselves
// contain ':' (e.g. "bidding:fanout=probe:4"); keys are comma-separated.
// Unknown names and unknown keys are errors that list the valid choices.
//
// Per-scheduler keys:
//   bidding     fanout=full|probe:K  window=<s>  serialize=<bool>
//               learn=<bool>  alpha=<0..1>
//   baseline    declines=<n>  prefetch=<n>  requeue_back=<bool>
//   spark-like  placement=rr|hash  wave=<bool>
//   delay       skips=<n>
//   bar         window=<s>  moves=<n>
//   matchmaking, random, round-robin, least-queue: no keys
//
// The legacy alias names ("bidding+learned", "spark-like+hash",
// "spark-like+wave") keep working and may be combined with options.

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace dlaja::sched {

/// Creates a scheduler from a spec string (see the grammar above). Throws
/// std::invalid_argument on unknown names, unknown keys, or bad values.
/// `seed` only affects the random policy.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& spec,
                                                        std::uint64_t seed = 1);

/// All base scheduler names the factory accepts (aliases included).
[[nodiscard]] std::vector<std::string> scheduler_names();

/// Validates `spec` without constructing a scheduler. Returns an empty
/// string when valid, otherwise the error message make_scheduler would
/// throw. When `worker_count` is nonzero, additionally rejects a bidding
/// probe fan-out whose k exceeds the fleet.
[[nodiscard]] std::string check_scheduler_spec(const std::string& spec,
                                               std::size_t worker_count = 0);

}  // namespace dlaja::sched
