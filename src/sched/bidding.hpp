#pragma once
// The Bidding Scheduler — the paper's contribution (§5, Listings 1 and 2).
//
// The master broadcasts every incoming job for bidding; each worker replies
// with an estimate of when it could finish the job (current backlog + data
// transfer + processing, using its own speed knowledge). The master closes
// the contest when all active workers have bid or the bidding window (1 s)
// elapses, and assigns the job to the lowest bidder; if nobody bid in time
// the job goes to an arbitrary worker.
//
// Three extensions beyond the paper:
//  - Bid correction: workers learn from the history of their bids (the
//    paper's future-work idea), scaling future bids by a smoothed ratio of
//    actual to estimated completion time.
//  - Probe fan-out (FanoutPolicy probe:k): contests solicit a seeded random
//    k-subset of alive workers instead of broadcasting, bounding contest
//    cost at fleet scale. The default `full` policy is bit-identical to the
//    historical broadcast implementation.
//  - Cached fan-out (FanoutPolicy cached:k): the master keeps a per-worker
//    load/locality cache (LoadCache) refreshed from completion load
//    reports, placement acks and piggy-backed bids, and places each job
//    directly on the best of k seeded-random cached candidates — O(1)
//    messages per job. Late binding: the worker declines a placement whose
//    cached backlog view is stale, triggering exactly one fallback probe:k
//    re-contest, so correctness never depends on cache freshness.

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/bid_set.hpp"
#include "sched/fanout.hpp"
#include "sched/load_cache.hpp"
#include "sched/scheduler.hpp"

namespace dlaja::sched {

struct BiddingConfig {
  /// Bidding window: how long the master waits for bids (paper: 1 s).
  double window_s = 1.0;

  /// Run one contest at a time (paper semantics: the master "waits for
  /// workers to make submissions ... and looks into all the received bids
  /// before allocating the job"). Serial contests keep bids meaningful
  /// when jobs arrive in bursts — a worker's backlog already includes the
  /// previous winner's job when it bids on the next one. Disabling this
  /// opens a contest per arrival immediately (all bids then see the same
  /// backlog, so one worker can win an entire burst).
  bool serialize_contests = true;

  /// Future-work extension: learn multiplicative bid corrections from the
  /// history of (actual / estimated) completion times.
  bool learn_correction = false;

  /// EMA weight for new observations when learning corrections.
  double correction_alpha = 0.2;

  /// Contest fan-out: full broadcast (paper), a probed k-subset (scale), or
  /// direct placement on cached load estimates with late binding (cached).
  FanoutPolicy fanout;

  /// Cached fan-out only: how much worse (seconds) the worker's actual
  /// backlog may be than the master's cached view before it declines the
  /// placement. Generous slack trades placement quality for fewer fallback
  /// re-contests; a negative slack declines everything (test hook for the
  /// all-stale path).
  double decline_slack_s = 0.5;
};

class BiddingScheduler final : public Scheduler {
 public:
  explicit BiddingScheduler(BiddingConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override {
    std::string name = "bidding";
    if (config_.learn_correction) name += "+learned";
    if (config_.fanout.contest_probes()) name += "+" + config_.fanout.describe();
    return name;
  }

  void attach(const SchedulerContext& ctx) override;
  void submit(const workflow::Job& job) override;
  void on_completion(const cluster::CompletionReport& report) override;
  void on_assignment_void(workflow::JobId id, cluster::WorkerIndex w) override;
  void on_worker_capacity(cluster::WorkerIndex w) override;
  void on_worker_recovered(cluster::WorkerIndex w) override;
  [[nodiscard]] std::size_t pending_jobs() const override {
    return contests_.size() + backlog_.size() + placements_.size();
  }

  /// The bidding worker side only touches the worker's own state and the
  /// ctx shard accessors, so it is shard-safe — except in learned-correction
  /// mode, where workers read the correction table the master writes.
  [[nodiscard]] bool supports_sharding() const override { return !config_.learn_correction; }

  /// Contest-level counters for the ablation benches.
  struct Stats {
    std::uint64_t contests_opened = 0;
    std::uint64_t contests_closed_full = 0;     ///< quorum of bids arrived
    std::uint64_t contests_closed_timeout = 0;  ///< window elapsed first
    std::uint64_t fallback_assignments = 0;     ///< zero bids -> arbitrary
    std::uint64_t late_bids_ignored = 0;
    std::uint64_t duplicate_bids_ignored = 0;   ///< same worker bid twice (dup faults)
    std::uint64_t unassignable_jobs = 0;        ///< zero bids and no live worker
    std::uint64_t probes_sent = 0;              ///< bid solicitations (probe mode)
    std::uint64_t placements = 0;               ///< direct placements (cached mode)
    std::uint64_t cache_hits = 0;               ///< placements the worker accepted
    std::uint64_t stale_declines = 0;           ///< placements declined -> fallback
    std::uint64_t late_placement_acks = 0;      ///< acks for already-voided placements
    /// Master-side control-plane messages (cached mode only): placements,
    /// acks, load reports, fallback probes/bids/assignments. The
    /// messages-per-job trace counter derives from it.
    std::uint64_t control_messages = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// The master's load cache (cached fan-out only; empty otherwise).
  [[nodiscard]] const LoadCache& load_cache() const noexcept { return cache_; }

  [[nodiscard]] const BiddingConfig& config() const noexcept { return config_; }

 private:
  struct Contest {
    workflow::Job job;
    BidSet bids;
    /// Probe mode: how many workers this contest solicited — the quorum.
    /// Full mode leaves it 0 and checks against active_workers() per bid.
    std::uint32_t solicited = 0;
    sim::EventId timeout{};
  };

  /// A direct placement awaiting its accept/decline ack (cached mode).
  struct Placement {
    workflow::Job job;
    cluster::WorkerIndex worker = cluster::kNoWorker;
    std::uint32_t generation = 0;  ///< cache generation when placed
  };

  /// Placement-quality bookkeeping: the cached estimate a placement used,
  /// compared against the actual completion time (cached mode).
  struct PlacedEstimate {
    double estimate_s = 0.0;
    Tick placed_at = 0;
  };

  /// Opens a contest now, or queues the job behind the running one when
  /// contests are serialized (the historical submit() body).
  void contest_or_backlog(const workflow::Job& job);

  /// Master-side: open the contest for `job` (Listing 1, sendJob).
  void open_contest(const workflow::Job& job);

  /// Cached mode: pick the best of k seeded-random cached candidates and
  /// place the job directly (power-of-k-choices over cached cost
  /// estimates, late binding).
  void place_cached(const workflow::Job& job);

  /// Cached mode: the master's cost estimate for running `job` on `w` —
  /// the same formula the worker computes locally (Listing 2), evaluated
  /// over the cached backlog, believed-resident resources and the worker's
  /// nominal speeds (master-visible config, not probed state).
  [[nodiscard]] double cached_cost_s(cluster::WorkerIndex w, const workflow::Job& job) const;

  /// Worker-side: accept or decline a direct placement at worker `w`.
  void worker_handle_placement(cluster::WorkerIndex w, const cluster::DirectPlacement& p);

  /// Master-side: placement ack — refresh the cache, count a hit, or run
  /// the one fallback re-contest on a decline.
  void master_receive_placement_ack(const cluster::PlacementResponse& resp);

  /// Master-side: asynchronous load refresh from a completion.
  void master_receive_load_report(const cluster::LoadReport& report);

  /// Emits the messages-per-job trace counter sample (traced cached runs).
  void trace_msgs_per_job();

  /// Probe mode: publish the request to a seeded random k-subset of alive
  /// workers; returns how many were solicited.
  std::uint32_t solicit_probes(std::uint64_t contest_id, const workflow::Job& job);

  /// Worker-side: handle a broadcast BidRequest at worker `w`.
  void worker_handle_bid_request(cluster::WorkerIndex w, const cluster::BidRequest& request);

  /// Master-side: Listing 1, receiveBid.
  void master_receive_bid(const cluster::BidSubmission& bid);

  /// Master-side: close a contest and assign the job (Listing 1 lines 10-14).
  void close_contest(std::uint64_t contest_id);

  /// Fallback when no bids arrived: rotate over currently active workers,
  /// preferring non-excluded ones. Returns kNoWorker when every worker is
  /// dead — the caller routes the job to the lifecycle instead of
  /// "assigning" it to a corpse.
  [[nodiscard]] cluster::WorkerIndex arbitrary_worker(cluster::WorkerIndex excluded);

  /// Interns the scheduler's span names on first traced use.
  void ensure_trace_names();

  BiddingConfig config_;
  SchedulerContext ctx_;
  msg::TopicId bid_topic_ = msg::kInvalidInterned;   ///< resolved at attach
  msg::MailboxId jobs_box_ = msg::kInvalidInterned;  ///< worker job queues
  msg::MailboxId bids_box_ = msg::kInvalidInterned;  ///< master bid intake
  msg::MailboxId placements_box_ = msg::kInvalidInterned;      ///< worker placements
  msg::MailboxId placement_acks_box_ = msg::kInvalidInterned;  ///< master ack intake
  msg::MailboxId load_reports_box_ = msg::kInvalidInterned;    ///< master load refreshes
  std::uint16_t trace_contest_ = 0;       ///< "contest": open -> award span
  std::uint16_t trace_bid_ = 0;           ///< "bid": bid-received instant
  std::uint16_t trace_cache_hit_ = 0;     ///< "fanout.cache_hit" instants
  std::uint16_t trace_stale_decline_ = 0; ///< "fanout.stale_decline" instants
  std::uint16_t trace_msgs_per_job_ = 0;  ///< "fanout.msgs_per_job" counter
  bool trace_names_ready_ = false;
  std::unordered_map<std::uint64_t, Contest> contests_;
  std::deque<workflow::Job> backlog_;  ///< jobs awaiting their contest (serial mode)
  std::uint64_t next_contest_ = 1;
  std::uint64_t fallback_cursor_ = 0;
  Stats stats_;

  /// Probe and cached modes only (never constructed under `full`, so
  /// full-fanout runs draw exactly the streams the historical
  /// implementation drew). Cached mode uses it for fallback re-contests.
  std::optional<RandomStream> probe_rng_;
  std::vector<cluster::WorkerIndex> probe_scratch_;  ///< alive workers, reshuffled per contest
  std::vector<net::NodeId> probe_targets_;           ///< solicited nodes per contest

  /// Cached mode only: the load cache, its dedicated candidate-sampling
  /// substream ("fanout/cache"), and the placements awaiting an ack.
  LoadCache cache_;
  std::optional<RandomStream> cache_rng_;
  std::unordered_map<workflow::JobId, Placement> placements_;
  std::unordered_map<workflow::JobId, PlacedEstimate> placed_estimates_;

  /// Extension state: per-worker multiplicative bid correction (worker-side
  /// knowledge, indexed by WorkerIndex).
  std::vector<double> correction_;
  /// Winning estimate per in-flight job, for computing actual/estimate.
  std::unordered_map<workflow::JobId, double> winning_estimate_s_;
  std::unordered_map<workflow::JobId, Tick> assigned_at_;
};

}  // namespace dlaja::sched
