#pragma once
// The Bidding Scheduler — the paper's contribution (§5, Listings 1 and 2).
//
// The master broadcasts every incoming job for bidding; each worker replies
// with an estimate of when it could finish the job (current backlog + data
// transfer + processing, using its own speed knowledge). The master closes
// the contest when all active workers have bid or the bidding window (1 s)
// elapses, and assigns the job to the lowest bidder; if nobody bid in time
// the job goes to an arbitrary worker.
//
// Two extensions beyond the paper:
//  - Bid correction: workers learn from the history of their bids (the
//    paper's future-work idea), scaling future bids by a smoothed ratio of
//    actual to estimated completion time.
//  - Probe fan-out (FanoutPolicy probe:k): contests solicit a seeded random
//    k-subset of alive workers instead of broadcasting, bounding contest
//    cost at fleet scale. The default `full` policy is bit-identical to the
//    historical broadcast implementation.

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/bid_set.hpp"
#include "sched/fanout.hpp"
#include "sched/scheduler.hpp"

namespace dlaja::sched {

struct BiddingConfig {
  /// Bidding window: how long the master waits for bids (paper: 1 s).
  double window_s = 1.0;

  /// Run one contest at a time (paper semantics: the master "waits for
  /// workers to make submissions ... and looks into all the received bids
  /// before allocating the job"). Serial contests keep bids meaningful
  /// when jobs arrive in bursts — a worker's backlog already includes the
  /// previous winner's job when it bids on the next one. Disabling this
  /// opens a contest per arrival immediately (all bids then see the same
  /// backlog, so one worker can win an entire burst).
  bool serialize_contests = true;

  /// Future-work extension: learn multiplicative bid corrections from the
  /// history of (actual / estimated) completion times.
  bool learn_correction = false;

  /// EMA weight for new observations when learning corrections.
  double correction_alpha = 0.2;

  /// Contest fan-out: full broadcast (paper) or a probed k-subset (scale).
  FanoutPolicy fanout;
};

class BiddingScheduler final : public Scheduler {
 public:
  explicit BiddingScheduler(BiddingConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override {
    std::string name = "bidding";
    if (config_.learn_correction) name += "+learned";
    if (config_.fanout.probing()) name += "+" + config_.fanout.describe();
    return name;
  }

  void attach(const SchedulerContext& ctx) override;
  void submit(const workflow::Job& job) override;
  void on_completion(const cluster::CompletionReport& report) override;
  void on_assignment_void(workflow::JobId id, cluster::WorkerIndex w) override;
  [[nodiscard]] std::size_t pending_jobs() const override {
    return contests_.size() + backlog_.size();
  }

  /// The bidding worker side only touches the worker's own state and the
  /// ctx shard accessors, so it is shard-safe — except in learned-correction
  /// mode, where workers read the correction table the master writes.
  [[nodiscard]] bool supports_sharding() const override { return !config_.learn_correction; }

  /// Contest-level counters for the ablation benches.
  struct Stats {
    std::uint64_t contests_opened = 0;
    std::uint64_t contests_closed_full = 0;     ///< quorum of bids arrived
    std::uint64_t contests_closed_timeout = 0;  ///< window elapsed first
    std::uint64_t fallback_assignments = 0;     ///< zero bids -> arbitrary
    std::uint64_t late_bids_ignored = 0;
    std::uint64_t duplicate_bids_ignored = 0;   ///< same worker bid twice (dup faults)
    std::uint64_t unassignable_jobs = 0;        ///< zero bids and no live worker
    std::uint64_t probes_sent = 0;              ///< bid solicitations (probe mode)
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] const BiddingConfig& config() const noexcept { return config_; }

 private:
  struct Contest {
    workflow::Job job;
    BidSet bids;
    /// Probe mode: how many workers this contest solicited — the quorum.
    /// Full mode leaves it 0 and checks against active_workers() per bid.
    std::uint32_t solicited = 0;
    sim::EventId timeout{};
  };

  /// Master-side: open the contest for `job` (Listing 1, sendJob).
  void open_contest(const workflow::Job& job);

  /// Probe mode: publish the request to a seeded random k-subset of alive
  /// workers; returns how many were solicited.
  std::uint32_t solicit_probes(std::uint64_t contest_id, const workflow::Job& job);

  /// Worker-side: handle a broadcast BidRequest at worker `w`.
  void worker_handle_bid_request(cluster::WorkerIndex w, const cluster::BidRequest& request);

  /// Master-side: Listing 1, receiveBid.
  void master_receive_bid(const cluster::BidSubmission& bid);

  /// Master-side: close a contest and assign the job (Listing 1 lines 10-14).
  void close_contest(std::uint64_t contest_id);

  /// Fallback when no bids arrived: rotate over currently active workers,
  /// preferring non-excluded ones. Returns kNoWorker when every worker is
  /// dead — the caller routes the job to the lifecycle instead of
  /// "assigning" it to a corpse.
  [[nodiscard]] cluster::WorkerIndex arbitrary_worker(cluster::WorkerIndex excluded);

  /// Interns the scheduler's span names on first traced use.
  void ensure_trace_names();

  BiddingConfig config_;
  SchedulerContext ctx_;
  msg::TopicId bid_topic_ = msg::kInvalidInterned;   ///< resolved at attach
  msg::MailboxId jobs_box_ = msg::kInvalidInterned;  ///< worker job queues
  msg::MailboxId bids_box_ = msg::kInvalidInterned;  ///< master bid intake
  std::uint16_t trace_contest_ = 0;  ///< "contest": open -> award span
  std::uint16_t trace_bid_ = 0;      ///< "bid": bid-received instant
  bool trace_names_ready_ = false;
  std::unordered_map<std::uint64_t, Contest> contests_;
  std::deque<workflow::Job> backlog_;  ///< jobs awaiting their contest (serial mode)
  std::uint64_t next_contest_ = 1;
  std::uint64_t fallback_cursor_ = 0;
  Stats stats_;

  /// Probe mode only (never constructed under `full`, so full-fanout runs
  /// draw exactly the streams the historical implementation drew).
  std::optional<RandomStream> probe_rng_;
  std::vector<cluster::WorkerIndex> probe_scratch_;  ///< alive workers, reshuffled per contest
  std::vector<net::NodeId> probe_targets_;           ///< solicited nodes per contest

  /// Extension state: per-worker multiplicative bid correction (worker-side
  /// knowledge, indexed by WorkerIndex).
  std::vector<double> correction_;
  /// Winning estimate per in-flight job, for computing actual/estimate.
  std::unordered_map<workflow::JobId, double> winning_estimate_s_;
  std::unordered_map<workflow::JobId, Tick> assigned_at_;
};

}  // namespace dlaja::sched
