#pragma once
// Simple push schedulers: sanity floors/ceilings for the comparisons.
//
//  * random      — assign each arriving job to a uniformly random worker;
//  * round-robin — rotate (identical to the Spark-like default, kept
//                  separately so benches can show the equivalence);
//  * least-queue — omniscient greedy: assign to the worker with the
//                  shortest local queue. Not realizable distributedly
//                  (the master would need instant global state) but a
//                  useful load-balance reference.

#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace dlaja::sched {

enum class PushPolicy { kRandom, kRoundRobin, kLeastQueue };

class SimplePushScheduler final : public Scheduler {
 public:
  /// `seed` drives the random policy; ignored by the others.
  explicit SimplePushScheduler(PushPolicy policy, std::uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  [[nodiscard]] std::string name() const override;

  void attach(const SchedulerContext& ctx) override;
  void submit(const workflow::Job& job) override;

 private:
  [[nodiscard]] cluster::WorkerIndex pick();

  PushPolicy policy_;
  RandomStream rng_;
  SchedulerContext ctx_;
  std::uint64_t cursor_ = 0;
};

}  // namespace dlaja::sched
