#include "sched/simple.hpp"

#include <any>
#include <limits>

namespace dlaja::sched {

using cluster::JobAssignment;
using cluster::WorkerIndex;

std::string SimplePushScheduler::name() const {
  switch (policy_) {
    case PushPolicy::kRandom: return "random";
    case PushPolicy::kRoundRobin: return "round-robin";
    case PushPolicy::kLeastQueue: return "least-queue";
  }
  return "?";
}

void SimplePushScheduler::attach(const SchedulerContext& ctx) {
  ctx_ = ctx;
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    cluster::WorkerNode* worker = ctx_.workers[w];
    if (worker == nullptr) continue;  // outside this context's partition
    ctx_.broker->register_mailbox(
        ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
        [worker](const msg::Message& message) {
          worker->enqueue(message.payload.as<JobAssignment>().job);
        });
  }
}

WorkerIndex SimplePushScheduler::pick() {
  const std::size_t n = ctx_.worker_count();
  // Push policies probe forward past failed workers (the master learns of
  // dead executors out of band, as any real driver does).
  const auto first_alive_from = [&](WorkerIndex start) {
    for (std::size_t probe = 0; probe < n; ++probe) {
      const auto w = static_cast<WorkerIndex>((start + probe) % n);
      if (ctx_.workers[w] != nullptr && !ctx_.workers[w]->failed()) return w;
    }
    return start;
  };
  switch (policy_) {
    case PushPolicy::kRandom:
      return first_alive_from(static_cast<WorkerIndex>(
          rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    case PushPolicy::kRoundRobin:
      return first_alive_from(static_cast<WorkerIndex>(cursor_++ % n));
    case PushPolicy::kLeastQueue: {
      WorkerIndex best = 0;
      std::size_t best_len = std::numeric_limits<std::size_t>::max();
      for (WorkerIndex w = 0; w < n; ++w) {
        const cluster::WorkerNode* worker = ctx_.workers[w];
        if (worker == nullptr || worker->failed()) continue;
        const std::size_t len = worker->queue_length() + (worker->busy() ? 1 : 0);
        if (len < best_len) {
          best_len = len;
          best = w;
        }
      }
      return best;
    }
  }
  return 0;
}

void SimplePushScheduler::submit(const workflow::Job& job) {
  const WorkerIndex w = pick();
  metrics::JobRecord& record = ctx_.metrics->job(job.id);
  record.assigned = ctx_.sim->now();
  record.worker = w;
  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
                    JobAssignment{job});
  if (ctx_.notify_assigned) {
    ctx_.notify_assigned(job.id, w, ctx_.workers[w]->estimate_bid_s(job));
  }
}

}  // namespace dlaja::sched
