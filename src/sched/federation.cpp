#include "sched/federation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace dlaja::sched {

using cluster::LoadDigest;
using cluster::RouteJob;
using cluster::WorkerIndex;

FederatedScheduler::FederatedScheduler(const SchedulerSpec& spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {
  const std::uint32_t n = spec_.federation.partitions;
  if (n < 2) {
    throw std::invalid_argument("FederatedScheduler wants partitions >= 2 (got " +
                                std::to_string(n) + "); build the plain policy instead");
  }
  inst_.resize(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    // Distinct seeds so the random policy's instances never mirror each
    // other; policies that draw from ctx.seeds get per-instance sequencers
    // in attach().
    inst_[p].policy = spec_.build_policy(seed_ + 7919ull * p);
    inst_[p].view_load.assign(n, 0.0);
    inst_[p].view_at.assign(n, kNeverSeen);
  }
}

std::string FederatedScheduler::name() const {
  return "fed(" + inst_.front().policy->name() + ")x" + std::to_string(partitions());
}

void FederatedScheduler::attach(const SchedulerContext& ctx) {
  ctx_ = ctx;
  digest_interval_ = ticks_from_seconds(spec_.federation.digest_interval_s);
  staleness_bound_ = ticks_from_seconds(spec_.federation.staleness_bound_s);
  adoption_grace_ = ticks_from_seconds(spec_.federation.adoption_grace_s);

  const std::size_t worker_count = ctx_.worker_count();
  part_of_.resize(worker_count);
  for (WorkerIndex w = 0; w < worker_count; ++w) {
    part_of_[w] = spec_.federation.partition_of(w, worker_count);
    inst_[part_of_[w]].members.push_back(w);
  }

  digest_topic_ = ctx_.broker->topic(cluster::topics::kFedDigests);
  fed_jobs_box_ = ctx_.broker->mailbox(cluster::mailboxes::kFedJobs);

  for (std::uint32_t p = 0; p < partitions(); ++p) {
    Instance& inst = inst_[p];
    const std::string tag = std::to_string(p);
    // Each instance is its own broker endpoint: crashing it (set_node_down)
    // severs exactly its inbound traffic, nothing else. It inherits the
    // master's link so partitioning never changes message timing.
    inst.node = ctx_.network->register_node("sched" + tag,
                                            ctx_.network->link(ctx_.master_node));
    inst.seeds = std::make_unique<SeedSequencer>(
        ctx_.seeds != nullptr ? ctx_.seeds->seed_for("fed/instance/" + tag)
                              : seed_ + p);

    // The masked view: the instance IS the master of its partition. Workers
    // outside it are null — guarded policy scans skip them — and topics it
    // interns are scoped so sibling broadcasts stay inaudible.
    SchedulerContext mctx = ctx_;
    mctx.master_node = inst.node;
    mctx.scope = "fed" + tag + "/";
    mctx.seeds = inst.seeds.get();
    for (WorkerIndex w = 0; w < worker_count; ++w) {
      if (part_of_[w] != p) mctx.workers[w] = nullptr;
    }
    // Interpose on the lifecycle hooks to track each routed job's state.
    // notify_assigned may be set even when the engine's is not (policies
    // only ever call it guarded); notify_unassignable must mirror the
    // engine's — its *presence* switches policy behaviour.
    mctx.notify_assigned = [this](workflow::JobId id, WorkerIndex w, double estimate_s) {
      mark_assigned(id);
      if (ctx_.notify_assigned) ctx_.notify_assigned(id, w, estimate_s);
    };
    if (ctx_.notify_unassignable) {
      mctx.notify_unassignable = [this](const workflow::Job& job) {
        const auto it = routed_.find(job.id);
        if (it != routed_.end()) drop_routed(it);
        ctx_.notify_unassignable(job);
      };
    }
    inst.policy->attach(mctx);

    ctx_.broker->register_mailbox(inst.node, cluster::mailboxes::kFedJobs,
                                  [this, p](const msg::Message& message) {
                                    on_route(p, message.payload.as<RouteJob>());
                                  });
    ctx_.broker->subscribe(digest_topic_, inst.node,
                           [this, p](const msg::Message& message) {
                             on_digest(p, message.payload.as<LoadDigest>());
                           });

    if (ctx_.probes != nullptr) {
      ctx_.probes->add_gauge("sched.partition_load.p" + tag, 0,
                             [this, p] { return own_load(p); });
    }
  }

  if (ctx_.probes != nullptr) {
    ctx_.probes->add_gauge("sched.spills", 0,
                           [this] { return static_cast<double>(stats_.spills); });
    // Worst digest age any live instance is acting on right now — the
    // observed eventual-consistency lag (bounded by staleness_bound_s as
    // long as digests keep flowing).
    ctx_.probes->add_gauge("sched.digest_age_s", 0, [this] {
      const Tick now = ctx_.sim->now();
      Tick worst = 0;
      for (const Instance& inst : inst_) {
        if (inst.down) continue;
        for (std::uint32_t q = 0; q < partitions(); ++q) {
          if (inst.view_at[q] == kNeverSeen) continue;
          worst = std::max(worst, now - inst.view_at[q]);
        }
      }
      return seconds_from_ticks(worst);
    });
  }

  // Touch the counters so every federated run carries the same stats
  // columns, spills or not (the fault.* counters get the same treatment in
  // the engine).
  count("fed.routed", 0);
  count("fed.spills", 0);
  count("fed.digests", 0);
  count("fed.adoptions", 0);
  count("fed.resends", 0);
}

std::size_t FederatedScheduler::live_members(std::uint32_t p) const {
  std::size_t n = 0;
  for (const WorkerIndex w : inst_[p].members) {
    if (!ctx_.workers[w]->failed()) ++n;
  }
  return n;
}

double FederatedScheduler::own_load(std::uint32_t p) const {
  const std::size_t live = live_members(p);
  return static_cast<double>(inst_[p].outstanding) /
         static_cast<double>(live == 0 ? 1 : live);
}

std::uint32_t FederatedScheduler::pick_home() {
  const std::size_t ring = part_of_.size();
  // First pass insists on live workers (the master learns of dead executors
  // out of band, like every push policy here); second pass settles for any
  // non-crashed instance so a fully-degraded partition still queues work
  // for its recovery.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t probe = 0; probe < ring; ++probe) {
      const std::size_t slot = (cursor_ + probe) % ring;
      const std::uint32_t p = part_of_[slot];
      if (inst_[p].down) continue;
      if (pass == 0 && live_members(p) == 0) continue;
      cursor_ = slot + 1;
      return p;
    }
  }
  return partitions();
}

std::uint32_t FederatedScheduler::pick_spill_target(std::uint32_t p) const {
  const FederationSpec& fed = spec_.federation;
  const double load = own_load(p);
  if (load <= fed.spill_threshold) return partitions();
  const Instance& inst = inst_[p];
  const Tick now = ctx_.sim->now();
  std::uint32_t best = partitions();
  double best_load = load;  // a target must be strictly lighter than us
  for (std::uint32_t q = 0; q < partitions(); ++q) {
    if (q == p || inst_[q].down) continue;
    if (inst.view_at[q] == kNeverSeen) continue;
    if (now - inst.view_at[q] > staleness_bound_) continue;  // too stale to trust
    if (inst.view_load[q] < best_load) {
      best_load = inst.view_load[q];
      best = q;
    }
  }
  return best;
}

std::uint32_t FederatedScheduler::successor_of(std::uint32_t crashed) const {
  const std::int32_t configured = spec_.federation.successor;
  if (configured >= 0 && static_cast<std::uint32_t>(configured) != crashed &&
      !inst_[static_cast<std::uint32_t>(configured)].down) {
    return static_cast<std::uint32_t>(configured);
  }
  for (std::uint32_t step = 1; step < partitions(); ++step) {
    const std::uint32_t q = (crashed + step) % partitions();
    if (!inst_[q].down) return q;
  }
  return partitions();
}

void FederatedScheduler::route(workflow::JobId id, Routed& entry, std::uint32_t target,
                               std::uint32_t hops, net::NodeId from) {
  entry.partition = target;
  entry.hops = hops;
  entry.sent_at = ctx_.sim->now();
  ctx_.broker->send(from, inst_[target].node, fed_jobs_box_, RouteJob{entry.job, hops});
  (void)id;
}

void FederatedScheduler::submit(const workflow::Job& job) {
  const std::uint32_t home = pick_home();
  if (home == partitions()) {
    // Every instance is down. With a lifecycle the job goes back for retry
    // or dead-lettering; without one this is unreachable (instances only go
    // down under fault plans, which force the lifecycle on).
    if (ctx_.notify_unassignable) {
      ctx_.notify_unassignable(job);
      return;
    }
  }
  const std::uint32_t target = home == partitions() ? part_of_[cursor_++ % part_of_.size()] : home;
  Routed& entry = routed_[job.id];
  entry.job = job;
  entry.state = Routed::State::kRouting;
  ++routing_count_;
  ++stats_.routed;
  count("fed.routed", 1);
  route(job.id, entry, target, 0, ctx_.master_node);
  if (ctx_.fault_aware) arm_watchdog();
}

void FederatedScheduler::on_route(std::uint32_t p, const RouteJob& r) {
  const auto it = routed_.find(r.job.id);
  // Anything but an in-flight route is a stale duplicate (a watchdog resend
  // whose original got through, or a completion that already landed).
  if (it == routed_.end() || it->second.state != Routed::State::kRouting) return;
  Routed& entry = it->second;

  if (r.hops == 0 && spec_.federation.spilling()) {
    const std::uint32_t target = pick_spill_target(p);
    if (target != partitions()) {
      ++stats_.spills;
      count("fed.spills", 1);
      route(r.job.id, entry, target, 1, inst_[p].node);
      return;
    }
  }

  entry.partition = p;
  entry.state = Routed::State::kQueued;
  --routing_count_;
  ++inst_[p].outstanding;
  arm_digest(p);
  inst_[p].policy->submit(r.job);
}

void FederatedScheduler::on_digest(std::uint32_t p, const LoadDigest& digest) {
  if (digest.partition == p) return;  // an instance's own broadcast echoes back
  inst_[p].view_load[digest.partition] = digest.load;
  inst_[p].view_at[digest.partition] = digest.at_tick;
}

void FederatedScheduler::mark_assigned(workflow::JobId id) {
  const auto it = routed_.find(id);
  if (it == routed_.end()) return;
  if (it->second.state == Routed::State::kRouting) --routing_count_;
  it->second.state = Routed::State::kAssigned;
}

void FederatedScheduler::drop_routed(std::map<workflow::JobId, Routed>::iterator it) {
  if (it->second.state == Routed::State::kRouting) {
    --routing_count_;
  } else {
    --inst_[it->second.partition].outstanding;
  }
  routed_.erase(it);
}

void FederatedScheduler::arm_digest(std::uint32_t p) {
  Instance& inst = inst_[p];
  if (inst.digest_armed || digest_interval_ <= 0) return;
  inst.digest_armed = true;
  ctx_.sim->schedule_after(digest_interval_, [this, p] { tick_digest(p); });
}

void FederatedScheduler::tick_digest(std::uint32_t p) {
  Instance& inst = inst_[p];
  inst.digest_armed = false;
  if (inst.down) return;  // re-armed on recovery
  ++stats_.digests;
  count("fed.digests", 1);
  ctx_.broker->publish(digest_topic_, inst.node,
                       LoadDigest{p, own_load(p), ctx_.sim->now()});
  // Keep beating while there is work; a drained instance sends the idle
  // digest above and disarms, so timers never hold the run open.
  if (inst.outstanding > 0) arm_digest(p);
}

void FederatedScheduler::arm_watchdog() {
  if (watchdog_armed_ || routing_count_ == 0) return;
  watchdog_armed_ = true;
  ctx_.sim->schedule_after(staleness_bound_ > 0 ? staleness_bound_ : 1,
                           [this] { tick_watchdog(); });
}

void FederatedScheduler::tick_watchdog() {
  watchdog_armed_ = false;
  const Tick now = ctx_.sim->now();
  // Routes strand when their target crashed around delivery time and then
  // recovered (adoption only covers targets that STAY down past the grace).
  // Resend anything in flight for longer than the staleness bound; the
  // receiver dedupes by state, so a slow-but-alive original is harmless.
  for (auto it = routed_.begin(); it != routed_.end();) {
    Routed& entry = it->second;
    if (entry.state != Routed::State::kRouting || now - entry.sent_at < staleness_bound_) {
      ++it;
      continue;
    }
    const std::uint32_t target = pick_home();
    if (target == partitions()) {
      if (ctx_.notify_unassignable) {
        const workflow::Job job = entry.job;
        drop_routed(it++);
        ctx_.notify_unassignable(job);
        continue;
      }
      ++it;
      continue;
    }
    ++stats_.resends;
    count("fed.resends", 1);
    route(it->first, entry, target, entry.hops, ctx_.master_node);
    ++it;
  }
  if (ctx_.fault_aware) arm_watchdog();
}

void FederatedScheduler::on_completion(const cluster::CompletionReport& report) {
  const auto it = routed_.find(report.job_id);
  if (it != routed_.end()) drop_routed(it);
  inst_[part_of_[report.worker]].policy->on_completion(report);
}

void FederatedScheduler::on_worker_idle(WorkerIndex w) {
  inst_[part_of_[w]].policy->on_worker_idle(w);
}

void FederatedScheduler::on_worker_capacity(WorkerIndex w) {
  inst_[part_of_[w]].policy->on_worker_capacity(w);
}

void FederatedScheduler::on_worker_recovered(WorkerIndex w) {
  inst_[part_of_[w]].policy->on_worker_recovered(w);
}

void FederatedScheduler::on_assignment_void(workflow::JobId id, WorkerIndex w) {
  const auto it = routed_.find(id);
  if (it != routed_.end()) drop_routed(it);
  inst_[part_of_[w]].policy->on_assignment_void(id, w);
}

void FederatedScheduler::on_scheduler_crash(std::uint32_t instance) {
  if (instance >= partitions() || inst_[instance].down) return;
  inst_[instance].down = true;
  ctx_.broker->set_node_down(inst_[instance].node, true);
  // Adoption waits out the grace period (the crashed instance's leases):
  // in-flight completions land, then the successor takes what never made it
  // to a worker.
  ctx_.sim->schedule_after(adoption_grace_, [this, instance] { adopt(instance); });
}

void FederatedScheduler::on_scheduler_recovered(std::uint32_t instance) {
  if (instance >= partitions() || !inst_[instance].down) return;
  inst_[instance].down = false;
  ctx_.broker->set_node_down(inst_[instance].node, false);
  if (inst_[instance].outstanding > 0) arm_digest(instance);
}

void FederatedScheduler::adopt(std::uint32_t crashed) {
  if (!inst_[crashed].down) return;  // recovered inside the grace window
  const std::uint32_t heir = successor_of(crashed);
  for (auto it = routed_.begin(); it != routed_.end();) {
    Routed& entry = it->second;
    if (entry.partition != crashed || entry.state == Routed::State::kAssigned) {
      ++it;  // assigned jobs ride out on their (live) workers
      continue;
    }
    if (heir == partitions()) {
      // No live successor at all: hand the job to the lifecycle rather
      // than strand it (unreachable without faults, which force it on).
      if (ctx_.notify_unassignable) {
        const workflow::Job job = entry.job;
        drop_routed(it++);
        ctx_.notify_unassignable(job);
        continue;
      }
      ++it;
      continue;
    }
    if (entry.state == Routed::State::kQueued) {
      --inst_[crashed].outstanding;
      entry.state = Routed::State::kRouting;
      ++routing_count_;
    }
    ++stats_.adoptions;
    count("fed.adoptions", 1);
    // The crashed policy still holds its copy; if the instance later
    // recovers and assigns it anyway, the engine's completion dedupe (the
    // same machinery that absorbs dup:p message faults) counts it once.
    route(it->first, entry, heir, entry.hops, ctx_.master_node);
    ++it;
  }
  if (ctx_.fault_aware) arm_watchdog();
}

std::size_t FederatedScheduler::pending_jobs() const {
  std::size_t pending = routing_count_;
  for (const Instance& inst : inst_) pending += inst.policy->pending_jobs();
  return pending;
}

bool FederatedScheduler::supports_sharding() const {
  return std::all_of(inst_.begin(), inst_.end(),
                     [](const Instance& inst) { return inst.policy->supports_sharding(); });
}

void FederatedScheduler::count(const char* name, double delta) const {
  if (ctx_.metrics != nullptr) ctx_.metrics->registry().counter(name).add(delta);
}

}  // namespace dlaja::sched
