#include "sched/bidding.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace dlaja::sched {

using cluster::BidRequest;
using cluster::BidSubmission;
using cluster::JobAssignment;
using cluster::WorkerIndex;

void BiddingScheduler::attach(const SchedulerContext& ctx) {
  ctx_ = ctx;
  correction_.assign(ctx_.worker_count(), 1.0);

  // Resolve the protocol's topic and mailbox names once: every publish/send
  // below goes through dense ids, never a string hash.
  bid_topic_ = ctx_.broker->topic(cluster::topics::kBidRequests);
  jobs_box_ = ctx_.broker->mailbox(cluster::mailboxes::kJobs);
  bids_box_ = ctx_.broker->mailbox(cluster::mailboxes::kBids);

  // Worker side: every worker listens for bid broadcasts and for direct
  // job assignments.
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    cluster::WorkerNode* worker = ctx_.workers[w];
    ctx_.broker->subscribe(bid_topic_, ctx_.worker_nodes[w],
                           [this, w](const msg::Message& message) {
                             worker_handle_bid_request(w, message.payload.as<BidRequest>());
                           });
    ctx_.broker->register_mailbox(ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
                                  [worker](const msg::Message& message) {
                                    worker->enqueue(message.payload.as<JobAssignment>().job);
                                  });
  }

  // Master side: collect bids.
  ctx_.broker->register_mailbox(
      ctx_.master_node, cluster::mailboxes::kBids, [this](const msg::Message& message) {
        master_receive_bid(message.payload.as<BidSubmission>());
      });

  // The probe substream exists only in probe mode: full-fanout runs must
  // draw exactly the streams the historical implementation drew.
  if (config_.fanout.probing()) {
    const std::uint64_t seed =
        ctx_.seeds != nullptr ? ctx_.seeds->seed_for("sched/bidding/probe") : 1;
    probe_rng_.emplace(seed);
  }
}

void BiddingScheduler::ensure_trace_names() {
  if (trace_names_ready_) return;
  trace_names_ready_ = true;
  trace_contest_ = ctx_.sim->tracer()->intern("contest");
  trace_bid_ = ctx_.sim->tracer()->intern("bid");
}

void BiddingScheduler::submit(const workflow::Job& job) {
  if (config_.serialize_contests && !contests_.empty()) {
    backlog_.push_back(job);  // the master finishes the current contest first
    return;
  }
  open_contest(job);
}

std::uint32_t BiddingScheduler::solicit_probes(std::uint64_t contest_id,
                                               const workflow::Job& job) {
  probe_scratch_.clear();
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    if (!ctx_.workers[w]->failed()) probe_scratch_.push_back(w);
  }
  const auto k = static_cast<std::uint32_t>(
      std::min<std::size_t>(config_.fanout.probe_k, probe_scratch_.size()));
  // Partial Fisher-Yates: the first k slots become a uniform k-subset, in
  // the (seeded) shuffle's order.
  probe_targets_.clear();
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(probe_rng_->uniform_int(
                           0, static_cast<std::uint64_t>(probe_scratch_.size() - 1 - i)));
    std::swap(probe_scratch_[i], probe_scratch_[j]);
    probe_targets_.push_back(ctx_.worker_nodes[probe_scratch_[i]]);
  }
  stats_.probes_sent += k;
  ctx_.broker->publish_to(bid_topic_, ctx_.master_node, BidRequest{contest_id, job},
                          probe_targets_);
  return k;
}

void BiddingScheduler::open_contest(const workflow::Job& job) {
  // Listing 1, sendJob: publish for bidding and open the contest.
  const std::uint64_t contest_id = next_contest_++;
  Contest& contest = contests_[contest_id];
  contest.job = job;
  contest.bids.reset(static_cast<WorkerIndex>(job.excluded_worker));
  ++stats_.contests_opened;

  metrics::JobRecord& record = ctx_.metrics->job(job.id);
  record.contest_opened = ctx_.sim->now();

  if (config_.fanout.probing()) {
    contest.solicited = solicit_probes(contest_id, job);
  } else {
    ctx_.broker->publish(bid_topic_, ctx_.master_node, BidRequest{contest_id, job});
  }
  contest.timeout = ctx_.sim->schedule_after(ticks_from_seconds(config_.window_s),
                                             [this, contest_id] {
                                               ++stats_.contests_closed_timeout;
                                               close_contest(contest_id);
                                             });
}

void BiddingScheduler::worker_handle_bid_request(WorkerIndex w, const BidRequest& request) {
  cluster::WorkerNode* worker = ctx_.workers[w];
  if (worker->failed()) return;

  // Listing 2, sendBid: backlog + transfer estimate + processing estimate.
  double cost_s = worker->estimate_bid_s(request.job);
  if (config_.learn_correction) cost_s *= correction_[w];

  // The bidding thread needs time to compute the estimate and may straggle;
  // the reply then crosses the network back to the master. Worker-side
  // work stays on the worker's own simulator/metrics (its shard, when
  // sharded); the send crosses back through the broker.
  const Tick delay = worker->sample_bid_delay();
  const BidSubmission bid{request.contest, request.job.id, w, cost_s};
  auto submit = [this, w, bid] {
    cluster::WorkerNode* again = ctx_.workers[w];
    if (again->failed()) return;
    ++ctx_.worker_metrics_for(w)->worker(w).bids_submitted;
    ctx_.broker->send(ctx_.worker_nodes[w], ctx_.master_node, bids_box_, bid);
  };
  static_assert(sim::InlineAction::fits_inline<decltype(submit)>());
  ctx_.worker_sim(w)->schedule_after(delay, std::move(submit));
}

void BiddingScheduler::master_receive_bid(const BidSubmission& bid) {
  // Listing 1, receiveBid.
  const auto it = contests_.find(bid.contest);
  if (it == contests_.end()) {
    ++stats_.late_bids_ignored;  // contest already closed
    return;
  }
  Contest& contest = it->second;
  // Dedupe per worker: a duplicated message (injectable via the broker's
  // fault policy) must not count the same worker twice toward the quorum
  // and close the contest with a live worker's bid still in flight.
  if (!contest.bids.insert(bid.worker, bid.cost_s)) {
    ++stats_.duplicate_bids_ignored;
    return;
  }
  if (DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) {
    ensure_trace_names();
    ctx_.sim->tracer()->instant(obs::Component::kSched, trace_bid_, bid.worker,
                                ctx_.sim->now(), bid.job_id);
  }

  // biddingFinished: the quorum is every active worker (full fan-out; the
  // timeout branch is the scheduled event from open_contest) or every
  // solicited worker (probe fan-out). bids.size() counts distinct workers.
  const std::size_t quorum =
      config_.fanout.probing() ? contest.solicited : ctx_.active_workers();
  if (contest.bids.size() >= quorum) {
    ++stats_.contests_closed_full;
    close_contest(bid.contest);
  }
}

cluster::WorkerIndex BiddingScheduler::arbitrary_worker(WorkerIndex excluded) {
  const std::size_t n = ctx_.worker_count();
  WorkerIndex excluded_alive = cluster::kNoWorker;
  for (std::size_t probe = 0; probe < n; ++probe) {
    const auto w = static_cast<WorkerIndex>(fallback_cursor_++ % n);
    if (ctx_.workers[w]->failed()) continue;
    if (w == excluded) {
      excluded_alive = w;
      continue;
    }
    return w;
  }
  // Only the excluded worker survives (soft exclusion), or nobody does:
  // kNoWorker routes the job back to the lifecycle instead of "assigning"
  // it to a dead worker and polluting its metrics.
  return excluded_alive;
}

void BiddingScheduler::close_contest(std::uint64_t contest_id) {
  const auto it = contests_.find(contest_id);
  if (it == contests_.end()) return;  // already closed by the other path
  Contest contest = std::move(it->second);
  contests_.erase(it);
  ctx_.sim->cancel(contest.timeout);

  const auto excluded = static_cast<WorkerIndex>(contest.job.excluded_worker);
  WorkerIndex winner;
  double winning_cost = -1.0;
  if (contest.bids.empty()) {
    winner = arbitrary_worker(excluded);
    if (winner == cluster::kNoWorker) {
      // Zero bids because zero live workers: the job cannot be assigned.
      // Hand it to the lifecycle (retry/dead-letter) — or, without one,
      // drop it *without* stamping record.assigned / bids_won for an
      // assignment that never happened.
      ++stats_.unassignable_jobs;
      ctx_.metrics->job(contest.job.id).bids_received = 0;
      DLAJA_LOG(kWarn, "bidding") << ctx_.sim->log_prefix() << "no live worker for job "
                                  << contest.job.id
                                  << (ctx_.notify_unassignable ? "; handing to lifecycle"
                                                               : "; job dropped");
      if (ctx_.notify_unassignable) ctx_.notify_unassignable(contest.job);
      if (config_.serialize_contests && !backlog_.empty()) {
        const workflow::Job next = backlog_.front();
        backlog_.pop_front();
        open_contest(next);
      }
      return;
    }
    ++stats_.fallback_assignments;
    DLAJA_LOG(kDebug, "bidding") << ctx_.sim->log_prefix() << "no bids for job "
                                 << contest.job.id
                                 << "; arbitrary assignment to worker " << winner;
  } else {
    winning_cost = 0.0;
    winner = contest.bids.winner(&winning_cost);
  }

  metrics::JobRecord& record = ctx_.metrics->job(contest.job.id);
  record.assigned = ctx_.sim->now();
  record.worker = winner;
  record.winning_bid_s = winning_cost;
  record.bids_received = static_cast<std::uint32_t>(contest.bids.size());
  ++ctx_.metrics->worker(winner).bids_won;

  if (DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) {
    ensure_trace_names();
    ctx_.sim->tracer()->span(obs::Component::kSched, trace_contest_, winner,
                             record.contest_opened, ctx_.sim->now(), contest.job.id);
  }
  metrics::Registry& registry = ctx_.metrics->registry();
  registry.counter("sched.contests").add(1);
  registry.histogram("sched.contest_s")
      .record(seconds_from_ticks(ctx_.sim->now() - record.contest_opened));
  registry.histogram("sched.contest_bids").record(static_cast<double>(contest.bids.size()));

  if (config_.learn_correction && winning_cost > 0.0) {
    winning_estimate_s_[contest.job.id] = winning_cost;
    assigned_at_[contest.job.id] = ctx_.sim->now();
  }

  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[winner], jobs_box_,
                    JobAssignment{contest.job});
  if (ctx_.notify_assigned) ctx_.notify_assigned(contest.job.id, winner, winning_cost);

  // Serial mode: the next queued job gets its contest now. By this point the
  // winner's queue (as seen through its future bids) includes this job's
  // estimate only after the assignment message lands; opening the next
  // contest immediately still gives workers distinct backlogs because bid
  // replies travel behind the assignment on the same links.
  if (config_.serialize_contests && !backlog_.empty()) {
    const workflow::Job next = backlog_.front();
    backlog_.pop_front();
    open_contest(next);
  }
}

void BiddingScheduler::on_assignment_void(workflow::JobId id, cluster::WorkerIndex w) {
  (void)w;
  // The attempt died with the worker; a completion for it will never arrive,
  // so drop the learning state keyed on this job id (a retry gets a new id).
  winning_estimate_s_.erase(id);
  assigned_at_.erase(id);
}

void BiddingScheduler::on_completion(const cluster::CompletionReport& report) {
  if (!config_.learn_correction) return;
  const auto est_it = winning_estimate_s_.find(report.job_id);
  const auto at_it = assigned_at_.find(report.job_id);
  if (est_it == winning_estimate_s_.end() || at_it == assigned_at_.end()) return;
  const double estimate_s = est_it->second;
  const double actual_s = seconds_from_ticks(ctx_.sim->now() - at_it->second);
  winning_estimate_s_.erase(est_it);
  assigned_at_.erase(at_it);
  if (estimate_s <= 0.0 || actual_s <= 0.0 || report.worker >= correction_.size()) return;
  const double ratio = actual_s / estimate_s;
  double& corr = correction_[report.worker];
  corr = (1.0 - config_.correction_alpha) * corr + config_.correction_alpha * ratio;
  // Keep the correction in a sane band; a single pathological job must not
  // blind a worker to all future contests.
  corr = std::min(std::max(corr, 0.25), 4.0);
}

}  // namespace dlaja::sched
