#include "sched/bidding.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace dlaja::sched {

using cluster::BidRequest;
using cluster::BidSubmission;
using cluster::DirectPlacement;
using cluster::JobAssignment;
using cluster::LoadReport;
using cluster::PlacementResponse;
using cluster::WorkerIndex;

namespace {

/// The transfer + processing part of a bid, from the master's cached view:
/// the worker's nominal speeds (its immutable config) and the resources the
/// master believes resident there. This is Listing 2 lines 4-5 evaluated
/// without asking the worker.
double cached_work_s(const LoadCache& cache, const cluster::WorkerNode& worker,
                     const workflow::Job& job) {
  const cluster::WorkerConfig& config = worker.config();
  double transfer_s = 0.0;
  if (job.needs_resource() && !cache.believes_resident(worker.index(), job.resource)) {
    transfer_s = job.resource_size_mb / std::max(config.network_mbps, 1e-9);
  }
  const double processing_s =
      job.process_mb / std::max(config.rw_mbps, 1e-9) + seconds_from_ticks(job.fixed_cost);
  return transfer_s + processing_s;
}

}  // namespace

void BiddingScheduler::attach(const SchedulerContext& ctx) {
  ctx_ = ctx;
  correction_.assign(ctx_.worker_count(), 1.0);

  // Resolve the protocol's topic and mailbox names once: every publish/send
  // below goes through dense ids, never a string hash.
  bid_topic_ = ctx_.broker->topic(ctx_.scoped(cluster::topics::kBidRequests));
  jobs_box_ = ctx_.broker->mailbox(cluster::mailboxes::kJobs);
  bids_box_ = ctx_.broker->mailbox(cluster::mailboxes::kBids);

  // Worker side: every worker listens for bid broadcasts and for direct
  // job assignments.
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    cluster::WorkerNode* worker = ctx_.workers[w];
    if (worker == nullptr) continue;  // outside this context's partition
    ctx_.broker->subscribe(bid_topic_, ctx_.worker_nodes[w],
                           [this, w](const msg::Message& message) {
                             worker_handle_bid_request(w, message.payload.as<BidRequest>());
                           });
    ctx_.broker->register_mailbox(ctx_.worker_nodes[w], cluster::mailboxes::kJobs,
                                  [worker](const msg::Message& message) {
                                    worker->enqueue(message.payload.as<JobAssignment>().job);
                                  });
  }

  // Master side: collect bids.
  ctx_.broker->register_mailbox(
      ctx_.master_node, cluster::mailboxes::kBids, [this](const msg::Message& message) {
        master_receive_bid(message.payload.as<BidSubmission>());
      });

  // The probe substream exists only when contests probe (probe mode, and
  // cached mode's decline-fallback re-contests): full-fanout runs must draw
  // exactly the streams the historical implementation drew.
  if (config_.fanout.contest_probes()) {
    const std::uint64_t seed =
        ctx_.seeds != nullptr ? ctx_.seeds->seed_for("sched/bidding/probe") : 1;
    probe_rng_.emplace(seed);
  }

  if (config_.fanout.cached()) {
    cache_.reset(ctx_.worker_count());
    // Candidate sampling draws from its own named substream so cache-mode
    // placements never perturb the fallback contests' probe stream.
    const std::uint64_t cache_seed =
        ctx_.seeds != nullptr ? ctx_.seeds->seed_for("fanout/cache") : 2;
    cache_rng_.emplace(cache_seed);

    placements_box_ = ctx_.broker->mailbox(cluster::mailboxes::kPlacements);
    placement_acks_box_ = ctx_.broker->mailbox(cluster::mailboxes::kPlacementAcks);
    load_reports_box_ = ctx_.broker->mailbox(cluster::mailboxes::kLoadReports);
    for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
      if (ctx_.workers[w] == nullptr) continue;
      ctx_.broker->register_mailbox(
          ctx_.worker_nodes[w], cluster::mailboxes::kPlacements,
          [this, w](const msg::Message& message) {
            worker_handle_placement(w, message.payload.as<DirectPlacement>());
          });
    }
    ctx_.broker->register_mailbox(
        ctx_.master_node, cluster::mailboxes::kPlacementAcks,
        [this](const msg::Message& message) {
          master_receive_placement_ack(message.payload.as<PlacementResponse>());
        });
    ctx_.broker->register_mailbox(
        ctx_.master_node, cluster::mailboxes::kLoadReports,
        [this](const msg::Message& message) {
          master_receive_load_report(message.payload.as<LoadReport>());
        });
  }

  if (ctx_.probes != nullptr) {
    // Master-side contest pressure (control shard).
    ctx_.probes->add_gauge("sched.contests_open", 0, [this] {
      return static_cast<double>(contests_.size());
    });
    if (config_.fanout.cached()) {
      // Believed-vs-actual backlog error of the load cache, as a signed sum:
      // the control shard contributes +sum(cached backlog) and each worker's
      // own shard contributes -its actual backlog, so the merged series is
      // (believed - actual) seconds without any cross-shard read.
      ctx_.probes->add_gauge("cache.load_error_s", 0, [this] {
        double believed = 0.0;
        for (std::size_t w = 0; w < cache_.size(); ++w) {
          believed += cache_.backlog_s(static_cast<WorkerIndex>(w));
        }
        return believed;
      });
      for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
        cluster::WorkerNode* worker = ctx_.workers[w];
        if (worker == nullptr) continue;
        ctx_.probes->add_gauge("cache.load_error_s", ctx_.worker_shard(w),
                               [worker] { return -worker->backlog_cost_s(); });
      }
    }
  }
}

void BiddingScheduler::ensure_trace_names() {
  if (trace_names_ready_) return;
  trace_names_ready_ = true;
  trace_contest_ = ctx_.sim->tracer()->intern("contest");
  trace_bid_ = ctx_.sim->tracer()->intern("bid");
  if (config_.fanout.cached()) {
    trace_cache_hit_ = ctx_.sim->tracer()->intern("fanout.cache_hit");
    trace_stale_decline_ = ctx_.sim->tracer()->intern("fanout.stale_decline");
    trace_msgs_per_job_ = ctx_.sim->tracer()->intern("fanout.msgs_per_job");
  }
}

void BiddingScheduler::submit(const workflow::Job& job) {
  if (config_.fanout.cached()) {
    place_cached(job);
    return;
  }
  contest_or_backlog(job);
}

void BiddingScheduler::contest_or_backlog(const workflow::Job& job) {
  if (config_.serialize_contests && !contests_.empty()) {
    backlog_.push_back(job);  // the master finishes the current contest first
    return;
  }
  open_contest(job);
}

double BiddingScheduler::cached_cost_s(WorkerIndex w, const workflow::Job& job) const {
  // Listing 2 over the cache: the worker's believed backlog drains
  // slots-wide, then the job's own transfer + processing on nominal speeds.
  const cluster::WorkerNode& worker = *ctx_.workers[w];
  const double lanes =
      static_cast<double>(std::max<std::uint32_t>(1, worker.config().slots));
  return cache_.backlog_s(w) / lanes + cached_work_s(cache_, worker, job);
}

void BiddingScheduler::place_cached(const workflow::Job& job) {
  // Power-of-k-choices candidate sampling in O(k), not O(fleet): draw
  // distinct indices by rejection from the whole index range on the cache's
  // own substream — at 10k workers an exact alive-scan per placement would
  // dominate the decision cost and erase the win over probe contests. Only
  // when the bounded draws keep hitting failed or duplicate workers (most
  // of the fleet is down) does it fall back to the exact scan + partial
  // Fisher-Yates, so termination never depends on luck.
  const std::size_t fleet = ctx_.worker_count();
  const auto want =
      fleet == 0 ? 0u
                 : static_cast<std::uint32_t>(
                       std::min<std::size_t>(config_.fanout.probe_k, fleet));
  probe_scratch_.clear();
  const std::uint32_t max_attempts = 8 * want + 8;
  for (std::uint32_t attempts = 0;
       probe_scratch_.size() < want && attempts < max_attempts; ++attempts) {
    const auto w = static_cast<WorkerIndex>(
        cache_rng_->uniform_int(0, static_cast<std::uint64_t>(fleet - 1)));
    if (ctx_.workers[w] == nullptr || ctx_.workers[w]->failed()) continue;
    if (std::find(probe_scratch_.begin(), probe_scratch_.end(), w) !=
        probe_scratch_.end()) {
      continue;
    }
    probe_scratch_.push_back(w);
  }
  if (probe_scratch_.size() < want || fleet == 0) {
    probe_scratch_.clear();
    for (WorkerIndex w = 0; w < fleet; ++w) {
      if (ctx_.workers[w] != nullptr && !ctx_.workers[w]->failed()) probe_scratch_.push_back(w);
    }
    if (probe_scratch_.empty()) {
      // Nobody alive to place on — same terminal handling as a zero-live
      // contest: the lifecycle retries or dead-letters, never a fake assign.
      ++stats_.unassignable_jobs;
      ctx_.metrics->job(job.id).bids_received = 0;
      DLAJA_LOG(kWarn, "bidding") << ctx_.sim->log_prefix() << "no live worker for job "
                                  << job.id
                                  << (ctx_.notify_unassignable ? "; handing to lifecycle"
                                                               : "; job dropped");
      if (ctx_.notify_unassignable) ctx_.notify_unassignable(job);
      return;
    }
    const auto k = static_cast<std::uint32_t>(
        std::min<std::size_t>(want, probe_scratch_.size()));
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(cache_rng_->uniform_int(
                             0, static_cast<std::uint64_t>(probe_scratch_.size() - 1 - i)));
      std::swap(probe_scratch_[i], probe_scratch_[j]);
    }
    probe_scratch_.resize(k);
  }

  // Score the sampled candidates with the cached bid formula. The
  // retry-excluded worker wins only when it is the sole live candidate
  // (soft exclusion).
  const auto excluded = static_cast<WorkerIndex>(job.excluded_worker);
  WorkerIndex best = cluster::kNoWorker;
  double best_cost = std::numeric_limits<double>::infinity();
  WorkerIndex best_excluded = cluster::kNoWorker;
  double best_excluded_cost = std::numeric_limits<double>::infinity();
  for (const WorkerIndex w : probe_scratch_) {
    const double cost = cached_cost_s(w, job);
    if (w == excluded) {
      if (cost < best_excluded_cost) {
        best_excluded = w;
        best_excluded_cost = cost;
      }
      continue;
    }
    if (cost < best_cost) {
      best = w;
      best_cost = cost;
    }
  }
  if (best == cluster::kNoWorker) {
    best = best_excluded;
    best_cost = best_excluded_cost;
  }

  // The worker judges staleness against the backlog the decision believed,
  // so the expected value is captured before the optimistic charge.
  const double expected_backlog_s = cache_.backlog_s(best);

  metrics::JobRecord& record = ctx_.metrics->job(job.id);
  record.assigned = ctx_.sim->now();
  record.worker = best;
  record.winning_bid_s = best_cost;
  record.bids_received = 0;  // no contest, no bids
  ++ctx_.metrics->worker(best).bids_won;

  placements_.emplace(job.id, Placement{job, best, cache_.generation(best)});
  placed_estimates_.emplace(job.id, PlacedEstimate{best_cost, ctx_.sim->now()});
  cache_.charge(best, cached_work_s(cache_, *ctx_.workers[best], job), job.resource);

  ++stats_.placements;
  ++stats_.control_messages;  // the placement itself
  ctx_.metrics->registry().counter("fanout.placements").add(1);

  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[best], placements_box_,
                    DirectPlacement{job, expected_backlog_s});
  if (ctx_.notify_assigned) ctx_.notify_assigned(job.id, best, best_cost);
}

void BiddingScheduler::worker_handle_placement(WorkerIndex w, const DirectPlacement& p) {
  cluster::WorkerNode* worker = ctx_.workers[w];
  if (worker == nullptr || worker->failed()) return;

  // Late binding (Listing 2's estimate, judged locally): accept when the
  // actual backlog is no worse than the master's cached view plus slack;
  // decline otherwise — the cache was stale. Either way the reply carries
  // the authoritative backlog, so even a decline refreshes the cache.
  const double backlog_before_s = worker->backlog_cost_s();
  const bool accept =
      backlog_before_s <= p.expected_backlog_s + config_.decline_slack_s;
  if (accept) worker->enqueue(p.job);
  const PlacementResponse resp{p.job.id, w, accept,
                               accept ? worker->backlog_cost_s() : backlog_before_s};

  // Same reply shape as a bid: compute delay on the worker's own simulator
  // (its shard, when sharded), then cross back through the broker.
  const Tick delay = worker->sample_bid_delay();
  auto reply = [this, w, resp] {
    cluster::WorkerNode* again = ctx_.workers[w];
    if (again->failed()) return;
    ctx_.broker->send(ctx_.worker_nodes[w], ctx_.master_node, placement_acks_box_, resp);
  };
  static_assert(sim::InlineAction::fits_inline<decltype(reply)>());
  ctx_.worker_sim(w)->schedule_after(delay, std::move(reply));
}

void BiddingScheduler::trace_msgs_per_job() {
  if (!DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) return;
  ensure_trace_names();
  const double per_job =
      static_cast<double>(stats_.control_messages) /
      static_cast<double>(std::max<std::uint64_t>(1, stats_.placements));
  ctx_.sim->tracer()->counter(obs::Component::kSched, trace_msgs_per_job_, 0,
                              ctx_.sim->now(), per_job);
}

void BiddingScheduler::master_receive_placement_ack(const PlacementResponse& resp) {
  ++stats_.control_messages;
  const auto it = placements_.find(resp.job_id);
  if (it == placements_.end()) {
    // The placement was already voided (lease expiry beat the ack) — the
    // lifecycle owns the job now; the ack is only history.
    ++stats_.late_placement_acks;
    return;
  }
  Placement entry = std::move(it->second);
  placements_.erase(it);

  // Authoritative refresh, stamped with the generation the placement saw:
  // if the slot was invalidated in between, the slab rule drops it.
  cache_.refresh(resp.worker, entry.generation, resp.backlog_s);

  metrics::Registry& registry = ctx_.metrics->registry();
  if (resp.accepted) {
    ++stats_.cache_hits;
    registry.counter("fanout.cache_hits").add(1);
    if (DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) {
      ensure_trace_names();
      ctx_.sim->tracer()->instant(obs::Component::kSched, trace_cache_hit_, resp.worker,
                                  ctx_.sim->now(), resp.job_id);
    }
  } else {
    ++stats_.stale_declines;
    registry.counter("fanout.stale_declines").add(1);
    // The declined worker never ran the job, so its cached estimate is
    // meaningless for placement quality.
    placed_estimates_.erase(resp.job_id);
    if (DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) {
      ensure_trace_names();
      ctx_.sim->tracer()->instant(obs::Component::kSched, trace_stale_decline_,
                                  resp.worker, ctx_.sim->now(), resp.job_id);
    }
    // Exactly one fallback: a probe:k re-contest. Contest assignments go
    // straight to enqueue (no second chance to decline), so a job declines
    // at most once by construction.
    contest_or_backlog(entry.job);
  }
  trace_msgs_per_job();
}

void BiddingScheduler::master_receive_load_report(const LoadReport& report) {
  ++stats_.control_messages;
  if (report.worker >= cache_.size()) return;
  // A report can outrun the master's knowledge of a crash only briefly;
  // once the worker is known dead its slot waits for revive(). (failed()
  // flags flip at window barriers, so this master-side read is safe.)
  if (ctx_.workers[report.worker] == nullptr || ctx_.workers[report.worker]->failed()) return;
  cache_.refresh(report.worker, cache_.generation(report.worker), report.backlog_s);
}

std::uint32_t BiddingScheduler::solicit_probes(std::uint64_t contest_id,
                                               const workflow::Job& job) {
  probe_scratch_.clear();
  for (WorkerIndex w = 0; w < ctx_.worker_count(); ++w) {
    if (ctx_.workers[w] != nullptr && !ctx_.workers[w]->failed()) probe_scratch_.push_back(w);
  }
  const auto k = static_cast<std::uint32_t>(
      std::min<std::size_t>(config_.fanout.probe_k, probe_scratch_.size()));
  // Partial Fisher-Yates: the first k slots become a uniform k-subset, in
  // the (seeded) shuffle's order.
  probe_targets_.clear();
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(probe_rng_->uniform_int(
                           0, static_cast<std::uint64_t>(probe_scratch_.size() - 1 - i)));
    std::swap(probe_scratch_[i], probe_scratch_[j]);
    probe_targets_.push_back(ctx_.worker_nodes[probe_scratch_[i]]);
  }
  stats_.probes_sent += k;
  if (config_.fanout.cached()) stats_.control_messages += k;  // fallback probes
  ctx_.broker->publish_to(bid_topic_, ctx_.master_node, BidRequest{contest_id, job},
                          probe_targets_);
  return k;
}

void BiddingScheduler::open_contest(const workflow::Job& job) {
  // Listing 1, sendJob: publish for bidding and open the contest.
  const std::uint64_t contest_id = next_contest_++;
  Contest& contest = contests_[contest_id];
  contest.job = job;
  contest.bids.reset(static_cast<WorkerIndex>(job.excluded_worker));
  ++stats_.contests_opened;

  metrics::JobRecord& record = ctx_.metrics->job(job.id);
  record.contest_opened = ctx_.sim->now();

  if (config_.fanout.contest_probes()) {
    contest.solicited = solicit_probes(contest_id, job);
  } else {
    ctx_.broker->publish(bid_topic_, ctx_.master_node, BidRequest{contest_id, job});
  }
  contest.timeout = ctx_.sim->schedule_after(ticks_from_seconds(config_.window_s),
                                             [this, contest_id] {
                                               ++stats_.contests_closed_timeout;
                                               close_contest(contest_id);
                                             });
}

void BiddingScheduler::worker_handle_bid_request(WorkerIndex w, const BidRequest& request) {
  cluster::WorkerNode* worker = ctx_.workers[w];
  if (worker == nullptr || worker->failed()) return;

  // Listing 2, sendBid: backlog + transfer estimate + processing estimate.
  double cost_s = worker->estimate_bid_s(request.job);
  if (config_.learn_correction) cost_s *= correction_[w];

  // The bidding thread needs time to compute the estimate and may straggle;
  // the reply then crosses the network back to the master. Worker-side
  // work stays on the worker's own simulator/metrics (its shard, when
  // sharded); the send crosses back through the broker.
  const Tick delay = worker->sample_bid_delay();
  BidSubmission bid{request.contest, request.job.id, w, cost_s};
  // Cached fan-out: piggy-back the raw backlog so even fallback contests
  // refresh the master's load cache for free.
  if (config_.fanout.cached()) bid.backlog_s = worker->backlog_cost_s();
  auto submit = [this, w, bid] {
    cluster::WorkerNode* again = ctx_.workers[w];
    if (again->failed()) return;
    ++ctx_.worker_metrics_for(w)->worker(w).bids_submitted;
    ctx_.broker->send(ctx_.worker_nodes[w], ctx_.master_node, bids_box_, bid);
  };
  static_assert(sim::InlineAction::fits_inline<decltype(submit)>());
  ctx_.worker_sim(w)->schedule_after(delay, std::move(submit));
}

void BiddingScheduler::master_receive_bid(const BidSubmission& bid) {
  // Cached fan-out: every bid carries the worker's authoritative backlog —
  // refresh the cache even for late/duplicate bids, before any early-out.
  if (config_.fanout.cached() && bid.worker < cache_.size() &&
      ctx_.workers[bid.worker] != nullptr && !ctx_.workers[bid.worker]->failed()) {
    ++stats_.control_messages;
    cache_.refresh(bid.worker, cache_.generation(bid.worker), bid.backlog_s);
  }

  // Listing 1, receiveBid.
  const auto it = contests_.find(bid.contest);
  if (it == contests_.end()) {
    ++stats_.late_bids_ignored;  // contest already closed
    return;
  }
  Contest& contest = it->second;
  // Dedupe per worker: a duplicated message (injectable via the broker's
  // fault policy) must not count the same worker twice toward the quorum
  // and close the contest with a live worker's bid still in flight.
  if (!contest.bids.insert(bid.worker, bid.cost_s)) {
    ++stats_.duplicate_bids_ignored;
    return;
  }
  if (DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) {
    ensure_trace_names();
    ctx_.sim->tracer()->instant(obs::Component::kSched, trace_bid_, bid.worker,
                                ctx_.sim->now(), bid.job_id);
  }

  // biddingFinished: the quorum is every active worker (full fan-out; the
  // timeout branch is the scheduled event from open_contest) or every
  // solicited worker (probe fan-out). bids.size() counts distinct workers.
  const std::size_t quorum =
      config_.fanout.contest_probes() ? contest.solicited : ctx_.active_workers();
  if (contest.bids.size() >= quorum) {
    ++stats_.contests_closed_full;
    close_contest(bid.contest);
  }
}

cluster::WorkerIndex BiddingScheduler::arbitrary_worker(WorkerIndex excluded) {
  const std::size_t n = ctx_.worker_count();
  WorkerIndex excluded_alive = cluster::kNoWorker;
  for (std::size_t probe = 0; probe < n; ++probe) {
    const auto w = static_cast<WorkerIndex>(fallback_cursor_++ % n);
    if (ctx_.workers[w] == nullptr || ctx_.workers[w]->failed()) continue;
    if (w == excluded) {
      excluded_alive = w;
      continue;
    }
    return w;
  }
  // Only the excluded worker survives (soft exclusion), or nobody does:
  // kNoWorker routes the job back to the lifecycle instead of "assigning"
  // it to a dead worker and polluting its metrics.
  return excluded_alive;
}

void BiddingScheduler::close_contest(std::uint64_t contest_id) {
  const auto it = contests_.find(contest_id);
  if (it == contests_.end()) return;  // already closed by the other path
  Contest contest = std::move(it->second);
  contests_.erase(it);
  ctx_.sim->cancel(contest.timeout);

  const auto excluded = static_cast<WorkerIndex>(contest.job.excluded_worker);
  WorkerIndex winner;
  double winning_cost = -1.0;
  if (contest.bids.empty()) {
    winner = arbitrary_worker(excluded);
    if (winner == cluster::kNoWorker) {
      // Zero bids because zero live workers: the job cannot be assigned.
      // Hand it to the lifecycle (retry/dead-letter) — or, without one,
      // drop it *without* stamping record.assigned / bids_won for an
      // assignment that never happened.
      ++stats_.unassignable_jobs;
      ctx_.metrics->job(contest.job.id).bids_received = 0;
      DLAJA_LOG(kWarn, "bidding") << ctx_.sim->log_prefix() << "no live worker for job "
                                  << contest.job.id
                                  << (ctx_.notify_unassignable ? "; handing to lifecycle"
                                                               : "; job dropped");
      if (ctx_.notify_unassignable) ctx_.notify_unassignable(contest.job);
      if (config_.serialize_contests && !backlog_.empty()) {
        const workflow::Job next = backlog_.front();
        backlog_.pop_front();
        open_contest(next);
      }
      return;
    }
    ++stats_.fallback_assignments;
    DLAJA_LOG(kDebug, "bidding") << ctx_.sim->log_prefix() << "no bids for job "
                                 << contest.job.id
                                 << "; arbitrary assignment to worker " << winner;
  } else {
    winning_cost = 0.0;
    winner = contest.bids.winner(&winning_cost);
  }

  metrics::JobRecord& record = ctx_.metrics->job(contest.job.id);
  record.assigned = ctx_.sim->now();
  record.worker = winner;
  record.winning_bid_s = winning_cost;
  record.bids_received = static_cast<std::uint32_t>(contest.bids.size());
  ++ctx_.metrics->worker(winner).bids_won;

  if (DLAJA_TRACE_ACTIVE(ctx_.sim->tracer())) {
    ensure_trace_names();
    ctx_.sim->tracer()->span(obs::Component::kSched, trace_contest_, winner,
                             record.contest_opened, ctx_.sim->now(), contest.job.id);
  }
  metrics::Registry& registry = ctx_.metrics->registry();
  registry.counter("sched.contests").add(1);
  registry.histogram("sched.contest_s")
      .record(seconds_from_ticks(ctx_.sim->now() - record.contest_opened));
  registry.histogram("sched.contest_bids").record(static_cast<double>(contest.bids.size()));

  if (config_.learn_correction && winning_cost > 0.0) {
    winning_estimate_s_[contest.job.id] = winning_cost;
    assigned_at_[contest.job.id] = ctx_.sim->now();
  }

  if (config_.fanout.cached()) {
    // A fallback assignment loads the winner just like a placement would:
    // keep the optimistic projection consistent so the next placement sees
    // this job in the winner's believed backlog.
    cache_.charge(winner, cached_work_s(cache_, *ctx_.workers[winner], contest.job),
                  contest.job.resource);
    ++stats_.control_messages;  // the assignment message
  }

  ctx_.broker->send(ctx_.master_node, ctx_.worker_nodes[winner], jobs_box_,
                    JobAssignment{contest.job});
  if (ctx_.notify_assigned) ctx_.notify_assigned(contest.job.id, winner, winning_cost);

  // Serial mode: the next queued job gets its contest now. By this point the
  // winner's queue (as seen through its future bids) includes this job's
  // estimate only after the assignment message lands; opening the next
  // contest immediately still gives workers distinct backlogs because bid
  // replies travel behind the assignment on the same links.
  if (config_.serialize_contests && !backlog_.empty()) {
    const workflow::Job next = backlog_.front();
    backlog_.pop_front();
    open_contest(next);
  }
}

void BiddingScheduler::on_assignment_void(workflow::JobId id, cluster::WorkerIndex w) {
  if (config_.fanout.cached()) {
    // The conversation died: forget the in-flight placement, and bump the
    // slot generation so any straggling ack/report from the dead attempt is
    // dropped by the slab rule instead of overwriting fresh state.
    placements_.erase(id);
    placed_estimates_.erase(id);
    if (w < cache_.size()) cache_.invalidate(w);
  }
  // The attempt died with the worker; a completion for it will never arrive,
  // so drop the learning state keyed on this job id (a retry gets a new id).
  winning_estimate_s_.erase(id);
  assigned_at_.erase(id);
}

void BiddingScheduler::on_worker_capacity(cluster::WorkerIndex w) {
  if (!config_.fanout.cached()) return;
  // Worker-side (its shard, when sharded): a queue slot freed — report the
  // authoritative backlog so the master's cache decays toward truth even
  // when no placement conversation is in flight. This is the cache's
  // heartbeat channel; master-side counting happens on receipt.
  cluster::WorkerNode* worker = ctx_.workers[w];
  if (worker->failed()) return;
  ctx_.broker->send(ctx_.worker_nodes[w], ctx_.master_node, load_reports_box_,
                    LoadReport{w, worker->backlog_cost_s()});
}

void BiddingScheduler::on_worker_recovered(cluster::WorkerIndex w) {
  if (config_.fanout.cached() && w < cache_.size()) {
    // The revived worker rejoins with an empty queue; zero backlog is
    // genuine knowledge and refreshes from its previous life are stale.
    cache_.revive(w);
  }
  on_worker_idle(w);
}

void BiddingScheduler::on_completion(const cluster::CompletionReport& report) {
  if (config_.fanout.cached()) {
    const auto placed_it = placed_estimates_.find(report.job_id);
    if (placed_it != placed_estimates_.end()) {
      const double estimate_s = placed_it->second.estimate_s;
      const double actual_s =
          seconds_from_ticks(ctx_.sim->now() - placed_it->second.placed_at);
      placed_estimates_.erase(placed_it);
      if (estimate_s > 0.0 && actual_s > 0.0) {
        // Placement quality: how the cached estimate compared to reality
        // (1.0 = perfect; the BENCH_scale column summarises this).
        ctx_.metrics->registry()
            .histogram("fanout.placement_quality")
            .record(actual_s / estimate_s);
      }
    }
  }
  if (!config_.learn_correction) return;
  const auto est_it = winning_estimate_s_.find(report.job_id);
  const auto at_it = assigned_at_.find(report.job_id);
  if (est_it == winning_estimate_s_.end() || at_it == assigned_at_.end()) return;
  const double estimate_s = est_it->second;
  const double actual_s = seconds_from_ticks(ctx_.sim->now() - at_it->second);
  winning_estimate_s_.erase(est_it);
  assigned_at_.erase(at_it);
  if (estimate_s <= 0.0 || actual_s <= 0.0 || report.worker >= correction_.size()) return;
  const double ratio = actual_s / estimate_s;
  double& corr = correction_[report.worker];
  corr = (1.0 - config_.correction_alpha) * corr + config_.correction_alpha * ratio;
  // Keep the correction in a sane band; a single pathological job must not
  // blind a worker to all future contests.
  corr = std::min(std::max(corr, 0.25), 4.0);
}

}  // namespace dlaja::sched
