#pragma once
// Shared machinery for pull-based schedulers (Baseline, Matchmaking, Delay):
// idle workers poll the master for work on a heartbeat; the master keeps a
// FIFO queue of pending jobs and a set of workers waiting for work.
//
// Derived classes implement handle_work_request() — the policy deciding
// what (if anything) a requesting worker gets.

#include <deque>
#include <vector>

#include "sched/scheduler.hpp"

namespace dlaja::sched {

class PullSchedulerBase : public Scheduler {
 public:
  void attach(const SchedulerContext& ctx) override;
  void submit(const workflow::Job& job) override;
  void on_worker_idle(cluster::WorkerIndex w) override;
  [[nodiscard]] std::size_t pending_jobs() const override { return queue_.size(); }

 protected:
  /// Policy hook, runs at the master when a WorkRequest from `w` arrives.
  /// Implementations either hand out work (assign_to / offer machinery) or
  /// call send_no_work(w) / park_worker(w).
  virtual void handle_work_request(cluster::WorkerIndex w) = 0;

  /// Hook for derived classes to wire extra mailboxes during attach().
  virtual void attach_extra() {}

  // --- helpers for derived classes --------------------------------------

  /// Sends the job directly to worker `w`'s queue and records assignment
  /// metrics. (For schedulers where the master decides; the Baseline's
  /// offer/response protocol bypasses this.)
  void assign_to(cluster::WorkerIndex w, const workflow::Job& job);

  /// Tells `w` there is nothing suitable; the worker polls again after its
  /// heartbeat.
  void send_no_work(cluster::WorkerIndex w);

  /// Remembers `w` as waiting; it is served as soon as a job arrives.
  void park_worker(cluster::WorkerIndex w);

  /// Serves parked workers while jobs are pending.
  void dispatch_parked();

  /// Which parked worker to serve next. Default: FIFO (the front). Locality
  /// schedulers override this to prefer a waiting worker that holds data
  /// for a pending job. `parked` is non-empty and contains live workers.
  [[nodiscard]] virtual cluster::WorkerIndex choose_parked(
      const std::deque<cluster::WorkerIndex>& parked) {
    return parked.front();
  }

  /// Schedules a WorkRequest from worker `w` after its heartbeat. Runs at
  /// the worker side.
  void worker_request_work_later(cluster::WorkerIndex w);

  // --- fault hardening ---------------------------------------------------
  // The pull protocol is a one-shot chain: poll -> answer -> poll. A dropped
  // message breaks the chain and strands the worker forever. Under fault
  // injection (ctx_.fault_aware) a self-disarming watchdog re-pokes idle
  // workers while work is pending; fault-free runs never arm it.

  /// Arms the watchdog if fault injection is on and it is not running.
  void arm_watchdog();

  /// True while the watchdog should keep firing (work could be stranded).
  [[nodiscard]] virtual bool watchdog_needed() const { return !queue_.empty(); }

  /// Re-kick one live worker. Default: restart polling for idle workers.
  virtual void watchdog_poke(cluster::WorkerIndex w);

  SchedulerContext ctx_;
  std::deque<workflow::Job> queue_;  ///< master's pending jobs, FIFO

 private:
  void master_handle_request(cluster::WorkerIndex w);
  void watchdog_fire();

  std::vector<bool> parked_;          ///< master: waiting workers
  std::deque<cluster::WorkerIndex> parked_order_;
  bool watchdog_armed_ = false;
};

}  // namespace dlaja::sched
