#pragma once
// Spark-like centralized comparator for the Figure 2 experiment.
//
// The paper attributes Spark's slowdown on the MSR workload to three
// properties of its task allocation (§4): (i) all allocation happens in
// advance / centrally at the master, (ii) resources that become local
// *during* execution are ignored, and (iii) all workers are treated as
// equal, so slow workers receive as much work as fast ones. This
// comparator reproduces exactly those properties: the master assigns each
// arriving job immediately, round-robin (or by static resource hash),
// without consulting worker state, speeds, or runtime cache contents.
//
// Spark's five locality levels with a wait threshold act on *pre-known*
// block locations. In this workload no resource is local before execution
// starts (repositories are cloned on demand), so the locality-wait always
// degrades to ANY — which is why a static policy is the faithful model;
// the `kHashByResource` mode adds the consistent-placement benefit a Spark
// partitioner could provide, as an upper bound for the comparison.

#include <cstdint>
#include <deque>

#include "sched/scheduler.hpp"

namespace dlaja::sched {

struct SparkLikeConfig {
  enum class Placement {
    kRoundRobin,      ///< equal treatment, ignores data entirely (default)
    kHashByResource,  ///< static partitioning: same resource -> same worker
  };
  Placement placement = Placement::kRoundRobin;

  /// Stage semantics: tasks execute in waves of one task per worker with a
  /// barrier between waves (Spark schedules a stage's tasks together and a
  /// stage finishes with its slowest task; a straggling worker therefore
  /// gates every wave). false = streaming push, one assignment per arrival.
  bool wave_barrier = false;
};

class SparkLikeScheduler final : public Scheduler {
 public:
  explicit SparkLikeScheduler(SparkLikeConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override {
    std::string name = "spark-like";
    if (config_.wave_barrier) name += "+wave";
    if (config_.placement == SparkLikeConfig::Placement::kHashByResource) name += "+hash";
    return name;
  }

  void attach(const SchedulerContext& ctx) override;
  void submit(const workflow::Job& job) override;
  void on_completion(const cluster::CompletionReport& report) override;
  void on_assignment_void(workflow::JobId id, cluster::WorkerIndex w) override;
  [[nodiscard]] std::size_t pending_jobs() const override { return pending_.size(); }

 private:
  [[nodiscard]] cluster::WorkerIndex place(const workflow::Job& job);
  /// Returns false when the job could not be placed (all workers dead) and
  /// was handed to the lifecycle instead.
  bool assign(const workflow::Job& job);
  void dispatch_wave();
  /// Wave mode: a wave slot opened (completion or voided assignment).
  void wave_slot_freed();

  /// Defers dispatch_wave() by one (zero-length) event so that all tasks
  /// submitted at the same instant batch into one wave.
  void schedule_dispatch();

  /// Interns the scheduler's span names on first traced use.
  void ensure_trace_names();

  SparkLikeConfig config_;
  SchedulerContext ctx_;
  std::uint64_t cursor_ = 0;
  std::deque<workflow::Job> pending_;  ///< wave mode: tasks awaiting a wave slot
  std::size_t outstanding_ = 0;        ///< wave mode: tasks in the current wave
  bool dispatch_pending_ = false;      ///< a zero-delay dispatch event is queued
  Tick wave_started_ = 0;              ///< wave mode: when the current wave launched
  std::uint64_t wave_index_ = 0;       ///< wave mode: allocation-round ordinal
  std::uint16_t trace_wave_ = 0;       ///< "wave": dispatch -> barrier span
  bool trace_names_ready_ = false;
};

}  // namespace dlaja::sched
