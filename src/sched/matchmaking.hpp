#pragma once
// Matchmaking scheduler (He, Lu & Swanson, CloudCom 2011) — the related-
// work comparator the paper names for future evaluation (§3, §7).
//
// Idle nodes *request* jobs rather than receive them. When a node asks for
// work, the master hands it a job whose data the node holds locally; if no
// such job is pending, the node stays idle for one heartbeat. On the
// node's next unmatched request it must take the head job regardless of
// locality, bounding the waiting time to one heartbeat.
//
// The master's locality knowledge is its own assignment history: it knows
// which resources each worker fetched for it previously (the same
// information a MapReduce master has about block placement).

#include <unordered_set>
#include <vector>

#include "sched/pull_base.hpp"

namespace dlaja::sched {

class MatchmakingScheduler final : public PullSchedulerBase {
 public:
  [[nodiscard]] std::string name() const override { return "matchmaking"; }

  struct Stats {
    std::uint64_t local_assignments = 0;
    std::uint64_t idle_passes = 0;      ///< first unmatched request -> wait
    std::uint64_t forced_assignments = 0;  ///< second unmatched -> head job
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 protected:
  void attach_extra() override;
  void handle_work_request(cluster::WorkerIndex w) override;

  /// Among waiting workers, prefer one that holds data for a pending job —
  /// the master-side half of matchmaking ("give each node a task with
  /// local data whenever possible").
  [[nodiscard]] cluster::WorkerIndex choose_parked(
      const std::deque<cluster::WorkerIndex>& parked) override;

 private:
  Stats stats_;
  /// Master's view of which resources each worker holds (from assignments).
  std::vector<std::unordered_set<storage::ResourceId>> known_;
  /// Whether the worker's previous request already went unmatched.
  std::vector<bool> missed_once_;
};

}  // namespace dlaja::sched
