#include "obs/trace.hpp"

namespace dlaja::obs {

const char* component_name(Component comp) noexcept {
  switch (comp) {
    case Component::kSim: return "sim";
    case Component::kMsg: return "msg";
    case Component::kNet: return "net";
    case Component::kSched: return "sched";
    case Component::kWorker: return "worker";
    case Component::kCore: return "core";
    case Component::kFault: return "fault";
  }
  return "core";
}

Component component_from_name(std::string_view name) noexcept {
  if (name == "sim") return Component::kSim;
  if (name == "msg") return Component::kMsg;
  if (name == "net") return Component::kNet;
  if (name == "sched") return Component::kSched;
  if (name == "worker") return Component::kWorker;
  if (name == "fault") return Component::kFault;
  return Component::kCore;
}

std::uint16_t Tracer::intern(std::string_view name) {
  const auto it = name_ids_.find(std::string{name});
  if (it != name_ids_.end()) return it->second;
  // 16-bit ids: a pathological caller interning >65k distinct names gets
  // the "?" id back rather than a wrapped, colliding one.
  if (names_.size() >= UINT16_MAX) return 0;
  const auto id = static_cast<std::uint16_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

}  // namespace dlaja::obs
