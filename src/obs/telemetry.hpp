#pragma once
// Deterministic in-run telemetry: gauge sampling and an invariant watchdog.
//
// Components register named read-only *gauges* (a double-valued callback)
// and *invariants* (a callback returning "" when healthy, or a diagnostic
// message) in a ProbeRegistry. A TelemetrySampler reads every probe bound to
// one shard at a fixed simulated-tick cadence and stores the values in
// columnar series with bounded "ring" retention: when a series reaches its
// capacity, every second retained sample is dropped and the retention stride
// doubles, so million-job streaming runs keep O(capacity) memory while the
// retained ticks stay on a regular (stride x interval) grid.
//
// Determinism contract: sampling fires no simulator events, draws no RNG,
// and mutates nothing outside the sampler itself — a run with telemetry on
// is bit-identical to the same run with it off. Sharded runs drive one
// sampler per shard (each reads only state owned by its shard's thread) and
// merge them after the run; on flat contest-free workloads the merged series
// are shard-count independent.
//
// The canonical sampled tick set for a run is
//
//   { interval, 2*interval, ..., min(floor_grid(horizon), ceil_grid(t_last)) }
//
// where t_last is the tick of the last event that actually fired. The
// single-shard engine produces exactly this by construction. Sharded engines
// slice conservative windows at the same grid, but a window can overrun
// t_last by the lookahead — so samples are *pending* until the engine
// confirms them against the next global event time at a window barrier
// (confirm_through), and finalize() pads or trims each sampler to the
// canonical end. Pending samples never enter retention compaction, which
// keeps the retained tick set identical across shard counts.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace dlaja::obs {

/// Telemetry knobs, carried inside EngineConfig. interval == 0 disables the
/// subsystem entirely: no probes are registered, no sampler is constructed,
/// and the engine's run loop is byte-for-byte the historical one.
struct TelemetryConfig {
  /// Sampling cadence in simulated ticks (0 = telemetry off).
  Tick interval = 0;

  /// Retained samples per series. When exceeded, retention compacts to a
  /// doubled stride (see file comment). Must be >= 2.
  std::size_t capacity = 4096;

  /// Run registered invariants at every sample and fail fast on violation.
  bool watchdog = true;
};

/// Where components register probes. Gauges and invariants carry the index
/// of the shard simulator whose thread owns the state they read (0 = the
/// control shard; worker shard s registers as s + 1; single-shard runs use
/// 0 for everything). Several gauges may share one series name — their
/// values are summed into that series, which is also how per-shard
/// contributions merge into one cluster-wide series.
class ProbeRegistry {
 public:
  using Gauge = std::function<double()>;
  /// Returns "" while healthy, else a human-readable diagnostic.
  using Check = std::function<std::string()>;

  void add_gauge(std::string name, std::uint32_t shard, Gauge fn);
  void add_invariant(std::string name, std::uint32_t shard, Check fn);

  [[nodiscard]] std::size_t gauge_count() const noexcept { return gauges_.size(); }
  [[nodiscard]] std::size_t invariant_count() const noexcept { return invariants_.size(); }

 private:
  friend class TelemetrySampler;
  struct GaugeEntry {
    std::string name;
    std::uint32_t shard = 0;
    Gauge fn;
  };
  struct CheckEntry {
    std::string name;
    std::uint32_t shard = 0;
    Check fn;
  };
  std::vector<GaugeEntry> gauges_;
  std::vector<CheckEntry> invariants_;
};

/// First invariant failure seen by a sampler (the watchdog's verdict).
struct InvariantViolation {
  Tick tick = kNeverTick;
  std::string probe;
  std::string message;
};

/// The merged, export-ready result of a run: one row per retained tick, one
/// column per series (sorted by name, so the layout is independent of probe
/// registration order and shard count).
struct TelemetryTable {
  Tick interval = 0;
  std::vector<Tick> ticks;
  std::vector<std::string> names;
  std::vector<std::vector<double>> values;  ///< [series][row], aligned with ticks

  [[nodiscard]] bool empty() const noexcept { return ticks.empty() || names.empty(); }
};

/// Samples the probes of one shard. Driven by the engine: sample() at every
/// grid tick the shard's simulator passes, confirm_through() at barriers
/// once a tick is known to precede further events, finalize() after the run.
class TelemetrySampler {
 public:
  TelemetrySampler() = default;

  /// Binds the registry's probes with matching shard index. Called once,
  /// after all registration and before the run.
  void bind(const ProbeRegistry& registry, std::uint32_t shard, const TelemetryConfig& config);

  /// Next grid tick to sample, or kNeverTick when unbound. The engine's
  /// slicing loops run the simulator to exactly this tick before calling
  /// sample().
  [[nodiscard]] Tick next_due() const noexcept {
    return bound_ ? next_due_ : kNeverTick;
  }

  /// Reads every bound gauge and (watchdog on) runs every bound invariant.
  /// `tick` must equal next_due(). The sample stays pending until confirmed.
  void sample(Tick tick);

  /// sample() plus immediate confirmation in one step — for engines whose
  /// ticks are canonical the moment they are taken (the single-shard run
  /// loop), the row goes straight into retained storage, skipping the
  /// pending stage.
  void sample_confirmed(Tick tick);

  /// Moves pending samples with tick <= `through` into retained storage
  /// (applying ring compaction). Single-shard engines confirm immediately
  /// after each sample; sharded engines confirm at window barriers.
  void confirm_through(Tick through);

  /// Ends the run at the canonical target tick: samples any missing grid
  /// ticks up to `target` (the simulation is quiescent, so gauges read final
  /// state), confirms everything <= target, and discards pending samples
  /// beyond it (window-lookahead overrun).
  void finalize(Tick target);

  /// First invariant failure, if any. The sampler keeps sampling after a
  /// violation (cursor lockstep across shards); the engine checks this at
  /// every confirmation point and fails the run.
  [[nodiscard]] const std::optional<InvariantViolation>& violation() const noexcept {
    return violation_;
  }

  [[nodiscard]] const std::vector<Tick>& ticks() const noexcept { return ticks_; }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept { return names_; }
  /// Columnar view of the retained samples ([series][row], aligned with
  /// ticks()). Retention stores rows contiguously (row-major) so the
  /// per-sample commit touches two cache lines instead of one per series;
  /// this view is materialized lazily, off the sampling hot path.
  [[nodiscard]] const std::vector<std::vector<double>>& values() const {
    if (columns_stale_) rebuild_columns();
    return columns_;
  }
  /// The retained samples as stored: row-major, ticks().size() x
  /// names().size(). merge_samplers reads this instead of values() so the
  /// per-run merge never materializes the columnar view.
  [[nodiscard]] const std::vector<double>& row_data() const noexcept { return rows_; }
  [[nodiscard]] std::size_t series_count() const noexcept { return names_.size(); }
  [[nodiscard]] bool bound() const noexcept { return bound_; }
  [[nodiscard]] Tick interval() const noexcept { return config_.interval; }

  /// Writes the last `rows` retained samples (plus any pending ones) as a
  /// small table — the watchdog's "series dump" on a violation.
  void dump_tail(std::ostream& out, std::size_t rows = 16) const;

 private:
  /// Sweeps the gauges into scratch_row_ and runs the invariants; the
  /// shared first half of sample() / sample_confirmed().
  void read_row(Tick tick);
  void commit_row(Tick tick, const std::vector<double>& row);
  void compact();
  void rebuild_columns() const;

  bool bound_ = false;
  TelemetryConfig config_;
  Tick next_due_ = kNeverTick;
  std::uint64_t stride_ = 1;  ///< retained ticks sit on (stride * interval)

  /// Bound gauges, copied out of the registry into one dense array: the
  /// per-sample sweep is the hot path and walks this sequentially instead
  /// of chasing registry entries (whose names it never needs).
  struct BoundGauge {
    ProbeRegistry::Gauge fn;
    std::size_t column = 0;  ///< series this gauge sums into
  };
  std::vector<BoundGauge> gauges_;
  std::vector<const ProbeRegistry::CheckEntry*> checks_;

  std::vector<std::string> names_;
  std::vector<Tick> ticks_;
  /// Retained samples, row-major (ticks_.size() x names_.size()).
  std::vector<double> rows_;
  /// Lazily materialized columnar view of rows_ (see values()).
  mutable std::vector<std::vector<double>> columns_;
  mutable bool columns_stale_ = false;

  /// Samples awaiting confirmation (bounded by lookahead / interval + 1).
  struct Pending {
    Tick tick = 0;
    std::vector<double> row;
  };
  std::deque<Pending> pending_;
  std::vector<double> scratch_row_;
  /// Recycled Pending rows: sampling allocates nothing in steady state.
  std::vector<std::vector<double>> row_pool_;

  std::optional<InvariantViolation> violation_;
};

/// Merges finalized per-shard samplers into one table: the union of series
/// names (sorted), summed pointwise where several samplers carry the same
/// name. All samplers must hold the identical retained tick sequence — the
/// engine guarantees this by finalizing every sampler to the same target.
[[nodiscard]] TelemetryTable merge_samplers(std::span<const TelemetrySampler* const> samplers);

/// Writes `tick,time_s,<series...>` rows. Values use max round-trip
/// precision so re-parsing loses nothing.
void write_telemetry_csv(std::ostream& out, const TelemetryTable& table);

/// Writes {"interval_ticks": .., "ticks": [..], "series": {name: [..]}}.
void write_telemetry_json(std::ostream& out, const TelemetryTable& table);

}  // namespace dlaja::obs
