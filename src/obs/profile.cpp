#include "obs/profile.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>

#include "util/table.hpp"

namespace dlaja::obs {

namespace {

/// A span under consideration on one (component, track) timeline.
struct SpanRef {
  Tick ts = 0;
  Tick dur = 0;
  std::uint32_t row = 0;
  std::uint32_t order = 0;  ///< record order: stable tie-break
};

/// An ancestor on the nesting stack.
struct Open {
  Tick end = 0;
  Tick child = 0;  ///< time covered by directly nested spans
  Tick dur = 0;
  std::uint32_t row = 0;
};

}  // namespace

Profile build_profile(const Tracer& tracer) {
  Profile profile;
  profile.components.resize(kComponentCount);
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    profile.components[i].comp = static_cast<Component>(i);
  }

  // Row per (component, name); timeline per (component, track). std::map
  // keeps both deterministic regardless of interning order.
  std::map<std::pair<std::uint8_t, std::uint16_t>, std::uint32_t> row_ids;
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::vector<SpanRef>> timelines;
  // Mark per (component, name, kind): instants and counters keep their name
  // resolution too, so point events are inspectable and not just a tally.
  std::map<std::tuple<std::uint8_t, std::uint16_t, bool>, std::uint32_t> mark_ids;

  auto record_mark = [&](const TraceEvent& event, bool is_counter) {
    const auto key = std::make_tuple(static_cast<std::uint8_t>(event.comp), event.name,
                                     is_counter);
    auto [it, inserted] =
        mark_ids.emplace(key, static_cast<std::uint32_t>(profile.marks.size()));
    if (inserted) {
      MarkRow mark;
      mark.comp = event.comp;
      mark.name = tracer.name(event.name);
      mark.is_counter = is_counter;
      profile.marks.push_back(std::move(mark));
    }
    MarkRow& mark = profile.marks[it->second];
    ++mark.count;
    if (is_counter) mark.last_value = event.value;
  };

  std::uint32_t order = 0;
  for (const TraceEvent& event : tracer.events()) {
    ComponentProfile& comp = profile.components[static_cast<std::size_t>(event.comp)];
    if (event.type == EventType::kInstant) {
      ++comp.instants;
      record_mark(event, /*is_counter=*/false);
      continue;
    }
    if (event.type == EventType::kCounter) {
      ++comp.counters;
      record_mark(event, /*is_counter=*/true);
      continue;
    }
    ++comp.spans;
    comp.total += event.dur;

    const auto row_key = std::make_pair(static_cast<std::uint8_t>(event.comp), event.name);
    auto [it, inserted] =
        row_ids.emplace(row_key, static_cast<std::uint32_t>(profile.rows.size()));
    if (inserted) {
      ProfileRow row;
      row.comp = event.comp;
      row.name = tracer.name(event.name);
      profile.rows.push_back(std::move(row));
    }
    ProfileRow& row = profile.rows[it->second];
    ++row.count;
    row.total += event.dur;
    row.max = std::max(row.max, event.dur);

    timelines[{static_cast<std::uint8_t>(event.comp), event.track}].push_back(
        SpanRef{event.ts, event.dur, it->second, order++});
  }

  // Self time per timeline: sort so a parent precedes the spans it encloses
  // (earlier start first; at equal starts the longer span is the parent),
  // then walk with a nesting stack. Partially overlapping spans on one
  // timeline (e.g. two slots of the same worker) do not nest — each keeps
  // its full duration as self time.
  std::vector<Open> stack;
  for (auto& [key, spans] : timelines) {
    std::sort(spans.begin(), spans.end(), [](const SpanRef& a, const SpanRef& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      if (a.dur != b.dur) return a.dur > b.dur;
      return a.order < b.order;
    });
    stack.clear();
    auto close = [&](const Open& open) {
      profile.rows[open.row].self += std::max<Tick>(0, open.dur - open.child);
    };
    for (const SpanRef& span : spans) {
      while (!stack.empty() && stack.back().end <= span.ts) {
        close(stack.back());
        stack.pop_back();
      }
      const Tick end = span.ts + span.dur;
      if (!stack.empty() && end <= stack.back().end) {
        stack.back().child += span.dur;  // fully nested: parent loses this time
      }
      stack.push_back(Open{end, 0, span.dur, span.row});
    }
    while (!stack.empty()) {
      close(stack.back());
      stack.pop_back();
    }
  }

  for (const ProfileRow& row : profile.rows) {
    profile.components[static_cast<std::size_t>(row.comp)].self += row.self;
  }
  std::sort(profile.rows.begin(), profile.rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.comp != b.comp) return a.comp < b.comp;
              return a.name < b.name;
            });
  std::sort(profile.marks.begin(), profile.marks.end(),
            [](const MarkRow& a, const MarkRow& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.comp != b.comp) return a.comp < b.comp;
              return a.name < b.name;
            });
  return profile;
}

void print_profile(std::ostream& out, const Tracer& tracer, std::size_t top_n) {
  const Profile profile = build_profile(tracer);

  TextTable components("per-component self time");
  components.set_header({"component", "spans", "instants", "counters", "total (s)",
                         "self (s)"});
  for (const ComponentProfile& comp : profile.components) {
    if (comp.spans == 0 && comp.instants == 0 && comp.counters == 0) continue;
    components.add_row({component_name(comp.comp), std::to_string(comp.spans),
                        std::to_string(comp.instants), std::to_string(comp.counters),
                        fmt_fixed(seconds_from_ticks(comp.total), 3),
                        fmt_fixed(seconds_from_ticks(comp.self), 3)});
  }
  components.print(out);
  out << "\n";

  TextTable top("top spans by self time");
  top.set_header({"component", "name", "count", "total (s)", "self (s)", "avg (ms)",
                  "max (ms)"});
  const std::size_t rows = std::min(top_n, profile.rows.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const ProfileRow& row = profile.rows[i];
    const double avg_ms =
        row.count > 0 ? static_cast<double>(row.total) / static_cast<double>(row.count) /
                            static_cast<double>(kTicksPerMillisecond)
                      : 0.0;
    top.add_row({component_name(row.comp), row.name, std::to_string(row.count),
                 fmt_fixed(seconds_from_ticks(row.total), 3),
                 fmt_fixed(seconds_from_ticks(row.self), 3), fmt_fixed(avg_ms, 3),
                 fmt_fixed(static_cast<double>(row.max) /
                               static_cast<double>(kTicksPerMillisecond),
                           3)});
  }
  top.print(out);

  if (!profile.marks.empty()) {
    out << "\n";
    TextTable marks("instants and counters by name");
    marks.set_header({"component", "name", "kind", "count", "last value"});
    const std::size_t mark_rows = std::min(top_n, profile.marks.size());
    for (std::size_t i = 0; i < mark_rows; ++i) {
      const MarkRow& mark = profile.marks[i];
      marks.add_row({component_name(mark.comp), mark.name,
                     mark.is_counter ? "counter" : "instant", std::to_string(mark.count),
                     mark.is_counter ? fmt_fixed(mark.last_value, 3) : "-"});
    }
    marks.print(out);
  }
  if (tracer.dropped() > 0) {
    out << "note: " << tracer.dropped() << " events were dropped (buffer full)\n";
  }
}

}  // namespace dlaja::obs
