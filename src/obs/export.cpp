#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace dlaja::obs {

namespace {

/// Escapes a name for embedding in a JSON string literal. Names are interned
/// identifiers (topic names, span labels), so this only needs the characters
/// that would break the literal.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest double representation that parses back exactly.
std::string json_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

const char* type_name(EventType type) {
  switch (type) {
    case EventType::kSpan: return "span";
    case EventType::kInstant: return "instant";
    case EventType::kCounter: return "counter";
  }
  return "?";
}

/// Finds `"key":` in `line` and parses the following signed integer.
bool extract_int(const std::string& line, const char* key, std::int64_t& out) {
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return false;
  out = std::strtoll(line.c_str() + at + std::char_traits<char>::length(key), nullptr, 10);
  return true;
}

bool extract_double(const std::string& line, const char* key, double& out) {
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return false;
  out = std::strtod(line.c_str() + at + std::char_traits<char>::length(key), nullptr);
  return true;
}

/// Finds `"key":"` and returns the (unescaped) string literal that follows.
bool extract_string(const std::string& line, const char* key, std::string& out) {
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return false;
  out.clear();
  for (std::size_t i = at + std::char_traits<char>::length(key); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      switch (next) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: out += next;
      }
      continue;
    }
    if (c == '"') return true;
    out += c;
  }
  return false;  // unterminated literal
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Tracer& tracer) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Process metadata: one "process" per component so Perfetto's track tree
  // groups sim/msg/net/sched/worker/core.
  bool first = true;
  for (std::size_t pid = 0; pid < kComponentCount; ++pid) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"name\":\"process_name\","
        << "\"args\":{\"name\":\"" << component_name(static_cast<Component>(pid))
        << "\"}}";
  }
  for (const TraceEvent& event : tracer.events()) {
    if (!first) out << ",\n";
    first = false;
    const auto pid = static_cast<unsigned>(event.comp);
    const std::string label = json_escape(tracer.name(event.name));
    const char* cat = component_name(event.comp);
    switch (event.type) {
      case EventType::kSpan:
        out << "{\"ph\":\"X\",\"pid\":" << pid << ",\"cat\":\"" << cat
            << "\",\"name\":\"" << label << "\",\"tid\":" << event.track
            << ",\"ts\":" << event.ts << ",\"dur\":" << event.dur
            << ",\"args\":{\"id\":" << event.arg << "}}";
        break;
      case EventType::kInstant:
        out << "{\"ph\":\"i\",\"pid\":" << pid << ",\"cat\":\"" << cat
            << "\",\"name\":\"" << label << "\",\"tid\":" << event.track
            << ",\"ts\":" << event.ts << ",\"s\":\"t\",\"args\":{\"id\":" << event.arg
            << "}}";
        break;
      case EventType::kCounter:
        out << "{\"ph\":\"C\",\"pid\":" << pid << ",\"cat\":\"" << cat
            << "\",\"name\":\"" << label << "\",\"tid\":" << event.track
            << ",\"ts\":" << event.ts << ",\"args\":{\"value\":" << json_double(event.value)
            << "}}";
        break;
    }
  }
  out << "\n]}\n";
}

void write_trace_csv(std::ostream& out, const Tracer& tracer) {
  CsvWriter csv(out);
  csv.write("type", "component", "name", "track", "ts_us", "dur_us", "value", "arg");
  for (const TraceEvent& event : tracer.events()) {
    csv.write(type_name(event.type), component_name(event.comp), tracer.name(event.name),
              event.track, event.ts, event.dur, event.value, event.arg);
  }
}

std::size_t read_chrome_trace(std::istream& in, Tracer& into) {
  std::size_t imported = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::string ph;
    if (!extract_string(line, "\"ph\":\"", ph)) continue;
    if (ph != "X" && ph != "i" && ph != "C") continue;  // metadata etc.

    TraceEvent event;
    std::int64_t pid = 0, tid = 0, ts = 0, dur = 0, arg = 0;
    std::string cat, name;
    extract_int(line, "\"pid\":", pid);
    extract_int(line, "\"tid\":", tid);
    extract_int(line, "\"ts\":", ts);
    extract_string(line, "\"name\":\"", name);
    // `cat` carries the component; fall back to the pid for traces whose
    // categories were stripped.
    if (extract_string(line, "\"cat\":\"", cat)) {
      event.comp = component_from_name(cat);
    } else if (pid >= 0 && static_cast<std::size_t>(pid) < kComponentCount) {
      event.comp = static_cast<Component>(pid);
    }
    event.track = static_cast<std::uint32_t>(tid);
    event.ts = ts;
    event.name = into.intern(name);
    if (ph == "X") {
      extract_int(line, "\"dur\":", dur);
      extract_int(line, "\"id\":", arg);
      event.type = EventType::kSpan;
      event.dur = dur;
      event.arg = static_cast<std::uint64_t>(arg);
    } else if (ph == "i") {
      extract_int(line, "\"id\":", arg);
      event.type = EventType::kInstant;
      event.arg = static_cast<std::uint64_t>(arg);
    } else {
      double value = 0.0;
      extract_double(line, "\"value\":", value);
      event.type = EventType::kCounter;
      event.value = value;
    }
    into.append(event);
    ++imported;
  }
  return imported;
}

void merge_tracers(Tracer& dst, std::span<const Tracer* const> sources) {
  std::vector<TraceEvent> merged = dst.events();
  std::size_t total = merged.size();
  for (const Tracer* src : sources) {
    if (src != nullptr) total += src->events().size();
  }
  merged.reserve(total);
  for (const Tracer* src : sources) {
    if (src == nullptr) continue;
    // Per-source remap cache: source name-id -> dst name-id.
    std::vector<std::uint16_t> remap(src->names().size(), 0);
    std::vector<bool> mapped(src->names().size(), false);
    for (const TraceEvent& event : src->events()) {
      TraceEvent copy = event;
      if (copy.name < remap.size()) {
        if (!mapped[copy.name]) {
          remap[copy.name] = dst.intern(src->name(copy.name));
          mapped[copy.name] = true;
        }
        copy.name = remap[copy.name];
      }
      merged.push_back(copy);
    }
  }
  // Stable: same-tick events keep (dst, then source order) — the merged
  // trace is a pure function of the per-shard traces, not of thread timing.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
  dst.clear();
  for (const TraceEvent& event : merged) dst.append(event);
}

}  // namespace dlaja::obs
