#pragma once
// Trace exporters/importer.
//
// The JSON exporter writes the Chrome trace-event format (the JSON Object
// Format variant, one event object per line inside "traceEvents"), which
// chrome://tracing and Perfetto load directly. Simulated ticks are
// microseconds, exactly the unit the format expects for ts/dur, so no
// scaling happens on export. The CSV exporter is a compact flat dump for
// ad-hoc analysis (pandas, sqlite).
//
// read_chrome_trace() parses traces written by write_chrome_trace() back
// into a Tracer, so `dlaja_trace profile` can post-process a recorded run
// without re-simulating it. It is a line-oriented reader for our own
// writer's output, not a general JSON parser.

#include <iosfwd>
#include <span>

#include "obs/trace.hpp"

namespace dlaja::obs {

/// Merges the events of `sources` into `dst`, re-interning names into dst's
/// table and stably re-sorting everything by timestamp (ties keep dst's
/// events first, then source order) — so a sharded run exports one
/// deterministic, time-ordered trace regardless of shard interleaving.
/// Events beyond dst's capacity are dropped and counted by dst.dropped().
void merge_tracers(Tracer& dst, std::span<const Tracer* const> sources);

/// Writes all recorded events as Chrome trace-event JSON. Components become
/// processes (with name metadata), tracks become thread ids, spans "X"
/// complete events, instants "i", counters "C".
void write_chrome_trace(std::ostream& out, const Tracer& tracer);

/// Writes a flat CSV: type,component,name,track,ts_us,dur_us,value,arg.
void write_trace_csv(std::ostream& out, const Tracer& tracer);

/// Reads a trace produced by write_chrome_trace() into `into` (appending;
/// names are re-interned). Returns the number of events imported. Metadata
/// events are skipped; unrecognised lines are ignored.
std::size_t read_chrome_trace(std::istream& in, Tracer& into);

}  // namespace dlaja::obs
