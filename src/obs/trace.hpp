#pragma once
// Structured simulation tracing.
//
// A Tracer is an append buffer of typed trace events — spans, instants and
// counter samples — stamped with simulated ticks and labelled through an
// interned name table. Components never store strings per event: a name is
// interned once (cold path) and every event carries a 16-bit id.
//
// The simulation is single-threaded, so the buffer needs no synchronisation
// ("lock-free by construction"); experiment-level parallelism attaches one
// Tracer per Simulator.
//
// Cost model, mirroring DLAJA_LOG:
//   * compile-time: building with -DDLAJA_TRACE=OFF defines
//     DLAJA_TRACE_DISABLED and DLAJA_TRACE_ACTIVE() folds to `false`, so
//     every instrumentation block is dead code the optimizer removes;
//   * runtime: with tracing compiled in but no tracer attached (or the
//     tracer disabled), each hook costs one pointer load and a
//     never-taken branch.
//
// The buffer is capped: once `capacity` events are recorded, further events
// are counted in dropped() instead of growing the buffer without bound —
// long runs degrade gracefully instead of eating the host's memory.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace dlaja::obs {

/// Emitting subsystem. Doubles as the Chrome-trace "process" id so Perfetto
/// groups tracks by component.
enum class Component : std::uint8_t { kSim, kMsg, kNet, kSched, kWorker, kCore, kFault };
inline constexpr std::size_t kComponentCount = 7;

/// Stable lowercase name ("sim", "msg", ...) used as the Chrome-trace
/// category and in profile tables.
[[nodiscard]] const char* component_name(Component comp) noexcept;

/// Inverse of component_name(); unknown names map to kCore.
[[nodiscard]] Component component_from_name(std::string_view name) noexcept;

enum class EventType : std::uint8_t {
  kSpan,     ///< an interval [ts, ts+dur] on a track
  kInstant,  ///< a point event at ts
  kCounter,  ///< a sampled value at ts
};

/// One recorded event. 40 bytes; the name is an id into Tracer::names().
/// `track` separates concurrent timelines within a component (a worker
/// index, a node id) and becomes the Chrome-trace thread id.
struct TraceEvent {
  Tick ts = 0;
  Tick dur = 0;        ///< spans only; 0 otherwise
  double value = 0.0;  ///< counters only
  std::uint64_t arg = 0;  ///< correlation id (job id, flow seq, event seq)
  std::uint32_t track = 0;
  std::uint16_t name = 0;
  EventType type = EventType::kInstant;
  Component comp = Component::kSim;
};

class Tracer {
 public:
  /// `capacity` caps the number of recorded events (drops beyond it).
  explicit Tracer(std::size_t capacity = 1u << 20) : capacity_(capacity) {
    names_.push_back("?");  // id 0 = "unnamed", so a zero name is printable
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Runtime switch. Components must check enabled() (via
  /// DLAJA_TRACE_ACTIVE) before paying any per-event cost.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Returns the id for `name`, creating it on first use. Stable for the
  /// Tracer's lifetime; call on cold paths and cache the id.
  std::uint16_t intern(std::string_view name);

  /// Name for an interned id ("?" for unknown ids).
  [[nodiscard]] const std::string& name(std::uint16_t id) const noexcept {
    return names_[id < names_.size() ? id : 0];
  }

  /// Records a completed interval [start, end] (clamped to start).
  void span(Component comp, std::uint16_t name, std::uint32_t track, Tick start,
            Tick end, std::uint64_t arg = 0) {
    TraceEvent event;
    event.ts = start;
    event.dur = end > start ? end - start : 0;
    event.arg = arg;
    event.track = track;
    event.name = name;
    event.type = EventType::kSpan;
    event.comp = comp;
    push(event);
  }

  /// Records a point event.
  void instant(Component comp, std::uint16_t name, std::uint32_t track, Tick at,
               std::uint64_t arg = 0) {
    TraceEvent event;
    event.ts = at;
    event.arg = arg;
    event.track = track;
    event.name = name;
    event.type = EventType::kInstant;
    event.comp = comp;
    push(event);
  }

  /// Records a counter sample.
  void counter(Component comp, std::uint16_t name, std::uint32_t track, Tick at,
               double value) {
    TraceEvent event;
    event.ts = at;
    event.value = value;
    event.track = track;
    event.name = name;
    event.type = EventType::kCounter;
    event.comp = comp;
    push(event);
  }

  /// Appends a pre-built event verbatim (used by the trace importer).
  /// Subject to the same capacity cap as the typed recorders.
  void append(const TraceEvent& event) { push(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept { return names_; }

  /// Events rejected because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Discards recorded events (the name table survives, so cached ids from
  /// a previous run stay valid).
  void clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

 private:
  void push(const TraceEvent& event) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(event);
  }

  bool enabled_ = false;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint16_t> name_ids_;
};

}  // namespace dlaja::obs

// Instrumentation guard. Every trace block must be gated:
//
//   if (DLAJA_TRACE_ACTIVE(tracer)) tracer->span(...);
//
// With DLAJA_TRACE_DISABLED (CMake -DDLAJA_TRACE=OFF) the condition is a
// constant false and the whole block compiles away.
#ifdef DLAJA_TRACE_DISABLED
#define DLAJA_TRACE_ACTIVE(tracer) (false && (tracer) != nullptr)
#else
#define DLAJA_TRACE_ACTIVE(tracer) ((tracer) != nullptr && (tracer)->enabled())
#endif
