#include "obs/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace dlaja::obs {

namespace {

/// Shortest round-trip decimal form of a double (matches the JSON writer's
/// conventions: finite values only reach this layer).
void append_double(std::string& out, double value) {
  char buffer[32];
  const int n = std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out.append(buffer, static_cast<std::size_t>(n));
}

}  // namespace

void ProbeRegistry::add_gauge(std::string name, std::uint32_t shard, Gauge fn) {
  if (name.empty() || !fn) {
    throw std::invalid_argument("ProbeRegistry::add_gauge: need a name and a callback");
  }
  gauges_.push_back(GaugeEntry{std::move(name), shard, std::move(fn)});
}

void ProbeRegistry::add_invariant(std::string name, std::uint32_t shard, Check fn) {
  if (name.empty() || !fn) {
    throw std::invalid_argument("ProbeRegistry::add_invariant: need a name and a callback");
  }
  invariants_.push_back(CheckEntry{std::move(name), shard, std::move(fn)});
}

void TelemetrySampler::bind(const ProbeRegistry& registry, std::uint32_t shard,
                            const TelemetryConfig& config) {
  if (config.interval <= 0) {
    throw std::invalid_argument("TelemetrySampler::bind: interval must be > 0");
  }
  if (config.capacity < 2) {
    throw std::invalid_argument("TelemetrySampler::bind: capacity must be >= 2");
  }
  bound_ = true;
  config_ = config;
  next_due_ = config.interval;
  stride_ = 1;
  for (const ProbeRegistry::GaugeEntry& gauge : registry.gauges_) {
    if (gauge.shard != shard) continue;
    // Several gauges may share a series name; they sum into one column.
    const auto it = std::find(names_.begin(), names_.end(), gauge.name);
    std::size_t column = 0;
    if (it == names_.end()) {
      column = names_.size();
      names_.push_back(gauge.name);
    } else {
      column = static_cast<std::size_t>(it - names_.begin());
    }
    gauges_.push_back(BoundGauge{gauge.fn, column});
  }
  scratch_row_.resize(names_.size());
  columns_stale_ = true;
  if (config.watchdog) {
    for (const ProbeRegistry::CheckEntry& check : registry.invariants_) {
      if (check.shard == shard) checks_.push_back(&check);
    }
  }
}

void TelemetrySampler::read_row(Tick tick) {
  assert(bound_ && tick == next_due_);
  next_due_ += config_.interval;
  std::fill(scratch_row_.begin(), scratch_row_.end(), 0.0);
  for (const BoundGauge& gauge : gauges_) {
    scratch_row_[gauge.column] += gauge.fn();
  }
  // Invariants run at every sample at full cadence — retention only thins
  // what is *stored*, never what is *checked*. After the first violation the
  // sampler records nothing further but keeps sampling, so tick cursors stay
  // in lockstep across shards until the engine notices and fails the run.
  if (!violation_) {
    for (const ProbeRegistry::CheckEntry* check : checks_) {
      std::string message = check->fn();
      if (!message.empty()) {
        violation_ = InvariantViolation{tick, check->name, std::move(message)};
        break;
      }
    }
  }
}

void TelemetrySampler::sample(Tick tick) {
  read_row(tick);
  Pending pending;
  pending.tick = tick;
  if (!row_pool_.empty()) {
    pending.row = std::move(row_pool_.back());
    row_pool_.pop_back();
  }
  pending.row = scratch_row_;  // assignment reuses the recycled capacity
  pending_.push_back(std::move(pending));
}

void TelemetrySampler::sample_confirmed(Tick tick) {
  assert(pending_.empty());  // confirmed rows may not overtake pending ones
  read_row(tick);
  commit_row(tick, scratch_row_);
}

void TelemetrySampler::confirm_through(Tick through) {
  while (!pending_.empty() && pending_.front().tick <= through) {
    commit_row(pending_.front().tick, pending_.front().row);
    row_pool_.push_back(std::move(pending_.front().row));
    pending_.pop_front();
  }
}

void TelemetrySampler::finalize(Tick target) {
  if (!bound_) return;
  // Pad: the run went quiescent before the canonical end (a sharded window
  // stopped short of ceil_grid(t_last)); gauges read the frozen final state.
  while (next_due_ <= target) sample(next_due_);
  confirm_through(target);
  // Trim: samples past the canonical end (window-lookahead overrun).
  pending_.clear();
}

void TelemetrySampler::commit_row(Tick tick, const std::vector<double>& row) {
  // Retention keeps ticks on the (stride * interval) grid; a committed tick
  // off the current grid was doomed by an earlier compaction.
  if ((tick / config_.interval) % static_cast<Tick>(stride_) != 0) return;
  ticks_.push_back(tick);
  rows_.insert(rows_.end(), row.begin(), row.end());
  columns_stale_ = true;
  if (ticks_.size() >= config_.capacity) compact();
}

void TelemetrySampler::compact() {
  // Stride-doubling ring retention: drop every sample off the doubled grid.
  // Because every sampler is fed the identical canonical tick sequence with
  // identical capacity, compaction happens at the same point everywhere —
  // retained ticks stay lockstep across shards and shard counts.
  stride_ *= 2;
  const std::size_t width = names_.size();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < ticks_.size(); ++i) {
    if ((ticks_[i] / config_.interval) % static_cast<Tick>(stride_) != 0) continue;
    ticks_[kept] = ticks_[i];
    std::copy_n(rows_.begin() + static_cast<std::ptrdiff_t>(i * width), width,
                rows_.begin() + static_cast<std::ptrdiff_t>(kept * width));
    ++kept;
  }
  ticks_.resize(kept);
  rows_.resize(kept * width);
}

void TelemetrySampler::rebuild_columns() const {
  const std::size_t width = names_.size();
  columns_.assign(width, std::vector<double>(ticks_.size()));
  for (std::size_t i = 0; i < ticks_.size(); ++i) {
    for (std::size_t s = 0; s < width; ++s) columns_[s][i] = rows_[i * width + s];
  }
  columns_stale_ = false;
}

void TelemetrySampler::dump_tail(std::ostream& out, std::size_t rows) const {
  out << "tick,time_s";
  for (const std::string& name : names_) out << ',' << name;
  out << '\n';
  std::string line;
  const auto emit = [&](Tick tick, const auto& value_at) {
    line.clear();
    line += std::to_string(tick);
    line += ',';
    append_double(line, seconds_from_ticks(tick));
    for (std::size_t s = 0; s < names_.size(); ++s) {
      line += ',';
      append_double(line, value_at(s));
    }
    line += '\n';
    out << line;
  };
  const std::size_t start = ticks_.size() > rows ? ticks_.size() - rows : 0;
  for (std::size_t i = start; i < ticks_.size(); ++i) {
    emit(ticks_[i], [&](std::size_t s) { return rows_[i * names_.size() + s]; });
  }
  for (const Pending& pending : pending_) {
    emit(pending.tick, [&](std::size_t s) { return pending.row[s]; });
  }
}

TelemetryTable merge_samplers(std::span<const TelemetrySampler* const> samplers) {
  TelemetryTable table;
  const TelemetrySampler* reference = nullptr;
  for (const TelemetrySampler* sampler : samplers) {
    if (sampler == nullptr || !sampler->bound()) continue;
    if (reference == nullptr) {
      reference = sampler;
    } else if (sampler->ticks() != reference->ticks()) {
      throw std::logic_error(
          "merge_samplers: shard samplers hold different tick sequences "
          "(engine finalize bug)");
    }
    for (const std::string& name : sampler->names()) {
      if (std::find(table.names.begin(), table.names.end(), name) == table.names.end()) {
        table.names.push_back(name);
      }
    }
  }
  if (reference == nullptr) return table;
  // Sorted columns: the layout depends on neither registration order nor
  // shard count, so CSVs diff cleanly across both.
  std::sort(table.names.begin(), table.names.end());
  table.interval = reference->interval();
  table.ticks = reference->ticks();
  table.values.assign(table.names.size(),
                      std::vector<double>(table.ticks.size(), 0.0));
  for (const TelemetrySampler* sampler : samplers) {
    if (sampler == nullptr || !sampler->bound()) continue;
    const std::size_t width = sampler->names().size();
    const std::vector<double>& rows = sampler->row_data();
    for (std::size_t s = 0; s < width; ++s) {
      const auto it =
          std::find(table.names.begin(), table.names.end(), sampler->names()[s]);
      auto& column = table.values[static_cast<std::size_t>(it - table.names.begin())];
      for (std::size_t i = 0; i < column.size(); ++i) column[i] += rows[i * width + s];
    }
  }
  return table;
}

void write_telemetry_csv(std::ostream& out, const TelemetryTable& table) {
  std::string line = "tick,time_s";
  for (const std::string& name : table.names) {
    line += ',';
    line += name;
  }
  line += '\n';
  out << line;
  for (std::size_t i = 0; i < table.ticks.size(); ++i) {
    line.clear();
    line += std::to_string(table.ticks[i]);
    line += ',';
    append_double(line, seconds_from_ticks(table.ticks[i]));
    for (const auto& series : table.values) {
      line += ',';
      append_double(line, series[i]);
    }
    line += '\n';
    out << line;
  }
}

void write_telemetry_json(std::ostream& out, const TelemetryTable& table) {
  std::string text = "{\n  \"interval_ticks\": ";
  text += std::to_string(table.interval);
  text += ",\n  \"ticks\": [";
  for (std::size_t i = 0; i < table.ticks.size(); ++i) {
    if (i != 0) text += ',';
    text += std::to_string(table.ticks[i]);
  }
  text += "],\n  \"series\": {";
  for (std::size_t s = 0; s < table.names.size(); ++s) {
    if (s != 0) text += ',';
    text += "\n    \"";
    text += table.names[s];  // probe names are plain identifiers; no escaping
    text += "\": [";
    for (std::size_t i = 0; i < table.values[s].size(); ++i) {
      if (i != 0) text += ',';
      append_double(text, table.values[s][i]);
    }
    text += ']';
  }
  text += "\n  }\n}\n";
  out << text;
}

}  // namespace dlaja::obs
