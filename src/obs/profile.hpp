#pragma once
// Self-time profiling over a recorded trace.
//
// Spans on the same (component, track) timeline nest like a call stack:
// a message delivery span encloses nothing, but a worker "process" span may
// enclose the transfer span that fed it. Self time is a span's duration
// minus the time covered by spans fully nested inside it — the standard
// profiler decomposition, computed here over simulated time.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dlaja::obs {

/// Aggregated timing for one (component, span name) pair.
struct ProfileRow {
  Component comp = Component::kCore;
  std::string name;
  std::uint64_t count = 0;
  Tick total = 0;  ///< sum of span durations
  Tick self = 0;   ///< total minus fully-nested child time (same track)
  Tick max = 0;    ///< longest single span
};

/// Per-component rollup.
struct ComponentProfile {
  Component comp = Component::kCore;
  std::uint64_t spans = 0;
  std::uint64_t instants = 0;
  std::uint64_t counters = 0;
  Tick total = 0;
  Tick self = 0;
};

/// Aggregated occurrences of one (component, name) instant or counter —
/// point events have no self time, but their rates and final values are
/// what cache-style subsystems report (e.g. the scheduler's
/// fanout.cache_hit / fanout.stale_decline instants and the
/// fanout.msgs_per_job counter).
struct MarkRow {
  Component comp = Component::kCore;
  std::string name;
  bool is_counter = false;  ///< counter (sampled value) vs instant (event)
  std::uint64_t count = 0;
  double last_value = 0.0;  ///< counters: the most recent sample
};

struct Profile {
  std::vector<ProfileRow> rows;             ///< sorted by self time, descending
  std::vector<MarkRow> marks;               ///< sorted by count, descending
  std::vector<ComponentProfile> components; ///< component order (sim..core)
};

/// Builds the profile from a tracer's recorded events.
[[nodiscard]] Profile build_profile(const Tracer& tracer);

/// Renders the per-component rollup plus the top-`top_n` rows by self time.
void print_profile(std::ostream& out, const Tracer& tracer, std::size_t top_n);

}  // namespace dlaja::obs
