#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace dlaja::sim {

EventId Simulator::schedule_at(Tick at, Action action) {
  assert(action);
  if (at < now_) at = now_;  // cannot schedule into the past
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  return EventId{id};
}

EventId Simulator::schedule_after(Tick delay, Action action) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  // The heap entry stays behind as a tombstone and is skipped when popped.
  return actions_.erase(id.value) > 0;
}

bool Simulator::step() {
  while (!stopped_ && !queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    const auto it = actions_.find(entry.id);
    if (it == actions_.end()) continue;  // cancelled tombstone
    Action action = std::move(it->second);
    actions_.erase(it);
    assert(entry.at >= now_);
    now_ = entry.at;
    ++fired_;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run(Tick until, std::size_t max_events) {
  std::size_t count = 0;
  while (!stopped_ && count < max_events && !queue_.empty()) {
    // Peek past tombstones to find the next live event time.
    const Entry& top = queue_.top();
    if (actions_.find(top.id) == actions_.end()) {
      queue_.pop();
      continue;
    }
    if (top.at > until) break;
    if (step()) ++count;
  }
  if (!stopped_ && until != kNeverTick && now_ < until) {
    // Advance the clock to the horizon even if nothing fired there.
    bool has_live_event_before_until = false;
    if (!queue_.empty()) {
      const Entry& top = queue_.top();
      has_live_event_before_until =
          actions_.find(top.id) != actions_.end() && top.at <= until;
    }
    if (!has_live_event_before_until) now_ = until;
  }
  return count;
}

}  // namespace dlaja::sim
