#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "obs/trace.hpp"

namespace dlaja::sim {

namespace {

// EventId layout: high 32 bits generation, low 32 bits slot+1 (so slot 0 at
// generation 0 still yields a non-zero, valid()-able value).
[[nodiscard]] constexpr std::uint64_t encode(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<std::uint64_t>(generation) << 32) |
         (static_cast<std::uint64_t>(slot) + 1);
}

}  // namespace

void Simulator::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    // Interned once here so the fire path never touches the name table.
    trace_dispatch_ = tracer_->intern("dispatch");
    trace_cancel_ = tracer_->intern("cancel");
    trace_pending_ = tracer_->intern("pending");
  }
}

std::string Simulator::log_prefix() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "[t=%.6f] ", seconds_from_ticks(now_));
  return buf;
}

EventId Simulator::schedule_at(Tick at, Action action) {
  assert(action);
  if (at < now_) at = now_;  // cannot schedule into the past
  ++scheduled_;

  std::uint32_t slot;
  if (free_head_ != kFreeEnd) {
    slot = free_head_;
    free_head_ = pos_[slot];
  } else {
    slot = static_cast<std::uint32_t>(actions_.size());
    if (actions_.size() == actions_.capacity()) {
      // Grow 4x rather than the vector default: the slab moves ~1.33 actions
      // per event over its lifetime instead of ~2.
      reserve(actions_.empty() ? 64 : actions_.size() * 4);
    }
    actions_.emplace_back();
    pos_.push_back(kFreeEnd);
    gen_.push_back(0);
  }
  actions_[slot] = std::move(action);

  if (heap_.size() < kRoot) heap_.resize(kRoot);  // padding before first event
  heap_.push_back(HeapEntry{at, next_seq_++, slot});
  sift_up(heap_.size() - 1);
  return EventId{encode(slot, gen_[slot])};
}

EventId Simulator::schedule_after(Tick delay, Action action) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto slot = static_cast<std::uint32_t>((id.value & 0xffffffffULL) - 1);
  const auto generation = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= actions_.size()) return false;
  // Stale generation: the event fired or was cancelled (release() bumps the
  // tag before a slot can be reused, so a matching tag proves the event is
  // still in the heap and pos_[slot] is a live heap index, not a free link).
  if (gen_[slot] != generation) return false;
  ++cancelled_;
  if (DLAJA_TRACE_ACTIVE(tracer_)) {
    tracer_->instant(obs::Component::kSim, trace_cancel_, 0, now_, slot);
  }
  heap_remove(pos_[slot]);
  release(slot);
  return true;
}

void Simulator::reserve(std::size_t events) {
  actions_.reserve(events);
  pos_.reserve(events);
  gen_.reserve(events);
  heap_.reserve(events + kRoot);
}

void Simulator::fire_root() {
  const std::uint32_t slot = heap_[kRoot].slot;
  assert(heap_[kRoot].at >= now_);
  now_ = heap_[kRoot].at;
  last_fired_ = now_;
  ++fired_;
  if (DLAJA_TRACE_ACTIVE(tracer_)) [[unlikely]] {
    // A zero-duration span per dispatch (callbacks are instantaneous in
    // simulated time; the arg ties it back to the schedule-order sequence)
    // plus a strided heap-occupancy sample — dense enough to see queue
    // pressure, sparse enough not to dominate the trace.
    tracer_->span(obs::Component::kSim, trace_dispatch_, 0, now_, now_,
                  heap_[kRoot].seq);
    if ((fired_ & 15) == 0) {
      tracer_->counter(obs::Component::kSim, trace_pending_, 0, now_,
                       static_cast<double>(pending()));
    }
  }
  // Overlap the action-slab cache miss with the heap pop below.
  __builtin_prefetch(&actions_[slot]);
  pop_root();
  // Detach and recycle the node *before* invoking: the action may schedule
  // (growing/reusing the slab) or try to cancel its own id — which must
  // fail, exactly as firing-then-cancelling always has.
  Action action = std::move(actions_[slot]);
  release(slot);
  action();
}

bool Simulator::step() {
  if (stopped_ || heap_.size() <= kRoot) return false;
  fire_root();
  return true;
}

std::size_t Simulator::run(Tick until, std::size_t max_events) {
  std::size_t count = 0;
  while (!stopped_ && count < max_events && heap_.size() > kRoot) {
    if (heap_[kRoot].at > until) break;
    fire_root();
    ++count;
  }
  if (!stopped_ && until != kNeverTick && now_ < until) {
    // Advance the clock to the horizon even if nothing fired there.
    const bool has_live_event_before_until =
        heap_.size() > kRoot && heap_[kRoot].at <= until;
    if (!has_live_event_before_until) now_ = until;
  }
  return count;
}

void Simulator::sift_up(std::size_t pos) noexcept {
  const HeapEntry moving = heap_[pos];
  while (pos > kRoot) {
    const std::size_t parent = (pos >> 2) + 2;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos_[heap_[pos].slot] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = moving;
  pos_[moving.slot] = static_cast<std::uint32_t>(pos);
}

void Simulator::pop_root() noexcept { heap_remove(kRoot); }

void Simulator::heap_remove(std::size_t pos) noexcept {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t size = heap_.size();
  if (pos >= size) return;  // removed the tail entry itself
  // Bottom-up removal: walk the hole down along the min-child path to a
  // leaf, drop the displaced tail entry there, and let it rise. Cheaper
  // than a classic sift-down because the tail entry almost always belongs
  // near the leaves (skipping the per-level "fits here?" compare), and the
  // climb back up runs along the just-touched (warm) path.
  // Prefetching the next level only pays once the heap outgrows L1/L2;
  // below that it is pure instruction overhead on the hot loop.
  std::size_t hole = pos;
  if (size <= 1024 + kRoot) {
    // L1-resident heap: pairwise tournament over register copies, so no
    // compare waits on a load whose address depends on an earlier pick —
    // the latency chain per level is just compare+select.
    for (;;) {
      const std::size_t first_child = hole * 4 - 8;
      if (first_child >= size) break;
      std::size_t best;
      HeapEntry best_entry;
      if (first_child + 4 <= size) {
        const HeapEntry e0 = heap_[first_child];
        const HeapEntry e1 = heap_[first_child + 1];
        const HeapEntry e2 = heap_[first_child + 2];
        const HeapEntry e3 = heap_[first_child + 3];
        const bool b01 = before(e1, e0);
        const bool b23 = before(e3, e2);
        const HeapEntry m0 = b01 ? e1 : e0;
        const HeapEntry m1 = b23 ? e3 : e2;
        const std::size_t i0 = first_child + (b01 ? 1 : 0);
        const std::size_t i1 = first_child + 2 + (b23 ? 1 : 0);
        const bool bm = before(m1, m0);
        best_entry = bm ? m1 : m0;
        best = bm ? i1 : i0;
      } else {
        best = first_child;
        best_entry = heap_[best];
        for (std::size_t child = first_child + 1; child < size; ++child) {
          const HeapEntry entry = heap_[child];
          if (before(entry, best_entry)) {
            best = child;
            best_entry = entry;
          }
        }
      }
      heap_[hole] = best_entry;
      pos_[best_entry.slot] = static_cast<std::uint32_t>(hole);
      hole = best;
    }
  } else {
    // Larger heap: lower levels miss L1, so the branchy scan wins — the
    // predictor speculates the next level's loads past the compares instead
    // of serialising on them. Prefetching the grandchild line one level
    // ahead only pays once the heap outgrows L2.
    const bool deep = size > 4096;
    for (;;) {
      const std::size_t first_child = hole * 4 - 8;
      if (first_child >= size) break;
      if (deep) {
        const std::size_t grand = first_child * 4 - 8;
        if (grand + 16 <= size) {
          __builtin_prefetch(&heap_[grand]);
          __builtin_prefetch(&heap_[grand + 4]);
          __builtin_prefetch(&heap_[grand + 8]);
          __builtin_prefetch(&heap_[grand + 12]);
        } else {
          __builtin_prefetch(&heap_[std::min(grand, size - 1)]);
        }
      }
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + 4, size);
      for (std::size_t child = first_child + 1; child < last_child; ++child) {
        if (before(heap_[child], heap_[best])) best = child;
      }
      heap_[hole] = heap_[best];
      pos_[heap_[hole].slot] = static_cast<std::uint32_t>(hole);
      hole = best;
    }
  }
  heap_[hole] = last;
  pos_[last.slot] = static_cast<std::uint32_t>(hole);
  sift_up(hole);
}

void Simulator::release(std::uint32_t slot) noexcept {
  actions_[slot].reset();
  ++gen_[slot];  // invalidates every outstanding EventId for this slot
  pos_[slot] = free_head_;
  free_head_ = slot;
}

}  // namespace dlaja::sim
