// Pooled slab backing InlineAction's oversized-capture fallback.
//
// Chunks are rounded up to power-of-two size classes (64B..1KiB) and, once
// released, parked on a per-class thread-local free list for reuse. Captures
// beyond the largest class fall through to the general heap — by then the
// capture itself dwarfs the allocator cost, and the kernel's audited call
// sites never get near that size.

#include "sim/inline_action.hpp"

#include <array>
#include <bit>
#include <cstdlib>

namespace dlaja::sim::detail {

namespace {

constexpr std::size_t kMinChunk = 64;
constexpr std::size_t kMaxChunk = 1024;
constexpr std::size_t kClasses = 5;  // 64, 128, 256, 512, 1024

struct FreeChunk {
  FreeChunk* next;
};

struct ClassList {
  FreeChunk* head = nullptr;
  ~ClassList() {
    while (head != nullptr) {
      FreeChunk* chunk = head;
      head = chunk->next;
      ::operator delete(chunk, std::align_val_t{alignof(std::max_align_t)});
    }
  }
};

struct Pool {
  std::array<ClassList, kClasses> classes;
  PoolStats stats;
};

Pool& pool() {
  thread_local Pool instance;
  return instance;
}

/// Size-class index for `bytes`, or kClasses if it exceeds the largest class.
std::size_t class_index(std::size_t bytes) noexcept {
  const std::size_t rounded = std::bit_ceil(bytes < kMinChunk ? kMinChunk : bytes);
  if (rounded > kMaxChunk) return kClasses;
  return static_cast<std::size_t>(std::countr_zero(rounded) -
                                  std::countr_zero(kMinChunk));
}

std::size_t class_bytes(std::size_t index) noexcept { return kMinChunk << index; }

}  // namespace

void* pool_allocate(std::size_t bytes) {
  Pool& p = pool();
  const std::size_t index = class_index(bytes);
  if (index >= kClasses) {
    ++p.stats.fresh_allocations;
    return ::operator new(bytes, std::align_val_t{alignof(std::max_align_t)});
  }
  ClassList& list = p.classes[index];
  if (list.head != nullptr) {
    FreeChunk* chunk = list.head;
    list.head = chunk->next;
    ++p.stats.pool_hits;
    return chunk;
  }
  ++p.stats.fresh_allocations;
  return ::operator new(class_bytes(index), std::align_val_t{alignof(std::max_align_t)});
}

void pool_release(void* chunk, std::size_t bytes) noexcept {
  const std::size_t index = class_index(bytes);
  if (index >= kClasses) {
    ::operator delete(chunk, std::align_val_t{alignof(std::max_align_t)});
    return;
  }
  auto* freed = ::new (chunk) FreeChunk{pool().classes[index].head};
  pool().classes[index].head = freed;
}

PoolStats pool_stats() noexcept { return pool().stats; }

}  // namespace dlaja::sim::detail
