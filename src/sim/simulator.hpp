#pragma once
// Deterministic discrete-event simulation kernel.
//
// All components of the simulated cluster (network transfers, broker message
// deliveries, job processing, bidding windows) are expressed as events on a
// single queue ordered by (timestamp, insertion sequence). The sequence
// tie-break makes runs bit-reproducible regardless of how many events share
// a timestamp.
//
// The event core is allocation-free in steady state: callbacks live in
// fixed-size InlineAction storage (no std::function heap traffic), and event
// nodes sit in a slab recycled through a free list. An intrusive 4-ary
// min-heap indexed by node keeps cancel() at true O(log n) — no tombstones
// linger in the queue and the fire path does no hash lookups. EventIds carry
// a generation tag so a handle to a fired or cancelled event can never
// accidentally cancel the slot's next tenant.

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "sim/inline_action.hpp"
#include "util/units.hpp"

namespace dlaja::obs {
class Tracer;
}

namespace dlaja::sim {

namespace detail {

/// Minimal allocator forcing 64-byte (cache-line) alignment, so the heap's
/// 4-entry child groups each occupy exactly one line (see Simulator::kRoot).
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}  // NOLINT
  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{64}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{64});
  }
  friend bool operator==(CacheAlignedAllocator, CacheAlignedAllocator) { return true; }
};

}  // namespace detail

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes (slot, generation) — stale handles fail cancel() safely.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// The simulation engine. Not thread-safe: one Simulator per run, runs fan
/// out across threads at the experiment level instead.
class Simulator {
 public:
  using Action = InlineAction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Schedules `action` to fire at absolute time `at` (clamped to now()).
  EventId schedule_at(Tick at, Action action);

  /// Schedules `action` to fire `delay` ticks from now (negative -> now).
  EventId schedule_after(Tick delay, Action action);

  /// Cancels a pending event. Returns false if it already fired, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Fires the earliest pending event; returns false if the queue is empty
  /// or the engine was stopped.
  bool step();

  /// Runs until the queue drains, `until` is reached (events at t > until
  /// stay pending and now() advances to `until`), stop() is called, or
  /// `max_events` events have fired. Returns the number of events fired.
  std::size_t run(Tick until = kNeverTick, std::size_t max_events = SIZE_MAX);

  /// Requests that run()/step() stop before firing further events.
  void stop() noexcept { stopped_ = true; }

  /// True once stop() was called (cleared by resume()).
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Clears the stop flag so that run() may continue.
  void resume() noexcept { stopped_ = false; }

  /// Pre-sizes the node slab and heap for `events` simultaneously pending
  /// events, so traces with known event counts schedule without growth
  /// reallocations.
  void reserve(std::size_t events);

  /// Number of pending (non-cancelled) events. Cancelled events leave no
  /// trace, so this counts live events only.
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() <= kRoot ? 0 : heap_.size() - kRoot;
  }

  /// Timestamp of the earliest pending event, or kNeverTick when the queue
  /// is empty. The sharded engine's window loop uses this to size each
  /// conservative time window without firing anything.
  [[nodiscard]] Tick next_event_at() const noexcept {
    return heap_.size() <= kRoot ? kNeverTick : heap_[kRoot].at;
  }

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

  /// Timestamp of the most recently fired event (0 if none fired yet).
  /// Unlike now(), this never advances past the last event: run(until)
  /// moves now() to `until` even when nothing fires there. The telemetry
  /// layer uses it to place the canonical end of a run's sampling grid.
  [[nodiscard]] Tick last_fired_at() const noexcept { return last_fired_; }

  /// Total schedule_at/schedule_after calls since construction.
  [[nodiscard]] std::uint64_t scheduled() const noexcept { return scheduled_; }

  /// Total successful cancel() calls since construction.
  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }

  /// Attaches (or detaches, with nullptr) a tracer. The simulator emits a
  /// zero-duration "dispatch" span per fired event, "cancel" instants, and
  /// periodic "pending" heap-occupancy samples — and every component that
  /// holds a Simulator reaches the shared tracer through tracer(). The
  /// tracer must outlive the simulator (or be detached first); emission
  /// additionally requires tracer()->enabled().
  void set_tracer(obs::Tracer* tracer);

  /// The attached tracer, or nullptr. Components gate their instrumentation
  /// on DLAJA_TRACE_ACTIVE(sim.tracer()).
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  /// "[t=<seconds>] " prefix stamping log lines with simulated time, so DLAJA_LOG
  /// output correlates with trace timestamps.
  [[nodiscard]] std::string log_prefix() const;

 private:
  /// The root lives at physical index 3 (indices 0-2 are padding): children
  /// of p are [4p-8, 4p-5] and its parent is (p>>2)+2, which lands every
  /// 4-entry child group on one 64-byte-aligned cache line (entries are 16
  /// bytes and the buffer is line-aligned), so a sift level never straddles
  /// two lines.
  static constexpr std::size_t kRoot = 3;
  /// Terminator for the free list threaded through pos_.
  static constexpr std::uint32_t kFreeEnd = UINT32_MAX;

  /// Heap entries carry the full ordering key so that sift comparisons walk
  /// contiguous memory and never chase into the node slab. 16 bytes — four
  /// entries per cache line.
  struct HeapEntry {
    Tick at;
    std::uint32_t seq;  // tie-break: FIFO among same-tick events (mod 2^32)
    std::uint32_t slot;
  };

  /// Strict (at, seq) order. The sequence tie-break compares modulo 2^32:
  /// correct as long as same-tick events simultaneously in the heap span
  /// fewer than 2^31 schedule calls, which vastly exceeds any feasible
  /// pending-event count (slots are 32-bit and nodes are ~80 bytes).
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return static_cast<std::int32_t>(a.seq - b.seq) < 0;
  }

  void sift_up(std::size_t pos) noexcept;
  /// Detaches the heap entry at physical index `pos`, restoring the heap
  /// property (bottom-up: walk the min-child hole to a leaf, drop the
  /// displaced last entry there, sift it back up — cheaper than a full
  /// sift-down because the last entry almost always belongs near the leaves).
  void heap_remove(std::size_t pos) noexcept;
  void pop_root() noexcept;
  /// Returns `slot`'s node to the free list and invalidates outstanding ids.
  void release(std::uint32_t slot) noexcept;
  /// Fires the root event (precondition: heap non-empty).
  void fire_root();

  Tick now_ = 0;
  Tick last_fired_ = 0;
  bool stopped_ = false;
  std::uint32_t next_seq_ = 1;
  std::uint32_t free_head_ = kFreeEnd;
  std::uint64_t fired_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  // Tracing. The pointer is nullptr in untraced runs, so the only cost on
  // the fire path is one load + never-taken branch (and nothing at all when
  // DLAJA_TRACE_DISABLED compiles the blocks away).
  obs::Tracer* tracer_ = nullptr;
  std::uint16_t trace_dispatch_ = 0;  ///< interned "dispatch"
  std::uint16_t trace_cancel_ = 0;    ///< interned "cancel"
  std::uint16_t trace_pending_ = 0;   ///< interned "pending"
  // Node slab as parallel arrays (index = slot in EventId): sift operations
  // update pos_ at 4-byte stride instead of scattering writes across a
  // wide node struct, and gen_ is only touched on release/cancel. A free
  // slot's pos_ entry doubles as its free-list link — safe because cancel()
  // validates the generation tag before ever reading pos_.
  // The slab is line-aligned so each 64-byte Action occupies exactly one
  // cache line instead of straddling two.
  std::vector<Action, detail::CacheAlignedAllocator<Action>> actions_;
  std::vector<std::uint32_t> pos_;  // physical heap index / free-list link
  std::vector<std::uint32_t> gen_;  // bumped on release; tags EventIds
  std::vector<HeapEntry, detail::CacheAlignedAllocator<HeapEntry>> heap_;
};

}  // namespace dlaja::sim
