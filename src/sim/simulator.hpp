#pragma once
// Deterministic discrete-event simulation kernel.
//
// All components of the simulated cluster (network transfers, broker message
// deliveries, job processing, bidding windows) are expressed as events on a
// single queue ordered by (timestamp, insertion sequence). The sequence
// tie-break makes runs bit-reproducible regardless of how many events share
// a timestamp.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace dlaja::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// The simulation engine. Not thread-safe: one Simulator per run, runs fan
/// out across threads at the experiment level instead.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Schedules `action` to fire at absolute time `at` (clamped to now()).
  EventId schedule_at(Tick at, Action action);

  /// Schedules `action` to fire `delay` ticks from now (negative -> now).
  EventId schedule_after(Tick delay, Action action);

  /// Cancels a pending event. Returns false if it already fired, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Fires the earliest pending event; returns false if the queue is empty
  /// or the engine was stopped.
  bool step();

  /// Runs until the queue drains, `until` is reached (events at t > until
  /// stay pending and now() advances to `until`), stop() is called, or
  /// `max_events` events have fired. Returns the number of events fired.
  std::size_t run(Tick until = kNeverTick, std::size_t max_events = SIZE_MAX);

  /// Requests that run()/step() stop before firing further events.
  void stop() noexcept { stopped_ = true; }

  /// True once stop() was called (cleared by resume()).
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  /// Clears the stop flag so that run() may continue.
  void resume() noexcept { stopped_ = false; }

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept { return actions_.size(); }

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;  // tie-break: FIFO among same-tick events
    std::uint64_t id;
  };
  struct Later {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_map<std::uint64_t, Action> actions_;  // absent => cancelled
};

}  // namespace dlaja::sim
