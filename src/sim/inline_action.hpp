#pragma once
// InlineAction: a move-only type-erased `void()` callable with fixed inline
// storage, built for the simulator's schedule->fire hot path.
//
// `std::function` keeps only 16 bytes of small-buffer storage in libstdc++,
// so the kernel's typical capture (`this` plus a couple of ids, 16-56 bytes)
// heap-allocates on every schedule. InlineAction reserves kInlineSize bytes
// in-place — sized so every audited call site in net/, msg/, sched/, cluster/
// and core/ stays inline (they static_assert `fits_inline`) — and routes the
// rare oversized capture through a pooled slab (see action_pool.cpp) instead
// of the general heap, so even the fallback is allocation-free in steady
// state.

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dlaja::sim {

namespace detail {

/// Pooled slab for oversized captures: chunks are recycled through per-size
/// free lists instead of returning to the general heap. Thread-local, so the
/// one-simulator-per-thread model never contends.
[[nodiscard]] void* pool_allocate(std::size_t bytes);
void pool_release(void* chunk, std::size_t bytes) noexcept;

/// Observability hooks for tests/benches: how many chunks were carved from
/// the heap vs. served from a free list (thread-local counters).
struct PoolStats {
  std::size_t fresh_allocations = 0;  ///< chunks carved via operator new
  std::size_t pool_hits = 0;          ///< chunks served from a free list
};
[[nodiscard]] PoolStats pool_stats() noexcept;

}  // namespace detail

class InlineAction {
 public:
  /// Inline capture budget. 56 bytes of storage + the dispatch pointer keeps
  /// the whole object at 64 bytes (one cache line on common targets).
  static constexpr std::size_t kInlineSize = 56;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);
  /// Captures at or below this size relocate with a fixed 16-byte copy (the
  /// common case: nothing, `this`, or `this` plus a couple of ids).
  static constexpr std::size_t kSmallCopy = 16;

  /// True if a callable of type `F` is stored inline (no allocation at all
  /// on construction, move, or destruction).
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  InlineAction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      void* chunk = detail::pool_allocate(sizeof(D));
      ::new (chunk) D(std::forward<F>(fn));
      ::new (static_cast<void*>(storage_)) void*(chunk);
      ops_ = &pooled_ops<D>;
    }
  }

  InlineAction(InlineAction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
      other.ops_ = nullptr;
    }
  }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  /// Destroys the held callable (releasing any pooled chunk); empty after.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Invokes the held callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst's payload from src's and destroys src's. Null
    /// means "memcpy kSmallCopy bytes" — used for small trivially copyable
    /// captures (the hot path: `this` + scalar ids) and for pooled payloads
    /// (relocation transfers only the chunk pointer). Larger trivially
    /// copyable captures get a generated sizeof-wide memcpy instead.
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null means trivially destructible: reset()/cancel do no call at all.
    void (*destroy)(void* storage) noexcept;
  };

  void relocate_from(InlineAction& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, kSmallCopy);
    }
  }

  [[nodiscard]] static void* chunk_of(void* storage) noexcept {
    return *std::launder(reinterpret_cast<void**>(storage));
  }

  template <typename D>
  static constexpr Ops inline_ops{
      [](void* storage) { (*std::launder(reinterpret_cast<D*>(storage)))(); },
      std::is_trivially_copyable_v<D>
          ? (sizeof(D) <= kSmallCopy
                 ? nullptr
                 : +[](void* dst, void* src) noexcept {
                     std::memcpy(dst, src, sizeof(D));
                   })
          : +[](void* dst, void* src) noexcept {
              D* from = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* storage) noexcept {
              std::launder(reinterpret_cast<D*>(storage))->~D();
            },
  };

  template <typename D>
  static constexpr Ops pooled_ops{
      [](void* storage) { (*static_cast<D*>(chunk_of(storage)))(); },
      nullptr,  // relocation transfers the chunk pointer: plain memcpy
      [](void* storage) noexcept {
        void* chunk = chunk_of(storage);
        static_cast<D*>(chunk)->~D();
        detail::pool_release(chunk, sizeof(D));
      },
  };

  alignas(kInlineAlign) std::byte storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(InlineAction) == 64, "one cache line: 56B storage + ops pointer");

}  // namespace dlaja::sim
