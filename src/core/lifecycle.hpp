#pragma once
// Job lifecycle: no submitted job is ever silently lost.
//
// Every assignment gets a *lease* — a completion-ack deadline derived from
// the winning bid (or the assignee's estimate). When the lease expires the
// master probes whether the worker still holds the job: if yes (a slow run,
// a degraded link) the lease is re-armed; if not (the worker crashed, the
// assignment or the completion report was dropped) the attempt is *voided*
// and the job is resubmitted — preferring to exclude the failed worker —
// up to a bounded attempt count, after which it is dead-lettered. At
// quiescence every tracked job is terminal: completed or dead-lettered.
//
// At-least-once semantics: a completion report lost in flight makes the
// lease void a job that actually finished, so a retry can execute it twice.
// The engine's completion mailbox dedupes by job id, so metrics count each
// job once.
//
// The lifecycle is inert unless enabled: fault-free runs construct none of
// this and stay bit-identical.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/protocol.hpp"
#include "metrics/collector.hpp"
#include "sim/simulator.hpp"
#include "workflow/workflow.hpp"

namespace dlaja::core {

struct LifecycleConfig {
  /// Master switch; auto-enabled by the engine when a fault plan is set.
  bool enabled = false;

  /// Total attempts per job (first execution + retries) before dead-letter.
  std::uint32_t max_attempts = 5;

  /// Lease duration = max(lease_min_s, lease_factor * completion estimate).
  /// Generous on purpose: a premature void only costs a duplicate
  /// execution, but frequent ones would thrash the schedulers.
  double lease_factor = 4.0;
  double lease_min_s = 30.0;

  /// Delay before a voided job is resubmitted (lets a recovery land and
  /// prevents zero-delay retry storms when every worker is down).
  double retry_backoff_s = 2.0;
};

class JobLifecycle {
 public:
  /// Engine-provided mechanics. The lifecycle decides *when* to retry or
  /// give up; the engine owns ids, live-job bookkeeping, and the scheduler.
  struct Callbacks {
    /// Resubmit the job as a fresh copy (the engine assigns a new id and
    /// routes it back through track() + the scheduler).
    std::function<void(workflow::Job)> resubmit;
    /// Does `worker` still hold job `id` (queued or executing)?
    std::function<bool(workflow::JobId, cluster::WorkerIndex)> worker_holds;
    /// The attempt `id` is void: forget it (live-job map, scheduler state).
    /// `worker` is kNoWorker when the job was never assigned.
    std::function<void(workflow::JobId, cluster::WorkerIndex)> abandon;
  };

  /// A job that exhausted its attempts.
  struct DeadLetter {
    workflow::Job job;
    std::uint32_t attempts = 0;
    Tick at = 0;
  };

  struct Stats {
    std::uint64_t tracked = 0;         ///< submissions seen (roots + retries)
    std::uint64_t completed = 0;       ///< attempts that finished
    std::uint64_t retries = 0;         ///< resubmissions scheduled
    std::uint64_t dead_letters = 0;    ///< jobs given up on
    std::uint64_t attempts_voided = 0; ///< assignments voided (crash or lease)
    std::uint64_t leases_broken = 0;   ///< leases expired with the job gone
    std::uint64_t leases_rearmed = 0;  ///< leases expired but the worker held on
  };

  JobLifecycle(sim::Simulator& sim, metrics::MetricsCollector& metrics,
               LifecycleConfig config, Callbacks callbacks);

  JobLifecycle(const JobLifecycle&) = delete;
  JobLifecycle& operator=(const JobLifecycle&) = delete;

  /// A job entered the system (engine calls this before Scheduler::submit,
  /// so synchronous assignments find the entry).
  void track(const workflow::Job& job);

  /// The scheduler committed `id` to `w`; `estimate_s <= 0` means unknown.
  /// Re-assignment of a live id (a duplicate offer) re-arms the lease.
  void assigned(workflow::JobId id, cluster::WorkerIndex w, double estimate_s);

  /// A completion report for `id` reached the master.
  void completed(workflow::JobId id);

  /// Worker `w` crashed: void every attempt assigned to it.
  void worker_crashed(cluster::WorkerIndex w);

  /// The scheduler could not place the job at all (all workers dead).
  void unassignable(const workflow::Job& job);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<DeadLetter>& dead_letters() const noexcept {
    return dead_letters_;
  }

  /// Jobs not yet terminal: tracked attempts plus retries in backoff. Zero
  /// at quiescence — the conservation invariant
  ///   tracked == completed + dead_letters + retries
  /// then holds (each retry re-tracks, each root terminates exactly once).
  [[nodiscard]] std::size_t unresolved() const noexcept {
    return entries_.size() + pending_retries_;
  }

  [[nodiscard]] const LifecycleConfig& config() const noexcept { return config_; }

  /// Attempts currently holding an armed lease (assigned, not yet terminal).
  /// O(tracked attempts); intended for telemetry gauges, not hot paths.
  [[nodiscard]] std::size_t outstanding_leases() const noexcept {
    std::size_t count = 0;
    for (const auto& [id, entry] : entries_) {
      if (entry.lease_armed) ++count;
    }
    return count;
  }

  /// Sharded runs: an expired lease must not probe the worker immediately —
  /// worker_holds() reads worker state another shard may be mutating.
  /// With barrier probes on, expiries queue up and the engine flushes them
  /// with run_barrier_probes() at the next window barrier, when no shard
  /// is running.
  void set_barrier_probes(bool on) noexcept { barrier_probes_ = on; }
  void run_barrier_probes();
  [[nodiscard]] bool barrier_probes_pending() const noexcept { return !due_probes_.empty(); }

 private:
  struct Entry {
    workflow::Job job;
    std::uint32_t attempts = 1;
    cluster::WorkerIndex worker = cluster::kNoWorker;
    sim::EventId lease{};
    Tick lease_ticks = 0;
    bool lease_armed = false;
  };

  /// A voided job waiting out its retry backoff (slab-parked so the timer
  /// event captures only {this, slot}).
  struct PendingRetry {
    workflow::Job job;
    std::uint32_t attempts = 0;
  };

  void arm_lease(workflow::JobId id, Entry& entry);
  void lease_fired(workflow::JobId id);
  void probe_lease(workflow::JobId id);
  void void_attempt(workflow::JobId id);
  void retry_or_dead_letter(workflow::Job job, std::uint32_t attempts,
                            cluster::WorkerIndex failed_worker);
  void fire_retry(std::size_t slot);

  sim::Simulator& sim_;
  metrics::MetricsCollector& metrics_;
  LifecycleConfig config_;
  Callbacks callbacks_;
  std::unordered_map<workflow::JobId, Entry> entries_;
  std::vector<PendingRetry> retry_slab_;
  std::vector<std::size_t> retry_free_;
  std::size_t pending_retries_ = 0;
  /// Attempt count the next track() call adopts (set around resubmit()).
  std::uint32_t next_attempts_ = 0;
  std::vector<DeadLetter> dead_letters_;
  Stats stats_;
  std::uint16_t trace_void_ = 0;        ///< "attempt_void" instants
  std::uint16_t trace_dead_letter_ = 0; ///< "dead_letter" instants
  bool trace_names_ready_ = false;
  bool barrier_probes_ = false;
  /// Expiries awaiting the barrier. The lease id at expiry time is kept so
  /// a probe is skipped when a duplicate assignment re-armed the lease in
  /// the meantime (the newer lease owns the entry).
  struct DueProbe {
    workflow::JobId id = 0;
    sim::EventId lease{};
  };
  std::vector<DueProbe> due_probes_;
};

}  // namespace dlaja::core
