#include "core/lifecycle.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace dlaja::core {

using cluster::WorkerIndex;

JobLifecycle::JobLifecycle(sim::Simulator& sim, metrics::MetricsCollector& metrics,
                           LifecycleConfig config, Callbacks callbacks)
    : sim_(sim), metrics_(metrics), config_(config), callbacks_(std::move(callbacks)) {
  if (config_.max_attempts == 0) {
    throw std::invalid_argument("JobLifecycle: max_attempts must be >= 1");
  }
  if (!callbacks_.resubmit || !callbacks_.worker_holds || !callbacks_.abandon) {
    throw std::invalid_argument("JobLifecycle: all callbacks are required");
  }
}

void JobLifecycle::track(const workflow::Job& job) {
  if (!config_.enabled) return;
  Entry entry;
  entry.job = job;
  entry.attempts = next_attempts_ != 0 ? next_attempts_ : 1;
  next_attempts_ = 0;
  entries_.insert_or_assign(job.id, std::move(entry));
  ++stats_.tracked;
}

void JobLifecycle::assigned(workflow::JobId id, WorkerIndex w, double estimate_s) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;  // not tracked (lifecycle off for this job)
  Entry& entry = it->second;
  entry.worker = w;
  const double lease_s =
      std::max(config_.lease_min_s, config_.lease_factor * std::max(estimate_s, 0.0));
  entry.lease_ticks = ticks_from_seconds(lease_s);
  // A duplicate assignment (an offer retransmitted after a lost response)
  // re-arms rather than leaking the previous lease event.
  if (entry.lease_armed) sim_.cancel(entry.lease);
  arm_lease(id, entry);
}

void JobLifecycle::arm_lease(workflow::JobId id, Entry& entry) {
  auto fire = [this, id] { lease_fired(id); };
  static_assert(sim::InlineAction::fits_inline<decltype(fire)>());
  entry.lease = sim_.schedule_after(entry.lease_ticks, std::move(fire));
  entry.lease_armed = true;
}

void JobLifecycle::lease_fired(workflow::JobId id) {
  if (barrier_probes_) {
    // Sharded: the probe reads worker state owned by another shard, so it
    // waits for the next window barrier.
    const auto it = entries_.find(id);
    if (it == entries_.end()) return;  // completed in the same tick
    due_probes_.push_back(DueProbe{id, it->second.lease});
    return;
  }
  probe_lease(id);
}

void JobLifecycle::run_barrier_probes() {
  // probe_lease may append new expiries only via freshly armed leases,
  // which fire later — never synchronously — so plain iteration is safe.
  for (std::size_t i = 0; i < due_probes_.size(); ++i) {
    const DueProbe& due = due_probes_[i];
    const auto it = entries_.find(due.id);
    if (it == entries_.end()) continue;              // completed before the barrier
    if (!(it->second.lease == due.lease)) continue;  // re-armed: newer lease owns it
    probe_lease(due.id);
  }
  due_probes_.clear();
}

void JobLifecycle::probe_lease(workflow::JobId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;  // completed in the same tick
  Entry& entry = it->second;
  entry.lease_armed = false;
  if (entry.worker != cluster::kNoWorker && callbacks_.worker_holds(id, entry.worker)) {
    // Still queued or executing (slow run, degraded link): extend the lease.
    ++stats_.leases_rearmed;
    arm_lease(id, entry);
    return;
  }
  // The worker no longer holds the job and no completion arrived: the
  // assignment, the job, or the report was lost.
  ++stats_.leases_broken;
  DLAJA_LOG(kInfo, "lifecycle") << sim_.log_prefix() << "lease broken for job " << id
                                << " on worker " << entry.worker;
  void_attempt(id);
}

void JobLifecycle::completed(workflow::JobId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;  // duplicate report or untracked job
  Entry entry = std::move(it->second);
  entries_.erase(it);
  if (entry.lease_armed) sim_.cancel(entry.lease);
  ++stats_.completed;
  metrics_.registry().histogram("fault.attempts").record(static_cast<double>(entry.attempts));
}

void JobLifecycle::worker_crashed(WorkerIndex w) {
  // Collect first (void_attempt mutates entries_), sorted so the retry
  // order is independent of hash-map iteration order.
  std::vector<workflow::JobId> victims;
  for (const auto& [id, entry] : entries_) {
    if (entry.worker == w) victims.push_back(id);
  }
  std::sort(victims.begin(), victims.end());
  for (const workflow::JobId id : victims) void_attempt(id);
}

void JobLifecycle::unassignable(const workflow::Job& job) {
  const auto it = entries_.find(job.id);
  if (it == entries_.end()) return;
  // Never assigned, so there is no lease to break and no scheduler state to
  // void — but the scheduler has dropped the job, so it must be retried (or
  // dead-lettered) from here.
  Entry entry = std::move(it->second);
  entries_.erase(it);
  if (entry.lease_armed) sim_.cancel(entry.lease);
  ++stats_.attempts_voided;
  callbacks_.abandon(job.id, cluster::kNoWorker);
  retry_or_dead_letter(std::move(entry.job), entry.attempts, cluster::kNoWorker);
}

void JobLifecycle::void_attempt(workflow::JobId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry entry = std::move(it->second);
  entries_.erase(it);
  if (entry.lease_armed) sim_.cancel(entry.lease);
  ++stats_.attempts_voided;
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    if (!trace_names_ready_) {
      trace_names_ready_ = true;
      trace_void_ = sim_.tracer()->intern("attempt_void");
      trace_dead_letter_ = sim_.tracer()->intern("dead_letter");
    }
    sim_.tracer()->instant(obs::Component::kFault, trace_void_, entry.worker, sim_.now(),
                           id);
  }
  // Late completions of this attempt must be ignored from here on.
  callbacks_.abandon(id, entry.worker);
  retry_or_dead_letter(std::move(entry.job), entry.attempts, entry.worker);
}

void JobLifecycle::retry_or_dead_letter(workflow::Job job, std::uint32_t attempts,
                                        WorkerIndex failed_worker) {
  if (attempts >= config_.max_attempts) {
    ++stats_.dead_letters;
    DLAJA_LOG(kWarn, "lifecycle") << sim_.log_prefix() << "job " << job.id
                                  << " dead-lettered after " << attempts << " attempts";
    if (DLAJA_TRACE_ACTIVE(sim_.tracer()) && trace_names_ready_) {
      sim_.tracer()->instant(obs::Component::kFault, trace_dead_letter_, failed_worker,
                             sim_.now(), job.id);
    }
    dead_letters_.push_back(DeadLetter{std::move(job), attempts, sim_.now()});
    return;
  }
  ++stats_.retries;
  // Soft exclusion: prefer any other worker on the retry. kNoWorker maps to
  // kNoExcludedWorker (no preference).
  job.excluded_worker = failed_worker != cluster::kNoWorker
                            ? static_cast<std::uint32_t>(failed_worker)
                            : workflow::kNoExcludedWorker;

  std::size_t slot;
  if (!retry_free_.empty()) {
    slot = retry_free_.back();
    retry_free_.pop_back();
    retry_slab_[slot] = PendingRetry{std::move(job), attempts};
  } else {
    slot = retry_slab_.size();
    retry_slab_.push_back(PendingRetry{std::move(job), attempts});
  }
  ++pending_retries_;
  auto fire = [this, slot] { fire_retry(slot); };
  static_assert(sim::InlineAction::fits_inline<decltype(fire)>());
  sim_.schedule_after(ticks_from_seconds(config_.retry_backoff_s), std::move(fire));
}

void JobLifecycle::fire_retry(std::size_t slot) {
  PendingRetry pending = std::move(retry_slab_[slot]);
  retry_slab_[slot] = PendingRetry{};
  retry_free_.push_back(slot);
  --pending_retries_;
  // The resubmission flows back through Engine::submit_job -> track(),
  // which adopts the incremented attempt count.
  next_attempts_ = pending.attempts + 1;
  callbacks_.resubmit(std::move(pending.job));
  next_attempts_ = 0;
}

}  // namespace dlaja::core
