#pragma once
// Experiment orchestration: the §6.3 methodology as a library.
//
// One *experiment cell* is (scheduler × job config × fleet preset) run for
// `iterations` consecutive iterations of the same workload, with worker
// caches carried across iterations — the paper runs all combinations "in
// three iterations each" precisely so that later iterations exercise
// locality against files saved by earlier ones. Cells are independent and
// deterministic, so a matrix of cells fans out across a thread pool.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "core/engine.hpp"
#include "metrics/report.hpp"
#include "sched/factory.hpp"
#include "workload/generator.hpp"

namespace dlaja::core {

struct ExperimentSpec {
  /// Scheduler factory name ("bidding", "baseline", ...). Ignored when
  /// `make_scheduler` is set.
  std::string scheduler = "bidding";

  /// Custom scheduler constructor (for ablations with non-default configs).
  std::function<std::unique_ptr<sched::Scheduler>()> make_scheduler;

  /// Workload: one of the §6.3.1 presets, or a fully custom spec.
  workload::JobConfig job_config = workload::JobConfig::kAllDiffEqual;
  std::optional<workload::WorkloadSpec> custom_workload;

  /// Worker fleet: preset + count, or a fully custom fleet.
  cluster::FleetPreset fleet = cluster::FleetPreset::kAllEqual;
  std::size_t worker_count = 5;
  std::optional<std::vector<cluster::WorkerConfig>> custom_fleet;

  /// Iterations with cache carry-over (paper: 3).
  int iterations = 3;
  bool carry_cache = true;

  /// Base seed. The workload derives from it directly (identical across
  /// iterations); engine substreams additionally mix in the iteration.
  std::uint64_t seed = 42;

  /// Engine knobs.
  net::NoiseConfig noise = net::NoiseConfig::throttle(0.10, 0.30);
  cluster::SpeedEstimator::Mode estimation = cluster::SpeedEstimator::Mode::kNominal;
  bool probe_speeds = false;

  /// Fault injection (empty = none; non-empty enables the job lifecycle).
  /// The same plan applies to every iteration — the per-iteration seed
  /// varies the materialized crash times and message draws.
  fault::FaultPlan faults;
  LifecycleConfig lifecycle;

  /// Resolved names for reports.
  [[nodiscard]] std::string workload_name() const;
  [[nodiscard]] std::string fleet_name() const;
};

/// Runs one cell: `iterations` sequential runs of the same workload, caches
/// carried over when `carry_cache`. Returns one report per iteration.
[[nodiscard]] std::vector<metrics::RunReport> run_experiment(const ExperimentSpec& spec);

/// Runs many cells concurrently (each cell stays internally sequential).
/// Results are concatenated in cell order regardless of completion order.
/// `threads` = 0 uses hardware concurrency.
[[nodiscard]] std::vector<metrics::RunReport> run_matrix(std::span<const ExperimentSpec> specs,
                                                         std::size_t threads = 0);

}  // namespace dlaja::core
