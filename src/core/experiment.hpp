#pragma once
// Experiment orchestration: the §6.3 methodology as a library.
//
// One *experiment cell* is (scheduler × job config × fleet preset) run for
// `iterations` consecutive iterations of the same workload, with worker
// caches carried across iterations — the paper runs all combinations "in
// three iterations each" precisely so that later iterations exercise
// locality against files saved by earlier ones. Cells are independent and
// deterministic, so a matrix of cells fans out across a thread pool.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "core/engine.hpp"
#include "metrics/report.hpp"
#include "sched/spec.hpp"
#include "util/json.hpp"
#include "workload/arrivals.hpp"
#include "workload/generator.hpp"

namespace dlaja::core {

/// Default telemetry sampling cadence (simulated seconds) used when a run
/// opts into telemetry without naming an interval. 30 s keeps the measured
/// overhead on the kernel bench cell under 3% (BENCH_kernel.json,
/// "telemetry" section) while a multi-hour streaming run still retains
/// hundreds of samples within the default ring capacity.
inline constexpr double kTelemetryDefaultIntervalS = 30.0;

/// One structured problem found by ExperimentSpec::validate().
struct ValidationIssue {
  std::string field;    ///< spec field at fault ("worker_count", "scheduler", ...)
  std::string message;  ///< what is wrong and what would be valid
};

struct ExperimentSpec {
  /// Optional scenario name (reports/logs; "" = anonymous).
  std::string name;

  /// The scheduler, as one structured spec (sched/spec.hpp). Config strings
  /// still assign directly ("bidding:fanout=probe:4" — implicit parse
  /// sugar); scenarios may use the string or the object JSON form; the
  /// federated control plane configures through `scheduler.federation`.
  /// Ignored when `make_scheduler` is set.
  sched::SchedulerSpec scheduler = {};

  /// Deprecated escape hatch: a custom scheduler constructor. Prefer
  /// config-string specs (they validate, serialize to scenarios, and name
  /// themselves in reports); kept for tests and ablations that need a
  /// hand-built scheduler object.
  std::function<std::unique_ptr<sched::Scheduler>()> make_scheduler;

  /// Workload: one of the §6.3.1 presets, or a fully custom spec.
  workload::JobConfig job_config = workload::JobConfig::kAllDiffEqual;
  std::optional<workload::WorkloadSpec> custom_workload;

  /// Open-arrival mode (scenario key "arrivals"): when set, each iteration
  /// streams jobs lazily from this arrival process via Engine::run_stream
  /// instead of replaying the closed batch — the workload's job count is
  /// ignored, its size-class weights/ranges/fixed cost still shape the job
  /// bodies. See workload/arrivals.hpp.
  std::optional<workload::OpenArrivalSpec> open_arrivals;

  /// Worker fleet: preset + count, or a fully custom fleet.
  cluster::FleetPreset fleet = cluster::FleetPreset::kAllEqual;
  std::size_t worker_count = 5;
  std::optional<std::vector<cluster::WorkerConfig>> custom_fleet;

  /// Iterations with cache carry-over (paper: 3).
  int iterations = 3;
  bool carry_cache = true;

  /// Base seed. The workload derives from it directly (identical across
  /// iterations); engine substreams additionally mix in the iteration.
  std::uint64_t seed = 42;

  /// Engine knobs.
  net::NoiseConfig noise = net::NoiseConfig::throttle(0.10, 0.30);
  cluster::SpeedEstimator::Mode estimation = cluster::SpeedEstimator::Mode::kNominal;
  bool probe_speeds = false;

  /// Fault injection (empty = none; non-empty enables the job lifecycle).
  /// The same plan applies to every iteration — the per-iteration seed
  /// varies the materialized crash times and message draws.
  fault::FaultPlan faults;
  LifecycleConfig lifecycle;

  /// Same-tick delivery coalescing in the broker (scale runs only; changes
  /// the kernel event counts in the CSV stats columns, so off by default).
  bool coalesce_deliveries = false;

  /// Worker shards for the engine's parallel kernel (1 = the classic
  /// single-threaded kernel, bit-identical to prior releases). Requires a
  /// sharding-capable scheduler and shards <= workers; validate() enforces
  /// both up front.
  std::size_t shards = 1;

  /// In-run telemetry (scenario key "telemetry"): gauge-sampling cadence in
  /// seconds (0 = off), retained samples per series, and whether the online
  /// invariant watchdog fails the run on a violation. Sampling is read-only
  /// and RNG-free, so reports are unchanged by turning it on. Requesting
  /// telemetry without naming a cadence (an empty "telemetry" object, or
  /// --telemetry-csv alone) samples at kTelemetryDefaultIntervalS.
  double telemetry_interval_s = 0.0;
  std::size_t telemetry_capacity = 4096;
  bool telemetry_watchdog = true;

  /// Zeroes all latency jitter (fleet links and the master link). Combined
  /// with noise "none" the run depends on no per-message random draw, so 1-,
  /// 2- and N-shard runs of the same cell produce identical reports — the CI
  /// shard-smoke diff relies on exactly this.
  bool flat_control_plane = false;

  /// Resolved names for reports.
  [[nodiscard]] std::string workload_name() const;
  [[nodiscard]] std::string fleet_name() const;

  /// Checks the spec for problems a run would only surface as a crash or a
  /// silently wrong cell: zero workers/iterations/jobs, a scheduler spec
  /// the factory rejects (including a probe k larger than the fleet), fault
  /// clauses naming workers outside the fleet, a zero-attempt lifecycle
  /// under faults. Empty result = valid. run_matrix and the CLI call this;
  /// run_experiment itself stays unchecked (tests exercise edge cells).
  [[nodiscard]] std::vector<ValidationIssue> validate() const;

  /// Declarative scenario form. from_json accepts an object with the keys
  /// written by to_json (unknown keys are errors listing the valid set);
  /// to_json emits only what differs from a default-constructed spec, plus
  /// the identity fields, so files stay small and diffable. Specs using
  /// `make_scheduler` or a custom fleet/workload beyond a preset + job
  /// count are not expressible; to_json throws std::invalid_argument.
  [[nodiscard]] static ExperimentSpec from_json(const json::Value& doc);
  [[nodiscard]] json::Value to_json() const;
};

/// Runs one cell: `iterations` sequential runs of the same workload, caches
/// carried over when `carry_cache`. Returns one report per iteration.
[[nodiscard]] std::vector<metrics::RunReport> run_experiment(const ExperimentSpec& spec);

/// Runs many cells concurrently (each cell stays internally sequential).
/// Results are concatenated in cell order regardless of completion order.
/// `threads` = 0 uses hardware concurrency.
[[nodiscard]] std::vector<metrics::RunReport> run_matrix(std::span<const ExperimentSpec> specs,
                                                         std::size_t threads = 0);

}  // namespace dlaja::core
