// Declarative scenarios: ExperimentSpec <-> JSON, plus validate(). One
// scenario file is one experiment cell; the CLI's --scenario flag and the
// examples under examples/scenarios/ use exactly this format.

#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/experiment.hpp"

namespace dlaja::core {

namespace {

constexpr const char* kValidKeys =
    "name, scheduler, workload, jobs, fleet, workers, iterations, carry_cache, "
    "seed, noise, estimation, faults, lifecycle, coalesce_deliveries, shards, "
    "flat_control_plane, telemetry, arrivals";

[[noreturn]] void key_error(const std::string& key, const std::string& what) {
  throw std::invalid_argument("scenario: key '" + key + "' " + what);
}

const std::string& need_string(const json::Value& value, const std::string& key) {
  if (!value.is_string()) key_error(key, "wants a string");
  return value.as_string();
}

bool need_bool(const json::Value& value, const std::string& key) {
  if (!value.is_bool()) key_error(key, "wants true or false");
  return value.as_bool();
}

double need_number(const json::Value& value, const std::string& key) {
  if (!value.is_number()) key_error(key, "wants a number");
  return value.as_number();
}

std::uint64_t need_count(const json::Value& value, const std::string& key) {
  const double n = need_number(value, key);
  if (n < 0.0 || n != static_cast<double>(static_cast<std::uint64_t>(n))) {
    key_error(key, "wants a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

LifecycleConfig parse_lifecycle(const json::Value& value) {
  if (!value.is_object()) key_error("lifecycle", "wants an object");
  LifecycleConfig lifecycle;
  for (const auto& [key, member] : value.as_object()) {
    if (key == "max_attempts") {
      lifecycle.max_attempts = static_cast<std::uint32_t>(need_count(member, "lifecycle.max_attempts"));
    } else if (key == "lease_factor") {
      lifecycle.lease_factor = need_number(member, "lifecycle.lease_factor");
    } else if (key == "lease_min_s") {
      lifecycle.lease_min_s = need_number(member, "lifecycle.lease_min_s");
    } else if (key == "retry_backoff_s") {
      lifecycle.retry_backoff_s = need_number(member, "lifecycle.retry_backoff_s");
    } else {
      throw std::invalid_argument(
          "scenario: unknown lifecycle key '" + key +
          "' (valid: max_attempts, lease_factor, lease_min_s, retry_backoff_s)");
    }
  }
  return lifecycle;
}

/// Parses the nested "telemetry" object into the spec's flat fields.
void parse_telemetry(const json::Value& value, ExperimentSpec& spec) {
  if (!value.is_object()) key_error("telemetry", "wants an object");
  // The key's presence opts in: an empty object (or one that only tweaks
  // capacity / watchdog) samples at the default cadence. An explicit
  // interval_s overrides it, and interval_s: 0 turns telemetry back off.
  spec.telemetry_interval_s = kTelemetryDefaultIntervalS;
  for (const auto& [key, member] : value.as_object()) {
    if (key == "interval_s") {
      spec.telemetry_interval_s = need_number(member, "telemetry.interval_s");
    } else if (key == "capacity") {
      spec.telemetry_capacity = static_cast<std::size_t>(need_count(member, "telemetry.capacity"));
    } else if (key == "watchdog") {
      spec.telemetry_watchdog = need_bool(member, "telemetry.watchdog");
    } else {
      throw std::invalid_argument("scenario: unknown telemetry key '" + key +
                                  "' (valid: interval_s, capacity, watchdog)");
    }
  }
}

/// Parses the nested "arrivals" object (open-arrival mode).
workload::OpenArrivalSpec parse_arrivals(const json::Value& value) {
  if (!value.is_object()) key_error("arrivals", "wants an object");
  workload::OpenArrivalSpec arrivals;
  for (const auto& [key, member] : value.as_object()) {
    if (key == "process") {
      arrivals.process = workload::open_process_from_name(need_string(member, "arrivals.process"));
    } else if (key == "rate_per_s") {
      arrivals.rate_per_s = need_number(member, "arrivals.rate_per_s");
    } else if (key == "duration_s") {
      arrivals.duration_s = need_number(member, "arrivals.duration_s");
    } else if (key == "max_jobs") {
      arrivals.max_jobs = need_count(member, "arrivals.max_jobs");
    } else if (key == "diurnal_amplitude") {
      arrivals.diurnal_amplitude = need_number(member, "arrivals.diurnal_amplitude");
    } else if (key == "diurnal_period_s") {
      arrivals.diurnal_period_s = need_number(member, "arrivals.diurnal_period_s");
    } else if (key == "burst_multiplier") {
      arrivals.burst_multiplier = need_number(member, "arrivals.burst_multiplier");
    } else if (key == "burst_dwell_s") {
      arrivals.burst_dwell_s = need_number(member, "arrivals.burst_dwell_s");
    } else if (key == "calm_dwell_s") {
      arrivals.calm_dwell_s = need_number(member, "arrivals.calm_dwell_s");
    } else if (key == "repo_pool") {
      arrivals.repo_pool = static_cast<std::size_t>(need_count(member, "arrivals.repo_pool"));
    } else if (key == "popularity_skew") {
      arrivals.popularity_skew = need_number(member, "arrivals.popularity_skew");
    } else {
      throw std::invalid_argument(
          "scenario: unknown arrivals key '" + key +
          "' (valid: process, rate_per_s, duration_s, max_jobs, diurnal_amplitude, "
          "diurnal_period_s, burst_multiplier, burst_dwell_s, calm_dwell_s, repo_pool, "
          "popularity_skew)");
    }
  }
  return arrivals;
}

/// Structured checks mirroring OpenArrivalStream's constructor guards.
void validate_arrivals(const workload::OpenArrivalSpec& arrivals,
                       std::vector<ValidationIssue>& issues) {
  auto positive_finite = [](double x) { return x > 0.0 && std::isfinite(x); };
  if (!positive_finite(arrivals.rate_per_s)) {
    issues.push_back({"arrivals", "rate_per_s must be positive and finite"});
  }
  if (!positive_finite(arrivals.duration_s)) {
    issues.push_back({"arrivals", "duration_s must be positive and finite"});
  }
  if (!(arrivals.diurnal_amplitude >= 0.0) || arrivals.diurnal_amplitude >= 1.0) {
    issues.push_back({"arrivals", "diurnal_amplitude must be in [0, 1)"});
  }
  if (arrivals.diurnal_amplitude > 0.0 && !positive_finite(arrivals.diurnal_period_s)) {
    issues.push_back({"arrivals", "diurnal_period_s must be positive when modulation is on"});
  }
  if (arrivals.process == workload::OpenArrivalSpec::Process::kMmpp) {
    if (!positive_finite(arrivals.burst_multiplier)) {
      issues.push_back({"arrivals", "burst_multiplier must be positive and finite"});
    }
    if (!positive_finite(arrivals.burst_dwell_s) || !positive_finite(arrivals.calm_dwell_s)) {
      issues.push_back({"arrivals", "MMPP dwell times must be positive and finite"});
    }
  }
  if (arrivals.repo_pool == 0) {
    issues.push_back({"arrivals", "repo_pool must be >= 1"});
  }
  if (!positive_finite(arrivals.popularity_skew)) {
    issues.push_back({"arrivals", "popularity_skew must be positive and finite"});
  }
}

}  // namespace

std::vector<ValidationIssue> ExperimentSpec::validate() const {
  std::vector<ValidationIssue> issues;
  const std::size_t fleet_size = custom_fleet ? custom_fleet->size() : worker_count;
  if (fleet_size == 0) {
    issues.push_back({"workers", "the fleet is empty (need at least one worker)"});
  }
  if (iterations <= 0) {
    issues.push_back(
        {"iterations", "need at least one iteration, got " + std::to_string(iterations)});
  }
  const workload::WorkloadSpec wspec =
      custom_workload ? *custom_workload : workload::make_workload_spec(job_config);
  // Open-arrival cells ignore the job count (the stream is bounded by
  // duration/max_jobs instead), but still draw job bodies from the weights.
  if (wspec.job_count == 0 && !open_arrivals) {
    issues.push_back({"jobs", "the workload has zero jobs"});
  }
  // RandomStream::weighted_index requires non-negative weights with a
  // positive sum; reject violations here instead of hitting its
  // precondition (UB) at generation time. NaN fails both comparisons.
  {
    const double weights[3] = {wspec.weight_small, wspec.weight_medium, wspec.weight_large};
    const char* names[3] = {"weight_small", "weight_medium", "weight_large"};
    double weight_sum = 0.0;
    bool weights_usable = true;
    for (std::size_t i = 0; i < 3; ++i) {
      if (!(weights[i] >= 0.0)) {
        issues.push_back({"workload", std::string(names[i]) +
                                          " must be non-negative (size-class weights feed "
                                          "weighted sampling)"});
        weights_usable = false;
      }
      weight_sum += weights[i];
    }
    if (weights_usable && !(weight_sum > 0.0)) {
      issues.push_back({"workload",
                        "size-class weights sum to zero: at least one of weight_small/"
                        "weight_medium/weight_large must be positive"});
    }
  }
  if (wspec.arrival == workload::WorkloadSpec::ArrivalProcess::kBursty &&
      wspec.burst_size == 0) {
    issues.push_back({"workload",
                      "burst_size must be >= 1 for the bursty arrival process (0 would "
                      "silently degenerate to per-job bursts)"});
  }
  if (open_arrivals) validate_arrivals(*open_arrivals, issues);
  if (!make_scheduler) {
    for (sched::SpecIssue& issue : scheduler.validate(fleet_size)) {
      issues.push_back({std::move(issue.field), std::move(issue.message)});
    }
  }
  for (const fault::CrashEvent& crash : faults.crashes) {
    if (crash.worker >= fleet_size) {
      issues.push_back({"faults", "crash clause names worker " + std::to_string(crash.worker) +
                                      " but the fleet has " + std::to_string(fleet_size) +
                                      " workers"});
    }
  }
  if (!faults.sched_crashes.empty() && !make_scheduler &&
      !scheduler.federation.active()) {
    issues.push_back({"faults",
                      "sched_crash clause requires a federated scheduler "
                      "(fed.partitions > 1)"});
  }
  for (const fault::SchedCrashEvent& crash : faults.sched_crashes) {
    if (!make_scheduler && scheduler.federation.active() &&
        crash.instance >= scheduler.federation.partitions) {
      issues.push_back({"faults", "sched_crash clause names instance " +
                                      std::to_string(crash.instance) +
                                      " but the federation has " +
                                      std::to_string(scheduler.federation.partitions) +
                                      " partitions"});
    }
  }
  for (const fault::DegradeWindow& window : faults.degradations) {
    if (window.worker >= fleet_size) {
      issues.push_back({"faults", "degrade clause names worker " + std::to_string(window.worker) +
                                      " but the fleet has " + std::to_string(fleet_size) +
                                      " workers"});
    }
  }
  if (!faults.empty() && lifecycle.max_attempts == 0) {
    issues.push_back({"lifecycle",
                      "max_attempts is 0 under a fault plan: every faulted job would "
                      "dead-letter immediately"});
  }
  if (telemetry_interval_s < 0.0) {
    issues.push_back({"telemetry", "interval_s must be >= 0 (0 disables telemetry)"});
  }
  if (telemetry_interval_s > 0.0 && telemetry_capacity < 2) {
    issues.push_back({"telemetry", "capacity must be >= 2 (ring retention needs room)"});
  }
  if (shards == 0) {
    issues.push_back({"shards", "need at least one shard"});
  } else if (fleet_size > 0 && shards > fleet_size) {
    issues.push_back({"shards", "more shards (" + std::to_string(shards) +
                                    ") than workers (" + std::to_string(fleet_size) + ")"});
  }
  if (shards > 1 && !make_scheduler && scheduler.validate(fleet_size).empty()) {
    const std::unique_ptr<sched::Scheduler> probe = scheduler.build(seed);
    if (!probe->supports_sharding()) {
      issues.push_back({"shards", "scheduler '" + probe->name() +
                                      "' does not support sharded execution"});
    }
  }
  return issues;
}

ExperimentSpec ExperimentSpec::from_json(const json::Value& doc) {
  if (!doc.is_object()) throw std::invalid_argument("scenario: document must be a JSON object");
  ExperimentSpec spec;
  std::optional<std::size_t> jobs;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      spec.name = need_string(value, key);
    } else if (key == "scheduler") {
      // Accepts both the legacy config string ("bidding:fanout=probe:4")
      // and the structured object form {type, fanout, ..., federation}.
      spec.scheduler = sched::SchedulerSpec::from_json(value);
    } else if (key == "workload") {
      spec.job_config = workload::job_config_from_name(need_string(value, key));
    } else if (key == "jobs") {
      jobs = static_cast<std::size_t>(need_count(value, key));
    } else if (key == "fleet") {
      spec.fleet = cluster::fleet_preset_from_name(need_string(value, key));
    } else if (key == "workers") {
      spec.worker_count = static_cast<std::size_t>(need_count(value, key));
    } else if (key == "iterations") {
      spec.iterations = static_cast<int>(need_count(value, key));
    } else if (key == "carry_cache") {
      spec.carry_cache = need_bool(value, key);
    } else if (key == "seed") {
      spec.seed = need_count(value, key);
    } else if (key == "noise") {
      spec.noise = net::NoiseConfig::parse(need_string(value, key));
    } else if (key == "estimation") {
      const std::string& mode = need_string(value, key);
      if (mode == "historic") {
        spec.estimation = cluster::SpeedEstimator::Mode::kHistoric;
        spec.probe_speeds = true;
      } else if (mode != "nominal") {
        key_error(key, "must be \"nominal\" or \"historic\", got \"" + mode + "\"");
      }
    } else if (key == "faults") {
      spec.faults = fault::FaultPlan::parse(need_string(value, key));
    } else if (key == "lifecycle") {
      spec.lifecycle = parse_lifecycle(value);
    } else if (key == "coalesce_deliveries") {
      spec.coalesce_deliveries = need_bool(value, key);
    } else if (key == "shards") {
      spec.shards = static_cast<std::size_t>(need_count(value, key));
    } else if (key == "flat_control_plane") {
      spec.flat_control_plane = need_bool(value, key);
    } else if (key == "telemetry") {
      parse_telemetry(value, spec);
    } else if (key == "arrivals") {
      spec.open_arrivals = parse_arrivals(value);
    } else {
      throw std::invalid_argument("scenario: unknown key '" + key + "' (valid: " +
                                  std::string(kValidKeys) + ")");
    }
  }
  // Mirror the CLI: a preset workload with an optional job-count override
  // is materialized into custom_workload, so runs and reports see one form.
  workload::WorkloadSpec wspec = workload::make_workload_spec(spec.job_config);
  if (jobs) wspec.job_count = *jobs;
  spec.custom_workload = wspec;
  return spec;
}

json::Value ExperimentSpec::to_json() const {
  if (make_scheduler) {
    throw std::invalid_argument(
        "scenario: spec uses a custom make_scheduler and cannot be serialized "
        "(use a scheduler config string)");
  }
  if (custom_fleet) {
    throw std::invalid_argument("scenario: custom fleets cannot be serialized (use a preset)");
  }
  std::size_t jobs = workload::make_workload_spec(job_config).job_count;
  if (custom_workload) {
    workload::WorkloadSpec preset = workload::make_workload_spec(job_config);
    preset.job_count = custom_workload->job_count;
    if (!(*custom_workload == preset)) {
      throw std::invalid_argument(
          "scenario: custom workloads beyond a preset + job count cannot be serialized");
    }
    jobs = custom_workload->job_count;
  }

  json::Object obj;
  if (!name.empty()) obj["name"] = name;
  obj["scheduler"] = scheduler.to_json();
  obj["workload"] = workload::job_config_name(job_config);
  obj["jobs"] = jobs;
  obj["fleet"] = cluster::fleet_preset_name(fleet);
  obj["workers"] = worker_count;
  obj["iterations"] = iterations;
  if (!carry_cache) obj["carry_cache"] = false;
  obj["seed"] = seed;
  obj["noise"] = noise.spec();
  if (estimation == cluster::SpeedEstimator::Mode::kHistoric) obj["estimation"] = "historic";
  if (!faults.empty()) {
    obj["faults"] = faults.spec();
    const LifecycleConfig defaults;
    if (lifecycle.max_attempts != defaults.max_attempts ||
        lifecycle.lease_factor != defaults.lease_factor ||
        lifecycle.lease_min_s != defaults.lease_min_s ||
        lifecycle.retry_backoff_s != defaults.retry_backoff_s) {
      json::Object lc;
      lc["max_attempts"] = static_cast<std::uint64_t>(lifecycle.max_attempts);
      lc["lease_factor"] = lifecycle.lease_factor;
      lc["lease_min_s"] = lifecycle.lease_min_s;
      lc["retry_backoff_s"] = lifecycle.retry_backoff_s;
      obj["lifecycle"] = json::Value{std::move(lc)};
    }
  }
  if (coalesce_deliveries) obj["coalesce_deliveries"] = true;
  if (shards != 1) obj["shards"] = static_cast<std::uint64_t>(shards);
  if (flat_control_plane) obj["flat_control_plane"] = true;
  if (telemetry_interval_s > 0.0) {
    json::Object tel;
    tel["interval_s"] = telemetry_interval_s;
    const ExperimentSpec defaults;
    if (telemetry_capacity != defaults.telemetry_capacity) {
      tel["capacity"] = static_cast<std::uint64_t>(telemetry_capacity);
    }
    if (!telemetry_watchdog) tel["watchdog"] = false;
    obj["telemetry"] = json::Value{std::move(tel)};
  }
  if (open_arrivals) {
    const workload::OpenArrivalSpec& a = *open_arrivals;
    const workload::OpenArrivalSpec defaults;
    json::Object arr;
    arr["process"] = workload::open_process_name(a.process);
    arr["rate_per_s"] = a.rate_per_s;
    arr["duration_s"] = a.duration_s;
    if (a.max_jobs != defaults.max_jobs) arr["max_jobs"] = a.max_jobs;
    if (a.diurnal_amplitude != defaults.diurnal_amplitude) {
      arr["diurnal_amplitude"] = a.diurnal_amplitude;
      arr["diurnal_period_s"] = a.diurnal_period_s;
    }
    if (a.process == workload::OpenArrivalSpec::Process::kMmpp) {
      arr["burst_multiplier"] = a.burst_multiplier;
      arr["burst_dwell_s"] = a.burst_dwell_s;
      arr["calm_dwell_s"] = a.calm_dwell_s;
    }
    if (a.repo_pool != defaults.repo_pool) {
      arr["repo_pool"] = static_cast<std::uint64_t>(a.repo_pool);
    }
    if (a.popularity_skew != defaults.popularity_skew) {
      arr["popularity_skew"] = a.popularity_skew;
    }
    obj["arrivals"] = json::Value{std::move(arr)};
  }
  return json::Value{std::move(obj)};
}

}  // namespace dlaja::core
