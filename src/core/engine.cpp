#include "core/engine.hpp"

#include <algorithm>
#include <any>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace dlaja::core {

using cluster::CompletionReport;
using cluster::WorkerIndex;

Engine::Engine(const std::vector<cluster::WorkerConfig>& fleet,
               std::unique_ptr<sched::Scheduler> scheduler, EngineConfig config)
    : config_(config),
      seeds_(config.seed),
      metrics_(fleet.size()),
      scheduler_(std::move(scheduler)),
      expansion_rng_(seeds_.seed_for("expansion")) {
  if (fleet.empty()) throw std::invalid_argument("Engine: empty fleet");
  if (!scheduler_) throw std::invalid_argument("Engine: null scheduler");
  if (config_.shards == 0) throw std::invalid_argument("Engine: shards must be >= 1");
  if (config_.shards > fleet.size()) {
    throw std::invalid_argument("Engine: more shards than workers");
  }
  if (config_.shards > 1 && !scheduler_->supports_sharding()) {
    throw std::invalid_argument("Engine: scheduler '" + scheduler_->name() +
                                "' does not support sharded execution");
  }

  network_ = std::make_unique<net::NetworkModel>(seeds_, config_.noise);
  master_node_ = network_->register_node("master", config_.master_link);
  broker_ = std::make_unique<msg::Broker>(sim_, *network_);
  // Opt-in: coalescing changes the kernel event counts (part of the run's
  // stats signature), so only scale runs that ask for it get it.
  broker_->set_coalescing(config_.coalesce_deliveries);

  // Worker shards: worker w lives on shard w % N (round-robin keeps the
  // paper's speed-spread presets balanced), with its own event queue and
  // metrics buffers. The master plus broker/lifecycle bookkeeping stay on
  // the engine's own simulator — the control shard.
  if (config_.shards > 1) {
    shards_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(fleet.size()));
    }
    worker_shard_.reserve(fleet.size());
  }

  workers_.reserve(fleet.size());
  worker_nodes_.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const cluster::WorkerConfig& cfg = fleet[i];
    net::LinkConfig link;
    link.bandwidth_mbps = cfg.network_mbps;
    link.latency_ms = cfg.latency_ms;
    link.latency_jitter_ms = cfg.latency_jitter_ms;
    const net::NodeId node = network_->register_node(cfg.name, link);
    worker_nodes_.push_back(node);
    sim::Simulator* worker_sim = &sim_;
    metrics::MetricsCollector* worker_metrics = &metrics_;
    if (!shards_.empty()) {
      const auto shard = static_cast<std::uint32_t>(i % shards_.size());
      worker_shard_.push_back(shard);
      worker_sim = &shards_[shard]->sim;
      worker_metrics = &shards_[shard]->metrics;
    }
    workers_.push_back(std::make_unique<cluster::WorkerNode>(
        static_cast<WorkerIndex>(i), cfg, *worker_sim, *network_, node, *worker_metrics,
        seeds_, config_.estimation));
  }

  if (config_.shared_bandwidth) {
    if (sharded()) {
      // Per-shard flow slabs: bulk transfers contend within their shard
      // (each slab gets the full origin capacity — cross-shard origin
      // contention is intentionally not modelled in sharded runs).
      for (auto& shard : shards_) {
        shard->flows =
            std::make_unique<net::FlowNetwork>(shard->sim, config_.origin_capacity_mbps);
      }
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        net::FlowNetwork* flows = shards_[worker_shard_[i]]->flows.get();
        flows->set_node_capacity(worker_nodes_[i], fleet[i].network_mbps);
        workers_[i]->set_flow_network(flows);
      }
    } else {
      flow_network_ = std::make_unique<net::FlowNetwork>(sim_, config_.origin_capacity_mbps);
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        flow_network_->set_node_capacity(worker_nodes_[i], fleet[i].network_mbps);
        workers_[i]->set_flow_network(flow_network_.get());
      }
    }
  }

  // Worker callbacks: report completions to the master over the broker;
  // surface idleness to the scheduler (it runs worker-side logic there).
  // The completions mailbox id is resolved up front: interning it lazily
  // from a completion callback would mutate broker tables on a shard thread.
  completions_box_ = broker_->mailbox(cluster::mailboxes::kCompletions);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const auto w = static_cast<WorkerIndex>(i);
    workers_[i]->on_complete = [this, w](const workflow::Job& job, WorkerIndex) {
      broker_->send(worker_nodes_[w], master_node_, completions_box_,
                    CompletionReport{job.id, w});
      scheduler_->on_worker_capacity(w);
    };
    workers_[i]->on_idle = [this](WorkerIndex idle_worker) {
      scheduler_->on_worker_idle(idle_worker);
    };
  }

  // Master-side completion handling.
  broker_->register_mailbox(
      master_node_, cluster::mailboxes::kCompletions, [this](const msg::Message& message) {
        const auto& report = message.payload.as<CompletionReport>();
        const auto it = live_jobs_.find(report.job_id);
        if (it == live_jobs_.end()) return;  // duplicate report
        const workflow::Job job = it->second;
        live_jobs_.erase(it);
        master_handle_completion(report, job);
      });

  // Fault machinery. Everything here is gated: a fault-free run constructs
  // neither the lifecycle nor the injector, installs no hooks, and draws
  // nothing from the fault substreams — bit-identical to builds before the
  // fault subsystem existed.
  const bool faults_on = !config_.faults.empty();
  if (faults_on) config_.lifecycle.enabled = true;
  if (config_.lifecycle.enabled) {
    JobLifecycle::Callbacks callbacks;
    callbacks.resubmit = [this](workflow::Job job) {
      job.id = 0;  // fresh copy; submit_job assigns the id and re-tracks
      submit_job(std::move(job));
    };
    callbacks.worker_holds = [this](workflow::JobId id, WorkerIndex w) {
      return w < workers_.size() && !workers_[w]->failed() && workers_[w]->has_job(id);
    };
    callbacks.abandon = [this](workflow::JobId id, WorkerIndex w) {
      live_jobs_.erase(id);  // a late completion of this attempt is ignored
      if (w != cluster::kNoWorker) scheduler_->on_assignment_void(id, w);
    };
    lifecycle_ =
        std::make_unique<JobLifecycle>(sim_, metrics_, config_.lifecycle, std::move(callbacks));
    // Sharded: a lease probe reads worker state owned by another shard's
    // thread, so expiries queue up and are probed at window barriers.
    if (sharded()) lifecycle_->set_barrier_probes(true);
  }
  if (faults_on && !sharded()) {
    fault::InjectorHooks hooks;
    hooks.crash = [this](std::uint32_t w) { apply_crash(static_cast<WorkerIndex>(w)); };
    hooks.recover = [this](std::uint32_t w) { apply_recover(static_cast<WorkerIndex>(w)); };
    injector_ = std::make_unique<fault::FaultInjector>(
        sim_, *broker_, *network_, worker_nodes_,
        config_.faults.materialize_crashes(seeds_, workers_.size()),
        config_.faults.degradations, config_.faults.messages, seeds_, std::move(hooks));
    injector_->arm();
  }
  if (faults_on && !sharded()) {
    // Scheduler-instance crashes are pure scheduler callbacks (no worker or
    // network state), so plain simulator events suffice here.
    for (const fault::SchedCrashEvent& crash : config_.faults.sched_crashes) {
      const std::uint32_t instance = crash.instance;
      sim_.schedule_at(crash.at, [this, instance] {
        ++sched_crashes_;
        scheduler_->on_scheduler_crash(instance);
      });
      if (crash.down_for > 0) {
        sim_.schedule_at(crash.at + crash.down_for, [this, instance] {
          scheduler_->on_scheduler_recovered(instance);
        });
      }
    }
  }
  if (faults_on && sharded()) {
    // Sharded runs apply crash/recover/degrade at window barriers instead of
    // via injector events: the hooks mutate worker and network state that a
    // shard thread may be reading mid-window. Same schedule, same substreams.
    for (const fault::CrashEvent& crash :
         config_.faults.materialize_crashes(seeds_, workers_.size())) {
      const auto w = static_cast<WorkerIndex>(crash.worker);
      fault_timeline_.push_back(TimedFault{crash.at, TimedFault::Kind::kCrash, w});
      if (crash.down_for > 0) {
        fault_timeline_.push_back(
            TimedFault{crash.at + crash.down_for, TimedFault::Kind::kRecover, w});
      }
    }
    for (const fault::SchedCrashEvent& crash : config_.faults.sched_crashes) {
      // Scheduler callbacks run on the control shard; at barriers no shard
      // is running, so the same barrier path as worker faults is safe.
      fault_timeline_.push_back(
          TimedFault{crash.at, TimedFault::Kind::kSchedCrash, crash.instance});
      if (crash.down_for > 0) {
        fault_timeline_.push_back(TimedFault{crash.at + crash.down_for,
                                             TimedFault::Kind::kSchedRecover, crash.instance});
      }
    }
    for (const fault::DegradeWindow& window : config_.faults.degradations) {
      if (window.worker >= workers_.size()) {
        throw std::invalid_argument("fault plan: degrade worker index " +
                                    std::to_string(window.worker) + " out of range");
      }
      const auto w = static_cast<WorkerIndex>(window.worker);
      fault_timeline_.push_back(
          TimedFault{window.at, TimedFault::Kind::kDegrade, w, window.factor});
      fault_timeline_.push_back(
          TimedFault{window.at + window.duration, TimedFault::Kind::kDegrade, w, 1.0});
    }
  }

  sched::SchedulerContext ctx;
  ctx.sim = &sim_;
  ctx.broker = broker_.get();
  ctx.network = network_.get();
  ctx.metrics = &metrics_;
  ctx.master_node = master_node_;
  ctx.seeds = &seeds_;
  for (auto& worker : workers_) ctx.workers.push_back(worker.get());
  ctx.worker_nodes = worker_nodes_;
  if (sharded()) {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      ctx.worker_sims.push_back(&shards_[worker_shard_[i]]->sim);
      ctx.worker_metrics.push_back(&shards_[worker_shard_[i]]->metrics);
    }
  }
  if (lifecycle_) {
    ctx.notify_assigned = [this](workflow::JobId id, WorkerIndex w, double estimate_s) {
      lifecycle_->assigned(id, w, estimate_s);
    };
    ctx.notify_unassignable = [this](const workflow::Job& job) {
      lifecycle_->unassignable(job);
    };
  }
  ctx.fault_aware = faults_on || config_.lifecycle.enabled;
  if (telemetry_on()) {
    ctx.probes = &probes_;
    if (sharded()) {
      // Telemetry shard tags: sampler index in the engine's simulator array
      // (0 = control shard, worker shard s = s + 1).
      ctx.worker_shards.reserve(workers_.size());
      for (const std::uint32_t shard : worker_shard_) {
        ctx.worker_shards.push_back(shard + 1);
      }
    }
  }
  scheduler_->attach(ctx);
  if (telemetry_on()) register_probes();

  if (sharded()) {
    // Conservative lookahead: any cross-shard message spends at least the
    // source link's base latency plus the destination link's base latency in
    // flight, so the tightest bound over all node pairs is the sum of the
    // two smallest base latencies in the cluster.
    double min1 = std::numeric_limits<double>::infinity();
    double min2 = std::numeric_limits<double>::infinity();
    for (net::NodeId node = 0; node < network_->node_count(); ++node) {
      const double latency = network_->link(node).latency_ms;
      if (latency < min1) {
        min2 = min1;
        min1 = latency;
      } else if (latency < min2) {
        min2 = latency;
      }
    }
    lookahead_ = ticks_from_millis(min1 + min2);
    if (lookahead_ <= 0) {
      throw std::invalid_argument(
          "Engine: sharded runs need a nonzero control-plane base latency "
          "(the conservative window lookahead would be zero)");
    }

    msg::ShardLayout layout;
    layout.sims.push_back(&sim_);
    for (auto& shard : shards_) layout.sims.push_back(&shard->sim);
    layout.node_shard.assign(network_->node_count(), 0);  // master et al -> control
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      layout.node_shard[worker_nodes_[i]] = worker_shard_[i] + 1;
    }
    for (std::size_t s = 0; s < layout.sims.size(); ++s) {
      layout.delay_seeds.push_back(
          seeds_.seed_for("msg/delay/shard" + std::to_string(s)));
    }
    broker_->enable_sharding(std::move(layout));

    if (faults_on && config_.faults.messages.any()) {
      // Per-shard message-fault streams: each shard draws its drop/dup
      // bernoullis independently so the policy never contends across
      // threads. Draw order matches the injector's (drop first, then dup).
      const fault::MessageFaults messages = config_.faults.messages;
      for (std::size_t s = 0; s < 1 + shards_.size(); ++s) {
        auto rng = std::make_shared<RandomStream>(
            seeds_.seed_for("fault/messages/shard" + std::to_string(s)));
        broker_->set_shard_fault_policy(
            s, [rng, messages](net::NodeId, net::NodeId) -> std::uint32_t {
              if (messages.drop_p > 0.0 && rng->bernoulli(messages.drop_p)) return 0;
              if (messages.dup_p > 0.0 && rng->bernoulli(messages.dup_p)) return 2;
              return 1;
            });
      }
    }
  }
}

void Engine::set_workflow(std::shared_ptr<const workflow::Workflow> wf) {
  if (ran_) throw std::logic_error("Engine::set_workflow: run() already called");
  if (wf) (void)wf->topological_order();  // rejects cyclic graphs up front
  workflow_ = std::move(wf);
}

void Engine::preload_cache(WorkerIndex w, std::span<const storage::Resource> resources) {
  if (ran_) throw std::logic_error("Engine::preload_cache: run() already called");
  worker(w).cache().restore(resources);
}

std::vector<std::vector<storage::Resource>> Engine::cache_snapshots() const {
  std::vector<std::vector<storage::Resource>> snapshots;
  snapshots.reserve(workers_.size());
  for (const auto& worker : workers_) snapshots.push_back(worker->cache().snapshot());
  return snapshots;
}

cluster::WorkerNode& Engine::worker(WorkerIndex w) {
  if (w >= workers_.size()) throw std::out_of_range("Engine::worker: bad index");
  return *workers_[w];
}

void Engine::fail_worker_at(WorkerIndex w, Tick at) {
  (void)worker(w);  // validates the index up front
  if (sharded()) {
    // Barrier-applied in sharded runs; the event path would mutate worker
    // state owned by a shard thread mid-window.
    fault_timeline_.push_back(TimedFault{at, TimedFault::Kind::kCrash, w});
    return;
  }
  auto crash = [this, w] { apply_crash(w); };
  static_assert(sim::InlineAction::fits_inline<decltype(crash)>());
  sim_.schedule_at(at, std::move(crash));
}

void Engine::recover_worker_at(WorkerIndex w, Tick at) {
  (void)worker(w);
  if (sharded()) {
    fault_timeline_.push_back(TimedFault{at, TimedFault::Kind::kRecover, w});
    return;
  }
  auto recover = [this, w] { apply_recover(w); };
  static_assert(sim::InlineAction::fits_inline<decltype(recover)>());
  sim_.schedule_at(at, std::move(recover));
}

void Engine::apply_crash(WorkerIndex w) {
  cluster::WorkerNode* target = workers_[w].get();
  if (target->failed()) return;  // overlapping schedules: already down
  DLAJA_LOG(kInfo, "engine") << sim_.log_prefix() << "worker " << w << " failed";
  const std::vector<workflow::Job> lost = target->set_failed(true);
  broker_->set_node_down(worker_nodes_[w], true);
  ++crashes_;
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    ensure_trace_names();
    sim_.tracer()->instant(obs::Component::kFault, trace_crash_, w, sim_.now(),
                           lost.size());
  }
  if (lifecycle_) {
    // The lease machinery voids exactly the attempts assigned to this
    // worker — a superset of `lost` (it also covers assignments still in
    // flight to the now-dead node).
    lifecycle_->worker_crashed(w);
    return;
  }
  if (!config_.reassign_on_failure) return;
  // Future-work extension: the master redistributes every incomplete job
  // it had assigned to the dead worker (it knows its own assignments).
  std::vector<workflow::Job> orphans;
  for (const auto& [id, job] : live_jobs_) {
    const metrics::JobRecord* record = metrics_.find_job(id);
    if (record != nullptr && record->worker == w && !record->completed()) {
      orphans.push_back(job);
    }
  }
  for (workflow::Job orphan : orphans) {
    live_jobs_.erase(orphan.id);  // the original can never complete
    orphan.id = 0;                // resubmit as a fresh copy
    ++reassigned_;
    submit_job(std::move(orphan));
  }
}

void Engine::apply_recover(WorkerIndex w) {
  cluster::WorkerNode* target = workers_[w].get();
  if (!target->failed()) return;  // never crashed, or recovered already
  DLAJA_LOG(kInfo, "engine") << sim_.log_prefix() << "worker " << w << " recovered";
  (void)target->set_failed(false);  // a live worker holds no lost jobs
  broker_->set_node_down(worker_nodes_[w], false);
  ++recoveries_;
  // Rejoin with fresh speed knowledge, mirroring the startup sequence.
  if (config_.probe_speeds) target->probe_speeds();
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    ensure_trace_names();
    sim_.tracer()->instant(obs::Component::kFault, trace_recover_, w, sim_.now());
  }
  // The scheduler re-registers the worker (pull polling restarts, push
  // placement sees it via failed() == false again).
  scheduler_->on_worker_recovered(w);
}

void Engine::submit_job(workflow::Job job) {
  // Ids must be unique across the whole run (metrics records persist after
  // completion), so any id that was ever seen is remapped to a fresh one.
  if (job.id == 0 || metrics_.find_job(job.id) != nullptr) {
    job.id = next_job_id_;
  }
  next_job_id_ = std::max(next_job_id_, job.id) + 1;
  job.created_at = sim_.now();
  live_jobs_.emplace(job.id, job);
  ++submitted_;
  metrics_.job(job.id).arrived = sim_.now();
  // Track before the scheduler sees the job: a synchronous assignment (push
  // schedulers) must find the lifecycle entry when it starts the lease.
  if (lifecycle_) lifecycle_->track(job);
  scheduler_->submit(job);
}

void Engine::ensure_trace_names() {
  if (trace_names_ready_) return;
  trace_names_ready_ = true;
  trace_job_ = sim_.tracer()->intern("job");
  trace_crash_ = sim_.tracer()->intern("crash");
  trace_recover_ = sim_.tracer()->intern("recover");
}

void Engine::master_handle_completion(const CompletionReport& report,
                                      const workflow::Job& job) {
  ++completed_;
  if (lifecycle_) lifecycle_->completed(job.id);
  if (streaming_) {
    const metrics::JobRecord* record = metrics_.find_job(job.id);
    const Tick arrived =
        record != nullptr && record->arrived != kNeverTick ? record->arrived : job.created_at;
    sojourn_hist_->record(seconds_from_ticks(sim_.now() - arrived));
  }
  if (DLAJA_TRACE_ACTIVE(sim_.tracer())) {
    ensure_trace_names();
    const metrics::JobRecord& record = metrics_.job(job.id);
    const Tick arrived = record.arrived != kNeverTick ? record.arrived : sim_.now();
    sim_.tracer()->span(obs::Component::kCore, trace_job_, report.worker, arrived,
                        sim_.now(), job.id);
  }
  scheduler_->on_completion(report);
  // Streaming, single-shard: fold the finished record into the collector's
  // retired aggregates so memory stays O(live jobs). Sharded runs keep the
  // records — each worker shard's collector holds half of every record
  // until the end-of-run absorb, so retiring here would corrupt the merge.
  if (streaming_ && !sharded()) metrics_.retire_job(job.id);

  if (!workflow_ || job.task >= workflow_->task_count()) return;
  const workflow::TaskSpec& spec = workflow_->task(job.task);
  if (!spec.expand) return;
  std::vector<workflow::Job> downstream = spec.expand(job, expansion_rng_);
  for (workflow::Job& next : downstream) {
    if (!workflow_->connected(job.task, next.task)) {
      throw std::logic_error("Engine: expander of task '" + spec.name +
                             "' produced a job for a non-downstream task");
    }
    next.id = 0;  // engine assigns
    submit_job(std::move(next));
  }
}

void Engine::apply_timed_fault(const TimedFault& fault) {
  switch (fault.kind) {
    case TimedFault::Kind::kCrash: apply_crash(fault.worker); break;
    case TimedFault::Kind::kRecover: apply_recover(fault.worker); break;
    case TimedFault::Kind::kDegrade:
      network_->set_degradation(worker_nodes_[fault.worker], fault.factor);
      break;
    case TimedFault::Kind::kSchedCrash:
      ++sched_crashes_;
      scheduler_->on_scheduler_crash(fault.worker);
      break;
    case TimedFault::Kind::kSchedRecover:
      scheduler_->on_scheduler_recovered(fault.worker);
      break;
  }
}

namespace {

/// Per-worker backlog series are emitted only for small fleets; larger
/// fleets keep the cluster-wide aggregates so a 10k-worker run does not
/// carry 10k telemetry columns.
constexpr std::size_t kPerWorkerSeriesMax = 16;

}  // namespace

void Engine::register_probes() {
  // Shard tags follow the sampler layout: 0 = the control shard (master,
  // scheduler, lifecycle, broker bookkeeping), worker shard s tags as s + 1.
  // Single-shard runs put everything on 0. Every callback is a pure read.
  probes_.add_gauge("master.pending_jobs", 0, [this] {
    return static_cast<double>(scheduler_->pending_jobs());
  });
  probes_.add_gauge("master.live_jobs", 0,
                    [this] { return static_cast<double>(live_jobs_.size()); });
  probes_.add_gauge("master.completed_jobs", 0,
                    [this] { return static_cast<double>(completed_); });

  const bool per_worker = workers_.size() <= kPerWorkerSeriesMax;
  backlog_memos_.assign(workers_.size(), BacklogMemo{});
  // Fleet aggregates: one gauge per (series, shard) walks its shard's worker
  // group, so registration cost and the per-sample call count stay O(shards)
  // instead of O(workers). Summation runs in ascending worker order within a
  // group — the same order per-worker gauges would have summed in — and
  // per-shard partial sums merge into one cluster-wide series.
  worker_groups_.assign(sharded() ? shards_.size() : 1, {});
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    worker_groups_[sharded() ? worker_shard_[i] : 0].push_back(i);
  }
  for (std::size_t g = 0; g < worker_groups_.size(); ++g) {
    const std::uint32_t shard = sharded() ? static_cast<std::uint32_t>(g) + 1 : 0u;
    const std::vector<std::size_t>* group = &worker_groups_[g];
    // The backlog estimate is the one non-trivial gauge (it replays the FIFO
    // queue), and each worker's value can feed two series at the same tick —
    // memoize it per sampled tick so each sample walks each queue once.
    probes_.add_gauge("worker.backlog_s", shard, [this, group] {
      double total = 0.0;
      for (const std::size_t i : *group) {
        cluster::WorkerNode* node = workers_[i].get();
        BacklogMemo& memo = backlog_memos_[i];
        const Tick now = node->now();
        if (memo.at != now) memo = {now, node->backlog_cost_s()};
        total += memo.value;
      }
      return total;
    });
    probes_.add_gauge("worker.queued", shard, [this, group] {
      double total = 0.0;
      for (const std::size_t i : *group) {
        total += static_cast<double>(workers_[i]->queue_length());
      }
      return total;
    });
    probes_.add_gauge("worker.busy", shard, [this, group] {
      double total = 0.0;
      for (const std::size_t i : *group) {
        total += static_cast<double>(workers_[i]->busy_slots());
      }
      return total;
    });
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    cluster::WorkerNode* node = workers_[i].get();
    const std::uint32_t shard = sharded() ? worker_shard_[i] + 1 : 0u;
    if (per_worker) {
      // Two raw pointers keep the closure inside std::function's inline
      // buffer; the memo shares the walk with the aggregate series above.
      BacklogMemo* memo = &backlog_memos_[i];
      probes_.add_gauge("worker." + std::to_string(i) + ".backlog_s", shard,
                        [node, memo] {
                          const Tick now = node->now();
                          if (memo->at != now) *memo = {now, node->backlog_cost_s()};
                          return memo->value;
                        });
    }
    if (node->cache().config().policy != storage::EvictionPolicy::kUnbounded) {
      probes_.add_invariant("cache.capacity", shard, [node, i]() -> std::string {
        const double used = node->cache().used_mb();
        const double cap = node->cache().config().capacity_mb;
        if (used <= cap + 1e-9) return {};
        return "worker " + std::to_string(i) + " cache holds " + std::to_string(used) +
               " MB > capacity " + std::to_string(cap) + " MB";
      });
    }
  }

  // In-flight broker messages: each broker shard counts its own delivery
  // slab plus the cross-shard parcels it parked at the source, so every
  // logical message is counted exactly once and the per-shard contributions
  // sum to the cluster-wide in-flight count.
  const std::size_t broker_shards = sharded() ? shards_.size() + 1 : 1;
  for (std::size_t s = 0; s < broker_shards; ++s) {
    probes_.add_gauge("broker.in_flight", static_cast<std::uint32_t>(s), [this, s] {
      return static_cast<double>(broker_->in_flight_on(s));
    });
  }

  if (config_.shared_bandwidth) {
    auto add_flow_gauges = [this](net::FlowNetwork* flows, std::uint32_t shard) {
      probes_.add_gauge("flow.active", shard,
                        [flows] { return static_cast<double>(flows->active_flows()); });
      probes_.add_gauge("flow.allocated_mbps", shard,
                        [flows] { return flows->allocated_mbps(); });
    };
    if (sharded()) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        add_flow_gauges(shards_[s]->flows.get(), static_cast<std::uint32_t>(s + 1));
      }
    } else {
      add_flow_gauges(flow_network_.get(), 0);
    }
  }

  if (lifecycle_) {
    probes_.add_gauge("lifecycle.outstanding_leases", 0, [this] {
      return static_cast<double>(lifecycle_->outstanding_leases());
    });
  }

  // Job conservation: every submission is completed, intentionally voided by
  // the lifecycle, reassigned after a crash, or still live. All mutations of
  // these counters happen atomically within control-shard handlers, so the
  // identity holds at every tick, not just at quiescence.
  probes_.add_invariant("jobs.conservation", 0, [this]() -> std::string {
    const std::uint64_t voided = lifecycle_ ? lifecycle_->stats().attempts_voided : 0;
    const std::uint64_t accounted = completed_ + voided + reassigned_ + live_jobs_.size();
    if (submitted_ == accounted) return {};
    return "submitted=" + std::to_string(submitted_) +
           " != completed=" + std::to_string(completed_) +
           " + voided=" + std::to_string(voided) +
           " + reassigned=" + std::to_string(reassigned_) +
           " + live=" + std::to_string(live_jobs_.size());
  });

  // Broker conservation: every copy put in flight was delivered, dropped,
  // missed a retired subscription, or is still parked. Needs every shard's
  // counters at once, so sharded runs check it engine-side at the window
  // barriers (run_windows) instead of as a sampled invariant.
  if (!sharded()) {
    probes_.add_invariant("broker.conservation", 0, [this]() -> std::string {
      const msg::BrokerStats& stats = broker_->stats();
      const std::uint64_t in_flight = broker_->in_flight_total();
      if (stats.enqueued == stats.delivered + stats.dropped + stats.missed + in_flight) {
        return {};
      }
      return "enqueued=" + std::to_string(stats.enqueued) +
             " != delivered=" + std::to_string(stats.delivered) +
             " + dropped=" + std::to_string(stats.dropped) +
             " + missed=" + std::to_string(stats.missed) +
             " + in_flight=" + std::to_string(in_flight);
    });
  }
}

void Engine::check_watchdog() {
  if (!config_.telemetry.watchdog) return;
  for (obs::TelemetrySampler& sampler : samplers_) {
    if (!sampler.violation()) continue;
    const obs::InvariantViolation& v = *sampler.violation();
    std::cerr << "telemetry watchdog: invariant '" << v.probe << "' violated at t="
              << seconds_from_ticks(v.tick) << "s: " << v.message << "\n";
    sampler.dump_tail(std::cerr);
    throw std::runtime_error("telemetry watchdog: invariant '" + v.probe +
                             "' violated at tick " + std::to_string(v.tick) + ": " +
                             v.message);
  }
}

void Engine::run_sampled() {
  // Slices sim_.run(horizon) at the sampling grid. Simulator::run advances
  // the clock to its target even when no event fires there, so the slicing
  // preserves the exact event order and count — bit-identical to the
  // unsliced run. A grid tick is sampled iff a further event (<= horizon)
  // remains, which yields exactly the canonical tick set of telemetry.hpp.
  obs::TelemetrySampler& sampler = samplers_.front();
  const Tick horizon = config_.horizon;
  Tick next_sample = config_.telemetry.interval;
  while (next_sample <= horizon) {
    const Tick next_event = sim_.next_event_at();
    if (next_event == kNeverTick || next_event > horizon) break;
    sim_.run(next_sample);
    sampler.sample_confirmed(next_sample);  // single-shard ticks are canonical
    check_watchdog();
    next_sample += config_.telemetry.interval;
  }
  sim_.run(horizon);
}

void Engine::finish_telemetry() {
  const Tick interval = config_.telemetry.interval;
  // Canonical end of the series: ceil_grid of the last run progress, capped
  // at floor_grid(horizon). Barrier-applied timed faults count as progress —
  // the single-shard engine executes faults as ordinary events, so its
  // last_fired_at() covers them already.
  Tick last = sim_.last_fired_at();
  for (const auto& shard : shards_) last = std::max(last, shard->sim.last_fired_at());
  last = std::max(last, last_timed_fault_);
  Tick target = (last + interval - 1) / interval * interval;
  if (config_.horizon != kNeverTick) {
    target = std::min(target, config_.horizon / interval * interval);
  }
  for (obs::TelemetrySampler& sampler : samplers_) sampler.finalize(target);
  check_watchdog();  // finalize may have sampled fresh (quiescent) ticks
  std::vector<const obs::TelemetrySampler*> sources;
  sources.reserve(samplers_.size());
  for (const obs::TelemetrySampler& sampler : samplers_) sources.push_back(&sampler);
  telemetry_ = obs::merge_samplers(sources);
}

void Engine::run_windows() {
  // Stable: simultaneous faults apply in schedule order (injector parity).
  std::stable_sort(fault_timeline_.begin(), fault_timeline_.end(),
                   [](const TimedFault& a, const TimedFault& b) { return a.at < b.at; });
  std::size_t next_fault = 0;

  std::vector<sim::Simulator*> sims;
  sims.reserve(1 + shards_.size());
  sims.push_back(&sim_);
  for (auto& shard : shards_) sims.push_back(&shard->sim);
  ThreadPool pool(sims.size());
  const Tick horizon = config_.horizon;

  // Conservative windows. Invariant at every barrier: all simulators sit at
  // the same tick (Simulator::run advances `now` to `until` even when no
  // event fires there), and every undelivered cross-shard message is parked
  // in a broker outbox with deliver_at > that tick (delay >= lookahead).
  while (true) {
    (void)broker_->drain_outboxes();
    if (lifecycle_) lifecycle_->run_barrier_probes();
    // Barrier work can park new cross-shard traffic (a broken lease
    // resubmits through the scheduler, which publishes bid requests);
    // re-drain until the outboxes settle.
    if (!broker_->outboxes_empty()) continue;

    Tick next_event = kNeverTick;
    for (sim::Simulator* sim : sims) next_event = std::min(next_event, sim->next_event_at());
    const Tick fault_at =
        next_fault < fault_timeline_.size() ? fault_timeline_[next_fault].at : kNeverTick;
    const Tick next = std::min(next_event, fault_at);
    if (next == kNeverTick || next > horizon) break;

    if (!samplers_.empty()) {
      // The run continues past `next`, so every pending sample — all taken
      // at ticks <= the previous window end < next — precedes further
      // progress and is canonical: commit it into retention, then fail fast
      // on any violation a window recorded.
      for (obs::TelemetrySampler& sampler : samplers_) sampler.confirm_through(next);
      check_watchdog();
      if (config_.telemetry.watchdog) {
        // Cross-shard broker conservation needs every shard's counters at
        // once, so it runs here — no shard thread active — instead of as a
        // sampled per-shard invariant.
        const msg::BrokerStats& stats = broker_->stats();
        const std::uint64_t in_flight = broker_->in_flight_total();
        if (stats.enqueued != stats.delivered + stats.dropped + stats.missed + in_flight) {
          throw std::runtime_error(
              "telemetry watchdog: invariant 'broker.conservation' violated at tick " +
              std::to_string(next) + ": enqueued=" + std::to_string(stats.enqueued) +
              " != delivered=" + std::to_string(stats.delivered) +
              " + dropped=" + std::to_string(stats.dropped) +
              " + missed=" + std::to_string(stats.missed) +
              " + in_flight=" + std::to_string(in_flight));
        }
      }
    }

    // Window end: anything the earliest event can cause on another shard
    // lands at >= next_event + lookahead, so every shard may safely run
    // through next_event + lookahead - 1. Faults clamp the window — they
    // must apply at a barrier, exactly at their tick.
    Tick end = horizon;
    if (next_event != kNeverTick && next_event <= kNeverTick - lookahead_) {
      end = std::min(end, next_event + lookahead_ - 1);
    }
    end = std::min(end, fault_at);

    // One shard's slice of the window, sliced at the telemetry grid: run to
    // each due tick, read that shard's gauges exactly there, continue.
    // Telemetry off => samplers_ is empty and this is just sims[i]->run(end).
    // Samples stay pending until the next barrier confirms them (a window
    // can overrun the run's final event by the lookahead; see telemetry.hpp).
    auto run_shard = [this, &sims, end](std::size_t i) {
      if (!samplers_.empty()) {
        obs::TelemetrySampler& sampler = samplers_[i];
        for (Tick due = sampler.next_due(); due <= end; due = sampler.next_due()) {
          sims[i]->run(due);
          sampler.sample(due);
        }
      }
      sims[i]->run(end);
    };

    // Waking the pool costs more than an empty run: windows where at most
    // one simulator has events due (sparse phases, drain tails) run inline.
    std::size_t busy = 0;
    for (sim::Simulator* sim : sims) busy += sim->next_event_at() <= end ? 1u : 0u;
    if (busy <= 1) {
      for (std::size_t i = 0; i < sims.size(); ++i) run_shard(i);
    } else {
      pool.parallel_for(sims.size(), run_shard);
    }

    while (next_fault < fault_timeline_.size() && fault_timeline_[next_fault].at <= end) {
      apply_timed_fault(fault_timeline_[next_fault]);
      last_timed_fault_ = std::max(last_timed_fault_, fault_timeline_[next_fault].at);
      ++next_fault;
    }
  }
}

void Engine::begin_run() {
  if (ran_) throw std::logic_error("Engine::run: already ran");
  ran_ = true;

  if (config_.probe_speeds) {
    for (auto& worker : workers_) worker->probe_speeds();
  }

  // Pull-based schedulers need the initial idle notifications (workers
  // start idle; there is no transition to fire the callback).
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    scheduler_->on_worker_idle(static_cast<WorkerIndex>(i));
  }
}

metrics::RunReport Engine::run(std::span<const workflow::Job> jobs) {
  begin_run();

  // Stream the workload in at its arrival times. Jobs are staged in
  // arrivals_ and each event captures just {this, index}: a Job is far too
  // wide for the simulator's inline action storage, an index is not.
  arrivals_.assign(jobs.begin(), jobs.end());
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    auto arrive = [this, i] { submit_job(arrivals_[i]); };
    static_assert(sim::InlineAction::fits_inline<decltype(arrive)>());
    sim_.schedule_at(arrivals_[i].created_at, arrive);
  }

  return finish_run();
}

metrics::RunReport Engine::run_stream(JobSource source) {
  begin_run();
  streaming_ = true;
  stream_source_ = std::move(source);
  if (!stream_source_) throw std::invalid_argument("Engine::run_stream: null source");
  sojourn_hist_ = &metrics_.registry().histogram("job.sojourn_s");

  if (telemetry_on()) {
    // Steady-state gauges (registered before the samplers bind in
    // finish_run). Percentiles read the cumulative log-linear histogram —
    // a pure read, so telemetry stays RNG-free and event-free.
    probes_.add_gauge("job.sojourn_p50_s", 0,
                      [this] { return sojourn_hist_->percentile(50.0); });
    probes_.add_gauge("job.sojourn_p99_s", 0,
                      [this] { return sojourn_hist_->percentile(99.0); });
    probes_.add_gauge("job.sojourn_p999_s", 0,
                      [this] { return sojourn_hist_->percentile(99.9); });
    probes_.add_gauge("master.throughput_jps", 0, [this] {
      const double elapsed = seconds_from_ticks(sim_.now());
      return elapsed > 0.0 ? static_cast<double>(completed_) / elapsed : 0.0;
    });
  }

  schedule_next_arrival();
  return finish_run();
}

void Engine::schedule_next_arrival() {
  std::optional<workflow::Job> next = stream_source_();
  if (!next.has_value()) return;
  staged_arrival_ = std::move(*next);
  // Move the job out before staging the successor: the recursive call
  // overwrites staged_arrival_.
  auto arrive = [this] {
    workflow::Job job = std::move(staged_arrival_);
    schedule_next_arrival();
    submit_job(std::move(job));
  };
  static_assert(sim::InlineAction::fits_inline<decltype(arrive)>());
  sim_.schedule_at(std::max(staged_arrival_.created_at, sim_.now()), arrive);
}

metrics::RunReport Engine::finish_run() {
  // Bind the telemetry samplers last: tests may have registered extra
  // probes through probes() between construction and run().
  if (telemetry_on()) {
    samplers_.resize(sharded() ? shards_.size() + 1 : 1);
    for (std::size_t s = 0; s < samplers_.size(); ++s) {
      samplers_[s].bind(probes_, static_cast<std::uint32_t>(s), config_.telemetry);
    }
  }

  if (!sharded()) {
    if (telemetry_on()) {
      run_sampled();
    } else {
      sim_.run(config_.horizon);
    }
  } else {
    // Traced sharded runs: give each shard its own trace buffer (appending
    // to the master tracer from shard threads would race), merged into one
    // deterministic timeline after the run.
    const bool traced = DLAJA_TRACE_ACTIVE(sim_.tracer());
    if (traced) {
      for (auto& shard : shards_) {
        shard->tracer = std::make_unique<obs::Tracer>();
        shard->tracer->set_enabled(true);
        shard->sim.set_tracer(shard->tracer.get());
      }
      broker_->prepare_shard_tracing();
    }
    run_windows();
    for (auto& shard : shards_) metrics_.absorb(shard->metrics);
    if (traced) {
      std::vector<const obs::Tracer*> sources;
      sources.reserve(shards_.size());
      for (auto& shard : shards_) sources.push_back(shard->tracer.get());
      obs::merge_tracers(*sim_.tracer(), sources);
      for (auto& shard : shards_) shard->sim.set_tracer(nullptr);
    }
  }

  if (telemetry_on()) finish_telemetry();

  // Attempts the master never acked split into intentionally voided ones
  // (the lifecycle already retried or dead-lettered them) and genuinely
  // stuck ones. Only the latter count as lost — that is the number the
  // fault-smoke CI gate pins at zero.
  std::uint64_t lost = submitted_ - completed_;
  if (lifecycle_) {
    const std::uint64_t voided = lifecycle_->stats().attempts_voided;
    lost = lost >= voided ? lost - voided : 0;
  }
  if (lost > 0) {
    DLAJA_LOG(kWarn, "engine") << sim_.log_prefix() << "run ended with " << lost
                               << " incomplete jobs (failed workers or horizon)";
  }

  // Fold the kernel and messaging counters into the registry so they land in
  // the flattened per-run stats (and the CSV's trailing columns).
  metrics::Registry& registry = metrics_.registry();
  std::uint64_t events_fired = sim_.fired();
  std::uint64_t events_scheduled = sim_.scheduled();
  std::uint64_t events_cancelled = sim_.cancelled();
  for (const auto& shard : shards_) {
    events_fired += shard->sim.fired();
    events_scheduled += shard->sim.scheduled();
    events_cancelled += shard->sim.cancelled();
  }
  registry.counter("sim.events_fired").add(static_cast<double>(events_fired));
  registry.counter("sim.events_scheduled").add(static_cast<double>(events_scheduled));
  registry.counter("sim.events_cancelled").add(static_cast<double>(events_cancelled));
  const msg::BrokerStats& broker_stats = broker_->stats();
  registry.counter("msg.published").add(static_cast<double>(broker_stats.published));
  registry.counter("msg.sent").add(static_cast<double>(broker_stats.sent));
  registry.counter("msg.delivered").add(static_cast<double>(broker_stats.delivered));
  registry.counter("msg.dropped").add(static_cast<double>(broker_stats.dropped));
  if (broker_->coalescing()) {
    // Only coalescing runs grow these columns; default runs keep the exact
    // historical CSV column set.
    registry.counter("msg.batches").add(static_cast<double>(broker_stats.batches));
    registry.counter("msg.batched").add(static_cast<double>(broker_stats.batched));
  }

  // fault.* counters exist only when the fault machinery was on, so
  // fault-free CSVs keep their exact pre-fault column set.
  if (injector_ || lifecycle_) {
    registry.counter("fault.crashes").add(static_cast<double>(crashes_));
    registry.counter("fault.recoveries").add(static_cast<double>(recoveries_));
    registry.counter("fault.msg_dropped").add(static_cast<double>(broker_stats.fault_dropped));
    registry.counter("fault.msg_duplicated")
        .add(static_cast<double>(broker_stats.fault_duplicated));
    // Gated on the plan having sched_crash clauses so pre-federation fault
    // CSVs keep their exact column set.
    if (!config_.faults.sched_crashes.empty()) {
      registry.counter("fault.sched_crashes").add(static_cast<double>(sched_crashes_));
    }
  }
  if (lifecycle_) {
    const JobLifecycle::Stats& ls = lifecycle_->stats();
    registry.counter("fault.retries").add(static_cast<double>(ls.retries));
    registry.counter("fault.dead_letters").add(static_cast<double>(ls.dead_letters));
    registry.counter("fault.attempts_voided").add(static_cast<double>(ls.attempts_voided));
    registry.counter("fault.leases_broken").add(static_cast<double>(ls.leases_broken));
    registry.counter("fault.leases_rearmed").add(static_cast<double>(ls.leases_rearmed));
  }

  metrics::RunReport report = metrics::make_report(metrics_, metrics_.last_completion());
  report.scheduler = scheduler_->name();
  report.seed = config_.seed;
  report.messages_delivered = broker_->stats().delivered;
  report.jobs_retried = jobs_retried();
  report.jobs_dead_lettered = jobs_dead_lettered();
  report.jobs_lost = lost;
  return report;
}

}  // namespace dlaja::core
