#pragma once
// The Engine wires one simulated cluster together: simulator, network,
// broker, master, workers, a scheduler, and the metrics collector — the
// paper's 7-instance deployment (5 workers + master + messaging) in one
// deterministic object. One Engine executes exactly one run.

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/worker.hpp"
#include "core/lifecycle.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "metrics/collector.hpp"
#include "metrics/report.hpp"
#include "msg/broker.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "workflow/workflow.hpp"

namespace dlaja::core {

struct EngineConfig {
  /// Master seed; all substreams (noise, latency jitter, bid straggles,
  /// expansion randomness) derive from it.
  std::uint64_t seed = 42;

  /// Noise scheme applied to effective bandwidth / rw speed (§6.3.1). The
  /// default mimics real-world throttling: mild jitter with occasional
  /// deep throttles.
  net::NoiseConfig noise = net::NoiseConfig::throttle(0.10, 0.30);

  /// Speed knowledge used in bids: nominal (§6.3) or historic (§6.4).
  cluster::SpeedEstimator::Mode estimation = cluster::SpeedEstimator::Mode::kNominal;

  /// §6.4: probe each worker's speeds on a 100 MB repository up front.
  bool probe_speeds = false;

  /// Control-plane link of the master node.
  net::LinkConfig master_link{};

  /// Shared-bandwidth mode: bulk downloads contend max-min fairly for the
  /// per-node capacities and the origin's upload capacity (the repository
  /// host). Off by default — the paper's cost model gives each transfer
  /// the node's full bandwidth.
  bool shared_bandwidth = false;
  MbPerSec origin_capacity_mbps = 500.0;

  /// Fault-tolerance extension (paper §5 future work: "redistributing the
  /// remaining jobs if a worker becomes unavailable"). When a worker is
  /// failed via fail_worker_at(), every incomplete job last assigned to it
  /// is resubmitted to the scheduler as a fresh copy. At-least-once: a
  /// completion report already in flight when the worker dies can make a
  /// job execute twice. Off by default — the paper has no such policy.
  bool reassign_on_failure = false;

  /// Deterministic fault injection. An empty plan (the default) injects
  /// nothing and leaves the run bit-identical to a fault-free build.
  /// A non-empty plan auto-enables the job lifecycle below.
  fault::FaultPlan faults;

  /// Job lifecycle (leases, bounded retries, dead-lettering). Disabled by
  /// default; can be enabled without a fault plan (e.g. with manual
  /// fail_worker_at schedules).
  LifecycleConfig lifecycle;

  /// Same-tick delivery coalescing in the broker: consecutive deliveries to
  /// one node on the same tick share a kernel event. Off by default — it
  /// changes the run's kernel event counts (part of the CSV stats columns),
  /// so only scale runs that opt in get it.
  bool coalesce_deliveries = false;

  /// Safety horizon: the run aborts (with whatever completed) after this
  /// much simulated time. Generous default: one simulated week.
  Tick horizon = ticks_from_seconds(7.0 * 24.0 * 3600.0);

  /// In-run telemetry (gauge sampling + invariant watchdog). interval == 0
  /// (the default) disables the subsystem completely: no probes, no sampler,
  /// the historical run loop, bit-identical output. With a nonzero interval
  /// the engine samples read-only gauges at that simulated-tick cadence —
  /// still bit-identical to the same run with telemetry off, because
  /// sampling fires no events and draws no RNG.
  obs::TelemetryConfig telemetry;

  /// Sharded execution: partition the fleet across this many worker shards,
  /// each with its own event queue, flow network and metrics buffers, run on
  /// ThreadPool threads and synchronized through the broker with
  /// conservative time windows (lookahead = the minimum control-message
  /// latency). 1 = the classic single-threaded kernel, bit-identical to all
  /// prior releases. Requires a scheduler whose supports_sharding() is true
  /// and shards <= fleet size. N-shard runs are deterministic per (seed,
  /// shard count), but different shard counts draw message delays from
  /// different streams, so their jittered runs differ from 1-shard runs.
  std::size_t shards = 1;
};

class Engine {
 public:
  /// Builds the cluster. The scheduler is attached immediately; workers are
  /// registered with the network/broker in fleet order (index = WorkerIndex).
  Engine(const std::vector<cluster::WorkerConfig>& fleet,
         std::unique_ptr<sched::Scheduler> scheduler, EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Installs a workflow graph; completed jobs are expanded through their
  /// task's Expander into downstream jobs. Without a workflow, jobs are
  /// terminal. Must be called before run().
  void set_workflow(std::shared_ptr<const workflow::Workflow> wf);

  /// Pre-populates worker `w`'s cache (iteration carry-over). Before run().
  void preload_cache(cluster::WorkerIndex w, std::span<const storage::Resource> resources);

  /// Snapshots all worker caches (to carry into the next iteration).
  [[nodiscard]] std::vector<std::vector<storage::Resource>> cache_snapshots() const;

  /// Schedules worker `w` to die at simulated time `at` (fault injection).
  void fail_worker_at(cluster::WorkerIndex w, Tick at);

  /// Schedules worker `w` to come back at simulated time `at`: the node
  /// rejoins the broker, re-probes its speeds (when the run probes speeds),
  /// and the scheduler is told via on_worker_recovered().
  void recover_worker_at(cluster::WorkerIndex w, Tick at);

  /// Executes the workload to quiescence (or the horizon) and returns the
  /// run report. `jobs` arrive at their `created_at` times. Callable once.
  metrics::RunReport run(std::span<const workflow::Job> jobs);

  /// Lazy job producer for open-arrival runs: returns the next job (with
  /// `created_at` non-decreasing) or nullopt when the stream ends.
  using JobSource = std::function<std::optional<workflow::Job>()>;

  /// Streaming counterpart of run(): pulls jobs from `source` one at a
  /// time — only a single staged arrival is ever held, so a run can push
  /// millions of arrivals without materializing the trace. Records
  /// per-completion sojourn times into the "job.sojourn_s" histogram and
  /// (single-shard runs) retires completed job records as it goes, keeping
  /// memory O(live jobs). With telemetry on it adds job.sojourn_p50/p99/
  /// p999_s and master.throughput_jps gauges for steady-state analysis.
  /// Callable once; mutually exclusive with run().
  metrics::RunReport run_stream(JobSource source);

  // --- accessors (tests, benches) ---------------------------------------
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] msg::Broker& broker() noexcept { return *broker_; }
  [[nodiscard]] net::NetworkModel& network() noexcept { return *network_; }
  [[nodiscard]] metrics::MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] sched::Scheduler& scheduler() noexcept { return *scheduler_; }
  [[nodiscard]] cluster::WorkerNode& worker(cluster::WorkerIndex w);
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }
  [[nodiscard]] std::uint64_t jobs_submitted() const noexcept { return submitted_; }
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t jobs_reassigned() const noexcept { return reassigned_; }
  [[nodiscard]] std::uint64_t jobs_retried() const noexcept {
    return lifecycle_ ? lifecycle_->stats().retries : 0;
  }
  [[nodiscard]] std::uint64_t jobs_dead_lettered() const noexcept {
    return lifecycle_ ? lifecycle_->stats().dead_letters : 0;
  }
  [[nodiscard]] std::uint64_t worker_crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t worker_recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] std::uint64_t scheduler_crashes() const noexcept { return sched_crashes_; }
  /// Null when the lifecycle is disabled (fault-free runs).
  [[nodiscard]] const JobLifecycle* lifecycle() const noexcept { return lifecycle_.get(); }
  /// Number of worker shards (1 = single-threaded kernel).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.empty() ? 1 : shards_.size();
  }
  /// Conservative window lookahead in ticks (0 in single-shard runs).
  [[nodiscard]] Tick lookahead() const noexcept { return lookahead_; }

  /// Telemetry probe registry. Tests may register extra gauges/invariants
  /// between construction and run(); empty when telemetry is off.
  [[nodiscard]] obs::ProbeRegistry& probes() noexcept { return probes_; }

  /// Merged telemetry series, populated by run() when telemetry is on
  /// (nullopt otherwise, and before run()).
  [[nodiscard]] const std::optional<obs::TelemetryTable>& telemetry() const noexcept {
    return telemetry_;
  }

 private:
  /// One worker shard: its own event queue, metrics buffers, flow network
  /// and (traced runs) trace buffer. Workers w with w % N == shard index
  /// live here; the master plus broker bookkeeping stay on the engine's own
  /// simulator (the "control shard").
  struct Shard {
    sim::Simulator sim;
    metrics::MetricsCollector metrics;
    std::unique_ptr<net::FlowNetwork> flows;  ///< shared-bandwidth mode only
    std::unique_ptr<obs::Tracer> tracer;      ///< traced sharded runs only
    explicit Shard(std::size_t workers) : metrics(workers) {}
  };

  /// A fault application pinned to a tick, applied at window barriers in
  /// sharded runs (the injector's event-driven path would mutate worker
  /// state mid-window).
  struct TimedFault {
    enum class Kind : std::uint8_t { kCrash, kRecover, kDegrade, kSchedCrash, kSchedRecover };
    Tick at = 0;
    Kind kind = Kind::kCrash;
    cluster::WorkerIndex worker = 0;  ///< scheduler instance for kSched* kinds
    double factor = 1.0;  ///< degrade multiplier (1.0 restores)
  };

  [[nodiscard]] bool sharded() const noexcept { return !shards_.empty(); }

  /// The conservative-window loop: run every shard to the window end in
  /// parallel, then (at the barrier) drain cross-shard messages, flush
  /// lifecycle probes and apply due timeline faults.
  void run_windows();

  void apply_timed_fault(const TimedFault& fault);
  void master_handle_completion(const cluster::CompletionReport& report,
                                const workflow::Job& job);
  void submit_job(workflow::Job job);

  /// Takes worker `w` down now: drains it, detaches its node, voids leases
  /// (lifecycle) or reassigns its jobs (legacy reassign_on_failure).
  void apply_crash(cluster::WorkerIndex w);

  /// Brings worker `w` back now (inverse of apply_crash).
  void apply_recover(cluster::WorkerIndex w);

  /// Interns the engine's span names on first traced use.
  void ensure_trace_names();

  [[nodiscard]] bool telemetry_on() const noexcept { return config_.telemetry.interval > 0; }

  /// Registers the engine-owned gauges and invariants (called after the
  /// scheduler attached, so scheduler probes come first in no particular
  /// order — series are sorted by name at merge time anyway).
  void register_probes();

  /// Throws std::runtime_error for the first watchdog violation across the
  /// samplers, after dumping the offending sampler's series tail to stderr.
  void check_watchdog();

  /// Single-shard run loop with telemetry: slices sim_.run(horizon) at the
  /// sampling grid. Produces exactly the canonical tick set.
  void run_sampled();

  /// Shared run() / run_stream() prologue: the once-only guard, speed
  /// probing and the initial idle notifications.
  void begin_run();

  /// Shared epilogue: binds samplers, executes the run loop (single-shard
  /// or windowed), finalizes telemetry and derives the report.
  metrics::RunReport finish_run();

  /// Streaming arrivals: pulls one job from stream_source_, stages it in
  /// staged_arrival_ and schedules its submission (the event captures only
  /// {this}); each arrival event stages its successor, so exactly one
  /// future arrival is pending at any time.
  void schedule_next_arrival();

  /// Finalizes every sampler to the canonical end tick and merges them into
  /// telemetry_.
  void finish_telemetry();

  EngineConfig config_;
  SeedSequencer seeds_;
  sim::Simulator sim_;
  std::unique_ptr<net::NetworkModel> network_;
  std::unique_ptr<net::FlowNetwork> flow_network_;  ///< only in shared mode
  std::unique_ptr<msg::Broker> broker_;
  metrics::MetricsCollector metrics_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::vector<std::unique_ptr<cluster::WorkerNode>> workers_;
  std::vector<net::NodeId> worker_nodes_;
  net::NodeId master_node_ = net::kInvalidNode;
  std::shared_ptr<const workflow::Workflow> workflow_;
  /// Jobs submitted but not yet completed, recoverable by id.
  std::unordered_map<workflow::JobId, workflow::Job> live_jobs_;
  /// The input workload, staged by run() so each arrival event captures only
  /// {this, index} — inside the simulator's inline action budget — instead
  /// of a full Job copy.
  std::vector<workflow::Job> arrivals_;
  /// Open-arrival state (run_stream only). staged_arrival_ holds the one
  /// job whose arrival event is pending; sojourn_hist_ points at the
  /// registry's "job.sojourn_s" histogram for per-completion recording.
  JobSource stream_source_;
  workflow::Job staged_arrival_;
  metrics::Histogram* sojourn_hist_ = nullptr;
  bool streaming_ = false;
  RandomStream expansion_rng_;
  workflow::JobId next_job_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t reassigned_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t sched_crashes_ = 0;
  /// Both null in fault-free runs: nothing is constructed, armed or drawn.
  std::unique_ptr<JobLifecycle> lifecycle_;
  std::unique_ptr<fault::FaultInjector> injector_;
  /// Sharded execution state; all empty/zero in single-shard runs.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> worker_shard_;  ///< WorkerIndex -> shards_ index
  Tick lookahead_ = 0;
  std::vector<TimedFault> fault_timeline_;  ///< sorted by run_windows()
  /// Latest barrier-applied fault tick: counts as run progress for the
  /// telemetry end-of-series computation (single-shard runs execute faults
  /// as ordinary events, so last_fired_at() already covers them there).
  Tick last_timed_fault_ = 0;
  msg::MailboxId completions_box_ = 0;
  /// Telemetry state; all empty when config_.telemetry.interval == 0.
  /// samplers_[0] covers the control shard, samplers_[s + 1] worker shard s
  /// (single-shard runs have just samplers_[0]).
  obs::ProbeRegistry probes_;
  std::vector<obs::TelemetrySampler> samplers_;
  std::optional<obs::TelemetryTable> telemetry_;
  /// Per-worker backlog memo shared by the aggregate and per-worker backlog
  /// gauges: one FIFO-queue replay per worker per sampled tick (sampler-local
  /// state the simulation never observes; see register_probes). Sized to the
  /// fleet before any gauge captures a slot, never resized after.
  struct BacklogMemo {
    Tick at = kNeverTick;
    double value = 0.0;
  };
  std::vector<BacklogMemo> backlog_memos_;
  /// Worker indices grouped by telemetry shard tag; the fleet-aggregate
  /// gauges each walk one group (stable storage the closures point into).
  std::vector<std::vector<std::size_t>> worker_groups_;
  bool ran_ = false;
  std::uint16_t trace_job_ = 0;      ///< "job": arrival -> completion span
  std::uint16_t trace_crash_ = 0;    ///< "crash" instants (fault component)
  std::uint16_t trace_recover_ = 0;  ///< "recover" instants (fault component)
  bool trace_names_ready_ = false;
};

}  // namespace dlaja::core
