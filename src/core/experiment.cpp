#include "core/experiment.hpp"

#include <chrono>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dlaja::core {

std::string ExperimentSpec::workload_name() const {
  if (open_arrivals) return "open:" + workload::open_process_name(open_arrivals->process);
  return custom_workload ? custom_workload->name : workload::job_config_name(job_config);
}

std::string ExperimentSpec::fleet_name() const {
  return custom_fleet ? "custom" : cluster::fleet_preset_name(fleet);
}

namespace {

[[nodiscard]] std::unique_ptr<sched::Scheduler> build_scheduler(const ExperimentSpec& spec) {
  if (spec.make_scheduler) return spec.make_scheduler();
  return spec.scheduler.build(spec.seed);
}

[[nodiscard]] std::vector<cluster::WorkerConfig> build_fleet(const ExperimentSpec& spec) {
  if (spec.custom_fleet) return *spec.custom_fleet;
  return cluster::make_fleet(spec.fleet, spec.worker_count);
}

/// Distinct engine seed per iteration so noise draws differ between
/// iterations (the workload itself is generated from the base seed only).
[[nodiscard]] std::uint64_t iteration_seed(std::uint64_t base, int iteration) {
  std::uint64_t state = base ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(iteration + 1));
  return splitmix64(state);
}

}  // namespace

std::vector<metrics::RunReport> run_experiment(const ExperimentSpec& spec) {
  const workload::WorkloadSpec wspec =
      spec.custom_workload ? *spec.custom_workload : workload::make_workload_spec(spec.job_config);
  const SeedSequencer workload_seeds(spec.seed);
  // Open-arrival cells never materialize a trace; each iteration streams a
  // fresh (identical — same substreams) arrival sequence into the engine.
  workload::GeneratedWorkload workload;
  if (!spec.open_arrivals) {
    workload = workload::generate_workload(wspec, workload_seeds);
  }

  std::vector<metrics::RunReport> reports;
  reports.reserve(static_cast<std::size_t>(spec.iterations));
  std::vector<std::vector<storage::Resource>> carried;

  for (int iteration = 0; iteration < spec.iterations; ++iteration) {
    EngineConfig engine_config;
    engine_config.seed = iteration_seed(spec.seed, iteration);
    engine_config.noise = spec.noise;
    engine_config.estimation = spec.estimation;
    engine_config.probe_speeds = spec.probe_speeds;
    engine_config.faults = spec.faults;
    engine_config.lifecycle = spec.lifecycle;
    engine_config.coalesce_deliveries = spec.coalesce_deliveries;
    engine_config.shards = spec.shards;
    if (spec.telemetry_interval_s > 0.0) {
      engine_config.telemetry.interval = ticks_from_seconds(spec.telemetry_interval_s);
      engine_config.telemetry.capacity = spec.telemetry_capacity;
      engine_config.telemetry.watchdog = spec.telemetry_watchdog;
    }

    std::vector<cluster::WorkerConfig> fleet = build_fleet(spec);
    if (spec.flat_control_plane) {
      for (cluster::WorkerConfig& cfg : fleet) cfg.latency_jitter_ms = 0.0;
      engine_config.master_link.latency_jitter_ms = 0.0;
    }

    Engine engine(std::move(fleet), build_scheduler(spec), engine_config);
    if (spec.carry_cache) {
      for (std::size_t w = 0; w < carried.size() && w < engine.worker_count(); ++w) {
        engine.preload_cache(static_cast<cluster::WorkerIndex>(w), carried[w]);
      }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    metrics::RunReport report;
    if (spec.open_arrivals) {
      workload::OpenArrivalStream stream(wspec, *spec.open_arrivals, workload_seeds);
      report = engine.run_stream([&stream] { return stream.next(); });
      report.workload = stream.name();
    } else {
      report = engine.run(workload.jobs);
      report.workload = workload.name;
    }
    report.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    report.worker_config = spec.fleet_name();
    report.iteration = iteration;
    reports.push_back(std::move(report));

    if (spec.carry_cache) carried = engine.cache_snapshots();
  }
  return reports;
}

std::vector<metrics::RunReport> run_matrix(std::span<const ExperimentSpec> specs,
                                           std::size_t threads) {
  // Validate every cell up front: a matrix run is long, and a bad cell
  // should fail before any simulation time is spent.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::vector<ValidationIssue> issues = specs[i].validate();
    if (!issues.empty()) {
      std::string what = "run_matrix: invalid spec #" + std::to_string(i);
      if (!specs[i].name.empty()) what += " (" + specs[i].name + ")";
      for (const ValidationIssue& issue : issues) {
        what += "\n  " + issue.field + ": " + issue.message;
      }
      throw std::invalid_argument(what);
    }
  }
  std::vector<std::vector<metrics::RunReport>> per_cell(specs.size());
  ThreadPool pool(threads);
  // Chunk size 1: cells are whole simulations with wildly different
  // runtimes, so dynamic one-at-a-time dispatch beats any static carve-up.
  pool.parallel_for(specs.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) per_cell[i] = run_experiment(specs[i]);
  });
  std::size_t total = 0;
  for (const auto& cell : per_cell) total += cell.size();
  std::vector<metrics::RunReport> all;
  all.reserve(total);
  for (auto& cell : per_cell) {
    for (auto& report : cell) all.push_back(std::move(report));
  }
  return all;
}

}  // namespace dlaja::core
