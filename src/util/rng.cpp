#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <cstddef>

namespace dlaja {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                                            0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double RandomStream::uniform() noexcept {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double RandomStream::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t RandomStream::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(engine_());
  }
  // Lemire's multiply-shift rejection method for unbiased bounded integers.
  std::uint64_t x = engine_();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = engine_();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool RandomStream::bernoulli(double p) noexcept { return uniform() < p; }

double RandomStream::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double RandomStream::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double RandomStream::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double RandomStream::exponential(double mean) noexcept {
  // Inverse CDF; 1 - uniform() is in (0, 1] so the log argument is positive.
  return -mean * std::log(1.0 - uniform());
}

double RandomStream::bounded_pareto(double lo, double hi, double alpha) noexcept {
  assert(lo > 0.0 && hi >= lo && alpha > 0.0);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t RandomStream::weighted_index(const double* weights, std::size_t weights_size) noexcept {
  assert(weights_size > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < weights_size; ++i) total += weights[i];
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights_size; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights_size - 1;  // numerical edge: fell off the end
}

std::uint64_t SeedSequencer::seed_for(std::string_view name) const noexcept {
  std::uint64_t state = master_ ^ fnv1a(name);
  return splitmix64(state);
}

}  // namespace dlaja
