#pragma once
// Minimal JSON value, parser, and writer — just enough for declarative
// scenario files, with zero external dependencies. Objects preserve
// insertion order so a parse -> dump round trip is stable (scenario tests
// compare serialized forms). Numbers are doubles (scenario fields fit
// comfortably); integers up to 2^53 round-trip exactly.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dlaja::json {

class Value;
using Array = std::vector<Value>;

/// An insertion-ordered string -> Value map (std::map would reorder keys).
class Object {
 public:
  /// Returns the member, inserting a null on first access (like operator[]).
  Value& operator[](const std::string& key);

  /// Null when absent.
  [[nodiscard]] const Value* find(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const { return find(key) != nullptr; }

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }
  [[nodiscard]] auto begin() const { return members_.begin(); }
  [[nodiscard]] auto end() const { return members_.end(); }

 private:
  std::vector<std::pair<std::string, Value>> members_;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(double n) : kind_(Kind::kNumber), number_(n) {}  // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}  // NOLINT
  Value(std::int64_t n) : Value(static_cast<double>(n)) {}  // NOLINT
  Value(std::uint64_t n) : Value(static_cast<double>(n)) {}  // NOLINT
  Value(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(Array a);  // NOLINT(google-explicit-constructor)
  Value(Object o);  // NOLINT(google-explicit-constructor)

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::invalid_argument on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Serializes compactly (indent < 0) or pretty-printed with the given
  /// indent width.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;    // shared: keeps Value copyable + cheap
  std::shared_ptr<Object> object_;
};

/// Parses a complete JSON document (trailing junk is an error). Throws
/// std::invalid_argument with a byte offset on malformed input.
[[nodiscard]] Value parse(const std::string& text);

}  // namespace dlaja::json
