#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dlaja {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  RunningStats rs;
  for (const double x : sample) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double mean_of(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

double geometric_mean(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : sample) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace dlaja
