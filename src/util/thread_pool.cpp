#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace dlaja {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count || failed.load()) return;
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
        return;
      }
    }
  };

  const std::size_t lanes = std::min(count, size());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  // One lane runs inline so that a single-threaded pool still makes progress
  // even while its worker is busy with an unrelated task.
  for (std::size_t lane = 1; lane < lanes; ++lane) futures.push_back(submit(body));
  body();
  for (auto& future : futures) future.get();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t count, std::size_t chunk,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (chunk == 0) {
    // ~4 chunks per worker: enough slack that a straggler chunk doesn't idle
    // the rest of the pool, without hammering the dispenser.
    chunk = std::max<std::size_t>(1, count / (size() * 4));
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto body = [&] {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= count || failed.load()) return;
      try {
        fn(begin, std::min(begin + chunk, count));
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
        return;
      }
    }
  };

  const std::size_t chunks = (count + chunk - 1) / chunk;
  const std::size_t lanes = std::min(chunks, size());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 1; lane < lanes; ++lane) futures.push_back(submit(body));
  body();
  for (auto& future : futures) future.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dlaja
