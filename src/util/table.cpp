#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace dlaja {

void TextTable::print(std::ostream& out) const {
  // Compute column widths over header + rows.
  std::vector<std::size_t> widths;
  const auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (const std::size_t w : widths) total += w;

  const auto print_rule = [&] { out << std::string(total, '-') << '\n'; };
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << " | ";
      if (i == 0) {
        out << row[i] << std::string(widths[i] - row[i].size(), ' ');
      } else {
        out << std::string(widths[i] - row[i].size(), ' ') << row[i];
      }
    }
    out << '\n';
  };

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  std::size_t sep_idx = 0;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    while (sep_idx < separators_.size() && separators_[sep_idx] == r) {
      print_rule();
      ++sep_idx;
    }
    print_row(rows_[r]);
  }
  while (sep_idx < separators_.size() && separators_[sep_idx] == rows_.size()) {
    print_rule();
    ++sep_idx;
  }
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_ratio(double value, int decimals) {
  return fmt_fixed(value, decimals) + "x";
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt_fixed(fraction * 100.0, decimals) + "%";
}

std::string fmt_shortest(double value) {
  char buf[64];
  // Whole numbers print as integers: "%.*g" would otherwise pick scientific
  // notation ("3e+01") over "30" when one significant digit round-trips.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 9007199254740992.0) {  // 2^53: exact integer range
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace dlaja
