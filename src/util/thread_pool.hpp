#pragma once
// Fixed-size thread pool used by the experiment runner to fan independent
// simulation cells out across cores. Simulations themselves are
// single-threaded and deterministic; only whole cells run in parallel.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dlaja {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task; the returned future yields its result (or exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, count) across the pool and blocks until all
  /// iterations complete. Exceptions from iterations are rethrown (first one).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Chunked variant: runs `fn(begin, end)` over half-open ranges carved from
  /// [0, count) by an atomic dispenser, `chunk` indices at a time (0 picks a
  /// chunk size that gives each worker ~4 chunks, balancing skew against
  /// dispenser traffic). Use when per-index work is small enough that the
  /// one-fetch_add-per-index cost of the overload above shows up, or when the
  /// body wants to batch per-range setup. Blocks until all ranges complete;
  /// the first exception is rethrown.
  void parallel_for(std::size_t count, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace dlaja
