#pragma once
// Streaming and batch statistics used by the metrics layer and the benches.

#include <cstddef>
#include <span>
#include <vector>

namespace dlaja {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  /// Folds one observation into the accumulator.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample: mean, stddev, min/max and percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary over the sample (copies + sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Linear-interpolated percentile of a sorted sample, q in [0, 1].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q) noexcept;

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean_of(std::span<const double> sample) noexcept;

/// Geometric mean of strictly positive values; 0 for an empty sample.
[[nodiscard]] double geometric_mean(std::span<const double> sample) noexcept;

}  // namespace dlaja
