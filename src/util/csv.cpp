#include "util/csv.hpp"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace dlaja {

namespace {
[[nodiscard]] bool needs_quoting(std::string_view field) noexcept {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

[[nodiscard]] std::string quote(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string csv_encode_row(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out.push_back(',');
    if (needs_quoting(row[i])) {
      out += quote(row[i]);
    } else {
      out += row[i];
    }
  }
  return out;
}

std::vector<CsvRow> csv_parse(std::string_view text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // row has at least one (possibly empty) field

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // a comma implies a following field
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

void CsvWriter::write_row(const CsvRow& row) { out_ << csv_encode_row(row) << '\n'; }

std::string CsvWriter::to_field(double v) {
  // Shortest representation that round-trips exactly (std::to_chars).
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, end);
}

std::string CsvWriter::int_field(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string CsvWriter::uint_field(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

}  // namespace dlaja
