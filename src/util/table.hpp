#pragma once
// Fixed-width text table printer used by the benchmark harnesses to render
// paper tables/figure series on stdout.

#include <iosfwd>
#include <string>
#include <vector>

namespace dlaja {

/// Column-aligned text table with an optional title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row (printed with a separator underneath).
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends one data row. Rows may have differing lengths.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Appends a horizontal separator at the current position.
  void add_separator() { separators_.push_back(rows_.size()); }

  /// Renders the table. First column left-aligned, the rest right-aligned.
  void print(std::ostream& out) const;

  /// Renders to a string (convenience for tests).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;
};

/// Formats `value` with `decimals` fraction digits (fixed notation).
[[nodiscard]] std::string fmt_fixed(double value, int decimals = 2);

/// Formats a ratio as e.g. "3.57x".
[[nodiscard]] std::string fmt_ratio(double value, int decimals = 2);

/// Formats a fraction as a percentage, e.g. 0.245 -> "24.5%".
[[nodiscard]] std::string fmt_percent(double fraction, int decimals = 1);

/// Shortest decimal string that parses back to exactly `value` (0.1 ->
/// "0.1", not "0.10000000000000001"). Spec emitters use this so a
/// config -> spec -> config round trip is bit-exact.
[[nodiscard]] std::string fmt_shortest(double value);

}  // namespace dlaja
