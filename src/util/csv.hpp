#pragma once
// Minimal CSV reader/writer for traces and experiment reports.
//
// Supports RFC-4180 style quoting (fields containing commas, quotes or
// newlines are double-quoted; embedded quotes are doubled).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace dlaja {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Serializes one row to CSV, quoting fields as required. No trailing newline.
[[nodiscard]] std::string csv_encode_row(const CsvRow& row);

/// Parses a full CSV document into rows. Handles quoted fields spanning
/// newlines. A trailing newline does not produce an empty final row.
[[nodiscard]] std::vector<CsvRow> csv_parse(std::string_view text);

/// Streaming CSV writer over any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row followed by '\n'.
  void write_row(const CsvRow& row);

  /// Convenience: writes a row of heterogeneous printable values.
  template <typename... Ts>
  void write(const Ts&... values) {
    CsvRow row;
    row.reserve(sizeof...(values));
    (row.push_back(to_field(values)), ...);
    write_row(row);
  }

  /// Field serialization used by write(); public so callers assembling rows
  /// of dynamic width format values identically (doubles round-trip).
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(std::string_view s) { return std::string{s}; }
  static std::string to_field(const char* s) { return std::string{s}; }
  static std::string to_field(double v);
  template <typename T>
    requires(std::is_integral_v<T> && std::is_signed_v<T>)
  static std::string to_field(T v) {
    return int_field(static_cast<std::int64_t>(v));
  }
  template <typename T>
    requires(std::is_integral_v<T> && std::is_unsigned_v<T>)
  static std::string to_field(T v) {
    return uint_field(static_cast<std::uint64_t>(v));
  }

 private:
  static std::string int_field(std::int64_t v);
  static std::string uint_field(std::uint64_t v);

  std::ostream& out_;
};

}  // namespace dlaja
