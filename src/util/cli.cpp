#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dlaja {

void ArgParser::add_option(const std::string& name, std::string default_value,
                           std::string help) {
  options_[name] = Option{std::move(default_value), std::move(help), false, false};
  option_order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, std::string help) {
  options_[name] = Option{"", std::move(help), true, false};
  option_order_.push_back(name);
}

void ArgParser::add_multi_option(const std::string& name, std::string help) {
  Option option{"", std::move(help), false, false, true, {}};
  options_[name] = std::move(option);
  option_order_.push_back(name);
}

void ArgParser::add_positional(const std::string& name, std::string help, bool required) {
  positional_spec_.push_back(Positional{name, std::move(help), required});
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);  // help is a successful outcome
    }
    if (arg.rfind("--", 0) == 0) {
      const std::string name = arg.substr(2);
      const auto it = options_.find(name);
      if (it == options_.end()) {
        std::fprintf(stderr, "unknown option: %s\n%s", arg.c_str(), usage().c_str());
        return false;
      }
      it->second.seen = true;
      if (!it->second.is_flag) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "option %s needs a value\n", arg.c_str());
          return false;
        }
        it->second.value = argv[++i];
        if (it->second.is_multi) it->second.values.push_back(it->second.value);
      }
      continue;
    }
    positionals_.push_back(arg);
  }
  std::size_t required = 0;
  for (const Positional& p : positional_spec_) {
    if (p.required) ++required;
  }
  if (positionals_.size() < required) {
    std::fprintf(stderr, "missing required argument(s)\n%s", usage().c_str());
    return false;
  }
  return true;
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) throw std::out_of_range("ArgParser: undeclared option " + name);
  return it->second.value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string& text = get(name);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("option --" + name + ": not an integer: '" + text + "'");
  }
  return value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& text = get(name);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("option --" + name + ": not a number: '" + text + "'");
  }
  return value;
}

const std::vector<std::string>& ArgParser::get_all(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) throw std::out_of_range("ArgParser: undeclared option " + name);
  return it->second.values;
}

bool ArgParser::given(const std::string& name) const {
  const auto it = options_.find(name);
  return it != options_.end() && it->second.seen;
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << "usage: " << program_;
  for (const Positional& p : positional_spec_) {
    out << (p.required ? " <" + p.name + ">" : " [" + p.name + "]");
  }
  out << " [options]\n  " << summary_ << "\n\n";
  if (!positional_spec_.empty()) {
    out << "arguments:\n";
    for (const Positional& p : positional_spec_) {
      out << "  " << p.name << "  " << p.help << "\n";
    }
    out << "\n";
  }
  out << "options:\n";
  for (const std::string& name : option_order_) {
    const Option& option = options_.at(name);
    out << "  --" << name;
    if (option.is_multi) {
      out << " <value, repeatable>";
    } else if (!option.is_flag) {
      out << " <value, default: " << option.value << ">";
    }
    out << "\n      " << option.help << "\n";
  }
  return out.str();
}

}  // namespace dlaja
