#pragma once
// Units used across the dlaja simulation stack.
//
// Simulated time is held as an integral count of microseconds ("ticks") so
// that event ordering is exact and runs are bit-reproducible; data volumes
// are held in megabytes (the unit the paper reports), and rates in MB/s.

#include <cstdint>
#include <limits>

namespace dlaja {

/// Simulated time in microseconds since the start of the run.
using Tick = std::int64_t;

/// Sentinel for "never" / "unset" timestamps.
inline constexpr Tick kNeverTick = std::numeric_limits<Tick>::max();

/// Number of ticks in one simulated second.
inline constexpr Tick kTicksPerSecond = 1'000'000;

/// Number of ticks in one simulated millisecond.
inline constexpr Tick kTicksPerMillisecond = 1'000;

/// Converts seconds (possibly fractional) to ticks, truncating sub-µs.
[[nodiscard]] constexpr Tick ticks_from_seconds(double seconds) noexcept {
  return static_cast<Tick>(seconds * static_cast<double>(kTicksPerSecond));
}

/// Converts milliseconds (possibly fractional) to ticks.
[[nodiscard]] constexpr Tick ticks_from_millis(double millis) noexcept {
  return static_cast<Tick>(millis * static_cast<double>(kTicksPerMillisecond));
}

/// Converts ticks to (fractional) seconds, for reporting.
[[nodiscard]] constexpr double seconds_from_ticks(Tick t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/// Data volume in megabytes. The paper reports all volumes in MB.
using MegaBytes = double;

/// Transfer / processing rate in megabytes per second.
using MbPerSec = double;

/// Ticks needed to move `volume` MB at `rate` MB/s. Rates are clamped to a
/// tiny positive floor so that a mis-configured zero rate yields a huge (but
/// finite) duration instead of dividing by zero.
[[nodiscard]] constexpr Tick transfer_ticks(MegaBytes volume, MbPerSec rate) noexcept {
  constexpr MbPerSec kFloor = 1e-9;
  const MbPerSec r = rate > kFloor ? rate : kFloor;
  const double seconds = volume / r;
  return ticks_from_seconds(seconds >= 0.0 ? seconds : 0.0);
}

}  // namespace dlaja
