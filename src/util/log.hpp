#pragma once
// Tiny leveled logger. Global level, thread-safe sink, zero cost when a
// message is below the active level. Simulation components log with the
// simulated timestamp where relevant (see Simulator::log_prefix()).

#include <sstream>
#include <string>
#include <string_view>

namespace dlaja {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Sets the global log level (default kWarn so tests/benches stay quiet).
void set_log_level(LogLevel level) noexcept;

/// Current global log level.
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; defaults to kWarn.
[[nodiscard]] LogLevel parse_log_level(std::string_view name) noexcept;

/// Emits one line to stderr under a global mutex.
void log_emit(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style log statement builder:
///   DLAJA_LOG(kDebug, "bidding") << "contest closed for job " << id;
namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dlaja

#define DLAJA_LOG(level, component)                                  \
  if (::dlaja::LogLevel::level < ::dlaja::log_level()) { /* skip */  \
  } else                                                             \
    ::dlaja::detail::LogLine(::dlaja::LogLevel::level, (component))
