#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dlaja::json {

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Value{});
  return members_.back().second;
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value::Value(Array a) : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}
Value::Value(Object o)
    : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

namespace {
[[noreturn]] void kind_error(const char* wanted) {
  throw std::invalid_argument(std::string("json: value is not ") + wanted);
}
}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}
double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return number_;
}
const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return string_;
}
const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return *array_;
}
const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return *object_;
}

// --- writer ---------------------------------------------------------------

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double n) {
  if (n == static_cast<double>(static_cast<std::int64_t>(n)) && std::fabs(n) < 9.0e15) {
    out += std::to_string(static_cast<std::int64_t>(n));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", n);
  out += buf;
}

void write_value(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent) *
                                               (static_cast<std::size_t>(depth) + 1), ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                           ' ')
             : std::string();
  switch (v.kind()) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Kind::kNumber: write_number(out, v.as_number()); break;
    case Value::Kind::kString: write_escaped(out, v.as_string()); break;
    case Value::Kind::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& item : a) {
        if (!first) out += ',';
        first = false;
        if (pretty) {
          out += '\n';
          out += pad;
        }
        write_value(out, item, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, member] : o) {
        if (!first) out += ',';
        first = false;
        if (pretty) {
          out += '\n';
          out += pad;
        }
        write_escaped(out, key);
        out += pretty ? ": " : ":";
        write_value(out, member, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  write_value(out, *this, indent, 0);
  return out;
}

// --- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value{true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value{false};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return Value{std::move(obj)};
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return Value{std::move(arr)};
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Encode as UTF-8 (no surrogate-pair support; scenario files are
          // ASCII-plus-BMP in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != token.size()) {
      pos_ = start;
      fail("bad number '" + token + "'");
    }
    return Value{value};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace dlaja::json
