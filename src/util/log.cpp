#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dlaja {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(std::string_view name) noexcept {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

void log_emit(LogLevel level, std::string_view component, std::string_view message) {
  const std::scoped_lock lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace dlaja
