#pragma once
// Minimal command-line argument parser for the tools/ binaries.
//
// Supports --name value options with defaults, --name boolean flags, and
// positional arguments; generates a usage string from the declarations.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dlaja {

class ArgParser {
 public:
  /// `program` and `summary` head the usage text.
  ArgParser(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  /// Declares a value option `--name <value>` with a default.
  void add_option(const std::string& name, std::string default_value, std::string help);

  /// Declares a boolean flag `--name`.
  void add_flag(const std::string& name, std::string help);

  /// Declares a repeatable value option `--name <value>`; every occurrence
  /// is collected in order (read them back with get_all()).
  void add_multi_option(const std::string& name, std::string help);

  /// Declares a named positional argument (listed in usage, in order).
  /// Optional positionals must come after required ones.
  void add_positional(const std::string& name, std::string help, bool required = true);

  /// Parses argv. Returns false (after printing usage + the error to
  /// stderr) on unknown options, missing values, or missing required
  /// positionals. `--help` prints usage and exits the process with 0.
  bool parse(int argc, char** argv);

  /// Value of an option (its default if not given). Throws
  /// std::out_of_range for undeclared names.
  [[nodiscard]] const std::string& get(const std::string& name) const;

  /// Convenience typed getters (throw std::invalid_argument on bad input).
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

  /// True if the flag was given (or the option explicitly set).
  [[nodiscard]] bool given(const std::string& name) const;

  /// All values of a repeatable option, in command-line order (empty when
  /// never given). Throws std::out_of_range for undeclared names.
  [[nodiscard]] const std::vector<std::string>& get_all(const std::string& name) const;

  /// Positional values in order (missing optionals are absent).
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// The generated usage text.
  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string value;
    std::string help;
    bool is_flag = false;
    bool seen = false;
    bool is_multi = false;
    std::vector<std::string> values;
  };
  struct Positional {
    std::string name;
    std::string help;
    bool required = true;
  };

  std::string program_;
  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> option_order_;
  std::vector<Positional> positional_spec_;
  std::vector<std::string> positionals_;
};

}  // namespace dlaja
