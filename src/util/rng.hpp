#pragma once
// Deterministic random-variate library.
//
// Every stochastic element of a simulation (workload generation, noise
// schemes, latency jitter, tie-breaking) draws from a named substream of a
// single master seed, so that a run is a pure function of its seeds and
// independent components never perturb each other's sequences.

#include <cstdint>
#include <string_view>

namespace dlaja {

/// SplitMix64: used for seed scrambling / substream derivation.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// FNV-1a hash of a string, used to derive substream seeds from names.
[[nodiscard]] std::uint64_t fnv1a(std::string_view text) noexcept;

/// xoshiro256** PRNG (Blackman & Vigna). Small, fast, and statistically
/// strong; satisfies the C++ UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Advances the generator and returns 64 uniformly random bits.
  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to split non-overlapping
  /// parallel substreams.
  void long_jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// A deterministic stream of random variates with convenience distributions.
///
/// All distributions are implemented in-repo (not via <random>'s unspecified
/// algorithms) so sequences are identical across standard libraries.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean/stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(N(mu, sigma)). Used by multiplicative noise schemes.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given mean (inverse-CDF method).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Bounded Pareto on [lo, hi] with shape alpha; heavy-tailed sizes.
  [[nodiscard]] double bounded_pareto(double lo, double hi, double alpha) noexcept;

  /// Picks an index in [0, weights_size) proportionally to weights[i].
  /// Weights must be non-negative with a positive sum.
  [[nodiscard]] std::size_t weighted_index(const double* weights, std::size_t weights_size) noexcept;

  /// Access to the raw engine, e.g. for std::shuffle.
  [[nodiscard]] Xoshiro256& engine() noexcept { return engine_; }

 private:
  Xoshiro256 engine_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Derives independent named substreams from a single master seed.
///
///   SeedSequencer seeds(42);
///   RandomStream workload = seeds.stream("workload");
///   RandomStream noise    = seeds.stream("noise/worker-3");
///
/// The same (master seed, name) pair always yields the same stream.
class SeedSequencer {
 public:
  explicit SeedSequencer(std::uint64_t master_seed) noexcept : master_(master_seed) {}

  /// Returns the substream seed for `name` (stable across runs/platforms).
  [[nodiscard]] std::uint64_t seed_for(std::string_view name) const noexcept;

  /// Convenience: constructs the RandomStream for `name`.
  [[nodiscard]] RandomStream stream(std::string_view name) const noexcept {
    return RandomStream{seed_for(name)};
  }

  [[nodiscard]] std::uint64_t master_seed() const noexcept { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace dlaja
