#pragma once
// Scenario fuzzing: seeded random experiment specs, invariant checking and
// failure shrinking.
//
// Simulator studies keep finding that scheduler bugs hide in untested
// corners of the scenario space. The scenario JSON API makes that space
// enumerable, the telemetry watchdog makes runs self-checking, and this
// library closes the loop: generate a seeded random scenario (workload ×
// fault plan × fleet shape × scheduler config × shard count), run it under
// the conservation / broker-conservation / cache-capacity / bit-determinism
// invariants, and when something trips, shrink the scenario (halve jobs,
// drop fault clauses, shrink the fleet, reduce the horizon) to a minimal
// reproducing spec that one command replays.
//
// Everything is deterministic: random_spec(seed, i) is a pure function, so
// `dlaja_fuzz --seed S --count N` explores the same N scenarios on every
// machine, and a failure report names the exact index that tripped.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "core/experiment.hpp"

namespace dlaja::fuzz {

/// One invariant violation found by check_spec().
struct Violation {
  /// Which invariant tripped: "jobs.conservation", "broker.conservation",
  /// "cache.capacity", "bit-determinism", "shard-equivalence",
  /// "spec-invalid", or "runtime-error" for uncategorized throws.
  std::string invariant;
  std::string detail;
};

/// Which (expensive) cross-run invariants to check.
struct CheckOptions {
  bool determinism = true;        ///< same seed twice -> bit-identical reports
  bool shard_equivalence = true;  ///< shards=1 vs N on shard-independent cells
};

/// The i-th scenario of the seeded sweep: a pure function of (seed, index)
/// sampling the serializable spec space — scheduler config strings, fleet
/// presets, preset workloads with a job-count override, open arrivals,
/// fault-plan clause combinations, noise schemes, shard counts. The result
/// always passes ExperimentSpec::validate().
[[nodiscard]] core::ExperimentSpec random_spec(std::uint64_t seed, std::uint64_t index);

/// Runs `spec` under the invariants and returns the first violation, or
/// nullopt if the scenario is clean. Telemetry (with the watchdog) is
/// forced on — the watchdog checks jobs.conservation, cache.capacity and
/// broker.conservation at every sampled tick — and the run-end gates check
/// lost == 0 plus full completion for closed fault-free cells. With
/// options.determinism the spec runs twice and the reports' hexfloat
/// fingerprints must match; with options.shard_equivalence, eligible specs
/// (plain "bidding", flat control plane, noise none, no faults) also run
/// at a different shard count and the shard-independent report fields must
/// be exactly equal.
[[nodiscard]] std::optional<Violation> check_spec(const core::ExperimentSpec& spec,
                                                  const CheckOptions& options = {});

/// Greedy delta-debugging shrink: repeatedly applies reductions (iterations
/// to 1, halve/decrement jobs, drop fault clauses, halve/shrink the fleet,
/// collapse shards, silence noise, shorten open-arrival horizons), keeping
/// a candidate only if it still fails with the *same* invariant. Runs at
/// most `max_checks` candidate checks. Returns the smallest failing spec
/// found (at worst the input).
[[nodiscard]] core::ExperimentSpec shrink(
    const core::ExperimentSpec& spec, const Violation& violation, const CheckOptions& options,
    std::size_t max_checks = 120,
    const std::function<void(const std::string&)>& log = {});

/// One fuzzing campaign.
struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t count = 100;
  CheckOptions check;
  std::size_t max_shrink_checks = 120;
  /// Where repro_*.json lands on failure ("" disables writing).
  std::string repro_dir = "examples/scenarios";
  bool verbose = false;  ///< one line per scenario instead of a progress dot
};

struct FuzzResult {
  std::size_t checked = 0;  ///< scenarios fully checked (including the failing one)
  bool failed = false;
  std::uint64_t failing_index = 0;
  Violation violation;                ///< valid when failed
  core::ExperimentSpec minimal;       ///< shrunk failing spec (when failed)
  std::string repro_path;             ///< "" if not written
  std::string repro_command;          ///< one-liner that replays the failure
};

/// Sweeps scenarios random_spec(seed, 0..count-1) through check_spec,
/// stopping at the first violation, shrinking it and (when repro_dir is
/// set) writing the minimal scenario to repro_dir/repro_<invariant>_*.json.
/// Progress and the verdict go to `out`.
[[nodiscard]] FuzzResult run_fuzz(const FuzzConfig& config, std::ostream& out);

}  // namespace dlaja::fuzz
