#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cluster/config.hpp"
#include "fault/plan.hpp"
#include "net/noise.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace dlaja::fuzz {

namespace {

// ---------------------------------------------------------------------------
// Report fingerprinting (bit-determinism).

void fp_double(std::string& out, double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a|", value);
  out += buffer;
}

void fp_u64(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
  out += '|';
}

/// Everything in a RunReport except wall_time_s (host wall clock — the only
/// field allowed to differ between identical runs), in hexfloat so a 1-ulp
/// drift is a fingerprint mismatch.
[[nodiscard]] std::string fingerprint(const metrics::RunReport& report) {
  std::string out;
  out.reserve(512);
  out += report.scheduler + '|' + report.workload + '|' + report.worker_config + '|';
  fp_u64(out, static_cast<std::uint64_t>(report.iteration));
  fp_u64(out, report.seed);
  fp_double(out, report.exec_time_s);
  fp_u64(out, report.cache_misses);
  fp_double(out, report.data_load_mb);
  fp_u64(out, report.jobs_submitted);
  fp_u64(out, report.jobs_completed);
  fp_u64(out, report.jobs_retried);
  fp_u64(out, report.jobs_dead_lettered);
  fp_u64(out, report.jobs_lost);
  fp_double(out, report.avg_turnaround_s);
  fp_double(out, report.p50_turnaround_s);
  fp_double(out, report.p95_turnaround_s);
  fp_double(out, report.p99_turnaround_s);
  fp_double(out, report.avg_alloc_latency_s);
  fp_double(out, report.avg_queue_wait_s);
  fp_double(out, report.cache_hit_rate);
  fp_double(out, report.fairness_index);
  fp_u64(out, report.messages_delivered);
  for (const metrics::WorkerRecord& worker : report.workers) {
    out += worker.name + '|';
    fp_u64(out, worker.jobs_completed);
    fp_u64(out, worker.cache_misses);
    fp_u64(out, worker.cache_hits);
    fp_double(out, worker.downloaded_mb);
    fp_u64(out, static_cast<std::uint64_t>(worker.busy_ticks));
    fp_u64(out, static_cast<std::uint64_t>(worker.downloading_ticks));
    fp_u64(out, worker.bids_submitted);
    fp_u64(out, worker.bids_won);
    fp_u64(out, worker.offers_declined);
  }
  for (const auto& [name, value] : report.stats) {
    out += name + '=';
    fp_double(out, value);
  }
  return out;
}

[[nodiscard]] std::string fingerprint(const std::vector<metrics::RunReport>& reports) {
  std::string out;
  for (const metrics::RunReport& report : reports) {
    out += fingerprint(report);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Running a spec under the watchdog.

/// The spec as the fuzzer actually runs it: telemetry sampling on (so the
/// conservation / cache-capacity / broker-conservation watchdog invariants
/// are checked at every sampled tick) and the watchdog armed to throw.
[[nodiscard]] core::ExperimentSpec probed(const core::ExperimentSpec& spec) {
  core::ExperimentSpec copy = spec;
  if (copy.telemetry_interval_s <= 0.0) copy.telemetry_interval_s = 2.0;
  copy.telemetry_watchdog = true;
  return copy;
}

/// Extracts the invariant name from the watchdog's throw message
/// ("telemetry watchdog: invariant 'X' violated at tick ...").
[[nodiscard]] std::optional<std::string> watchdog_invariant(const std::string& what) {
  const std::string marker = "invariant '";
  const std::size_t start = what.find(marker);
  if (start == std::string::npos) return std::nullopt;
  const std::size_t name_begin = start + marker.size();
  const std::size_t name_end = what.find('\'', name_begin);
  if (name_end == std::string::npos) return std::nullopt;
  return what.substr(name_begin, name_end - name_begin);
}

/// Effective closed-batch job count of a spec.
[[nodiscard]] std::size_t closed_job_count(const core::ExperimentSpec& spec) {
  if (spec.custom_workload) return spec.custom_workload->job_count;
  return workload::make_workload_spec(spec.job_config).job_count;
}

/// Hidden test hook: with DLAJA_FUZZ_INJECT=conservation in the
/// environment, closed scenarios with >= 24 jobs on >= 2 workers report a
/// phantom lost job. Exists so tests and CI can prove the fuzzer catches a
/// conservation bug and shrinks it (to exactly 24 jobs x 2 workers x 1
/// iteration) without planting a real bug in the engine.
[[nodiscard]] bool injected_conservation_bug(const core::ExperimentSpec& spec) {
  const char* inject = std::getenv("DLAJA_FUZZ_INJECT");
  if (inject == nullptr || std::string(inject) != "conservation") return false;
  return !spec.open_arrivals && closed_job_count(spec) >= 24 && spec.worker_count >= 2;
}

/// Runs the (already probed) spec; a watchdog trip or engine throw becomes
/// a Violation, a clean run fills `reports`.
[[nodiscard]] std::optional<Violation> run_probed(const core::ExperimentSpec& spec,
                                                  std::vector<metrics::RunReport>& reports) {
  try {
    reports = core::run_experiment(spec);
  } catch (const std::exception& error) {
    const std::string what = error.what();
    if (const auto invariant = watchdog_invariant(what)) {
      return Violation{*invariant, what};
    }
    return Violation{"runtime-error", what};
  }
  return std::nullopt;
}

/// True when the ShardFlat equivalence theorem applies: the plain bidding
/// scheduler on a flat control plane with no noise and no faults produces
/// shard-count-independent reports (proven by test_shard; everything else
/// is out of contract).
[[nodiscard]] bool shard_equivalence_eligible(const core::ExperimentSpec& spec) {
  return spec.scheduler == "bidding" && spec.flat_control_plane &&
         spec.noise.kind == net::NoiseConfig::Kind::kNone && spec.faults.empty() &&
         !spec.open_arrivals && !spec.custom_fleet && spec.worker_count >= 2;
}

/// The shard-count-independent cells of a report (the exact set the CI
/// shard-smoke diff pins).
[[nodiscard]] std::string shard_cells(const metrics::RunReport& report) {
  std::string out;
  fp_double(out, report.exec_time_s);
  fp_double(out, report.avg_turnaround_s);
  fp_double(out, report.avg_alloc_latency_s);
  fp_double(out, report.data_load_mb);
  fp_u64(out, report.cache_misses);
  fp_u64(out, report.jobs_completed);
  fp_u64(out, report.messages_delivered);
  fp_double(out, report.fairness_index);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// random_spec

core::ExperimentSpec random_spec(std::uint64_t seed, std::uint64_t index) {
  RandomStream rng =
      SeedSequencer(seed).stream("fuzz/scenario/" + std::to_string(index));

  core::ExperimentSpec spec;
  spec.name = "fuzz-s" + std::to_string(seed) + "-i" + std::to_string(index);
  spec.worker_count = static_cast<std::size_t>(rng.uniform_int(2, 8));

  constexpr cluster::FleetPreset kFleets[] = {
      cluster::FleetPreset::kAllEqual, cluster::FleetPreset::kOneFast,
      cluster::FleetPreset::kOneSlow, cluster::FleetPreset::kFastSlow};
  spec.fleet = kFleets[rng.uniform_int(0, 3)];

  // Every 7th scenario is a guaranteed shard-equivalence cell (plain
  // bidding, flat control plane, no noise, no faults, shards > 1) so a
  // sweep of any reasonable size exercises the shards=1-vs-N diff instead
  // of leaving it to the ~3% chance of rolling that combination.
  const bool equivalence_cell = index % 7 == 3;

  constexpr const char* kSchedulers[] = {
      "bidding",          "bidding:fanout=probe:2", "bidding:fanout=cached:2",
      "baseline",         "baseline:declines=1",    "spark-like",
      "round-robin",      "least-queue",            "random"};
  spec.scheduler = equivalence_cell ? "bidding" : kSchedulers[rng.uniform_int(0, 8)];

  // Shards: the bidding family (without learned correction) is the only
  // sharding-capable scheduler; validate() would reject anything else.
  const bool bidding_family = spec.scheduler.type() == "bidding";
  if (equivalence_cell || (bidding_family && rng.bernoulli(0.4))) {
    const auto max_shards = static_cast<std::int64_t>(std::min<std::size_t>(4, spec.worker_count));
    spec.shards = static_cast<std::size_t>(rng.uniform_int(2, std::max<std::int64_t>(2, max_shards)));
  }

  const std::vector<workload::JobConfig> configs = workload::all_job_configs();
  spec.job_config = configs[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(configs.size()) - 1))];
  workload::WorkloadSpec body = workload::make_workload_spec(spec.job_config);
  body.job_count = static_cast<std::size_t>(rng.uniform_int(8, 48));
  spec.custom_workload = body;

  // ~1 in 5 scenarios streams an open arrival process instead of replaying
  // the closed batch (the job bodies above still shape sizes/weights).
  if (!equivalence_cell && rng.bernoulli(0.2)) {
    workload::OpenArrivalSpec arrivals;
    arrivals.process = rng.bernoulli(0.5) ? workload::OpenArrivalSpec::Process::kMmpp
                                          : workload::OpenArrivalSpec::Process::kPoisson;
    arrivals.rate_per_s = rng.uniform(2.0, 8.0);
    arrivals.duration_s = rng.uniform(15.0, 45.0);
    if (rng.bernoulli(0.5)) {
      arrivals.diurnal_amplitude = rng.uniform(0.1, 0.5);
      arrivals.diurnal_period_s = rng.uniform(20.0, 60.0);
    }
    if (arrivals.process == workload::OpenArrivalSpec::Process::kMmpp) {
      arrivals.burst_multiplier = rng.uniform(2.0, 4.0);
      arrivals.burst_dwell_s = rng.uniform(3.0, 8.0);
      arrivals.calm_dwell_s = rng.uniform(8.0, 25.0);
    }
    arrivals.repo_pool = static_cast<std::size_t>(rng.uniform_int(8, 32));
    arrivals.popularity_skew = rng.uniform(1.0, 3.0);
    spec.open_arrivals = arrivals;
  }

  spec.iterations = spec.open_arrivals ? 1 : static_cast<int>(rng.uniform_int(1, 2));
  spec.carry_cache = rng.bernoulli(0.5);
  spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000'000));

  if (equivalence_cell) {
    spec.noise = net::NoiseConfig::none();
    spec.flat_control_plane = true;
  } else {
    switch (rng.uniform_int(0, 3)) {
      case 0: spec.noise = net::NoiseConfig::none(); break;
      case 1: spec.noise = net::NoiseConfig::uniform(rng.uniform(0.7, 0.9), rng.uniform(1.1, 1.3)); break;
      case 2: spec.noise = net::NoiseConfig::lognormal(rng.uniform(0.1, 0.4)); break;
      default: spec.noise = net::NoiseConfig::throttle(rng.uniform(0.05, 0.2), rng.uniform(0.2, 0.5)); break;
    }
    spec.flat_control_plane = rng.bernoulli(0.35);

    // Fault plans only on the schedulers whose fault handling the suite
    // pins (bidding/baseline/spark-like conserve jobs under the lifecycle).
    const bool fault_capable = bidding_family || spec.scheduler.type() == "baseline" ||
                               spec.scheduler.type() == "spark-like";

    // Federated cells: wrap the drawn policy in 1-4 partitions, sometimes
    // with spill enabled, so partition routing, digests, and the
    // partitions=1 identity (checked below in check_spec) all get fuzzed.
    if (spec.worker_count >= 2 && rng.bernoulli(0.3)) {
      sched::FederationSpec fed;
      // Every partition keeps >= 2 workers so the drawn probe/cached
      // fan-outs (k <= 2) always fit the smallest partition.
      const auto max_parts = static_cast<std::int64_t>(
          std::max<std::size_t>(1, std::min<std::size_t>(4, spec.worker_count / 2)));
      fed.partitions = static_cast<std::uint32_t>(rng.uniform_int(1, max_parts));
      fed.digest_interval_s = static_cast<double>(rng.uniform_int(1, 5));
      if (fed.partitions > 1) {
        if (rng.bernoulli(0.5)) fed.spill_threshold = rng.uniform(1.0, 3.0);
        if (rng.bernoulli(0.3)) {
          fed.successor = static_cast<std::int32_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(fed.partitions) - 1));
        }
      }
      spec.scheduler.federation = fed;
      // Federation composes with shards only when every inner policy
      // shards; keep the fuzz surface orthogonal and drop shards here.
      spec.shards = 1;
    }
    const sched::FederationSpec& fed = spec.scheduler.federation;

    if (fault_capable && rng.bernoulli(0.35)) {
      std::string plan =
          "crash:w=" + std::to_string(rng.uniform_int(0, static_cast<std::int64_t>(spec.worker_count) - 1)) +
          ",at=" + std::to_string(rng.uniform_int(2, 10)) +
          ",down=" + std::to_string(rng.uniform_int(5, 20));
      if (rng.bernoulli(0.5)) {
        switch (rng.uniform_int(0, 3)) {
          case 0: plan += ";crashes:p=0.25,window=20,down=10"; break;
          case 1:
            plan += ";degrade:w=" +
                    std::to_string(rng.uniform_int(0, static_cast<std::int64_t>(spec.worker_count) - 1)) +
                    ",at=3,for=15,x=0.5";
            break;
          case 2: plan += ";drop:p=0.01"; break;
          default: plan += ";dup:p=0.01"; break;
        }
      }
      // Scheduler crashes only exist under federation; draw one against a
      // random instance so adoption + conservation get fuzzed together.
      if (fed.active() && rng.bernoulli(0.5)) {
        plan += ";sched_crash:s=" +
                std::to_string(rng.uniform_int(0, static_cast<std::int64_t>(fed.partitions) - 1)) +
                ",at=" + std::to_string(rng.uniform_int(2, 10)) +
                ",down=" + std::to_string(rng.uniform_int(10, 30));
      }
      spec.faults = fault::FaultPlan::parse(plan);
    }
  }

  spec.telemetry_interval_s = static_cast<double>(rng.uniform_int(1, 4));
  spec.telemetry_watchdog = true;

  const std::vector<core::ValidationIssue> issues = spec.validate();
  if (!issues.empty()) {
    // random_spec promises validity; a rejected sample is a fuzzer bug.
    std::string what = "random_spec produced an invalid spec (" + spec.name + ")";
    for (const core::ValidationIssue& issue : issues) what += "; " + issue.field + ": " + issue.message;
    throw std::logic_error(what);
  }
  return spec;
}

// ---------------------------------------------------------------------------
// check_spec

std::optional<Violation> check_spec(const core::ExperimentSpec& spec,
                                    const CheckOptions& options) {
  {
    const std::vector<core::ValidationIssue> issues = spec.validate();
    if (!issues.empty()) {
      std::string detail;
      for (const core::ValidationIssue& issue : issues) {
        if (!detail.empty()) detail += "; ";
        detail += issue.field + ": " + issue.message;
      }
      return Violation{"spec-invalid", detail};
    }
  }

  const core::ExperimentSpec armed = probed(spec);
  std::vector<metrics::RunReport> reports;
  if (auto violation = run_probed(armed, reports)) return violation;

  // Job conservation at run end: nothing may be in limbo once the engine
  // drains, faults or not (crashed attempts must be retried or
  // dead-lettered, never dropped).
  std::uint64_t lost = 0;
  for (const metrics::RunReport& report : reports) lost += report.jobs_lost;
  if (injected_conservation_bug(spec)) ++lost;
  if (lost > 0) {
    return Violation{"jobs.conservation",
                     "jobs_lost = " + std::to_string(lost) + " at run end (expected 0)"};
  }

  // Closed fault-free runs must complete the whole batch.
  if (!spec.open_arrivals && spec.faults.empty()) {
    const std::uint64_t expected = closed_job_count(spec);
    for (const metrics::RunReport& report : reports) {
      if (report.jobs_completed != expected) {
        return Violation{"jobs.conservation",
                         "iteration " + std::to_string(report.iteration) + " completed " +
                             std::to_string(report.jobs_completed) + "/" +
                             std::to_string(expected) + " jobs with no faults injected"};
      }
    }
  }

  // Bit-determinism: the same spec must reproduce every report field (bar
  // wall clock) exactly on a second run.
  if (options.determinism) {
    std::vector<metrics::RunReport> again;
    if (auto violation = run_probed(armed, again)) {
      violation->invariant = "bit-determinism";
      violation->detail = "second run of the same spec threw: " + violation->detail;
      return violation;
    }
    if (fingerprint(reports) != fingerprint(again)) {
      return Violation{"bit-determinism",
                       "two runs of the same spec produced different report fingerprints"};
    }
  }

  // Federation identity: partitions=1 must be bit-identical to the same
  // spec with no federation configured at all — the guarantee that keeps
  // every pre-federation golden valid (build() constructs the plain policy
  // in both cases; this pins that nothing else diverges either).
  if (spec.scheduler.federation.partitions == 1 &&
      !(spec.scheduler.federation == sched::FederationSpec{})) {
    core::ExperimentSpec alt = armed;
    alt.scheduler.federation = {};
    std::vector<metrics::RunReport> plain;
    if (auto violation = run_probed(alt, plain)) {
      violation->invariant = "federation-identity";
      violation->detail = "federation-free twin threw: " + violation->detail;
      return violation;
    }
    if (fingerprint(reports) != fingerprint(plain)) {
      return Violation{"federation-identity",
                       "partitions=1 and a federation-free spec produced different "
                       "report fingerprints"};
    }
  }

  // Shard equivalence: for in-contract specs, shard-count-independent
  // report cells must match exactly between shards=1 and shards=N.
  if (options.shard_equivalence && shard_equivalence_eligible(spec)) {
    core::ExperimentSpec alt = armed;
    alt.shards = armed.shards == 1 ? 2 : 1;
    std::vector<metrics::RunReport> sharded;
    if (auto violation = run_probed(alt, sharded)) {
      violation->invariant = "shard-equivalence";
      violation->detail = "shards=" + std::to_string(alt.shards) + " run threw: " + violation->detail;
      return violation;
    }
    if (sharded.size() != reports.size()) {
      return Violation{"shard-equivalence", "iteration counts differ across shard counts"};
    }
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (shard_cells(reports[i]) != shard_cells(sharded[i])) {
        return Violation{"shard-equivalence",
                         "iteration " + std::to_string(i) + ": shard-independent cells differ "
                         "between shards=" + std::to_string(armed.shards) +
                         " and shards=" + std::to_string(alt.shards)};
      }
    }
  }

  return std::nullopt;
}

// ---------------------------------------------------------------------------
// shrink

namespace {

using Transform = std::optional<core::ExperimentSpec> (*)(const core::ExperimentSpec&);

std::optional<core::ExperimentSpec> t_one_iteration(const core::ExperimentSpec& s) {
  if (s.iterations <= 1) return std::nullopt;
  core::ExperimentSpec c = s;
  c.iterations = 1;
  return c;
}

std::optional<core::ExperimentSpec> t_drop_explicit_crashes(const core::ExperimentSpec& s) {
  if (s.faults.crashes.empty()) return std::nullopt;
  core::ExperimentSpec c = s;
  c.faults.crashes.clear();
  return c;
}

std::optional<core::ExperimentSpec> t_drop_random_crashes(const core::ExperimentSpec& s) {
  if (s.faults.random_crashes.empty()) return std::nullopt;
  core::ExperimentSpec c = s;
  c.faults.random_crashes.clear();
  return c;
}

std::optional<core::ExperimentSpec> t_drop_sched_crashes(const core::ExperimentSpec& s) {
  if (s.faults.sched_crashes.empty()) return std::nullopt;
  core::ExperimentSpec c = s;
  c.faults.sched_crashes.clear();
  return c;
}

std::optional<core::ExperimentSpec> t_no_federation(const core::ExperimentSpec& s) {
  if (s.scheduler.federation == sched::FederationSpec{}) return std::nullopt;
  core::ExperimentSpec c = s;
  c.scheduler.federation = {};
  c.faults.sched_crashes.clear();  // sched_crash clauses need federation
  return c;
}

std::optional<core::ExperimentSpec> t_drop_degradations(const core::ExperimentSpec& s) {
  if (s.faults.degradations.empty()) return std::nullopt;
  core::ExperimentSpec c = s;
  c.faults.degradations.clear();
  return c;
}

std::optional<core::ExperimentSpec> t_drop_message_faults(const core::ExperimentSpec& s) {
  if (!s.faults.messages.any()) return std::nullopt;
  core::ExperimentSpec c = s;
  c.faults.messages = {};
  return c;
}

std::optional<core::ExperimentSpec> t_halve_jobs(const core::ExperimentSpec& s) {
  if (s.open_arrivals || !s.custom_workload || s.custom_workload->job_count <= 1) {
    return std::nullopt;
  }
  core::ExperimentSpec c = s;
  c.custom_workload->job_count = std::max<std::size_t>(1, s.custom_workload->job_count / 2);
  return c;
}

std::optional<core::ExperimentSpec> t_decrement_jobs(const core::ExperimentSpec& s) {
  if (s.open_arrivals || !s.custom_workload || s.custom_workload->job_count <= 1) {
    return std::nullopt;
  }
  core::ExperimentSpec c = s;
  c.custom_workload->job_count = s.custom_workload->job_count - 1;
  return c;
}

std::optional<core::ExperimentSpec> t_halve_workers(const core::ExperimentSpec& s) {
  if (s.worker_count <= 1) return std::nullopt;
  core::ExperimentSpec c = s;
  c.worker_count = std::max<std::size_t>(1, s.worker_count / 2);
  return c;
}

std::optional<core::ExperimentSpec> t_decrement_workers(const core::ExperimentSpec& s) {
  if (s.worker_count <= 1) return std::nullopt;
  core::ExperimentSpec c = s;
  c.worker_count = s.worker_count - 1;
  return c;
}

std::optional<core::ExperimentSpec> t_one_shard(const core::ExperimentSpec& s) {
  if (s.shards <= 1) return std::nullopt;
  core::ExperimentSpec c = s;
  c.shards = 1;
  return c;
}

std::optional<core::ExperimentSpec> t_no_noise(const core::ExperimentSpec& s) {
  if (s.noise.kind == net::NoiseConfig::Kind::kNone) return std::nullopt;
  core::ExperimentSpec c = s;
  c.noise = net::NoiseConfig::none();
  return c;
}

std::optional<core::ExperimentSpec> t_no_carry(const core::ExperimentSpec& s) {
  if (!s.carry_cache) return std::nullopt;
  core::ExperimentSpec c = s;
  c.carry_cache = false;
  return c;
}

std::optional<core::ExperimentSpec> t_halve_duration(const core::ExperimentSpec& s) {
  if (!s.open_arrivals || s.open_arrivals->duration_s <= 5.0) return std::nullopt;
  core::ExperimentSpec c = s;
  c.open_arrivals->duration_s = std::max(5.0, s.open_arrivals->duration_s / 2.0);
  return c;
}

std::optional<core::ExperimentSpec> t_halve_rate(const core::ExperimentSpec& s) {
  if (!s.open_arrivals || s.open_arrivals->rate_per_s <= 1.0) return std::nullopt;
  core::ExperimentSpec c = s;
  c.open_arrivals->rate_per_s = std::max(1.0, s.open_arrivals->rate_per_s / 2.0);
  return c;
}

std::optional<core::ExperimentSpec> t_plain_poisson(const core::ExperimentSpec& s) {
  if (!s.open_arrivals) return std::nullopt;
  const workload::OpenArrivalSpec& arrivals = *s.open_arrivals;
  if (arrivals.process == workload::OpenArrivalSpec::Process::kPoisson &&
      arrivals.diurnal_amplitude == 0.0) {
    return std::nullopt;
  }
  core::ExperimentSpec c = s;
  c.open_arrivals->process = workload::OpenArrivalSpec::Process::kPoisson;
  c.open_arrivals->diurnal_amplitude = 0.0;
  return c;
}

std::optional<core::ExperimentSpec> t_shrink_pool(const core::ExperimentSpec& s) {
  if (!s.open_arrivals || s.open_arrivals->repo_pool <= 4) return std::nullopt;
  core::ExperimentSpec c = s;
  c.open_arrivals->repo_pool = std::max<std::size_t>(4, s.open_arrivals->repo_pool / 2);
  return c;
}

constexpr Transform kTransforms[] = {
    t_one_iteration,    t_drop_random_crashes, t_drop_explicit_crashes, t_drop_degradations,
    t_drop_message_faults, t_drop_sched_crashes, t_no_federation,       t_halve_jobs,
    t_halve_workers,    t_one_shard,           t_no_noise,              t_halve_duration,
    t_halve_rate,       t_plain_poisson,       t_shrink_pool,           t_no_carry,
    t_decrement_jobs,   t_decrement_workers,
};

}  // namespace

core::ExperimentSpec shrink(const core::ExperimentSpec& spec, const Violation& violation,
                            const CheckOptions& options, std::size_t max_checks,
                            const std::function<void(const std::string&)>& log) {
  core::ExperimentSpec current = spec;
  std::size_t checks = 0;
  bool progressed = true;
  // Greedy fixpoint: retry the whole transform list after every accepted
  // reduction (an earlier transform may apply again to the smaller spec).
  while (progressed && checks < max_checks) {
    progressed = false;
    for (const Transform transform : kTransforms) {
      if (checks >= max_checks) break;
      const std::optional<core::ExperimentSpec> candidate = transform(current);
      if (!candidate.has_value()) continue;
      if (!candidate->validate().empty()) continue;  // e.g. shards > shrunk fleet
      ++checks;
      const std::optional<Violation> result = check_spec(*candidate, options);
      if (result.has_value() && result->invariant == violation.invariant) {
        current = *candidate;
        progressed = true;
        if (log) {
          log("shrink: kept reduction (check " + std::to_string(checks) + "), still fails '" +
              violation.invariant + "'");
        }
      }
    }
  }
  return current;
}

// ---------------------------------------------------------------------------
// run_fuzz

namespace {

[[nodiscard]] std::string sanitize(const std::string& text) {
  std::string out;
  for (const char ch : text) {
    out += (std::isalnum(static_cast<unsigned char>(ch)) != 0) ? ch : '_';
  }
  return out;
}

[[nodiscard]] std::string one_line_summary(const core::ExperimentSpec& spec) {
  std::ostringstream out;
  out << spec.scheduler.to_config_string() << " x " << spec.workload_name() << " x "
      << spec.fleet_name() << ":"
      << spec.worker_count;
  if (spec.shards > 1) out << " shards=" << spec.shards;
  if (!spec.faults.empty()) out << " faults[" << spec.faults.describe() << "]";
  if (spec.noise.kind != net::NoiseConfig::Kind::kNone) out << " noise=" << spec.noise.spec();
  return out.str();
}

}  // namespace

FuzzResult run_fuzz(const FuzzConfig& config, std::ostream& out) {
  FuzzResult result;
  for (std::uint64_t index = 0; index < config.count; ++index) {
    const core::ExperimentSpec spec = random_spec(config.seed, index);
    if (config.verbose) {
      out << "  [" << index << "] " << one_line_summary(spec) << "\n" << std::flush;
    } else {
      out << '.' << std::flush;
      if ((index + 1) % 50 == 0) out << ' ' << (index + 1) << '\n';
    }

    const std::optional<Violation> violation = check_spec(spec, config.check);
    ++result.checked;
    if (!violation.has_value()) continue;

    result.failed = true;
    result.failing_index = index;
    result.violation = *violation;
    if (!config.verbose) out << '\n';
    out << "FAIL: scenario " << index << " (seed " << config.seed << ") violated '"
        << violation->invariant << "'\n      " << violation->detail << "\n";
    out << "      " << one_line_summary(spec) << "\n";

    out << "shrinking (up to " << config.max_shrink_checks << " candidate checks)...\n"
        << std::flush;
    const auto log = [&](const std::string& line) {
      if (config.verbose) out << "  " << line << "\n" << std::flush;
    };
    result.minimal = shrink(spec, *violation, config.check, config.max_shrink_checks, log);
    out << "minimal: " << one_line_summary(result.minimal) << "\n";

    if (!config.repro_dir.empty()) {
      const std::string file = "repro_" + sanitize(violation->invariant) + "_s" +
                               std::to_string(config.seed) + "_i" + std::to_string(index) +
                               ".json";
      result.repro_path = config.repro_dir + "/" + file;
      core::ExperimentSpec named = result.minimal;
      named.name = file.substr(0, file.size() - 5);  // strip ".json"
      std::ofstream repro(result.repro_path);
      if (!repro) {
        out << "warning: cannot write " << result.repro_path << "\n";
        result.repro_path.clear();
      } else {
        repro << named.to_json().dump(2) << "\n";
      }
    }

    const char* inject = std::getenv("DLAJA_FUZZ_INJECT");
    std::string prefix;
    if (inject != nullptr) prefix = std::string("DLAJA_FUZZ_INJECT=") + inject + " ";
    result.repro_command =
        prefix + "dlaja_fuzz --check " +
        (result.repro_path.empty() ? std::string("<scenario.json>") : result.repro_path);
    if (!result.repro_path.empty()) {
      out << "repro written: " << result.repro_path << "\n";
    }
    out << "reproduce with: " << result.repro_command << "\n" << std::flush;
    return result;
  }
  if (!config.verbose && config.count % 50 != 0) out << '\n';
  out << "OK: " << result.checked << " scenarios, zero invariant violations\n" << std::flush;
  return result;
}

}  // namespace dlaja::fuzz
