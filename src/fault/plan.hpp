#pragma once
// Deterministic fault plans.
//
// A FaultPlan describes *what goes wrong* in a run: worker crash/recovery
// windows, per-node network-degradation windows, and broker-level message
// drop/duplication. Plans are pure data — parseable from a CLI spec,
// comparable, and reproducible: every random element (randomized crash
// schedules, per-message drop draws) is resolved from dedicated substreams
// of the engine's SeedSequencer, so the same seed and the same plan always
// produce the same faults. An empty plan injects nothing and leaves the
// simulation bit-identical to a fault-free run.
//
// Spec grammar (clauses separated by ';'):
//   crash:w=1,at=15,down=30      worker 1 dies at t=15s, recovers after 30s
//                                (omit down for a permanent crash)
//   crashes:p=0.5,window=60,down=20
//                                each worker crashes with probability p at a
//                                uniform time in [0,window]s; downtime is
//                                exponential with mean `down`s (0 = forever)
//   degrade:w=2,at=10,for=30,x=0.25
//                                worker 2's bandwidth is multiplied by 0.25
//                                during [10,40)s
//   drop:p=0.01                  each broker delivery is lost with prob. p
//   dup:p=0.005                  each broker delivery is duplicated with
//                                probability p
//   sched_crash:s=1,at=20,down=40
//                                federated scheduler instance 1 crashes at
//                                t=20s and recovers after 40s (omit down
//                                for a permanent crash). Requires a
//                                federated scheduler (fed.partitions > 1);
//                                its partition is adopted by the configured
//                                successor after the adoption grace.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace dlaja::fault {

/// One concrete crash (and optional recovery) of one worker.
struct CrashEvent {
  std::uint32_t worker = 0;
  Tick at = 0;
  Tick down_for = 0;  ///< 0 = never recovers
};

/// One crash (and optional recovery) of one federated scheduler instance.
struct SchedCrashEvent {
  std::uint32_t instance = 0;
  Tick at = 0;
  Tick down_for = 0;  ///< 0 = never recovers
};

/// One bandwidth-degradation window on one worker's node.
struct DegradeWindow {
  std::uint32_t worker = 0;
  Tick at = 0;
  Tick duration = 0;
  double factor = 1.0;  ///< multiplier layered onto the noise model
};

/// Broker-level message faults, applied per delivery.
struct MessageFaults {
  double drop_p = 0.0;
  double dup_p = 0.0;
  [[nodiscard]] bool any() const noexcept { return drop_p > 0.0 || dup_p > 0.0; }
};

/// A randomized crash schedule, resolved deterministically by materialize().
struct RandomCrashes {
  double per_worker_p = 0.0;  ///< probability that a given worker crashes
  double window_s = 0.0;      ///< crash time ~ uniform[0, window_s]
  double mean_down_s = 0.0;   ///< downtime ~ exponential(mean); 0 = forever
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<RandomCrashes> random_crashes;
  std::vector<SchedCrashEvent> sched_crashes;
  std::vector<DegradeWindow> degradations;
  MessageFaults messages;

  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && random_crashes.empty() && sched_crashes.empty() &&
           degradations.empty() && !messages.any();
  }

  /// Parses the spec grammar above. Throws std::invalid_argument on errors.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// One-line human summary ("2 crashes, drop 1%, ...") for logs/CLI.
  [[nodiscard]] std::string describe() const;

  /// Emits the plan back in the spec grammar above (times in seconds), so
  /// parse(spec()) reproduces the plan. Empty string for an empty plan.
  [[nodiscard]] std::string spec() const;

  /// Resolves the randomized crash clauses into concrete CrashEvents using
  /// the "fault/plan" substream and validates explicit worker indices.
  /// Returns explicit crashes followed by materialized random ones, sorted
  /// by (at, worker) so injection order never depends on clause order.
  [[nodiscard]] std::vector<CrashEvent> materialize_crashes(
      const SeedSequencer& seeds, std::size_t worker_count) const;
};

}  // namespace dlaja::fault
