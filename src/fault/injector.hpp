#pragma once
// Fault injector: turns a materialized FaultPlan into simulator events and
// broker/network hooks.
//
// The injector owns *when* faults happen; the engine owns *what happens
// then* (draining the worker, voiding leases, scheduling retries) and
// passes that policy in as hooks, which keeps this library free of any
// cluster/scheduler dependency. arm() is idempotent-by-construction: it is
// called exactly once, before the run starts.

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/plan.hpp"
#include "msg/broker.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace dlaja::fault {

/// Engine-provided reactions to injected worker faults.
struct InjectorHooks {
  std::function<void(std::uint32_t)> crash;    ///< worker index goes down
  std::function<void(std::uint32_t)> recover;  ///< worker index comes back
};

class FaultInjector {
 public:
  /// `worker_nodes` maps worker index -> network node (for degradation).
  /// `seeds` feeds the "fault/messages" substream for drop/dup draws.
  FaultInjector(sim::Simulator& sim, msg::Broker& broker, net::NetworkModel& network,
                std::vector<net::NodeId> worker_nodes, std::vector<CrashEvent> crashes,
                std::vector<DegradeWindow> degradations, MessageFaults messages,
                const SeedSequencer& seeds, InjectorHooks hooks);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every crash/recovery/degradation event and installs the
  /// broker's drop/duplication policy. Call once, before Simulator::run.
  void arm();

  struct Stats {
    std::uint64_t crashes_scheduled = 0;
    std::uint64_t recoveries_scheduled = 0;
    std::uint64_t degrade_windows = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  sim::Simulator& sim_;
  msg::Broker& broker_;
  net::NetworkModel& network_;
  std::vector<net::NodeId> worker_nodes_;
  std::vector<CrashEvent> crashes_;
  std::vector<DegradeWindow> degradations_;
  MessageFaults messages_;
  RandomStream msg_rng_;
  InjectorHooks hooks_;
  Stats stats_;
};

}  // namespace dlaja::fault
