#include "fault/plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/table.hpp"

namespace dlaja::fault {

namespace {

/// Splits "w=1,at=15,down=30" into {"w":"1", "at":"15", "down":"30"}.
std::unordered_map<std::string, std::string> parse_kv(const std::string& body,
                                                      const std::string& clause) {
  std::unordered_map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string pair =
        body.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("bad fault clause '" + clause + "': expected key=value");
    }
    out[pair.substr(0, eq)] = pair.substr(eq + 1);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

double need_double(const std::unordered_map<std::string, std::string>& kv,
                   const std::string& key, const std::string& clause) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    throw std::invalid_argument("bad fault clause '" + clause + "': missing '" + key + "'");
  }
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad fault clause '" + clause + "': '" + key +
                                "' is not a number");
  }
}

double opt_double(const std::unordered_map<std::string, std::string>& kv,
                  const std::string& key, double fallback, const std::string& clause) {
  return kv.count(key) > 0 ? need_double(kv, key, clause) : fallback;
}

double need_probability(const std::unordered_map<std::string, std::string>& kv,
                        const std::string& key, const std::string& clause) {
  const double p = need_double(kv, key, clause);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("bad fault clause '" + clause + "': '" + key +
                                "' must be in [0,1]");
  }
  return p;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string clause =
        spec.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    const std::string kind = clause.substr(0, colon);
    const auto kv =
        parse_kv(colon == std::string::npos ? "" : clause.substr(colon + 1), clause);

    if (kind == "crash") {
      CrashEvent crash;
      crash.worker = static_cast<std::uint32_t>(need_double(kv, "w", clause));
      crash.at = ticks_from_seconds(need_double(kv, "at", clause));
      crash.down_for = ticks_from_seconds(opt_double(kv, "down", 0.0, clause));
      plan.crashes.push_back(crash);
    } else if (kind == "crashes") {
      RandomCrashes random;
      random.per_worker_p = need_probability(kv, "p", clause);
      random.window_s = need_double(kv, "window", clause);
      random.mean_down_s = opt_double(kv, "down", 0.0, clause);
      if (random.window_s < 0.0 || random.mean_down_s < 0.0) {
        throw std::invalid_argument("bad fault clause '" + clause +
                                    "': negative window/down");
      }
      plan.random_crashes.push_back(random);
    } else if (kind == "sched_crash") {
      SchedCrashEvent crash;
      crash.instance = static_cast<std::uint32_t>(need_double(kv, "s", clause));
      crash.at = ticks_from_seconds(need_double(kv, "at", clause));
      crash.down_for = ticks_from_seconds(opt_double(kv, "down", 0.0, clause));
      plan.sched_crashes.push_back(crash);
    } else if (kind == "degrade") {
      DegradeWindow window;
      window.worker = static_cast<std::uint32_t>(need_double(kv, "w", clause));
      window.at = ticks_from_seconds(need_double(kv, "at", clause));
      window.duration = ticks_from_seconds(need_double(kv, "for", clause));
      window.factor = need_double(kv, "x", clause);
      if (window.factor <= 0.0 || window.duration <= 0) {
        throw std::invalid_argument("bad fault clause '" + clause +
                                    "': need for>0 and x>0");
      }
      plan.degradations.push_back(window);
    } else if (kind == "drop") {
      plan.messages.drop_p = need_probability(kv, "p", clause);
    } else if (kind == "dup") {
      plan.messages.dup_p = need_probability(kv, "p", clause);
    } else {
      throw std::invalid_argument(
          "bad fault clause '" + clause +
          "' (crash:|crashes:|sched_crash:|degrade:|drop:|dup: — see --faults help)");
    }
  }
  return plan;
}

std::string FaultPlan::spec() const {
  std::string out;
  const auto clause = [&out](const std::string& text) {
    if (!out.empty()) out += ';';
    out += text;
  };
  for (const CrashEvent& crash : crashes) {
    std::string c = "crash:w=" + std::to_string(crash.worker) +
                    ",at=" + fmt_shortest(seconds_from_ticks(crash.at));
    if (crash.down_for > 0) c += ",down=" + fmt_shortest(seconds_from_ticks(crash.down_for));
    clause(c);
  }
  for (const RandomCrashes& random : random_crashes) {
    std::string c = "crashes:p=" + fmt_shortest(random.per_worker_p) +
                    ",window=" + fmt_shortest(random.window_s);
    if (random.mean_down_s > 0.0) c += ",down=" + fmt_shortest(random.mean_down_s);
    clause(c);
  }
  for (const SchedCrashEvent& crash : sched_crashes) {
    std::string c = "sched_crash:s=" + std::to_string(crash.instance) +
                    ",at=" + fmt_shortest(seconds_from_ticks(crash.at));
    if (crash.down_for > 0) c += ",down=" + fmt_shortest(seconds_from_ticks(crash.down_for));
    clause(c);
  }
  for (const DegradeWindow& window : degradations) {
    clause("degrade:w=" + std::to_string(window.worker) +
           ",at=" + fmt_shortest(seconds_from_ticks(window.at)) +
           ",for=" + fmt_shortest(seconds_from_ticks(window.duration)) +
           ",x=" + fmt_shortest(window.factor));
  }
  if (messages.drop_p > 0.0) clause("drop:p=" + fmt_shortest(messages.drop_p));
  if (messages.dup_p > 0.0) clause("dup:p=" + fmt_shortest(messages.dup_p));
  return out;
}

std::string FaultPlan::describe() const {
  if (empty()) return "none";
  std::ostringstream out;
  const char* sep = "";
  if (!crashes.empty()) {
    out << crashes.size() << " scheduled crash" << (crashes.size() == 1 ? "" : "es");
    sep = ", ";
  }
  for (const RandomCrashes& random : random_crashes) {
    out << sep << "random crashes p=" << random.per_worker_p << " in " << random.window_s
        << "s";
    if (random.mean_down_s > 0.0) out << " (mean downtime " << random.mean_down_s << "s)";
    sep = ", ";
  }
  if (!sched_crashes.empty()) {
    out << sep << sched_crashes.size() << " scheduler crash"
        << (sched_crashes.size() == 1 ? "" : "es");
    sep = ", ";
  }
  if (!degradations.empty()) {
    out << sep << degradations.size() << " degrade window"
        << (degradations.size() == 1 ? "" : "s");
    sep = ", ";
  }
  if (messages.drop_p > 0.0) {
    out << sep << "drop " << messages.drop_p * 100.0 << "%";
    sep = ", ";
  }
  if (messages.dup_p > 0.0) {
    out << sep << "dup " << messages.dup_p * 100.0 << "%";
  }
  return out.str();
}

std::vector<CrashEvent> FaultPlan::materialize_crashes(const SeedSequencer& seeds,
                                                       std::size_t worker_count) const {
  std::vector<CrashEvent> out;
  for (const CrashEvent& crash : crashes) {
    if (crash.worker >= worker_count) {
      throw std::invalid_argument("fault plan: crash worker index " +
                                  std::to_string(crash.worker) + " out of range");
    }
    out.push_back(crash);
  }
  // Dedicated substream: materializing the schedule must not perturb any
  // other draw in the run, and the same seed must yield the same schedule.
  RandomStream rng = seeds.stream("fault/plan");
  for (const RandomCrashes& random : random_crashes) {
    for (std::size_t w = 0; w < worker_count; ++w) {
      // Fixed draw order per worker (crash?, when, downtime) keeps the
      // schedule stable regardless of which workers end up crashing.
      const bool crashes_here = rng.bernoulli(random.per_worker_p);
      const double at_s = rng.uniform(0.0, random.window_s);
      const double down_s =
          random.mean_down_s > 0.0 ? rng.exponential(random.mean_down_s) : 0.0;
      if (!crashes_here) continue;
      CrashEvent crash;
      crash.worker = static_cast<std::uint32_t>(w);
      crash.at = ticks_from_seconds(at_s);
      crash.down_for = ticks_from_seconds(down_s);
      out.push_back(crash);
    }
  }
  std::sort(out.begin(), out.end(), [](const CrashEvent& a, const CrashEvent& b) {
    return a.at != b.at ? a.at < b.at : a.worker < b.worker;
  });
  return out;
}

}  // namespace dlaja::fault
