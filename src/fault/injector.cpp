#include "fault/injector.hpp"

#include <stdexcept>
#include <utility>

namespace dlaja::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, msg::Broker& broker,
                             net::NetworkModel& network,
                             std::vector<net::NodeId> worker_nodes,
                             std::vector<CrashEvent> crashes,
                             std::vector<DegradeWindow> degradations,
                             MessageFaults messages, const SeedSequencer& seeds,
                             InjectorHooks hooks)
    : sim_(sim),
      broker_(broker),
      network_(network),
      worker_nodes_(std::move(worker_nodes)),
      crashes_(std::move(crashes)),
      degradations_(std::move(degradations)),
      messages_(messages),
      msg_rng_(seeds.stream("fault/messages")),
      hooks_(std::move(hooks)) {
  for (const DegradeWindow& window : degradations_) {
    if (window.worker >= worker_nodes_.size()) {
      throw std::invalid_argument("fault plan: degrade worker index " +
                                  std::to_string(window.worker) + " out of range");
    }
  }
}

void FaultInjector::arm() {
  // Wide state (the event lists) stays in this object; each scheduled
  // action captures {this, index} and fits the simulator's inline tier.
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    const CrashEvent& crash = crashes_[i];
    auto fire_crash = [this, i] { hooks_.crash(crashes_[i].worker); };
    static_assert(sim::InlineAction::fits_inline<decltype(fire_crash)>());
    sim_.schedule_at(crash.at, std::move(fire_crash));
    ++stats_.crashes_scheduled;
    if (crash.down_for > 0) {
      auto fire_recover = [this, i] { hooks_.recover(crashes_[i].worker); };
      static_assert(sim::InlineAction::fits_inline<decltype(fire_recover)>());
      sim_.schedule_at(crash.at + crash.down_for, std::move(fire_recover));
      ++stats_.recoveries_scheduled;
    }
  }

  for (std::size_t i = 0; i < degradations_.size(); ++i) {
    const DegradeWindow& window = degradations_[i];
    auto begin = [this, i] {
      network_.set_degradation(worker_nodes_[degradations_[i].worker],
                               degradations_[i].factor);
    };
    // Windows end by restoring the nominal multiplier; overlapping windows
    // on one node therefore resolve last-writer-wins.
    auto end = [this, i] {
      network_.set_degradation(worker_nodes_[degradations_[i].worker], 1.0);
    };
    static_assert(sim::InlineAction::fits_inline<decltype(begin)>());
    sim_.schedule_at(window.at, std::move(begin));
    sim_.schedule_at(window.at + window.duration, std::move(end));
    ++stats_.degrade_windows;
  }

  if (messages_.any()) {
    broker_.set_fault_policy([this](net::NodeId, net::NodeId) -> std::uint32_t {
      // Per-delivery draws in event order: deterministic for a given seed
      // and plan. A message is either dropped or duplicated, never both.
      if (messages_.drop_p > 0.0 && msg_rng_.bernoulli(messages_.drop_p)) return 0;
      if (messages_.dup_p > 0.0 && msg_rng_.bernoulli(messages_.dup_p)) return 2;
      return 1;
    });
  }
}

}  // namespace dlaja::fault
