#pragma once
// Crossflow-style workflow model: tasks connected by channels, processing
// streams of jobs.
//
// Terminology follows the paper (§2, Fig. 1): a *job* is "a piece of data
// required to process a task"; *tasks* (e.g. RepositorySearcher) consume
// jobs from input channels and emit jobs on output channels. Data-intensive
// tasks additionally require a *resource* (e.g. a cloned repository) to be
// present on the executing worker.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/cache.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dlaja::workflow {

/// Identifier of a job instance, unique within a run.
using JobId = std::uint64_t;

/// Identifier of a task (node of the workflow graph).
using TaskId = std::uint32_t;

inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

/// Sentinel for Job::excluded_worker: no exclusion.
inline constexpr std::uint32_t kNoExcludedWorker = static_cast<std::uint32_t>(-1);

/// One schedulable unit of work flowing through the pipeline.
struct Job {
  JobId id = 0;
  TaskId task = kInvalidTask;        ///< task that must process this job
  storage::ResourceId resource = 0;  ///< 0 = no data dependency
  MegaBytes resource_size_mb = 0.0;  ///< size of the resource (download cost)
  MegaBytes process_mb = 0.0;        ///< data volume to read/analyse
  Tick fixed_cost = 0;               ///< fixed latency part (e.g. an API call)
  Tick created_at = 0;               ///< arrival time at the master
  std::string key;                   ///< correlation key, e.g. "lodash@repo17"
  /// Worker index the lifecycle asks schedulers to avoid on a retry (the
  /// attempt that just failed there). A soft preference: schedulers fall
  /// back to the excluded worker when nothing else is alive.
  std::uint32_t excluded_worker = kNoExcludedWorker;

  /// True if executing this job requires the resource locally.
  [[nodiscard]] bool needs_resource() const noexcept { return resource != 0; }
};

/// Hook that expands a *completed* job into its downstream jobs (Crossflow's
/// channels). Invoked at the master when a completion report arrives. The
/// RandomStream gives deterministic app-level randomness (e.g. how many
/// matches a repository search returns).
using Expander = std::function<std::vector<Job>(const Job& completed, RandomStream& rng)>;

/// Static description of one task.
struct TaskSpec {
  std::string name;
  /// Data-intensive tasks require their resource locally (clone on miss).
  bool data_intensive = true;
  /// Optional expansion hook; empty = terminal task (results sink).
  Expander expand;
};

/// The workflow graph: tasks plus directed channels between them.
///
/// The graph is used (a) by applications to express pipelines like Fig. 1
/// and (b) by the engine to validate that expanded jobs target tasks that
/// are actually downstream of the completing task.
class Workflow {
 public:
  /// Adds a task; returns its id (dense, starting at 0).
  TaskId add_task(TaskSpec spec);

  /// Adds a channel from `from` to `to`. Throws std::out_of_range for
  /// unknown ids and std::invalid_argument for self-loops.
  void connect(TaskId from, TaskId to);

  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] const TaskSpec& task(TaskId id) const;

  /// Installs/replaces the expansion hook of an existing task (hooks often
  /// need task ids that are only known after the graph is built).
  void set_expander(TaskId id, Expander expand);
  [[nodiscard]] const std::vector<TaskId>& downstream(TaskId id) const;

  /// True if a channel `from` -> `to` exists.
  [[nodiscard]] bool connected(TaskId from, TaskId to) const;

  /// Validates that the graph is a DAG (Kahn's algorithm). Throws
  /// std::logic_error on a cycle. Returns tasks in a topological order.
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// Tasks with no incoming channel (stream entry points).
  [[nodiscard]] std::vector<TaskId> sources() const;

  /// Tasks with no outgoing channel (sinks).
  [[nodiscard]] std::vector<TaskId> sinks() const;

 private:
  std::vector<TaskSpec> tasks_;
  std::vector<std::vector<TaskId>> edges_;  // adjacency: edges_[from] = {to...}
};

}  // namespace dlaja::workflow
