#include "workflow/workflow.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dlaja::workflow {

TaskId Workflow::add_task(TaskSpec spec) {
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(spec));
  edges_.emplace_back();
  return id;
}

void Workflow::connect(TaskId from, TaskId to) {
  if (from >= tasks_.size() || to >= tasks_.size()) {
    throw std::out_of_range("Workflow::connect: unknown task id");
  }
  if (from == to) {
    throw std::invalid_argument("Workflow::connect: self-loop");
  }
  auto& outs = edges_[from];
  if (std::find(outs.begin(), outs.end(), to) == outs.end()) outs.push_back(to);
}

const TaskSpec& Workflow::task(TaskId id) const {
  if (id >= tasks_.size()) throw std::out_of_range("Workflow::task: unknown id");
  return tasks_[id];
}

void Workflow::set_expander(TaskId id, Expander expand) {
  if (id >= tasks_.size()) throw std::out_of_range("Workflow::set_expander: unknown id");
  tasks_[id].expand = std::move(expand);
}

const std::vector<TaskId>& Workflow::downstream(TaskId id) const {
  if (id >= edges_.size()) throw std::out_of_range("Workflow::downstream: unknown id");
  return edges_[id];
}

bool Workflow::connected(TaskId from, TaskId to) const {
  if (from >= edges_.size()) return false;
  const auto& outs = edges_[from];
  return std::find(outs.begin(), outs.end(), to) != outs.end();
}

std::vector<TaskId> Workflow::topological_order() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (const auto& outs : edges_) {
    for (const TaskId to : outs) ++indegree[to];
  }
  std::deque<TaskId> ready;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const TaskId to : edges_[id]) {
      if (--indegree[to] == 0) ready.push_back(to);
    }
  }
  if (order.size() != tasks_.size()) {
    throw std::logic_error("Workflow: graph contains a cycle");
  }
  return order;
}

std::vector<TaskId> Workflow::sources() const {
  std::vector<bool> has_in(tasks_.size(), false);
  for (const auto& outs : edges_) {
    for (const TaskId to : outs) has_in[to] = true;
  }
  std::vector<TaskId> result;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (!has_in[id]) result.push_back(id);
  }
  return result;
}

std::vector<TaskId> Workflow::sinks() const {
  std::vector<TaskId> result;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (edges_[id].empty()) result.push_back(id);
  }
  return result;
}

}  // namespace dlaja::workflow
