// Extension E2: locality scheduling on an HPC workload trace (SWF).
//
// The reproduction hint calls for public workload traces; SWF is the
// Parallel Workloads Archive format. This harness runs a synthetic SWF log
// (same format, deterministic) through the adapter — successive runs of
// the same application reuse its input dataset — and compares the
// scheduler zoo on arrival patterns and size distributions shaped like a
// real HPC log. Point `--swf <file>` at an actual archive log to use one.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "workload/swf.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  // Local flags on top of the common ones: --swf <path>.
  std::string swf_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--swf" && i + 1 < argc) swf_path = argv[i + 1];
  }
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  workload::SwfOptions swf_options;
  swf_options.time_scale = 0.02;  // compress the log so the cluster saturates
  swf_options.reference_rw_mbps = 2.0;
  swf_options.max_jobs = 400;

  workload::GeneratedWorkload workload = [&] {
    if (!swf_path.empty()) return workload::load_swf_file(swf_path, swf_options);
    std::stringstream log;
    workload::write_synthetic_swf(log, 400, 20, options.seed);
    return workload::convert_swf(workload::parse_swf(log), swf_options, "synthetic-swf");
  }();

  std::cout << "trace: " << workload.name << " — " << workload.jobs.size() << " jobs, "
            << workload.catalog.count() << " application datasets, "
            << fmt_fixed(workload.unique_mb() / 1024.0, 2) << " GB distinct / "
            << fmt_fixed(workload.naive_mb() / 1024.0, 2) << " GB naive\n\n";

  TextTable table("E2 — scheduler comparison on the SWF trace (3 carried iterations)");
  table.set_header({"scheduler", "exec (s)", "misses", "data (MB)", "fairness"});
  for (const std::string scheduler :
       {"bidding", "baseline", "matchmaking", "delay", "bar", "spark-like"}) {
    double exec = 0.0, misses = 0.0, data = 0.0, fairness = 0.0;
    std::vector<std::vector<storage::Resource>> carried;
    const int iterations = options.iterations;
    for (int iteration = 0; iteration < iterations; ++iteration) {
      core::EngineConfig config;
      config.seed = options.seed + 1000003ULL * static_cast<std::uint64_t>(iteration);
      core::Engine engine(cluster::make_fleet(cluster::FleetPreset::kAllEqual),
                          sched::make_scheduler(scheduler, options.seed), config);
      for (std::size_t w = 0; w < carried.size(); ++w) {
        engine.preload_cache(static_cast<cluster::WorkerIndex>(w), carried[w]);
      }
      const auto report = engine.run(workload.jobs);
      exec += report.exec_time_s / iterations;
      misses += static_cast<double>(report.cache_misses) / iterations;
      data += report.data_load_mb / iterations;
      fairness += report.fairness_index / iterations;
      carried = engine.cache_snapshots();
    }
    table.add_row({scheduler, fmt_fixed(exec, 1), fmt_fixed(misses, 1), fmt_fixed(data, 0),
                   fmt_fixed(fairness, 3)});
  }
  table.print(std::cout);
  std::cout << "\nReading: HPC logs repeat applications heavily, so the locality-aware\n"
               "schedulers avoid most dataset staging; the fairness column shows the\n"
               "§3 trade-off — locality concentrates work on dataset holders.\n";
  return 0;
}
