// Ablation A3: noise sensitivity.
//
// §6.3.1: "the speeds were subjected to a noise scheme during job execution
// to simulate realistic variations in network conditions" — bids are made
// from nominal speeds while actual transfers are noisy. This bench sweeps
// the noise level and shows how the Bidding Scheduler's advantage degrades
// as estimates diverge from reality, plus how historic-average estimation
// (§6.4) copes compared to nominal estimation.

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

namespace {

double mean_exec(const std::string& scheduler, const net::NoiseConfig& noise,
                 cluster::SpeedEstimator::Mode estimation,
                 const dlaja::bench::BenchOptions& options) {
  core::ExperimentSpec spec = dlaja::bench::make_cell(
      scheduler, workload::JobConfig::k80Large, cluster::FleetPreset::kFastSlow, options);
  spec.noise = noise;
  spec.estimation = estimation;
  spec.probe_speeds = estimation == cluster::SpeedEstimator::Mode::kHistoric;
  double total = 0.0;
  const auto reports = core::run_experiment(spec);
  for (const auto& r : reports) total += r.exec_time_s / static_cast<double>(reports.size());
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const double sigmas[] = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};

  TextTable table("Ablation A3 — noise sweep (lognormal sigma; 80%_large, fast-slow)");
  table.set_header({"sigma", "bidding (s)", "baseline (s)", "speedup",
                    "bidding+historic (s)"});
  for (const double sigma : sigmas) {
    const auto noise = net::NoiseConfig::lognormal(sigma);
    const double bid =
        mean_exec("bidding", noise, cluster::SpeedEstimator::Mode::kNominal, options);
    const double base =
        mean_exec("baseline", noise, cluster::SpeedEstimator::Mode::kNominal, options);
    const double bid_hist =
        mean_exec("bidding", noise, cluster::SpeedEstimator::Mode::kHistoric, options);
    table.add_row({fmt_fixed(sigma, 2), fmt_fixed(bid, 1), fmt_fixed(base, 1),
                   fmt_ratio(base / bid), fmt_fixed(bid_hist, 1)});
  }
  table.print(std::cout);
  std::cout << "\nReading: with exact estimates (sigma 0) bidding's placement is optimal\n"
               "for its cost model; as noise grows, estimated and actual times diverge\n"
               "and the advantage over the locality-only baseline narrows.\n";
  return 0;
}
