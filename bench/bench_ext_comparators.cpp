// Extension E1: the related-work comparison the paper defers to future work
// ("comparing the approach to other locality scheduling techniques such as
// Matchmaking", §7).
//
// Runs the §6.3 matrix with the full scheduler zoo: Bidding (and its
// learned-correction variant), the Crossflow Baseline, Matchmaking [9],
// Delay scheduling [14], the Spark-like allocator, and a random floor.

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::vector<std::string> schedulers = {"bidding", "bidding+learned", "baseline",
                                               "matchmaking", "delay", "bar",
                                               "spark-like", "random"};

  std::vector<core::ExperimentSpec> specs;
  for (const auto& scheduler : schedulers) {
    for (const auto config : workload::all_job_configs()) {
      for (const auto fleet : cluster::all_fleet_presets()) {
        specs.push_back(bench::make_cell(scheduler, config, fleet, options));
      }
    }
  }
  const auto reports = core::run_matrix(specs, options.threads);

  metrics::Aggregator per_workload, overall;
  for (const auto& r : reports) {
    per_workload.add(r.scheduler + "|" + r.workload, r);
    overall.add(r.scheduler, r);
  }

  for (const char* metric : {"exec", "misses", "data"}) {
    const std::string title =
        metric == std::string("exec")   ? "avg execution time (s)"
        : metric == std::string("misses") ? "avg cache misses"
                                          : "avg data load (MB)";
    TextTable table("E1 — " + title + " per workload per scheduler");
    std::vector<std::string> header = {"workload"};
    for (const auto& s : schedulers) header.push_back(s);
    table.set_header(header);
    for (const auto config : workload::all_job_configs()) {
      std::vector<std::string> row = {workload::job_config_name(config)};
      for (const auto& scheduler : schedulers) {
        const auto& cell =
            per_workload.cell(scheduler + "|" + workload::job_config_name(config));
        if (metric == std::string("exec")) {
          row.push_back(fmt_fixed(cell.exec_time_s.mean(), 1));
        } else if (metric == std::string("misses")) {
          row.push_back(fmt_fixed(cell.cache_misses.mean(), 1));
        } else {
          row.push_back(fmt_fixed(cell.data_load_mb.mean(), 0));
        }
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  TextTable summary("E1 — overall means across the full matrix");
  summary.set_header({"scheduler", "exec (s)", "misses", "data (MB)", "alloc lat (s)"});
  for (const auto& scheduler : schedulers) {
    const auto& cell = overall.cell(scheduler);
    summary.add_row({scheduler, fmt_fixed(cell.exec_time_s.mean(), 1),
                     fmt_fixed(cell.cache_misses.mean(), 1),
                     fmt_fixed(cell.data_load_mb.mean(), 0),
                     fmt_fixed(cell.alloc_latency_s.mean(), 3)});
  }
  summary.print(std::cout);

  bench::maybe_dump_csv(options, reports);
  return 0;
}
