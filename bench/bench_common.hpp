#pragma once
// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench prints the rows/series of one table or figure from the paper,
// side by side with the paper's reported values where applicable, and can
// dump raw per-run rows as CSV (--csv <path>).

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sched/factory.hpp"
#include "metrics/report.hpp"
#include "util/table.hpp"

namespace dlaja::bench {

/// Parsed common CLI flags.
struct BenchOptions {
  std::optional<std::string> csv_path;  ///< --csv <path>: dump raw runs
  std::uint64_t seed = 42;              ///< --seed <n>
  std::size_t jobs = 120;               ///< --jobs <n> (paper: 120)
  int iterations = 3;                   ///< --iters <n> (paper: 3)
  std::size_t threads = 0;              ///< --threads <n> (0 = all cores)
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    if (arg == "--csv") {
      options.csv_path = next();
    } else if (arg == "--seed") {
      options.seed = std::stoull(next());
    } else if (arg == "--jobs") {
      options.jobs = std::stoul(next());
    } else if (arg == "--iters") {
      options.iterations = std::stoi(next());
    } else if (arg == "--threads") {
      options.threads = std::stoul(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: [--csv path] [--seed n] [--jobs n] [--iters n] [--threads n]\n";
      std::exit(0);
    }
  }
  return options;
}

/// Builds the standard §6.3 cell: one scheduler, one job config, one fleet.
inline core::ExperimentSpec make_cell(const std::string& scheduler,
                                      workload::JobConfig config,
                                      cluster::FleetPreset fleet,
                                      const BenchOptions& options) {
  core::ExperimentSpec spec;
  spec.scheduler = scheduler;
  workload::WorkloadSpec wspec = workload::make_workload_spec(config);
  wspec.job_count = options.jobs;
  spec.custom_workload = wspec;
  spec.fleet = fleet;
  spec.iterations = options.iterations;
  spec.seed = options.seed;
  return spec;
}

/// Dumps raw run reports if --csv was given.
inline void maybe_dump_csv(const BenchOptions& options,
                           const std::vector<metrics::RunReport>& reports) {
  if (!options.csv_path) return;
  std::ofstream out(*options.csv_path);
  if (!out) {
    std::cerr << "cannot open " << *options.csv_path << " for writing\n";
    return;
  }
  metrics::write_reports_csv(out, reports);
  std::cout << "\nraw runs written to " << *options.csv_path << "\n";
}

/// Convenience: aggregate key "scheduler|workload|fleet".
inline std::string cell_key(const metrics::RunReport& r) {
  return r.scheduler + "|" + r.workload + "|" + r.worker_config;
}

}  // namespace dlaja::bench
