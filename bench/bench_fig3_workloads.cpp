// Figure 3 reproduction: accumulated results per workload per algorithm.
//
// The paper's Fig. 3 shows, for the five §6.3.1 job configurations, the
// average (a) end-to-end execution time, (b) cache-miss count and (c) data
// load per workflow run, for the Bidding Scheduler vs the Baseline —
// averaged over the four worker configurations and three iterations each.
//
// Paper anchors:
//   * overall: Bidding ~24.5% faster, ~49% fewer misses, ~45.3% less data;
//   * 80%_large: 22.65 vs 45.5 misses; 5270.87 vs 10786.88 MB; 41% faster;
//   * all_diff_equal: 9591.45 vs 17908.08 MB (26.83 fewer misses, ~57%).

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::vector<std::string> schedulers = {"bidding", "baseline"};

  std::vector<core::ExperimentSpec> specs;
  for (const auto& scheduler : schedulers) {
    for (const auto config : workload::all_job_configs()) {
      for (const auto fleet : cluster::all_fleet_presets()) {
        specs.push_back(bench::make_cell(scheduler, config, fleet, options));
      }
    }
  }
  const auto reports = core::run_matrix(specs, options.threads);

  // Aggregate per (scheduler, workload) over fleets and iterations.
  metrics::Aggregator agg;
  for (const auto& r : reports) agg.add(r.scheduler + "|" + r.workload, r);

  const auto cell = [&](const std::string& scheduler, workload::JobConfig config)
      -> const metrics::AggregateCell& {
    return agg.cell(scheduler + "|" + workload::job_config_name(config));
  };

  // --- Fig. 3a: average total execution time per workload ----------------
  {
    TextTable table("Figure 3a — average total execution time per workload (s)");
    table.set_header({"workload", "bidding", "baseline", "speedup"});
    for (const auto config : workload::all_job_configs()) {
      const double b = cell("bidding", config).exec_time_s.mean();
      const double base = cell("baseline", config).exec_time_s.mean();
      table.add_row({workload::job_config_name(config), fmt_fixed(b, 1), fmt_fixed(base, 1),
                     fmt_ratio(base / b)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- Fig. 3b: average cache-miss count per workload --------------------
  {
    TextTable table("Figure 3b — average cache misses per workload");
    table.set_header({"workload", "bidding", "baseline", "reduction", "paper"});
    for (const auto config : workload::all_job_configs()) {
      const double b = cell("bidding", config).cache_misses.mean();
      const double base = cell("baseline", config).cache_misses.mean();
      std::string paper = "-";
      if (config == workload::JobConfig::k80Large) paper = "22.65 vs 45.5";
      table.add_row({workload::job_config_name(config), fmt_fixed(b, 2), fmt_fixed(base, 2),
                     fmt_percent(1.0 - b / base), paper});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- Fig. 3c: average data load per workload ----------------------------
  {
    TextTable table("Figure 3c — average data load per workload (MB)");
    table.set_header({"workload", "bidding", "baseline", "reduction", "paper"});
    for (const auto config : workload::all_job_configs()) {
      const double b = cell("bidding", config).data_load_mb.mean();
      const double base = cell("baseline", config).data_load_mb.mean();
      std::string paper = "-";
      if (config == workload::JobConfig::k80Large) paper = "5270.87 vs 10786.88";
      if (config == workload::JobConfig::kAllDiffEqual) paper = "9591.45 vs 17908.08";
      table.add_row({workload::job_config_name(config), fmt_fixed(b, 2), fmt_fixed(base, 2),
                     fmt_percent(1.0 - b / base), paper});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- headline aggregates (paper §6.3.2 conclusions 1-2) -----------------
  {
    metrics::Aggregator overall;
    for (const auto& r : reports) overall.add(r.scheduler, r);
    const auto& bid = overall.cell("bidding");
    const auto& base = overall.cell("baseline");
    TextTable table("Overall (paper: ~24.5% faster, ~49% fewer misses, ~45.3% less data)");
    table.set_header({"metric", "bidding", "baseline", "delta", "paper"});
    table.add_row({"exec time (s)", fmt_fixed(bid.exec_time_s.mean(), 1),
                   fmt_fixed(base.exec_time_s.mean(), 1),
                   fmt_percent(1.0 - bid.exec_time_s.mean() / base.exec_time_s.mean()),
                   "24.5%"});
    table.add_row({"cache misses", fmt_fixed(bid.cache_misses.mean(), 2),
                   fmt_fixed(base.cache_misses.mean(), 2),
                   fmt_percent(1.0 - bid.cache_misses.mean() / base.cache_misses.mean()),
                   "49%"});
    table.add_row({"data load (MB)", fmt_fixed(bid.data_load_mb.mean(), 1),
                   fmt_fixed(base.data_load_mb.mean(), 1),
                   fmt_percent(1.0 - bid.data_load_mb.mean() / base.data_load_mb.mean()),
                   "45.3%"});
    table.print(std::cout);
  }

  bench::maybe_dump_csv(options, reports);
  return 0;
}
