// Ablation A2: the bidding-overhead crossover (paper conclusion #3).
//
// "The Bidding Scheduler exhibits an overhead that makes it more effective
// for large resources and long-running workflows. However, for small
// resources or short workflows, competing for jobs unnecessarily prolongs
// the execution." This bench sweeps the (uniform) resource size and reports
// the bidding/baseline execution-time ratio, exposing where the crossover
// falls.

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const double sizes_mb[] = {2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0};

  TextTable table("Ablation A2 — resource-size sweep (one-fast fleet, all-distinct jobs)");
  table.set_header({"size (MB)", "bidding (s)", "baseline (s)", "bidding/baseline"});

  std::vector<metrics::RunReport> all;
  for (const double size : sizes_mb) {
    double exec[2] = {0.0, 0.0};
    int idx = 0;
    for (const std::string scheduler : {"bidding", "baseline"}) {
      core::ExperimentSpec spec;
      spec.scheduler = scheduler;
      workload::WorkloadSpec wspec;
      wspec.name = "uniform_" + std::to_string(static_cast<int>(size)) + "mb";
      wspec.job_count = options.jobs;
      // Pin every resource to exactly `size` MB, all distinct; dense
      // arrivals keep allocation overhead on the critical path.
      wspec.weight_small = 1.0;
      wspec.weight_medium = 0.0;
      wspec.weight_large = 0.0;
      wspec.ranges.small_lo = size;
      wspec.ranges.small_hi = size;
      wspec.arrival_mean_s = 0.5;
      spec.custom_workload = wspec;
      spec.fleet = cluster::FleetPreset::kOneFast;
      spec.iterations = options.iterations;
      spec.seed = options.seed;
      const auto reports = core::run_experiment(spec);
      for (const auto& r : reports) {
        exec[idx] += r.exec_time_s / static_cast<double>(reports.size());
        all.push_back(r);
      }
      ++idx;
    }
    table.add_row({fmt_fixed(size, 0), fmt_fixed(exec[0], 1), fmt_fixed(exec[1], 1),
                   fmt_ratio(exec[0] / exec[1])});
  }
  table.print(std::cout);
  std::cout << "\nReading: ratios above 1.0 mean the contest overhead costs more than the\n"
               "placement improves (small resources); below 1.0 bidding wins (large\n"
               "resources) — the paper's conclusion #3 crossover.\n";
  bench::maybe_dump_csv(options, all);
  return 0;
}
