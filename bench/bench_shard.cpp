// Shard bench: parallel-kernel scaling curve, shards x fleet size.
//
// Sweeps the sharded engine over {1, 2, 4, 8} shards at 10k and 100k
// workers (probe fan-out + delivery coalescing — the scale configuration)
// and reports per-cell wall time plus the speedup of each shard count over
// the 1-shard run of the same fleet. The paper's own 5-worker cell runs
// once at 1 shard as the no-regression reference.
//
// The acceptance bar — >= 3x at 4 shards on the 10k-worker cell — assumes
// >= 4 physical cores; the emitted JSON records hardware_concurrency so a
// single-core CI box's numbers are not mistaken for the real curve.
//
//   bench_shard [--out BENCH_shard.json] [--jobs n] [--seed 42] [--full]
//
// --jobs 0 (the default) sizes each cell's workload at 4x its fleet so
// every worker stays busy — per-window parallel work must dominate barrier
// cost for the shard threads to pay off.

#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "util/json.hpp"

using namespace dlaja;

namespace {

double run_cell(std::size_t workers, std::size_t shards, std::size_t jobs,
                std::uint64_t seed, metrics::RunReport* out) {
  core::ExperimentSpec spec;
  spec.scheduler = "bidding:fanout=probe:4";
  workload::WorkloadSpec wspec =
      workload::make_workload_spec(workload::JobConfig::kAllDiffEqual);
  wspec.job_count = jobs;
  spec.custom_workload = wspec;
  spec.fleet = cluster::FleetPreset::kAllEqual;
  spec.worker_count = workers;
  spec.iterations = 1;
  spec.seed = seed;
  spec.coalesce_deliveries = true;
  spec.shards = shards;
  auto reports = core::run_experiment(spec);
  if (out != nullptr) *out = reports.front();
  return reports.front().wall_time_s > 0.0 ? reports.front().wall_time_s : 1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_shard.json";
  std::size_t jobs = 0;  // 0 = 4x the fleet size, per cell
  std::uint64_t seed = 42;
  bool full = false;  // include the 100k-worker fleet (slow on small boxes)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : std::string{}; };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--jobs") {
      jobs = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--full") {
      full = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: [--out path.json] [--jobs n] [--seed n] [--full]\n";
      return 0;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::vector<std::size_t> fleets = {10000};
  if (full) fleets.push_back(100000);
  const std::size_t shard_counts[] = {1, 2, 4, 8};

  TextTable table("Shard — parallel kernel scaling (all_diff_equal, " +
                  (jobs != 0 ? std::to_string(jobs) + " jobs" : std::string("jobs = 4x fleet")) +
                  ", " + std::to_string(cores) + " cores)");
  table.set_header({"workers", "shards", "jobs", "wall (s)", "speedup vs 1", "exec (s)"});

  json::Array cells;
  json::Array speedups;
  for (const std::size_t workers : fleets) {
    const std::size_t cell_jobs = jobs != 0 ? jobs : 4 * workers;
    double base_wall = 0.0;
    for (const std::size_t shards : shard_counts) {
      metrics::RunReport report;
      const double wall = run_cell(workers, shards, cell_jobs, seed, &report);
      if (shards == 1) base_wall = wall;
      const double speedup = wall > 0.0 ? base_wall / wall : 0.0;

      table.add_row({std::to_string(workers), std::to_string(shards),
                     std::to_string(cell_jobs), fmt_fixed(wall, 3), fmt_ratio(speedup),
                     fmt_fixed(report.exec_time_s, 1)});

      json::Object cell;
      cell["workers"] = workers;
      cell["shards"] = shards;
      cell["jobs"] = cell_jobs;
      cell["wall_time_s"] = wall;
      cell["speedup_vs_1shard"] = speedup;
      cell["messages_delivered"] = report.messages_delivered;
      cell["exec_time_s"] = report.exec_time_s;
      cells.push_back(json::Value{std::move(cell)});

      if (shards == 4) {
        json::Object row;
        row["workers"] = workers;
        row["speedup_4shard_vs_1shard"] = speedup;
        speedups.push_back(json::Value{std::move(row)});
      }
    }
  }
  table.print(std::cout);

  // No-regression reference: the paper's 5-worker cell on the classic
  // 1-shard kernel (full fan-out, the paper's protocol).
  core::ExperimentSpec paper;
  paper.scheduler = "bidding";
  paper.worker_count = 5;
  paper.iterations = 1;
  paper.seed = seed;
  const auto paper_reports = core::run_experiment(paper);
  const double paper_wall =
      paper_reports.front().wall_time_s > 0.0 ? paper_reports.front().wall_time_s : 1e-9;
  std::cout << "paper 5-worker cell (1 shard): " << fmt_fixed(paper_wall, 4) << " s wall\n";

  json::Object doc;
  doc["bench"] = "shard";
  doc["seed"] = seed;
  doc["hardware_concurrency"] = static_cast<std::uint64_t>(cores);
  doc["target_speedup_4shard_10k"] = 3.0;
  doc["note"] =
      "speedups are meaningful only when hardware_concurrency >= shards; a "
      "single-core host serializes the shard threads";
  doc["cells"] = json::Value{std::move(cells)};
  doc["speedup_4shard_vs_1shard"] = json::Value{std::move(speedups)};
  doc["paper_cell_5_workers_wall_s"] = paper_wall;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << json::Value{std::move(doc)}.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
