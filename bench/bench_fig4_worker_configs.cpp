// Figure 4 reproduction: average execution times per workload per algorithm,
// broken down by worker configuration.
//
// The paper's Fig. 4 is the full (worker config × job config × algorithm)
// execution-time breakdown. Its headline reading: the Bidding Scheduler is
// comparable to or somewhat slower than the Baseline when one worker is
// significantly faster and the data is small (contest overhead dominates),
// and clearly faster when workers are slow / restricted or resources are
// large (worker-aware estimates dominate).

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  std::vector<core::ExperimentSpec> specs;
  for (const std::string scheduler : {"bidding", "baseline"}) {
    for (const auto config : workload::all_job_configs()) {
      for (const auto fleet : cluster::all_fleet_presets()) {
        specs.push_back(bench::make_cell(scheduler, config, fleet, options));
      }
    }
  }
  const auto reports = core::run_matrix(specs, options.threads);

  metrics::Aggregator agg;
  for (const auto& r : reports) {
    agg.add(r.scheduler + "|" + r.workload + "|" + r.worker_config, r);
  }
  const auto exec = [&](const std::string& scheduler, workload::JobConfig config,
                        cluster::FleetPreset fleet) {
    return agg
        .cell(scheduler + "|" + workload::job_config_name(config) + "|" +
              cluster::fleet_preset_name(fleet))
        .exec_time_s.mean();
  };

  for (const auto fleet : cluster::all_fleet_presets()) {
    TextTable table("Figure 4 — avg execution time (s), worker config: " +
                    cluster::fleet_preset_name(fleet));
    table.set_header({"workload", "bidding", "baseline", "bidding vs baseline"});
    for (const auto config : workload::all_job_configs()) {
      const double b = exec("bidding", config, fleet);
      const double base = exec("baseline", config, fleet);
      table.add_row({workload::job_config_name(config), fmt_fixed(b, 1), fmt_fixed(base, 1),
                     fmt_percent(1.0 - b / base) + " faster"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // The paper's qualitative claim, checked explicitly: small resources on a
  // one-fast fleet vs large resources on a one-slow fleet.
  const double small_fast_gain =
      1.0 - exec("bidding", workload::JobConfig::kAllDiffSmall, cluster::FleetPreset::kOneFast) /
                exec("baseline", workload::JobConfig::kAllDiffSmall,
                     cluster::FleetPreset::kOneFast);
  const double large_slow_gain =
      1.0 - exec("bidding", workload::JobConfig::kAllDiffLarge, cluster::FleetPreset::kOneSlow) /
                exec("baseline", workload::JobConfig::kAllDiffLarge,
                     cluster::FleetPreset::kOneSlow);
  std::cout << "Crossover check (paper conclusion #3):\n"
            << "  bidding gain, small resources + one-fast fleet: "
            << fmt_percent(small_fast_gain) << "\n"
            << "  bidding gain, large resources + one-slow fleet: "
            << fmt_percent(large_slow_gain) << "\n"
            << "  expected: the small/fast gain is lower (possibly negative) — "
            << (small_fast_gain < large_slow_gain ? "HOLDS" : "DOES NOT HOLD") << "\n";

  bench::maybe_dump_csv(options, reports);
  return 0;
}
