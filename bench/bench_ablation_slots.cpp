// Ablation A8: parallel execution slots per worker.
//
// The paper's workers drain their FIFO queue serially; Crossflow's
// acceptance criteria nonetheless mention CPU capacity as a worker
// attribute. This ablation gives every worker S parallel slots (bids
// estimate completion as backlog / S) and shows how intra-worker
// parallelism interacts with locality scheduling: more slots shorten
// queues, which weakens the backlog signal that separates bids.

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::uint32_t slot_counts[] = {1, 2, 4, 8};

  TextTable table("Ablation A8 — slots per worker (80%_large, fast-slow fleet)");
  table.set_header({"slots", "bidding (s)", "baseline (s)", "speedup", "bid misses",
                    "base misses"});
  for (const std::uint32_t slots : slot_counts) {
    double exec[2] = {0.0, 0.0};
    double misses[2] = {0.0, 0.0};
    int idx = 0;
    for (const std::string scheduler : {"bidding", "baseline"}) {
      core::ExperimentSpec spec = bench::make_cell(
          scheduler, workload::JobConfig::k80Large, cluster::FleetPreset::kFastSlow, options);
      auto fleet = cluster::make_fleet(spec.fleet, spec.worker_count);
      for (auto& worker : fleet) worker.slots = slots;
      spec.custom_fleet = fleet;
      const auto reports = core::run_experiment(spec);
      for (const auto& r : reports) {
        const auto n = static_cast<double>(reports.size());
        exec[idx] += r.exec_time_s / n;
        misses[idx] += static_cast<double>(r.cache_misses) / n;
      }
      ++idx;
    }
    table.add_row({std::to_string(slots), fmt_fixed(exec[0], 1), fmt_fixed(exec[1], 1),
                   fmt_ratio(exec[1] / exec[0]), fmt_fixed(misses[0], 1),
                   fmt_fixed(misses[1], 1)});
  }
  table.print(std::cout);
  std::cout << "\nReading: parallel slots cut both schedulers' makespans (downloads and\n"
               "processing overlap), while bidding's relative advantage persists as long\n"
               "as transfers, not queue depth, dominate the completion estimates.\n";
  return 0;
}
