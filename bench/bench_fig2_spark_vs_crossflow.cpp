// Figure 2 reproduction: MSR execution times, Apache Spark vs the Crossflow
// Baseline (paper §4).
//
// The paper's four column groups:
//   1. one fast + one slow worker, large repositories  -> Spark 7.94x slower
//   2. all-equal workers, small repositories           -> Crossflow 2.3x faster
//   3. all-equal workers, non-repetitive dataset
//   4. varying speeds, repetitive dataset (80% of jobs need the same repo)
//
// The Spark comparator is `spark-like`: centralized, up-front, equal-worker
// allocation that ignores resources becoming local during execution (§4
// attributes the gap to exactly these properties). `spark-like+hash` is also
// shown as the stronger consistent-placement variant.

#include <iostream>

#include "bench_common.hpp"
#include "sched/baseline.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  struct Group {
    const char* label;
    cluster::FleetPreset fleet;
    workload::JobConfig config;
    const char* paper;
  };
  const Group groups[] = {
      {"fast+slow workers, large repos", cluster::FleetPreset::kFastSlow,
       workload::JobConfig::kAllDiffLarge, "7.94x"},
      {"all-equal workers, small repos", cluster::FleetPreset::kAllEqual,
       workload::JobConfig::kAllDiffSmall, "2.3x"},
      {"all-equal workers, non-repetitive", cluster::FleetPreset::kAllEqual,
       workload::JobConfig::kAllDiffEqual, "-"},
      {"varying speeds, 80% repetitive", cluster::FleetPreset::kFastSlow,
       workload::JobConfig::k80Large, "-"},
  };

  // "spark-like+wave" is the primary Spark model (stage barriers + static
  // equal placement); the streaming variant is shown for reference. Dense
  // arrivals keep the scheduler, not the input stream, on the critical path.
  const std::vector<std::string> schedulers = {"baseline", "spark-like+wave", "spark-like"};
  std::vector<core::ExperimentSpec> specs;
  for (const auto& group : groups) {
    for (const auto& scheduler : schedulers) {
      auto spec = bench::make_cell(scheduler, group.config, group.fleet, options);
      spec.custom_workload->arrival_mean_s = 0.5;
      // Fig. 2 compares frameworks on fresh clusters (each measured run
      // starts without local clones), so iterations act as replications.
      spec.carry_cache = false;
      if (scheduler == "baseline") {
        // The Fig. 2 numbers come from Crossflow's own evaluation, where
        // declined jobs re-enter behind the broker backlog (ActiveMQ
        // redelivery-at-tail) — Crossflow's best configuration.
        spec.scheduler = "baseline:requeue_back=true";
      }
      specs.push_back(std::move(spec));
    }
  }
  const auto reports = core::run_matrix(specs, options.threads);

  metrics::Aggregator agg;
  for (const auto& r : reports) agg.add(bench::cell_key(r), r);

  TextTable table("Figure 2 — MSR execution times: Spark-like vs Crossflow Baseline (s)");
  table.set_header({"column group", "crossflow", "spark (wave)", "spark/crossflow",
                    "paper", "spark (stream)"});
  for (const auto& group : groups) {
    const std::string suffix =
        "|" + workload::job_config_name(group.config) + "|" +
        cluster::fleet_preset_name(group.fleet);
    const double crossflow = agg.cell("baseline" + suffix).exec_time_s.mean();
    const double spark = agg.cell("spark-like+wave" + suffix).exec_time_s.mean();
    const double spark_stream = agg.cell("spark-like" + suffix).exec_time_s.mean();
    table.add_row({group.label, fmt_fixed(crossflow, 1), fmt_fixed(spark, 1),
                   fmt_ratio(spark / crossflow), group.paper, fmt_fixed(spark_stream, 1)});
  }
  table.print(std::cout);

  std::cout << "\nReading: the Spark-like allocator treats unequal workers as equal and\n"
               "ignores clones created during execution, so it loses hardest on the\n"
               "heterogeneous/large group and least on small uniform work — the same\n"
               "ordering as the paper's Figure 2.\n";

  bench::maybe_dump_csv(options, reports);
  return 0;
}
