// Scale bench: contest fan-out policy × fleet size.
//
// Sweeps the bidding scheduler over large fleets with both fan-out
// policies. `full` is the paper's protocol — every contest broadcasts to
// every worker and waits for every bid, so contest cost grows linearly
// with the fleet and the master's wall-clock throughput collapses at
// thousands of workers. `probe:4` solicits a seeded 4-subset per contest
// (Dodoor-style), making contest cost independent of fleet size. Both arms
// run with delivery coalescing on (the scale configuration).
//
// Emits BENCH_scale.json with per-cell wall time and contest throughput
// plus the probe-vs-full speedup per fleet size. The acceptance bar for
// the scale path: >= 5x contest throughput at 2000 workers, no regression
// at the paper's 5.
//
//   bench_scale [--out BENCH_scale.json] [--jobs 200] [--seed 42]

#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "util/json.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  std::size_t jobs = 200;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : std::string{}; };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--jobs") {
      jobs = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: [--out path.json] [--jobs n] [--seed n]\n";
      return 0;
    }
  }

  const std::size_t fleets[] = {5, 50, 500, 2000};
  const char* fanouts[] = {"full", "probe:4"};

  TextTable table("Scale — contest fan-out policy x fleet size (all_diff_equal, " +
                  std::to_string(jobs) + " jobs)");
  table.set_header(
      {"workers", "fanout", "wall (s)", "contests", "contests/s", "msgs", "exec (s)"});

  json::Array cells;
  double throughput[4][2] = {};
  for (std::size_t fi = 0; fi < 4; ++fi) {
    for (std::size_t pi = 0; pi < 2; ++pi) {
      core::ExperimentSpec spec;
      spec.scheduler = std::string("bidding:fanout=") + fanouts[pi];
      workload::WorkloadSpec wspec =
          workload::make_workload_spec(workload::JobConfig::kAllDiffEqual);
      wspec.job_count = jobs;
      spec.custom_workload = wspec;
      spec.fleet = cluster::FleetPreset::kAllEqual;
      spec.worker_count = fleets[fi];
      spec.iterations = 1;
      spec.seed = seed;
      spec.coalesce_deliveries = true;

      const auto reports = core::run_experiment(spec);
      const metrics::RunReport& r = reports.front();
      const double contests = r.stat("sched.contests");
      const double wall = r.wall_time_s > 0.0 ? r.wall_time_s : 1e-9;
      throughput[fi][pi] = contests / wall;

      table.add_row({std::to_string(fleets[fi]), fanouts[pi], fmt_fixed(wall, 3),
                     fmt_fixed(contests, 0), fmt_fixed(throughput[fi][pi], 0),
                     std::to_string(r.messages_delivered), fmt_fixed(r.exec_time_s, 1)});

      json::Object cell;
      cell["workers"] = fleets[fi];
      cell["fanout"] = fanouts[pi];
      cell["jobs"] = jobs;
      cell["wall_time_s"] = wall;
      cell["contests"] = contests;
      cell["contest_throughput_per_s"] = throughput[fi][pi];
      cell["messages_delivered"] = r.messages_delivered;
      cell["exec_time_s"] = r.exec_time_s;
      cells.push_back(json::Value{std::move(cell)});
    }
  }
  table.print(std::cout);

  json::Array speedups;
  std::cout << "\nprobe:4 contest-throughput speedup vs full:";
  for (std::size_t fi = 0; fi < 4; ++fi) {
    const double speedup = throughput[fi][0] > 0.0 ? throughput[fi][1] / throughput[fi][0] : 0.0;
    json::Object row;
    row["workers"] = fleets[fi];
    row["speedup_probe_vs_full"] = speedup;
    speedups.push_back(json::Value{std::move(row)});
    std::cout << "  " << fleets[fi] << "w=" << fmt_ratio(speedup);
  }
  std::cout << "\n";

  json::Object doc;
  doc["bench"] = "scale";
  doc["jobs"] = jobs;
  doc["seed"] = seed;
  doc["cells"] = json::Value{std::move(cells)};
  doc["speedup_probe_vs_full"] = json::Value{std::move(speedups)};

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << json::Value{std::move(doc)}.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
