// Scale bench: contest fan-out policy × fleet size.
//
// Sweeps the bidding scheduler over large fleets with all three fan-out
// policies. `full` is the paper's protocol — every contest broadcasts to
// every worker and waits for every bid, so contest cost grows linearly
// with the fleet and the master's wall-clock throughput collapses at
// thousands of workers. `probe:4` solicits a seeded 4-subset per contest
// (Dodoor-style), making contest cost independent of fleet size.
// `cached:4` skips the contest round-trip entirely: the master places each
// job on the best of 4 cached candidates (late binding, one fallback
// re-contest on a stale decline) — O(1) messages per job. All arms run
// with delivery coalescing on (the scale configuration).
//
// Emits BENCH_scale.json with per-cell wall time, decision throughput
// (contests + direct placements per wall second), messages per job, and
// placement quality (exec time relative to the full-broadcast optimum at
// the same fleet) plus the probe-vs-full and cached-vs-probe speedups per
// fleet size. The acceptance bars: probe >= 5x contest throughput at 2000
// workers, cached >= 5x decision throughput over probe at 10000 workers
// with O(1) messages/job and exec time within a few percent of full.
//
// The 10k-worker full-broadcast cell is expensive (O(workers) messages per
// contest); it is skipped unless BENCH_SCALE_FULL=1 so the default sweep
// stays fast. Without it the 10k placement-quality column falls back to
// the probe:4 arm as its reference.
//
//   bench_scale [--out BENCH_scale.json] [--jobs 2000] [--seed 42]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "util/json.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  std::size_t jobs = 2000;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : std::string{}; };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--jobs") {
      jobs = std::stoul(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: [--out path.json] [--jobs n] [--seed n]\n";
      return 0;
    }
  }

  const char* full_env = std::getenv("BENCH_SCALE_FULL");
  const bool full_at_10k = full_env != nullptr && std::string(full_env) == "1";
  const unsigned cores = std::thread::hardware_concurrency();

  constexpr std::size_t kFleets = 5;
  constexpr std::size_t kFanouts = 3;
  const std::size_t fleets[kFleets] = {5, 50, 500, 2000, 10000};
  const char* fanouts[kFanouts] = {"full", "probe:4", "cached:4"};

  TextTable table("Scale — contest fan-out policy x fleet size (all_diff_equal, " +
                  std::to_string(jobs) + " jobs)");
  table.set_header({"workers", "fanout", "wall (s)", "decisions", "decisions/s", "msgs",
                    "msgs/job", "exec (s)", "quality"});

  json::Array cells;
  double throughput[kFleets][kFanouts] = {};
  double exec_time[kFleets][kFanouts] = {};
  bool ran[kFleets][kFanouts] = {};
  for (std::size_t fi = 0; fi < kFleets; ++fi) {
    for (std::size_t pi = 0; pi < kFanouts; ++pi) {
      if (fleets[fi] == 10000 && pi == 0 && !full_at_10k) {
        table.add_row({std::to_string(fleets[fi]), fanouts[pi], "-", "-", "-", "-", "-",
                       "-", "skipped (BENCH_SCALE_FULL=1 to run)"});
        continue;
      }
      core::ExperimentSpec spec;
      spec.scheduler = std::string("bidding:fanout=") + fanouts[pi];
      workload::WorkloadSpec wspec =
          workload::make_workload_spec(workload::JobConfig::kAllDiffEqual);
      wspec.job_count = jobs;
      spec.custom_workload = wspec;
      spec.fleet = cluster::FleetPreset::kAllEqual;
      spec.worker_count = fleets[fi];
      spec.iterations = 1;
      spec.seed = seed;
      spec.coalesce_deliveries = true;

      const auto reports = core::run_experiment(spec);
      const metrics::RunReport& r = reports.front();
      // "Decisions" unifies the two placement mechanisms: a contest (full /
      // probe, and cached's decline fallbacks) or a direct cached placement.
      const double decisions = r.stat("sched.contests") + r.stat("fanout.placements");
      const double wall = r.wall_time_s > 0.0 ? r.wall_time_s : 1e-9;
      const double msgs_per_job =
          static_cast<double>(r.messages_delivered) / static_cast<double>(jobs);
      throughput[fi][pi] = decisions / wall;
      exec_time[fi][pi] = r.exec_time_s;
      ran[fi][pi] = true;
      // Placement quality: exec time relative to the full broadcast at the
      // same fleet (1.0 = matched the paper protocol's outcome). Filled in
      // after the full arm of this fleet ran (pi == 0 runs first).
      const double quality = ran[fi][0] && exec_time[fi][0] > 0.0
                                 ? r.exec_time_s / exec_time[fi][0]
                                 : 0.0;

      table.add_row({std::to_string(fleets[fi]), fanouts[pi], fmt_fixed(wall, 3),
                     fmt_fixed(decisions, 0), fmt_fixed(throughput[fi][pi], 0),
                     std::to_string(r.messages_delivered), fmt_fixed(msgs_per_job, 1),
                     fmt_fixed(r.exec_time_s, 1),
                     quality > 0.0 ? fmt_ratio(quality) : "-"});

      json::Object cell;
      cell["workers"] = fleets[fi];
      cell["fanout"] = fanouts[pi];
      cell["jobs"] = jobs;
      cell["wall_time_s"] = wall;
      cell["contests"] = r.stat("sched.contests");
      cell["placements"] = r.stat("fanout.placements");
      cell["contest_throughput_per_s"] = throughput[fi][pi];
      cell["messages_delivered"] = r.messages_delivered;
      cell["messages_per_job"] = msgs_per_job;
      cell["exec_time_s"] = r.exec_time_s;
      if (quality > 0.0) cell["placement_quality_vs_full"] = quality;
      if (pi == 2) {
        cell["cache_hits"] = r.stat("fanout.cache_hits");
        cell["stale_declines"] = r.stat("fanout.stale_declines");
        cell["placement_quality_estimate_ratio_mean"] =
            r.stat("fanout.placement_quality.mean");
      }
      cells.push_back(json::Value{std::move(cell)});
    }
  }
  table.print(std::cout);

  json::Array speedups;
  std::cout << "\ncontest/decision-throughput speedups:";
  for (std::size_t fi = 0; fi < kFleets; ++fi) {
    json::Object row;
    row["workers"] = fleets[fi];
    if (ran[fi][0] && throughput[fi][0] > 0.0) {
      row["speedup_probe_vs_full"] = throughput[fi][1] / throughput[fi][0];
      row["speedup_cached_vs_full"] = throughput[fi][2] / throughput[fi][0];
    }
    const double cached_vs_probe =
        throughput[fi][1] > 0.0 ? throughput[fi][2] / throughput[fi][1] : 0.0;
    row["speedup_cached_vs_probe"] = cached_vs_probe;
    speedups.push_back(json::Value{std::move(row)});
    std::cout << "  " << fleets[fi] << "w cached-vs-probe=" << fmt_ratio(cached_vs_probe);
  }
  std::cout << "\n";

  json::Object doc;
  doc["bench"] = "scale";
  doc["jobs"] = jobs;
  doc["seed"] = seed;
  doc["hardware_concurrency"] = static_cast<std::uint64_t>(cores);
  doc["full_at_10k"] = full_at_10k;
  doc["cells"] = json::Value{std::move(cells)};
  doc["speedups"] = json::Value{std::move(speedups)};

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << json::Value{std::move(doc)}.dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
