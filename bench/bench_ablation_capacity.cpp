// Ablation A5: bounded worker storage.
//
// The paper assumes clones are kept indefinitely ("saved for later use");
// real workers have finite disks. This ablation bounds each worker's cache
// (LRU) at a fraction of the workload's distinct volume and shows how both
// schedulers degrade as evictions erase locality — and that the Bidding
// Scheduler's advantage persists under pressure because bids always reflect
// the *current* cache contents.

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  // Distinct volume of the 80%_large workload, to size the caches against.
  const auto probe = workload::generate_workload(
      workload::make_workload_spec(workload::JobConfig::k80Large), SeedSequencer(options.seed));
  const MegaBytes unique_mb = probe.unique_mb();

  const double fractions[] = {0.05, 0.1, 0.25, 0.5, 1.0, -1.0};  // -1 = unbounded

  TextTable table("Ablation A5 — per-worker LRU capacity (80%_large, all-equal fleet; "
                  "distinct volume " + fmt_fixed(unique_mb, 0) + " MB)");
  table.set_header({"capacity", "bid misses", "base misses", "bid data (MB)",
                    "base data (MB)", "speedup"});
  for (const double fraction : fractions) {
    double misses[2] = {0.0, 0.0};
    double data[2] = {0.0, 0.0};
    double exec[2] = {0.0, 0.0};
    int idx = 0;
    for (const std::string scheduler : {"bidding", "baseline"}) {
      core::ExperimentSpec spec = bench::make_cell(
          scheduler, workload::JobConfig::k80Large, cluster::FleetPreset::kAllEqual, options);
      auto fleet = cluster::make_fleet(spec.fleet, spec.worker_count);
      if (fraction > 0.0) {
        for (auto& worker : fleet) {
          worker.cache.policy = storage::EvictionPolicy::kLru;
          worker.cache.capacity_mb = unique_mb * fraction;
        }
      }
      spec.custom_fleet = fleet;
      const auto reports = core::run_experiment(spec);
      for (const auto& r : reports) {
        const auto n = static_cast<double>(reports.size());
        misses[idx] += static_cast<double>(r.cache_misses) / n;
        data[idx] += r.data_load_mb / n;
        exec[idx] += r.exec_time_s / n;
      }
      ++idx;
    }
    const std::string label =
        fraction > 0.0 ? fmt_percent(fraction, 0) + " of distinct" : "unbounded";
    table.add_row({label, fmt_fixed(misses[0], 1), fmt_fixed(misses[1], 1),
                   fmt_fixed(data[0], 0), fmt_fixed(data[1], 0),
                   fmt_ratio(exec[1] / exec[0])});
  }
  table.print(std::cout);
  std::cout << "\nReading: as capacity shrinks, evictions convert would-be hits into\n"
               "repeat downloads for both schedulers; bidding keeps its edge because a\n"
               "worker that just evicted a repository stops under-bidding for it.\n";
  return 0;
}
