// Tables 1-3 reproduction: the non-simulated MSR experiments (paper §6.4).
//
// The original runs the full Fig. 1 pipeline against live GitHub on AWS;
// here the same pipeline runs against the synthetic GitHub with the §6.4
// estimation protocol: workers probe their speeds on a 100 MB repository up
// front, then bid with the historic average of the speeds measured on every
// completed job. Three runs per scheduler, all starting from cold caches.
//
// Paper anchors:
//   Table 1 (exec time):  Bidding 2918.5-3204.5 s  vs Baseline 3544.45-4183.5 s
//   Table 2 (data load):  ~325-333 GB              vs ~848-891 GB
//   Table 3 (cache miss): 186-205                  vs 386-405

#include <iostream>

#include "bench_common.hpp"
#include "msr/msr.hpp"
#include "sched/factory.hpp"

using namespace dlaja;

namespace {

struct MsrRun {
  double exec_s = 0.0;
  double data_mb = 0.0;
  std::uint64_t misses = 0;
  std::size_t jobs = 0;
};

MsrRun run_msr(const std::string& scheduler, std::uint64_t seed) {
  msr::MsrConfig config;  // defaults: 30 libraries, 90 large repositories
  const auto pipeline = msr::build_msr_pipeline(config, SeedSequencer(42));  // fixed dataset

  core::EngineConfig engine_config;
  engine_config.seed = seed;  // run-to-run variation comes from the environment
  engine_config.noise = net::NoiseConfig::throttle(0.10, 0.30);
  engine_config.estimation = cluster::SpeedEstimator::Mode::kHistoric;
  engine_config.probe_speeds = true;

  core::Engine engine(msr::make_msr_fleet(), sched::make_scheduler(scheduler, seed),
                      engine_config);
  engine.set_workflow(pipeline.workflow);
  const auto report = engine.run(pipeline.seed_jobs);

  MsrRun run;
  run.exec_s = report.exec_time_s;
  run.data_mb = report.data_load_mb;
  run.misses = report.cache_misses;
  run.jobs = report.jobs_completed;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const int runs = options.iterations;

  std::vector<MsrRun> bidding, baseline;
  for (int r = 0; r < runs; ++r) {
    bidding.push_back(run_msr("bidding", options.seed + static_cast<std::uint64_t>(r)));
    baseline.push_back(run_msr("baseline", options.seed + static_cast<std::uint64_t>(r)));
  }

  {
    TextTable table("Table 1 — MSR execution times (s)   [paper: 2918-3205 vs 3544-4184]");
    table.set_header({"MSR", "Bidding", "Baseline", "reduction"});
    for (int r = 0; r < runs; ++r) {
      table.add_row({"run " + std::to_string(r + 1), fmt_fixed(bidding[r].exec_s, 2),
                     fmt_fixed(baseline[r].exec_s, 2),
                     fmt_percent(1.0 - bidding[r].exec_s / baseline[r].exec_s)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  {
    TextTable table("Table 2 — data load (MB)   [paper: ~325k-333k vs ~848k-891k]");
    table.set_header({"MSR", "Bidding", "Baseline", "reduction"});
    for (int r = 0; r < runs; ++r) {
      table.add_row({"run " + std::to_string(r + 1), fmt_fixed(bidding[r].data_mb, 2),
                     fmt_fixed(baseline[r].data_mb, 2),
                     fmt_percent(1.0 - bidding[r].data_mb / baseline[r].data_mb)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  {
    TextTable table("Table 3 — cache miss count   [paper: 186-205 vs 386-405]");
    table.set_header({"MSR", "Bidding", "Baseline", "reduction"});
    for (int r = 0; r < runs; ++r) {
      table.add_row({"run " + std::to_string(r + 1), std::to_string(bidding[r].misses),
                     std::to_string(baseline[r].misses),
                     fmt_percent(1.0 - static_cast<double>(bidding[r].misses) /
                                           static_cast<double>(baseline[r].misses))});
    }
    table.print(std::cout);
  }

  std::cout << "\npipeline size: " << bidding[0].jobs
            << " jobs per run (searchers + analyzers + aggregations)\n";
  return 0;
}
