// Ablation A6: geographic distribution.
//
// §6.2: "The instances were geographically distributed, and their locations
// were randomly determined during configuration startup." This ablation
// compares a single-region cluster against fleets scattered over an
// AWS-like three-continent topology (several random placements), showing
// how WAN control latency inflates bidding's per-contest cost while the
// pull baseline pays it per offer round instead.

#include <iostream>

#include "bench_common.hpp"
#include "net/topology.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const net::Topology topology = net::make_aws_like_topology();
  const net::RegionId broker_region = 0;  // the messaging instance lives in us-east

  TextTable table("Ablation A6 — geographic scatter (80%_large, fast-slow fleet)");
  table.set_header({"placement", "bidding (s)", "baseline (s)", "speedup",
                    "bid alloc lat (s)"});

  const auto run_pair = [&](const std::string& label, std::uint64_t scatter_seed,
                            bool scattered) {
    double exec[2] = {0.0, 0.0};
    double alloc = 0.0;
    int idx = 0;
    for (const std::string scheduler : {"bidding", "baseline"}) {
      core::ExperimentSpec spec = bench::make_cell(
          scheduler, workload::JobConfig::k80Large, cluster::FleetPreset::kFastSlow, options);
      auto fleet = cluster::make_fleet(spec.fleet, spec.worker_count);
      if (scattered) {
        RandomStream rng(scatter_seed);
        (void)cluster::scatter_fleet(fleet, topology, broker_region, rng);
      }
      spec.custom_fleet = fleet;
      const auto reports = core::run_experiment(spec);
      for (const auto& r : reports) {
        const auto n = static_cast<double>(reports.size());
        exec[idx] += r.exec_time_s / n;
        if (scheduler == "bidding") alloc += r.avg_alloc_latency_s / n;
      }
      ++idx;
    }
    table.add_row({label, fmt_fixed(exec[0], 1), fmt_fixed(exec[1], 1),
                   fmt_ratio(exec[1] / exec[0]), fmt_fixed(alloc, 3)});
  };

  run_pair("single region", 0, false);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    run_pair("scattered #" + std::to_string(s), s, true);
  }
  table.print(std::cout);
  std::cout << "\nReading: WAN latency (40-130 ms per leg) raises bidding's allocation\n"
               "latency by roughly one round trip per contest; with multi-second job\n"
               "service times the locality and worker-awareness gains still dominate —\n"
               "consistent with the paper running geographically distributed instances.\n";
  return 0;
}
