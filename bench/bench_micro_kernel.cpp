// Micro benchmarks (google-benchmark): throughput of the substrates the
// reproduction is built on — event queue, RNG, broker delivery, cache
// operations, and whole-simulation rates for both schedulers.

#include <benchmark/benchmark.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/engine.hpp"
#include "msg/broker.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "storage/cache.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dlaja;

void BM_EventQueueScheduleFire(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(static_cast<Tick>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1 << 10)->Arg(1 << 14);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(1024);
    for (int i = 0; i < 1024; ++i) ids.push_back(sim.schedule_at(i, [] {}));
    for (const auto id : ids) sim.cancel(id);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventCancellation);

// Timer-wheel pattern: every event gets a timeout scheduled alongside it and
// ~90% of those timeouts are cancelled before they fire. Exercises cancel()
// against a large live heap rather than the drain-in-order case above.
void BM_EventCancelHeavy(benchmark::State& state) {
  constexpr int kBatch = 4096;
  std::vector<sim::EventId> ids;
  ids.reserve(kBatch);
  for (auto _ : state) {
    sim::Simulator sim;
    sim.reserve(kBatch);
    ids.clear();
    Xoshiro256 rng(7);
    for (int i = 0; i < kBatch; ++i) {
      ids.push_back(sim.schedule_at(static_cast<Tick>(i + rng() % 512), [] {}));
    }
    for (int i = 0; i < kBatch; ++i) {
      if (i % 10 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_EventCancelHeavy);

// Tracing overhead on the schedule→fire hot path. Arg(0) runs with no
// tracer attached (the default production state — one pointer load per
// dispatch); Arg(1) attaches an enabled Tracer so every dispatch records a
// span. bench_kernel.sh reports the pair side by side in BENCH_kernel.json.
void BM_EventTracing(benchmark::State& state) {
  constexpr std::size_t kBatch = 1 << 12;
  const bool traced = state.range(0) != 0;
  obs::Tracer tracer(1 << 22);
  tracer.set_enabled(true);
  for (auto _ : state) {
    sim::Simulator sim;
    if (traced) sim.set_tracer(&tracer);
    for (std::size_t i = 0; i < kBatch; ++i) {
      sim.schedule_at(static_cast<Tick>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
    tracer.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_EventTracing)->Arg(0)->Arg(1);

// Steady-state mix as the cluster model produces it: refresh a lane's timeout
// (cancel + reschedule), occasionally drain a window of due events. Measures
// the kernel with schedule/cancel/fire interleaved instead of phased.
void BM_EventMixedWorkload(benchmark::State& state) {
  constexpr int kOps = 8192;
  for (auto _ : state) {
    sim::Simulator sim;
    sim.reserve(256);
    std::array<sim::EventId, 64> timeouts{};
    Xoshiro256 rng(11);
    std::uint64_t fired = 0;
    for (int i = 0; i < kOps; ++i) {
      auto& lane = timeouts[rng() % timeouts.size()];
      sim.cancel(lane);
      lane = sim.schedule_after(static_cast<Tick>(1 + rng() % 256), [&fired] { ++fired; });
      if ((i & 7) == 0) sim.run(sim.now() + 32);
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kOps);
}
BENCHMARK(BM_EventMixedWorkload);

// Capture-size sweep across InlineAction's storage tiers: payload + the
// captured reference gives total captures of 16B (fixed small copy), 56B
// (exactly the inline budget), and 128B (pooled-slab fallback).
template <std::size_t PayloadBytes>
void BM_ActionCapture(benchmark::State& state) {
  constexpr int kBatch = 1024;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    sim.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      std::array<std::byte, PayloadBytes> payload{};
      payload[0] = static_cast<std::byte>(i);
      sim.schedule_after(static_cast<Tick>(i % 61),
                         [&acc, payload] { acc += static_cast<std::uint64_t>(payload[0]); });
    }
    benchmark::DoNotOptimize(sim.run());
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
  state.SetLabel(sizeof(std::uint64_t*) + PayloadBytes <= sim::InlineAction::kInlineSize
                     ? "inline"
                     : "pooled");
}
BENCHMARK_TEMPLATE(BM_ActionCapture, 8);
BENCHMARK_TEMPLATE(BM_ActionCapture, 48);
BENCHMARK_TEMPLATE(BM_ActionCapture, 120);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(42);
  std::uint64_t acc = 0;
  for (auto _ : state) acc += rng();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_RandomVariates(benchmark::State& state) {
  RandomStream rng(42);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.lognormal(0.0, 0.3) + rng.exponential(2.0) + rng.bounded_pareto(1.0, 100.0, 1.1);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_RandomVariates);

void BM_BrokerSendDeliver(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::NetworkModel network(SeedSequencer(1), net::NoiseConfig::none());
    const auto a = network.register_node("a", {});
    const auto b = network.register_node("b", {});
    msg::Broker broker(sim, network);
    std::uint64_t count = 0;
    broker.register_mailbox(b, "box", [&](const msg::Message&) { ++count; });
    for (int i = 0; i < 1000; ++i) broker.send(a, b, "box", i);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BrokerSendDeliver);

void BM_CacheLruChurn(benchmark::State& state) {
  storage::CacheConfig config;
  config.policy = storage::EvictionPolicy::kLru;
  config.capacity_mb = 1000.0;
  storage::ResourceCache cache(config);
  storage::ResourceId next = 1;
  for (auto _ : state) {
    cache.admit({next, 10.0});
    benchmark::DoNotOptimize(cache.access(next > 50 ? next - 50 : next));
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLruChurn);

void BM_FullSimulation(benchmark::State& state) {
  const bool bidding = state.range(0) == 1;
  const auto workload = workload::generate_workload(
      workload::make_workload_spec(workload::JobConfig::k80Large), SeedSequencer(42));
  for (auto _ : state) {
    core::EngineConfig config;
    config.seed = 42;
    core::Engine engine(cluster::make_fleet(cluster::FleetPreset::kFastSlow),
                        sched::make_scheduler(bidding ? "bidding" : "baseline"), config);
    const auto report = engine.run(workload.jobs);
    benchmark::DoNotOptimize(report.exec_time_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.jobs.size()));
  state.SetLabel(bidding ? "bidding/120jobs" : "baseline/120jobs");
}
BENCHMARK(BM_FullSimulation)->Arg(1)->Arg(0);

void BM_EngineTelemetry(benchmark::State& state) {
  // The same bidding cell as BM_FullSimulation, with telemetry off (arg 0)
  // or sampling every `arg` simulated seconds — the sweep bounds the cost
  // of the gauge-sampling slice points plus the watchdog checks, at the
  // default cadence (kTelemetryDefaultIntervalS = 30s, budgeted at <= 3%
  // overhead on this cell) and under a 30x-denser stress cadence (1s).
  const auto cadence_s = static_cast<double>(state.range(0));
  const auto workload = workload::generate_workload(
      workload::make_workload_spec(workload::JobConfig::k80Large), SeedSequencer(42));
  for (auto _ : state) {
    core::EngineConfig config;
    config.seed = 42;
    if (cadence_s > 0) config.telemetry.interval = ticks_from_seconds(cadence_s);
    core::Engine engine(cluster::make_fleet(cluster::FleetPreset::kFastSlow),
                        sched::make_scheduler("bidding"), config);
    const auto report = engine.run(workload.jobs);
    benchmark::DoNotOptimize(report.exec_time_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.jobs.size()));
  state.SetLabel(cadence_s > 0 ? "telemetry@" + std::to_string(state.range(0)) + "s"
                               : "telemetry-off");
}
BENCHMARK(BM_EngineTelemetry)->Arg(0)->Arg(30)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
