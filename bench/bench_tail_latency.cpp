// Extension E3: per-job tail latency.
//
// The paper evaluates makespan only; a per-job view shows who *waits*. This
// harness compares mean/p50/p95/p99 job turnaround across schedulers and
// arrival shapes — in particular the bursty pattern the MSR pipeline
// produces (one repository search emits a burst of analyzer jobs), where
// serialized bidding contests queue at the master and the baseline's
// reject-once rounds queue at the workers.

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);

  for (const auto arrival : {workload::WorkloadSpec::ArrivalProcess::kExponential,
                             workload::WorkloadSpec::ArrivalProcess::kBursty}) {
    const bool bursty = arrival == workload::WorkloadSpec::ArrivalProcess::kBursty;
    TextTable table(std::string("E3 — job turnaround (s), ") +
                    (bursty ? "bursty arrivals (bursts of 10)" : "Poisson arrivals") +
                    " — 80%_large, all-equal fleet");
    table.set_header({"scheduler", "mean", "p50", "p95", "p99", "makespan"});
    for (const std::string scheduler :
         {"bidding", "baseline", "matchmaking", "spark-like"}) {
      core::ExperimentSpec spec = bench::make_cell(
          scheduler, workload::JobConfig::k80Large, cluster::FleetPreset::kAllEqual, options);
      spec.custom_workload->arrival = arrival;
      double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, makespan = 0.0;
      const auto reports = core::run_experiment(spec);
      for (const auto& r : reports) {
        const auto n = static_cast<double>(reports.size());
        mean += r.avg_turnaround_s / n;
        p50 += r.p50_turnaround_s / n;
        p95 += r.p95_turnaround_s / n;
        p99 += r.p99_turnaround_s / n;
        makespan += r.exec_time_s / n;
      }
      table.add_row({scheduler, fmt_fixed(mean, 1), fmt_fixed(p50, 1), fmt_fixed(p95, 1),
                     fmt_fixed(p99, 1), fmt_fixed(makespan, 1)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: bidding's worker-aware placement shortens the tail (p95/p99)\n"
               "as well as the makespan; under bursts its serialized contests add master-\n"
               "side queueing, visible as a higher p50 relative to Poisson arrivals.\n";
  return 0;
}
