// Ablation A4: cluster-size scaling.
//
// The paper evaluates 5 workers; this ablation sweeps the fleet size and
// reports how the Bidding Scheduler's contest machinery scales: messages
// per job grow linearly with the worker count (one broadcast + N bids),
// and serialized contests bound the allocation throughput — visible as
// allocation latency once jobs arrive faster than contests close.

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const std::size_t fleet_sizes[] = {2, 5, 10, 15, 25};

  TextTable table("Ablation A4 — fleet-size sweep (all_diff_equal, all-equal workers)");
  table.set_header({"workers", "bidding (s)", "baseline (s)", "speedup", "msgs/job (bid)",
                    "alloc lat (s)"});
  for (const std::size_t workers : fleet_sizes) {
    double exec[2] = {0.0, 0.0};
    double messages_per_job = 0.0;
    double alloc_latency = 0.0;
    int idx = 0;
    for (const std::string scheduler : {"bidding", "baseline"}) {
      core::ExperimentSpec spec = bench::make_cell(
          scheduler, workload::JobConfig::kAllDiffEqual, cluster::FleetPreset::kAllEqual,
          options);
      spec.worker_count = workers;
      const auto reports = core::run_experiment(spec);
      for (const auto& r : reports) {
        const auto n = static_cast<double>(reports.size());
        exec[idx] += r.exec_time_s / n;
        if (scheduler == "bidding") {
          messages_per_job += static_cast<double>(r.messages_delivered) /
                              static_cast<double>(r.jobs_completed) / n;
          alloc_latency += r.avg_alloc_latency_s / n;
        }
      }
      ++idx;
    }
    table.add_row({std::to_string(workers), fmt_fixed(exec[0], 1), fmt_fixed(exec[1], 1),
                   fmt_ratio(exec[1] / exec[0]), fmt_fixed(messages_per_job, 1),
                   fmt_fixed(alloc_latency, 3)});
  }
  table.print(std::cout);
  std::cout << "\nReading: per-job messaging grows ~linearly with the fleet (broadcast +\n"
               "one bid per worker), the paper's main decentralisation cost. With more\n"
               "workers the cluster drains the same 120 jobs faster until arrivals, not\n"
               "capacity, bound the run.\n";
  return 0;
}
