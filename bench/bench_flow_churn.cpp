// Flow-network hot-loop benchmarks (google-benchmark): arrival/cancel/
// completion churn against the max-min fair flow model at 1k-64k concurrent
// flows, plus one end-to-end shared-bandwidth experiment cell. Paired with
// scripts/bench_flow.sh, which aggregates repetitions into BENCH_flow.json
// (best / p50 / p99) so flow-model rewrites can be compared across PRs.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "net/flow.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dlaja;

constexpr std::size_t kNodes = 64;
constexpr double kNodeCapacity = 100.0;
// Half the aggregate node demand: the origin constraint binds, so every
// reallocation runs the full (not single-node) water-filling pass.
constexpr double kOriginCapacity = kNodes * kNodeCapacity / 2.0;

net::NodeId churn_node(std::size_t i) { return static_cast<net::NodeId>(i % kNodes); }

/// Steady-state arrival/cancel churn: N live flows, each op replaces the
/// oldest flow with a fresh one (one cancel + one start, two reallocations).
/// Volumes are huge so no flow ever completes and the live count stays N.
void BM_FlowChurnStartCancel(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::FlowNetwork flows(sim, kOriginCapacity);
  for (std::size_t n = 0; n < kNodes; ++n) {
    flows.set_node_capacity(churn_node(n), kNodeCapacity);
  }
  std::vector<net::FlowId> ids(live);
  for (std::size_t i = 0; i < live; ++i) {
    ids[i] = flows.start_flow(churn_node(i), 1e9, nullptr);
  }
  std::size_t next = 0;
  for (auto _ : state) {
    flows.cancel_flow(ids[next]);
    ids[next] = flows.start_flow(churn_node(next), 1e9, nullptr);
    next = (next + 1) % live;
  }
  benchmark::DoNotOptimize(flows.active_flows());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_FlowChurnStartCancel)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

/// Completion churn: start N flows with staggered volumes, then drain the
/// simulation — every completion triggers a reallocation over the remaining
/// flows. One iteration = N starts + N completions.
void BM_FlowCompletionDrain(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t completed = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::FlowNetwork flows(sim, kOriginCapacity);
    for (std::size_t n = 0; n < kNodes; ++n) {
      flows.set_node_capacity(churn_node(n), kNodeCapacity);
    }
    for (std::size_t i = 0; i < batch; ++i) {
      flows.start_flow(churn_node(i), static_cast<double>(i % 97 + 1),
                       [&completed] { ++completed; });
    }
    sim.run();
    benchmark::DoNotOptimize(flows.active_flows());
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * batch));
}
BENCHMARK(BM_FlowCompletionDrain)->Arg(1 << 10)->Arg(1 << 12);

/// Handle-lookup cost under load: current_rate() against N live flows.
void BM_FlowCurrentRate(benchmark::State& state) {
  constexpr std::size_t kLive = 4096;
  sim::Simulator sim;
  net::FlowNetwork flows(sim, kOriginCapacity);
  for (std::size_t n = 0; n < kNodes; ++n) {
    flows.set_node_capacity(churn_node(n), kNodeCapacity);
  }
  std::vector<net::FlowId> ids(kLive);
  for (std::size_t i = 0; i < kLive; ++i) {
    ids[i] = flows.start_flow(churn_node(i), 1e9, nullptr);
  }
  std::size_t next = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += flows.current_rate(ids[next]);
    next = (next + 1) % kLive;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowCurrentRate);

/// End-to-end shared-bandwidth cell (the A7 ablation's hot configuration):
/// 120 80%-large jobs through the bidding scheduler with a 100 MB/s origin.
/// Tracks how much of a whole experiment the flow model costs.
void BM_FlowSharedNetCell(benchmark::State& state) {
  const auto workload = workload::generate_workload(
      workload::make_workload_spec(workload::JobConfig::k80Large), SeedSequencer(42));
  for (auto _ : state) {
    core::EngineConfig config;
    config.seed = 42;
    config.shared_bandwidth = true;
    config.origin_capacity_mbps = 100.0;
    core::Engine engine(cluster::make_fleet(cluster::FleetPreset::kAllEqual),
                        sched::make_scheduler("bidding"), config);
    const auto report = engine.run(workload.jobs);
    benchmark::DoNotOptimize(report.exec_time_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.jobs.size()));
  state.SetLabel("bidding/120jobs/shared");
}
BENCHMARK(BM_FlowSharedNetCell);

}  // namespace

BENCHMARK_MAIN();
