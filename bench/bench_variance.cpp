// Replication study: statistical robustness of the headline comparison.
//
// The paper reports three iterations of each configuration; this harness
// replicates the bidding-vs-baseline comparison across R independent seeds
// and reports mean +/- stddev and a normal-approximation 95% CI for the
// speedup, the miss reduction and the data reduction — quantifying how
// much of the reported gap is signal.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  const int replications = 10;

  TextTable table("Replication study — bidding vs baseline over " +
                  std::to_string(replications) + " seeds (mean over the 5 workloads x 4 "
                  "fleets x " + std::to_string(options.iterations) + " iterations)");
  table.set_header({"metric", "mean", "stddev", "95% CI"});

  RunningStats speedup, miss_reduction, data_reduction;
  for (int r = 0; r < replications; ++r) {
    options.seed = 42 + static_cast<std::uint64_t>(r) * 7919;
    std::vector<core::ExperimentSpec> specs;
    for (const std::string scheduler : {"bidding", "baseline"}) {
      for (const auto config : workload::all_job_configs()) {
        for (const auto fleet : cluster::all_fleet_presets()) {
          specs.push_back(bench::make_cell(scheduler, config, fleet, options));
        }
      }
    }
    const auto reports = core::run_matrix(specs, options.threads);
    metrics::Aggregator agg;
    for (const auto& report : reports) agg.add(report.scheduler, report);
    const auto& bid = agg.cell("bidding");
    const auto& base = agg.cell("baseline");
    speedup.add(base.exec_time_s.mean() / bid.exec_time_s.mean());
    miss_reduction.add(1.0 - bid.cache_misses.mean() / base.cache_misses.mean());
    data_reduction.add(1.0 - bid.data_load_mb.mean() / base.data_load_mb.mean());
  }

  const auto row = [&](const char* name, const RunningStats& stats, bool as_percent) {
    const double half =
        1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
    const auto fmt = [&](double v) {
      return as_percent ? fmt_percent(v) : fmt_ratio(v);
    };
    table.add_row({name, fmt(stats.mean()),
                   as_percent ? fmt_percent(stats.stddev(), 2) : fmt_fixed(stats.stddev(), 3),
                   "[" + fmt(stats.mean() - half) + ", " + fmt(stats.mean() + half) + "]"});
  };
  row("speedup (exec)", speedup, false);
  row("miss reduction", miss_reduction, true);
  row("data reduction", data_reduction, true);
  table.print(std::cout);

  std::cout << "\nPaper point estimates: 24.5% exec reduction (= ~1.32x speedup), 49%\n"
               "miss reduction, 45.3% data reduction — single-testbed, 3 iterations.\n";
  return 0;
}
