// Ablation A7: shared bandwidth / origin contention.
//
// The paper's premise (§1): "network bandwidth is a scarce resource
// compared to CPU speed". The basic cost model gives every clone the
// node's full bandwidth; this ablation turns on the flow-level network,
// where concurrent clones share per-node capacity and the repository
// host's (origin's) upload. Sweeping the origin capacity shows that the
// scarcer bandwidth is, the more the Bidding Scheduler's avoided
// downloads are worth.

#include <iostream>

#include "bench_common.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  // Fleet demand is 5 x ~40 MB/s = ~200 MB/s; sweep the origin from scarce
  // to abundant (inf modeled as a huge cap).
  const double origins[] = {50.0, 100.0, 200.0, 400.0, 1e9};

  TextTable table("Ablation A7 — origin-capacity sweep (80%_large, all-equal fleet, "
                  "shared bandwidth)");
  table.set_header({"origin (MB/s)", "bidding (s)", "baseline (s)", "speedup",
                    "bid data (MB)", "base data (MB)"});
  for (const double origin : origins) {
    double exec[2] = {0.0, 0.0};
    double data[2] = {0.0, 0.0};
    int idx = 0;
    for (const std::string scheduler : {"bidding", "baseline"}) {
      core::ExperimentSpec spec = bench::make_cell(
          scheduler, workload::JobConfig::k80Large, cluster::FleetPreset::kAllEqual, options);
      // run_experiment drives Engine through the spec; shared bandwidth is
      // an engine knob, so run the iterations manually here.
      const auto workload =
          workload::generate_workload(*spec.custom_workload, SeedSequencer(spec.seed));
      std::vector<std::vector<storage::Resource>> carried;
      for (int iteration = 0; iteration < spec.iterations; ++iteration) {
        core::EngineConfig config;
        config.seed = spec.seed + 1000003ULL * static_cast<std::uint64_t>(iteration);
        config.noise = spec.noise;
        config.shared_bandwidth = true;
        config.origin_capacity_mbps = origin;
        core::Engine engine(cluster::make_fleet(spec.fleet),
                            sched::make_scheduler(scheduler, spec.seed), config);
        for (std::size_t w = 0; w < carried.size(); ++w) {
          engine.preload_cache(static_cast<cluster::WorkerIndex>(w), carried[w]);
        }
        const auto report = engine.run(workload.jobs);
        exec[idx] += report.exec_time_s / spec.iterations;
        data[idx] += report.data_load_mb / spec.iterations;
        carried = engine.cache_snapshots();
      }
      ++idx;
    }
    const std::string label = origin >= 1e8 ? "unbounded" : fmt_fixed(origin, 0);
    table.add_row({label, fmt_fixed(exec[0], 1), fmt_fixed(exec[1], 1),
                   fmt_ratio(exec[1] / exec[0]), fmt_fixed(data[0], 0),
                   fmt_fixed(data[1], 0)});
  }
  table.print(std::cout);
  std::cout << "\nReading: a scarce origin stretches every redundant clone, so the\n"
               "baseline's extra downloads cost more wall-clock and bidding's advantage\n"
               "widens — the scarcer the bandwidth, the more locality pays.\n";
  return 0;
}
