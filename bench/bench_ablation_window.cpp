// Ablation A1: the bidding window.
//
// The paper fixes the master's bidding window at 1 s. This ablation sweeps
// the window and shows the trade-off the choice embodies: a short window
// closes contests before stragglers' bids arrive (more timeout closes and
// arbitrary fallbacks -> worse placement), while a long window adds pure
// allocation latency to every job whose contest does not fill early.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "sched/bidding.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::parse_options(argc, argv);
  const double windows_s[] = {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0};

  TextTable table("Ablation A1 — bidding-window sweep (80%_large, fast-slow fleet)");
  table.set_header({"window (s)", "exec (s)", "alloc latency (s)", "misses", "data (MB)"});

  std::vector<metrics::RunReport> all;
  for (const double window : windows_s) {
    core::ExperimentSpec spec = bench::make_cell("bidding", workload::JobConfig::k80Large,
                                                 cluster::FleetPreset::kFastSlow, options);
    // Stragglers are what the window protects against: make them visible.
    auto fleet = cluster::make_fleet(spec.fleet);
    for (auto& w : fleet) w.bid_straggle_probability = 0.10;
    spec.custom_fleet = fleet;
    spec.scheduler = "bidding:window=" + fmt_shortest(window);
    const auto reports = core::run_experiment(spec);

    metrics::AggregateCell agg;
    for (const auto& r : reports) {
      agg.exec_time_s.add(r.exec_time_s);
      agg.cache_misses.add(static_cast<double>(r.cache_misses));
      agg.data_load_mb.add(r.data_load_mb);
      agg.alloc_latency_s.add(r.avg_alloc_latency_s);
      all.push_back(r);
    }
    table.add_row({fmt_fixed(window, 2), fmt_fixed(agg.exec_time_s.mean(), 1),
                   fmt_fixed(agg.alloc_latency_s.mean(), 3),
                   fmt_fixed(agg.cache_misses.mean(), 2),
                   fmt_fixed(agg.data_load_mb.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nReading: allocation latency grows with the window once contests stop\n"
               "filling early; very short windows lose bids from straggling workers and\n"
               "degrade placement. The paper's 1 s sits on the flat part of the curve.\n";
  bench::maybe_dump_csv(options, all);
  return 0;
}
