file(REMOVE_RECURSE
  "CMakeFiles/test_msr_flatten_fairness.dir/test_msr_flatten_fairness.cpp.o"
  "CMakeFiles/test_msr_flatten_fairness.dir/test_msr_flatten_fairness.cpp.o.d"
  "test_msr_flatten_fairness"
  "test_msr_flatten_fairness.pdb"
  "test_msr_flatten_fairness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msr_flatten_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
