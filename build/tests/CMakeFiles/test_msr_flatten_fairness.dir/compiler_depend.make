# Empty compiler generated dependencies file for test_msr_flatten_fairness.
# This may be replaced when dependencies are built.
