
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/test_cluster.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/test_cluster.dir/test_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dlaja_core.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/dlaja_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dlaja_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dlaja_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dlaja_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/dlaja_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlaja_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/dlaja_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dlaja_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlaja_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlaja_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlaja_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
