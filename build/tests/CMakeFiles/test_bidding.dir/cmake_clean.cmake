file(REMOVE_RECURSE
  "CMakeFiles/test_bidding.dir/test_bidding.cpp.o"
  "CMakeFiles/test_bidding.dir/test_bidding.cpp.o.d"
  "test_bidding"
  "test_bidding.pdb"
  "test_bidding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bidding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
