# Empty dependencies file for test_bidding.
# This may be replaced when dependencies are built.
