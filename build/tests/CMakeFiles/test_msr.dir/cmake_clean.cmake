file(REMOVE_RECURSE
  "CMakeFiles/test_msr.dir/test_msr.cpp.o"
  "CMakeFiles/test_msr.dir/test_msr.cpp.o.d"
  "test_msr"
  "test_msr.pdb"
  "test_msr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
