# Empty compiler generated dependencies file for test_reassignment.
# This may be replaced when dependencies are built.
