file(REMOVE_RECURSE
  "CMakeFiles/test_reassignment.dir/test_reassignment.cpp.o"
  "CMakeFiles/test_reassignment.dir/test_reassignment.cpp.o.d"
  "test_reassignment"
  "test_reassignment.pdb"
  "test_reassignment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reassignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
