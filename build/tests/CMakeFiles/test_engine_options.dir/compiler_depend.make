# Empty compiler generated dependencies file for test_engine_options.
# This may be replaced when dependencies are built.
