file(REMOVE_RECURSE
  "CMakeFiles/test_units_table.dir/test_units_table.cpp.o"
  "CMakeFiles/test_units_table.dir/test_units_table.cpp.o.d"
  "test_units_table"
  "test_units_table.pdb"
  "test_units_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_units_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
