# Empty dependencies file for test_units_table.
# This may be replaced when dependencies are built.
