# Empty compiler generated dependencies file for test_arrivals_percentiles.
# This may be replaced when dependencies are built.
