file(REMOVE_RECURSE
  "CMakeFiles/test_arrivals_percentiles.dir/test_arrivals_percentiles.cpp.o"
  "CMakeFiles/test_arrivals_percentiles.dir/test_arrivals_percentiles.cpp.o.d"
  "test_arrivals_percentiles"
  "test_arrivals_percentiles.pdb"
  "test_arrivals_percentiles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrivals_percentiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
