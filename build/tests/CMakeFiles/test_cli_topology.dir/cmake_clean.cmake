file(REMOVE_RECURSE
  "CMakeFiles/test_cli_topology.dir/test_cli_topology.cpp.o"
  "CMakeFiles/test_cli_topology.dir/test_cli_topology.cpp.o.d"
  "test_cli_topology"
  "test_cli_topology.pdb"
  "test_cli_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
