# Empty dependencies file for test_slots.
# This may be replaced when dependencies are built.
