file(REMOVE_RECURSE
  "CMakeFiles/test_slots.dir/test_slots.cpp.o"
  "CMakeFiles/test_slots.dir/test_slots.cpp.o.d"
  "test_slots"
  "test_slots.pdb"
  "test_slots[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
