# Empty dependencies file for test_bar.
# This may be replaced when dependencies are built.
