file(REMOVE_RECURSE
  "CMakeFiles/test_bar.dir/test_bar.cpp.o"
  "CMakeFiles/test_bar.dir/test_bar.cpp.o.d"
  "test_bar"
  "test_bar.pdb"
  "test_bar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
