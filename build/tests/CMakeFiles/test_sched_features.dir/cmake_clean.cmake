file(REMOVE_RECURSE
  "CMakeFiles/test_sched_features.dir/test_sched_features.cpp.o"
  "CMakeFiles/test_sched_features.dir/test_sched_features.cpp.o.d"
  "test_sched_features"
  "test_sched_features.pdb"
  "test_sched_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
