# Empty dependencies file for test_sched_features.
# This may be replaced when dependencies are built.
