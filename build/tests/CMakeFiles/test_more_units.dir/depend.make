# Empty dependencies file for test_more_units.
# This may be replaced when dependencies are built.
