file(REMOVE_RECURSE
  "CMakeFiles/test_property_substrates.dir/test_property_substrates.cpp.o"
  "CMakeFiles/test_property_substrates.dir/test_property_substrates.cpp.o.d"
  "test_property_substrates"
  "test_property_substrates.pdb"
  "test_property_substrates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
