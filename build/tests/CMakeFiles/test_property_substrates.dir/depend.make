# Empty dependencies file for test_property_substrates.
# This may be replaced when dependencies are built.
