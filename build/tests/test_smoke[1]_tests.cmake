add_test([=[Smoke.EverySchedulerCompletesASmallWorkload]=]  /root/repo/build/tests/test_smoke [==[--gtest_filter=Smoke.EverySchedulerCompletesASmallWorkload]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.EverySchedulerCompletesASmallWorkload]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_smoke_TESTS Smoke.EverySchedulerCompletesASmallWorkload)
