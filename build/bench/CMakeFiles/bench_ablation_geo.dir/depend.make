# Empty dependencies file for bench_ablation_geo.
# This may be replaced when dependencies are built.
