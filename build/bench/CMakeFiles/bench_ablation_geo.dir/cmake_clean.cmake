file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_geo.dir/bench_ablation_geo.cpp.o"
  "CMakeFiles/bench_ablation_geo.dir/bench_ablation_geo.cpp.o.d"
  "bench_ablation_geo"
  "bench_ablation_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
