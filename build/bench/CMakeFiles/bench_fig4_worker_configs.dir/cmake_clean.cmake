file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_worker_configs.dir/bench_fig4_worker_configs.cpp.o"
  "CMakeFiles/bench_fig4_worker_configs.dir/bench_fig4_worker_configs.cpp.o.d"
  "bench_fig4_worker_configs"
  "bench_fig4_worker_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_worker_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
