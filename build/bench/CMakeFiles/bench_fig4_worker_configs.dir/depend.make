# Empty dependencies file for bench_fig4_worker_configs.
# This may be replaced when dependencies are built.
