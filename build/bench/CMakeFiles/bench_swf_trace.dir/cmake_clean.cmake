file(REMOVE_RECURSE
  "CMakeFiles/bench_swf_trace.dir/bench_swf_trace.cpp.o"
  "CMakeFiles/bench_swf_trace.dir/bench_swf_trace.cpp.o.d"
  "bench_swf_trace"
  "bench_swf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
