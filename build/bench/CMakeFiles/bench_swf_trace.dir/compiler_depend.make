# Empty compiler generated dependencies file for bench_swf_trace.
# This may be replaced when dependencies are built.
