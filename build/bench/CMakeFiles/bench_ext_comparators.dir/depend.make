# Empty dependencies file for bench_ext_comparators.
# This may be replaced when dependencies are built.
