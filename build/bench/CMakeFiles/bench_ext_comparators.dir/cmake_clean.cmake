file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_comparators.dir/bench_ext_comparators.cpp.o"
  "CMakeFiles/bench_ext_comparators.dir/bench_ext_comparators.cpp.o.d"
  "bench_ext_comparators"
  "bench_ext_comparators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_comparators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
