# Empty dependencies file for bench_fig2_spark_vs_crossflow.
# This may be replaced when dependencies are built.
