file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_spark_vs_crossflow.dir/bench_fig2_spark_vs_crossflow.cpp.o"
  "CMakeFiles/bench_fig2_spark_vs_crossflow.dir/bench_fig2_spark_vs_crossflow.cpp.o.d"
  "bench_fig2_spark_vs_crossflow"
  "bench_fig2_spark_vs_crossflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_spark_vs_crossflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
