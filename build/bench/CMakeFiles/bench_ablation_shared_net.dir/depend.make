# Empty dependencies file for bench_ablation_shared_net.
# This may be replaced when dependencies are built.
