file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shared_net.dir/bench_ablation_shared_net.cpp.o"
  "CMakeFiles/bench_ablation_shared_net.dir/bench_ablation_shared_net.cpp.o.d"
  "bench_ablation_shared_net"
  "bench_ablation_shared_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
