file(REMOVE_RECURSE
  "CMakeFiles/bench_msr_tables.dir/bench_msr_tables.cpp.o"
  "CMakeFiles/bench_msr_tables.dir/bench_msr_tables.cpp.o.d"
  "bench_msr_tables"
  "bench_msr_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msr_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
