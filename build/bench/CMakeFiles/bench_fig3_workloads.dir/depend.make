# Empty dependencies file for bench_fig3_workloads.
# This may be replaced when dependencies are built.
