file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_workloads.dir/bench_fig3_workloads.cpp.o"
  "CMakeFiles/bench_fig3_workloads.dir/bench_fig3_workloads.cpp.o.d"
  "bench_fig3_workloads"
  "bench_fig3_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
