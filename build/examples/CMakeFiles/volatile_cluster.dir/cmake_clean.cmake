file(REMOVE_RECURSE
  "CMakeFiles/volatile_cluster.dir/volatile_cluster.cpp.o"
  "CMakeFiles/volatile_cluster.dir/volatile_cluster.cpp.o.d"
  "volatile_cluster"
  "volatile_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volatile_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
