# Empty dependencies file for volatile_cluster.
# This may be replaced when dependencies are built.
