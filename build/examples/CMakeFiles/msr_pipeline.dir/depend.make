# Empty dependencies file for msr_pipeline.
# This may be replaced when dependencies are built.
