file(REMOVE_RECURSE
  "CMakeFiles/msr_pipeline.dir/msr_pipeline.cpp.o"
  "CMakeFiles/msr_pipeline.dir/msr_pipeline.cpp.o.d"
  "msr_pipeline"
  "msr_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msr_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
