file(REMOVE_RECURSE
  "CMakeFiles/dlaja_figures.dir/dlaja_figures.cpp.o"
  "CMakeFiles/dlaja_figures.dir/dlaja_figures.cpp.o.d"
  "dlaja_figures"
  "dlaja_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
