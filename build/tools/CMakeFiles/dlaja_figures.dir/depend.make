# Empty dependencies file for dlaja_figures.
# This may be replaced when dependencies are built.
