# Empty compiler generated dependencies file for dlaja_mine.
# This may be replaced when dependencies are built.
