file(REMOVE_RECURSE
  "CMakeFiles/dlaja_mine.dir/dlaja_msr.cpp.o"
  "CMakeFiles/dlaja_mine.dir/dlaja_msr.cpp.o.d"
  "dlaja_mine"
  "dlaja_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
