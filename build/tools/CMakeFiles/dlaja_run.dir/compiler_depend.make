# Empty compiler generated dependencies file for dlaja_run.
# This may be replaced when dependencies are built.
