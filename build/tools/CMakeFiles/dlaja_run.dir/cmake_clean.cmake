file(REMOVE_RECURSE
  "CMakeFiles/dlaja_run.dir/dlaja_run.cpp.o"
  "CMakeFiles/dlaja_run.dir/dlaja_run.cpp.o.d"
  "dlaja_run"
  "dlaja_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
