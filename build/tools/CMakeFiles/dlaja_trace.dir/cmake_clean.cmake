file(REMOVE_RECURSE
  "CMakeFiles/dlaja_trace.dir/dlaja_trace.cpp.o"
  "CMakeFiles/dlaja_trace.dir/dlaja_trace.cpp.o.d"
  "dlaja_trace"
  "dlaja_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
