# Empty compiler generated dependencies file for dlaja_trace.
# This may be replaced when dependencies are built.
