# Empty compiler generated dependencies file for dlaja_cluster.
# This may be replaced when dependencies are built.
