file(REMOVE_RECURSE
  "CMakeFiles/dlaja_cluster.dir/config.cpp.o"
  "CMakeFiles/dlaja_cluster.dir/config.cpp.o.d"
  "CMakeFiles/dlaja_cluster.dir/speed_estimator.cpp.o"
  "CMakeFiles/dlaja_cluster.dir/speed_estimator.cpp.o.d"
  "CMakeFiles/dlaja_cluster.dir/worker.cpp.o"
  "CMakeFiles/dlaja_cluster.dir/worker.cpp.o.d"
  "libdlaja_cluster.a"
  "libdlaja_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
