file(REMOVE_RECURSE
  "libdlaja_cluster.a"
)
