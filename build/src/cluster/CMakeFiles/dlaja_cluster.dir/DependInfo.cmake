
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/config.cpp" "src/cluster/CMakeFiles/dlaja_cluster.dir/config.cpp.o" "gcc" "src/cluster/CMakeFiles/dlaja_cluster.dir/config.cpp.o.d"
  "/root/repo/src/cluster/speed_estimator.cpp" "src/cluster/CMakeFiles/dlaja_cluster.dir/speed_estimator.cpp.o" "gcc" "src/cluster/CMakeFiles/dlaja_cluster.dir/speed_estimator.cpp.o.d"
  "/root/repo/src/cluster/worker.cpp" "src/cluster/CMakeFiles/dlaja_cluster.dir/worker.cpp.o" "gcc" "src/cluster/CMakeFiles/dlaja_cluster.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dlaja_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlaja_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dlaja_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/dlaja_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlaja_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlaja_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
