file(REMOVE_RECURSE
  "CMakeFiles/dlaja_msr.dir/msr.cpp.o"
  "CMakeFiles/dlaja_msr.dir/msr.cpp.o.d"
  "libdlaja_msr.a"
  "libdlaja_msr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
