# Empty compiler generated dependencies file for dlaja_msr.
# This may be replaced when dependencies are built.
