file(REMOVE_RECURSE
  "libdlaja_msr.a"
)
