file(REMOVE_RECURSE
  "CMakeFiles/dlaja_workload.dir/catalog.cpp.o"
  "CMakeFiles/dlaja_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/dlaja_workload.dir/generator.cpp.o"
  "CMakeFiles/dlaja_workload.dir/generator.cpp.o.d"
  "CMakeFiles/dlaja_workload.dir/swf.cpp.o"
  "CMakeFiles/dlaja_workload.dir/swf.cpp.o.d"
  "CMakeFiles/dlaja_workload.dir/trace_io.cpp.o"
  "CMakeFiles/dlaja_workload.dir/trace_io.cpp.o.d"
  "libdlaja_workload.a"
  "libdlaja_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
