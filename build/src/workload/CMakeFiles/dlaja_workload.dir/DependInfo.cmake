
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cpp" "src/workload/CMakeFiles/dlaja_workload.dir/catalog.cpp.o" "gcc" "src/workload/CMakeFiles/dlaja_workload.dir/catalog.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/dlaja_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/dlaja_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/workload/CMakeFiles/dlaja_workload.dir/swf.cpp.o" "gcc" "src/workload/CMakeFiles/dlaja_workload.dir/swf.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/dlaja_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/dlaja_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/dlaja_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dlaja_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlaja_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
