file(REMOVE_RECURSE
  "libdlaja_workload.a"
)
