# Empty dependencies file for dlaja_workload.
# This may be replaced when dependencies are built.
