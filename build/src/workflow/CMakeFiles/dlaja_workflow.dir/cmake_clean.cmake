file(REMOVE_RECURSE
  "CMakeFiles/dlaja_workflow.dir/workflow.cpp.o"
  "CMakeFiles/dlaja_workflow.dir/workflow.cpp.o.d"
  "libdlaja_workflow.a"
  "libdlaja_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
