file(REMOVE_RECURSE
  "libdlaja_workflow.a"
)
