# Empty compiler generated dependencies file for dlaja_workflow.
# This may be replaced when dependencies are built.
