# Empty dependencies file for dlaja_net.
# This may be replaced when dependencies are built.
