file(REMOVE_RECURSE
  "CMakeFiles/dlaja_net.dir/flow.cpp.o"
  "CMakeFiles/dlaja_net.dir/flow.cpp.o.d"
  "CMakeFiles/dlaja_net.dir/network.cpp.o"
  "CMakeFiles/dlaja_net.dir/network.cpp.o.d"
  "CMakeFiles/dlaja_net.dir/noise.cpp.o"
  "CMakeFiles/dlaja_net.dir/noise.cpp.o.d"
  "CMakeFiles/dlaja_net.dir/topology.cpp.o"
  "CMakeFiles/dlaja_net.dir/topology.cpp.o.d"
  "libdlaja_net.a"
  "libdlaja_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
