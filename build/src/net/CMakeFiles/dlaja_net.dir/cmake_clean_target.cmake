file(REMOVE_RECURSE
  "libdlaja_net.a"
)
