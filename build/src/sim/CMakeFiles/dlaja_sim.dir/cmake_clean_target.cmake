file(REMOVE_RECURSE
  "libdlaja_sim.a"
)
