file(REMOVE_RECURSE
  "CMakeFiles/dlaja_sim.dir/simulator.cpp.o"
  "CMakeFiles/dlaja_sim.dir/simulator.cpp.o.d"
  "libdlaja_sim.a"
  "libdlaja_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
