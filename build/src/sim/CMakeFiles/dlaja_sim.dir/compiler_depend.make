# Empty compiler generated dependencies file for dlaja_sim.
# This may be replaced when dependencies are built.
