file(REMOVE_RECURSE
  "CMakeFiles/dlaja_msg.dir/broker.cpp.o"
  "CMakeFiles/dlaja_msg.dir/broker.cpp.o.d"
  "libdlaja_msg.a"
  "libdlaja_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
