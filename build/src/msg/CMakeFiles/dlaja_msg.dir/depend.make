# Empty dependencies file for dlaja_msg.
# This may be replaced when dependencies are built.
