file(REMOVE_RECURSE
  "libdlaja_msg.a"
)
