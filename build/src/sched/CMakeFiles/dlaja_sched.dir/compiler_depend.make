# Empty compiler generated dependencies file for dlaja_sched.
# This may be replaced when dependencies are built.
