file(REMOVE_RECURSE
  "CMakeFiles/dlaja_sched.dir/bar.cpp.o"
  "CMakeFiles/dlaja_sched.dir/bar.cpp.o.d"
  "CMakeFiles/dlaja_sched.dir/baseline.cpp.o"
  "CMakeFiles/dlaja_sched.dir/baseline.cpp.o.d"
  "CMakeFiles/dlaja_sched.dir/bidding.cpp.o"
  "CMakeFiles/dlaja_sched.dir/bidding.cpp.o.d"
  "CMakeFiles/dlaja_sched.dir/delay.cpp.o"
  "CMakeFiles/dlaja_sched.dir/delay.cpp.o.d"
  "CMakeFiles/dlaja_sched.dir/factory.cpp.o"
  "CMakeFiles/dlaja_sched.dir/factory.cpp.o.d"
  "CMakeFiles/dlaja_sched.dir/matchmaking.cpp.o"
  "CMakeFiles/dlaja_sched.dir/matchmaking.cpp.o.d"
  "CMakeFiles/dlaja_sched.dir/pull_base.cpp.o"
  "CMakeFiles/dlaja_sched.dir/pull_base.cpp.o.d"
  "CMakeFiles/dlaja_sched.dir/simple.cpp.o"
  "CMakeFiles/dlaja_sched.dir/simple.cpp.o.d"
  "CMakeFiles/dlaja_sched.dir/spark_like.cpp.o"
  "CMakeFiles/dlaja_sched.dir/spark_like.cpp.o.d"
  "libdlaja_sched.a"
  "libdlaja_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
