
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/bar.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/bar.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/bar.cpp.o.d"
  "/root/repo/src/sched/baseline.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/baseline.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/baseline.cpp.o.d"
  "/root/repo/src/sched/bidding.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/bidding.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/bidding.cpp.o.d"
  "/root/repo/src/sched/delay.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/delay.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/delay.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/matchmaking.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/matchmaking.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/matchmaking.cpp.o.d"
  "/root/repo/src/sched/pull_base.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/pull_base.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/pull_base.cpp.o.d"
  "/root/repo/src/sched/simple.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/simple.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/simple.cpp.o.d"
  "/root/repo/src/sched/spark_like.cpp" "src/sched/CMakeFiles/dlaja_sched.dir/spark_like.cpp.o" "gcc" "src/sched/CMakeFiles/dlaja_sched.dir/spark_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/dlaja_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/dlaja_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dlaja_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlaja_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dlaja_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlaja_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/dlaja_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dlaja_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
