file(REMOVE_RECURSE
  "libdlaja_sched.a"
)
