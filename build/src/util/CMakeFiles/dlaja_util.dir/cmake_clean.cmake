file(REMOVE_RECURSE
  "CMakeFiles/dlaja_util.dir/cli.cpp.o"
  "CMakeFiles/dlaja_util.dir/cli.cpp.o.d"
  "CMakeFiles/dlaja_util.dir/csv.cpp.o"
  "CMakeFiles/dlaja_util.dir/csv.cpp.o.d"
  "CMakeFiles/dlaja_util.dir/log.cpp.o"
  "CMakeFiles/dlaja_util.dir/log.cpp.o.d"
  "CMakeFiles/dlaja_util.dir/rng.cpp.o"
  "CMakeFiles/dlaja_util.dir/rng.cpp.o.d"
  "CMakeFiles/dlaja_util.dir/stats.cpp.o"
  "CMakeFiles/dlaja_util.dir/stats.cpp.o.d"
  "CMakeFiles/dlaja_util.dir/table.cpp.o"
  "CMakeFiles/dlaja_util.dir/table.cpp.o.d"
  "CMakeFiles/dlaja_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dlaja_util.dir/thread_pool.cpp.o.d"
  "libdlaja_util.a"
  "libdlaja_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
