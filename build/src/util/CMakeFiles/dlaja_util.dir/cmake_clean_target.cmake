file(REMOVE_RECURSE
  "libdlaja_util.a"
)
