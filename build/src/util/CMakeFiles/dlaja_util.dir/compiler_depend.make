# Empty compiler generated dependencies file for dlaja_util.
# This may be replaced when dependencies are built.
