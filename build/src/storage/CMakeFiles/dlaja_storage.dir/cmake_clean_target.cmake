file(REMOVE_RECURSE
  "libdlaja_storage.a"
)
