file(REMOVE_RECURSE
  "CMakeFiles/dlaja_storage.dir/cache.cpp.o"
  "CMakeFiles/dlaja_storage.dir/cache.cpp.o.d"
  "libdlaja_storage.a"
  "libdlaja_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
