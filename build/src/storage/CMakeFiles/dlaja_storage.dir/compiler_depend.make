# Empty compiler generated dependencies file for dlaja_storage.
# This may be replaced when dependencies are built.
