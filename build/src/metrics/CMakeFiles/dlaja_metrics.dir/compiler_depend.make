# Empty compiler generated dependencies file for dlaja_metrics.
# This may be replaced when dependencies are built.
