file(REMOVE_RECURSE
  "CMakeFiles/dlaja_metrics.dir/collector.cpp.o"
  "CMakeFiles/dlaja_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/dlaja_metrics.dir/report.cpp.o"
  "CMakeFiles/dlaja_metrics.dir/report.cpp.o.d"
  "CMakeFiles/dlaja_metrics.dir/timeline.cpp.o"
  "CMakeFiles/dlaja_metrics.dir/timeline.cpp.o.d"
  "libdlaja_metrics.a"
  "libdlaja_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
