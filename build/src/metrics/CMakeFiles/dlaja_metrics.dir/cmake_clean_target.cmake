file(REMOVE_RECURSE
  "libdlaja_metrics.a"
)
