
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/collector.cpp" "src/metrics/CMakeFiles/dlaja_metrics.dir/collector.cpp.o" "gcc" "src/metrics/CMakeFiles/dlaja_metrics.dir/collector.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/dlaja_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/dlaja_metrics.dir/report.cpp.o.d"
  "/root/repo/src/metrics/timeline.cpp" "src/metrics/CMakeFiles/dlaja_metrics.dir/timeline.cpp.o" "gcc" "src/metrics/CMakeFiles/dlaja_metrics.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/dlaja_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dlaja_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dlaja_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
