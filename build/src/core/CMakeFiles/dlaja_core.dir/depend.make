# Empty dependencies file for dlaja_core.
# This may be replaced when dependencies are built.
