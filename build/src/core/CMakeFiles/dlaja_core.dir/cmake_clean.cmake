file(REMOVE_RECURSE
  "CMakeFiles/dlaja_core.dir/engine.cpp.o"
  "CMakeFiles/dlaja_core.dir/engine.cpp.o.d"
  "CMakeFiles/dlaja_core.dir/experiment.cpp.o"
  "CMakeFiles/dlaja_core.dir/experiment.cpp.o.d"
  "libdlaja_core.a"
  "libdlaja_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlaja_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
