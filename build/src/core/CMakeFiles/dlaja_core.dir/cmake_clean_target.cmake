file(REMOVE_RECURSE
  "libdlaja_core.a"
)
