// dlaja_trace — workload-trace utilities.
//
//   dlaja_trace generate --workload 80%_large --jobs 200 --out trace.csv
//   dlaja_trace info trace.csv
//   dlaja_trace replay trace.csv --scheduler bidding --fleet fast-slow
//   dlaja_trace profile trace.csv --scheduler bidding --top 10
//   dlaja_trace profile run.trace.json
//   dlaja_trace synth-swf --jobs 500 --out log.swf
//   dlaja_trace convert-swf log.swf --out trace.csv --time-scale 0.1

#include <fstream>
#include <iostream>
#include <map>

#include "core/engine.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "workload/swf.hpp"
#include "workload/trace_io.hpp"

using namespace dlaja;

namespace {

int cmd_generate(const ArgParser& args) {
  workload::WorkloadSpec spec =
      workload::make_workload_spec(workload::job_config_from_name(args.get("workload")));
  spec.job_count = static_cast<std::size_t>(args.get_int("jobs"));
  spec.arrival_mean_s = args.get_double("arrival");
  const auto workload =
      workload::generate_workload(spec, SeedSequencer(static_cast<std::uint64_t>(args.get_int("seed"))));
  const std::string out = args.get("out");
  workload::save_trace_file(out, workload);
  std::cout << "wrote " << workload.jobs.size() << " jobs, "
            << workload.catalog.count() << " repositories ("
            << fmt_fixed(workload.unique_mb() / 1024.0, 2) << " GB distinct) -> " << out
            << "\n";
  return 0;
}

int cmd_info(const std::string& path) {
  const auto workload = workload::load_trace_file(path);
  std::map<storage::ResourceId, int> repetition;
  MegaBytes smallest = 0.0, largest = 0.0;
  for (const auto& job : workload.jobs) {
    if (!job.needs_resource()) continue;
    if (repetition.empty()) {
      smallest = largest = job.resource_size_mb;
    } else {
      smallest = std::min(smallest, job.resource_size_mb);
      largest = std::max(largest, job.resource_size_mb);
    }
    ++repetition[job.resource];
  }
  int hottest = 0;
  for (const auto& [id, count] : repetition) hottest = std::max(hottest, count);
  // A trace of pure-compute jobs has no repository sizes to summarize;
  // report n/a instead of the scan's seed values.
  const bool has_resources = !repetition.empty();

  TextTable table("trace: " + path);
  table.add_row({"jobs", std::to_string(workload.jobs.size())});
  table.add_row({"distinct repositories", std::to_string(repetition.size())});
  table.add_row({"naive volume (MB)", fmt_fixed(workload.naive_mb(), 1)});
  table.add_row({"distinct volume (MB)", fmt_fixed(workload.unique_mb(), 1)});
  table.add_row({"smallest repo (MB)", has_resources ? fmt_fixed(smallest, 1) : "n/a"});
  table.add_row({"largest repo (MB)", has_resources ? fmt_fixed(largest, 1) : "n/a"});
  table.add_row({"hottest repo (jobs)", has_resources ? std::to_string(hottest) : "n/a"});
  if (!workload.jobs.empty()) {
    table.add_row({"span (s)", fmt_fixed(seconds_from_ticks(workload.jobs.back().created_at), 1)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_synth_swf(const ArgParser& args) {
  std::ofstream out(args.get("out"));
  if (!out) {
    std::cerr << "cannot open " << args.get("out") << "\n";
    return 1;
  }
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs"));
  workload::write_synthetic_swf(out, jobs,
                                static_cast<std::size_t>(args.get_int("executables")),
                                static_cast<std::uint64_t>(args.get_int("seed")));
  std::cout << "wrote synthetic SWF log (" << jobs << " jobs) -> " << args.get("out")
            << "\n";
  return 0;
}

int cmd_convert_swf(const ArgParser& args, const std::string& path) {
  workload::SwfOptions options;
  options.time_scale = args.get_double("time-scale");
  options.max_jobs = static_cast<std::size_t>(args.get_int("jobs"));
  const auto workload = workload::load_swf_file(path, options);
  workload::save_trace_file(args.get("out"), workload);
  std::cout << "converted " << workload.jobs.size() << " SWF jobs over "
            << workload.catalog.count() << " application datasets ("
            << fmt_fixed(workload.unique_mb() / 1024.0, 2) << " GB distinct) -> "
            << args.get("out") << "\n";
  return 0;
}

int cmd_replay(const ArgParser& args, const std::string& path) {
  const auto workload = workload::load_trace_file(path);
  core::EngineConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  core::Engine engine(
      cluster::make_fleet(cluster::fleet_preset_from_name(args.get("fleet")),
                          static_cast<std::size_t>(args.get_int("workers"))),
      sched::make_scheduler(args.get("scheduler")), config);
  const auto report = engine.run(workload.jobs);
  TextTable table("replay: " + path + " under " + args.get("scheduler"));
  table.add_row({"exec time (s)", fmt_fixed(report.exec_time_s, 1)});
  table.add_row({"cache misses", std::to_string(report.cache_misses)});
  table.add_row({"data load (MB)", fmt_fixed(report.data_load_mb, 1)});
  table.add_row({"jobs completed", std::to_string(report.jobs_completed)});
  table.print(std::cout);
  return 0;
}

int cmd_profile(const ArgParser& args, const std::string& path) {
  const auto top = static_cast<std::size_t>(args.get_int("top"));
  obs::Tracer tracer;

  const bool is_json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (is_json) {
    // Profile an exported Chrome trace (e.g. from `dlaja_run --trace`).
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    const std::size_t imported = obs::read_chrome_trace(in, tracer);
    std::cout << "profiling " << imported << " events from " << path << "\n";
  } else {
    // Replay the workload trace with tracing enabled and profile the run.
    const auto workload = workload::load_trace_file(path);
    core::EngineConfig config;
    config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    core::Engine engine(
        cluster::make_fleet(cluster::fleet_preset_from_name(args.get("fleet")),
                            static_cast<std::size_t>(args.get_int("workers"))),
        sched::make_scheduler(args.get("scheduler")), config);
    tracer.set_enabled(true);
    engine.simulator().set_tracer(&tracer);
    (void)engine.run(workload.jobs);
    std::cout << "profiling " << tracer.events().size() << " events from a "
              << args.get("scheduler") << " replay of " << path << "\n";
  }

  obs::print_profile(std::cout, tracer, top);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("dlaja_trace", "generate, inspect, convert, replay and profile traces");
  args.add_positional("command", "generate | info | replay | profile | synth-swf | convert-swf");
  args.add_positional("file", "input file (info/replay/profile/convert-swf)",
                      /*required=*/false);
  args.add_option("workload", "80%_large", "job config for generate");
  args.add_option("jobs", "120", "job count for generate/synth-swf (cap for convert-swf)");
  args.add_option("arrival", "2.0", "mean inter-arrival seconds for generate");
  args.add_option("out", "trace.csv", "output path for generate/synth-swf/convert-swf");
  args.add_option("scheduler", "bidding", "scheduler for replay");
  args.add_option("fleet", "all-equal", "fleet preset for replay");
  args.add_option("workers", "5", "fleet size for replay");
  args.add_option("seed", "42", "seed for generate/replay/synth-swf");
  args.add_option("executables", "15", "distinct applications for synth-swf");
  args.add_option("time-scale", "1.0", "arrival-timeline scale for convert-swf");
  args.add_option("top", "10", "rows in the profile's top-spans table");
  args.add_option("log-level", "warn", "log verbosity: trace|debug|info|warn|error|off");
  if (!args.parse(argc, argv)) return 1;
  set_log_level(parse_log_level(args.get("log-level")));

  const std::string command = args.positionals()[0];
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "synth-swf") return cmd_synth_swf(args);
    if (command == "info" || command == "replay" || command == "profile" ||
        command == "convert-swf") {
      if (args.positionals().size() < 2) {
        std::cerr << command << " needs an input file\n";
        return 1;
      }
      const std::string& file = args.positionals()[1];
      if (command == "info") return cmd_info(file);
      if (command == "profile") return cmd_profile(args, file);
      if (command == "convert-swf") return cmd_convert_swf(args, file);
      return cmd_replay(args, file);
    }
    std::cerr << "unknown command: " << command << "\n" << args.usage();
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
