// dlaja_trace — workload-trace utilities.
//
//   dlaja_trace generate --workload 80%_large --jobs 200 --out trace.csv
//   dlaja_trace info trace.csv
//   dlaja_trace replay trace.csv --scheduler bidding --fleet fast-slow
//   dlaja_trace profile trace.csv --scheduler bidding --top 10
//   dlaja_trace profile run.trace.json
//   dlaja_trace synth-swf --jobs 500 --out log.swf
//   dlaja_trace convert-swf log.swf --out trace.csv --time-scale 0.1
//   dlaja_trace timeseries run.telemetry.csv

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>

#include "core/engine.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sched/factory.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "workload/swf.hpp"
#include "workload/trace_io.hpp"

using namespace dlaja;

namespace {

int cmd_generate(const ArgParser& args) {
  workload::WorkloadSpec spec =
      workload::make_workload_spec(workload::job_config_from_name(args.get("workload")));
  spec.job_count = static_cast<std::size_t>(args.get_int("jobs"));
  spec.arrival_mean_s = args.get_double("arrival");
  const auto workload =
      workload::generate_workload(spec, SeedSequencer(static_cast<std::uint64_t>(args.get_int("seed"))));
  const std::string out = args.get("out");
  workload::save_trace_file(out, workload);
  std::cout << "wrote " << workload.jobs.size() << " jobs, "
            << workload.catalog.count() << " repositories ("
            << fmt_fixed(workload.unique_mb() / 1024.0, 2) << " GB distinct) -> " << out
            << "\n";
  return 0;
}

int cmd_info(const std::string& path) {
  const auto workload = workload::load_trace_file(path);
  std::map<storage::ResourceId, int> repetition;
  MegaBytes smallest = 0.0, largest = 0.0;
  for (const auto& job : workload.jobs) {
    if (!job.needs_resource()) continue;
    if (repetition.empty()) {
      smallest = largest = job.resource_size_mb;
    } else {
      smallest = std::min(smallest, job.resource_size_mb);
      largest = std::max(largest, job.resource_size_mb);
    }
    ++repetition[job.resource];
  }
  int hottest = 0;
  for (const auto& [id, count] : repetition) hottest = std::max(hottest, count);
  // A trace of pure-compute jobs has no repository sizes to summarize;
  // report n/a instead of the scan's seed values.
  const bool has_resources = !repetition.empty();

  TextTable table("trace: " + path);
  table.add_row({"jobs", std::to_string(workload.jobs.size())});
  table.add_row({"distinct repositories", std::to_string(repetition.size())});
  table.add_row({"naive volume (MB)", fmt_fixed(workload.naive_mb(), 1)});
  table.add_row({"distinct volume (MB)", fmt_fixed(workload.unique_mb(), 1)});
  table.add_row({"smallest repo (MB)", has_resources ? fmt_fixed(smallest, 1) : "n/a"});
  table.add_row({"largest repo (MB)", has_resources ? fmt_fixed(largest, 1) : "n/a"});
  table.add_row({"hottest repo (jobs)", has_resources ? std::to_string(hottest) : "n/a"});
  if (!workload.jobs.empty()) {
    table.add_row({"span (s)", fmt_fixed(seconds_from_ticks(workload.jobs.back().created_at), 1)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_synth_swf(const ArgParser& args) {
  std::ofstream out(args.get("out"));
  if (!out) {
    std::cerr << "cannot open " << args.get("out") << "\n";
    return 1;
  }
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs"));
  workload::write_synthetic_swf(out, jobs,
                                static_cast<std::size_t>(args.get_int("executables")),
                                static_cast<std::uint64_t>(args.get_int("seed")));
  std::cout << "wrote synthetic SWF log (" << jobs << " jobs) -> " << args.get("out")
            << "\n";
  return 0;
}

int cmd_convert_swf(const ArgParser& args, const std::string& path) {
  workload::SwfOptions options;
  options.time_scale = args.get_double("time-scale");
  options.max_jobs = static_cast<std::size_t>(args.get_int("jobs"));
  const auto workload = workload::load_swf_file(path, options);
  workload::save_trace_file(args.get("out"), workload);
  std::cout << "converted " << workload.jobs.size() << " SWF jobs over "
            << workload.catalog.count() << " application datasets ("
            << fmt_fixed(workload.unique_mb() / 1024.0, 2) << " GB distinct) -> "
            << args.get("out") << "\n";
  return 0;
}

int cmd_replay(const ArgParser& args, const std::string& path) {
  const auto workload = workload::load_trace_file(path);
  core::EngineConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  core::Engine engine(
      cluster::make_fleet(cluster::fleet_preset_from_name(args.get("fleet")),
                          static_cast<std::size_t>(args.get_int("workers"))),
      sched::make_scheduler(args.get("scheduler")), config);
  const auto report = engine.run(workload.jobs);
  TextTable table("replay: " + path + " under " + args.get("scheduler"));
  table.add_row({"exec time (s)", fmt_fixed(report.exec_time_s, 1)});
  table.add_row({"cache misses", std::to_string(report.cache_misses)});
  table.add_row({"data load (MB)", fmt_fixed(report.data_load_mb, 1)});
  table.add_row({"jobs completed", std::to_string(report.jobs_completed)});
  table.print(std::cout);
  return 0;
}

/// MSER-style warmup truncation: the steady-state window [d, n) is the one
/// minimizing the standard error of its mean, var(x[d..n)) / (n - d), over
/// truncation points d in [0, n/2]. Returns the chosen d (0 = no warmup).
std::size_t steady_state_start(const std::vector<double>& x) {
  const std::size_t n = x.size();
  if (n < 4) return 0;
  // Suffix sums make every candidate O(1).
  std::vector<double> sum(n + 1, 0.0), sumsq(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    sum[i] = sum[i + 1] + x[i];
    sumsq[i] = sumsq[i + 1] + x[i] * x[i];
  }
  std::size_t best = 0;
  double best_stat = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= n / 2; ++d) {
    const double m = static_cast<double>(n - d);
    const double mean = sum[d] / m;
    const double var = std::max(0.0, sumsq[d] / m - mean * mean);
    const double stat = var / m;
    if (stat < best_stat) {
      best_stat = stat;
      best = d;
    }
  }
  return best;
}

/// Renders a series as a fixed-width sparkline (U+2581..U+2588), averaging
/// samples into `width` buckets and scaling to the series' own min..max.
std::string sparkline(const std::vector<double>& x, std::size_t width) {
  static const char* kBlocks[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  if (x.empty()) return "";
  const auto [lo_it, hi_it] = std::minmax_element(x.begin(), x.end());
  const double lo = *lo_it, hi = *hi_it;
  const std::size_t buckets = std::min(width, x.size());
  std::string out;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * x.size() / buckets;
    const std::size_t end = std::max(begin + 1, (b + 1) * x.size() / buckets);
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += x[i];
    const double v = acc / static_cast<double>(end - begin);
    // A flat series renders mid-height rather than dividing by a zero span.
    const double unit = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    const int level = std::clamp(static_cast<int>(unit * 8.0), 0, 7);
    out += kBlocks[level];
  }
  return out;
}

std::string fmt_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

int cmd_timeseries(const ArgParser& args, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  const auto split = [](const std::string& line) {
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    return fields;
  };
  std::string line;
  if (!std::getline(in, line)) {
    std::cerr << path << ": empty file\n";
    return 1;
  }
  const std::vector<std::string> header = split(line);
  if (header.size() < 2 || header[0] != "tick" || header[1] != "time_s") {
    std::cerr << path << ": not a telemetry CSV (expected header tick,time_s,<series...>)\n";
    return 1;
  }
  const std::size_t series_count = header.size() - 2;
  std::vector<double> times;
  std::vector<std::vector<double>> series(series_count);
  std::size_t row_index = 1;
  while (std::getline(in, line)) {
    ++row_index;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line);
    if (fields.size() != header.size()) {
      std::cerr << path << ":" << row_index << ": expected " << header.size()
                << " fields, got " << fields.size() << "\n";
      return 1;
    }
    times.push_back(std::stod(fields[1]));
    for (std::size_t s = 0; s < series_count; ++s) {
      series[s].push_back(std::stod(fields[s + 2]));
    }
  }
  if (times.empty()) {
    std::cerr << path << ": no samples\n";
    return 1;
  }
  std::cout << series_count << " series x " << times.size() << " samples, "
            << fmt_value(times.front()) << "s .. " << fmt_value(times.back()) << "s\n";

  TextTable table("timeseries: " + path);
  table.set_header({"series", "min", "max", "mean", "stddev", "warmup (s)", "steady mean"});
  for (std::size_t s = 0; s < series_count; ++s) {
    const std::vector<double>& x = series[s];
    const auto [lo, hi] = std::minmax_element(x.begin(), x.end());
    double acc = 0.0, accsq = 0.0;
    for (const double v : x) {
      acc += v;
      accsq += v * v;
    }
    const double n = static_cast<double>(x.size());
    const double mean = acc / n;
    const double stddev = std::sqrt(std::max(0.0, accsq / n - mean * mean));
    const std::size_t warm = steady_state_start(x);
    double steady_acc = 0.0;
    for (std::size_t i = warm; i < x.size(); ++i) steady_acc += x[i];
    const double steady_mean = steady_acc / static_cast<double>(x.size() - warm);
    table.add_row({header[s + 2], fmt_value(*lo), fmt_value(*hi), fmt_value(mean),
                   fmt_value(stddev), warm > 0 ? fmt_value(times[warm]) : "0",
                   fmt_value(steady_mean)});
  }
  table.print(std::cout);

  const auto width = static_cast<std::size_t>(args.get_int("width"));
  std::size_t label_width = 0;
  for (std::size_t s = 0; s < series_count; ++s) {
    label_width = std::max(label_width, header[s + 2].size());
  }
  for (std::size_t s = 0; s < series_count; ++s) {
    std::cout << header[s + 2] << std::string(label_width - header[s + 2].size(), ' ')
              << "  " << sparkline(series[s], width) << "\n";
  }
  return 0;
}

int cmd_profile(const ArgParser& args, const std::string& path) {
  const auto top = static_cast<std::size_t>(args.get_int("top"));
  obs::Tracer tracer;

  const bool is_json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (is_json) {
    // Profile an exported Chrome trace (e.g. from `dlaja_run --trace`).
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    const std::size_t imported = obs::read_chrome_trace(in, tracer);
    std::cout << "profiling " << imported << " events from " << path << "\n";
  } else {
    // Replay the workload trace with tracing enabled and profile the run.
    const auto workload = workload::load_trace_file(path);
    core::EngineConfig config;
    config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    core::Engine engine(
        cluster::make_fleet(cluster::fleet_preset_from_name(args.get("fleet")),
                            static_cast<std::size_t>(args.get_int("workers"))),
        sched::make_scheduler(args.get("scheduler")), config);
    tracer.set_enabled(true);
    engine.simulator().set_tracer(&tracer);
    (void)engine.run(workload.jobs);
    std::cout << "profiling " << tracer.events().size() << " events from a "
              << args.get("scheduler") << " replay of " << path << "\n";
  }

  obs::print_profile(std::cout, tracer, top);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("dlaja_trace", "generate, inspect, convert, replay and profile traces");
  args.add_positional("command",
                      "generate | info | replay | profile | timeseries | synth-swf | convert-swf");
  args.add_positional("file", "input file (info/replay/profile/timeseries/convert-swf)",
                      /*required=*/false);
  args.add_option("workload", "80%_large", "job config for generate");
  args.add_option("jobs", "120", "job count for generate/synth-swf (cap for convert-swf)");
  args.add_option("arrival", "2.0", "mean inter-arrival seconds for generate");
  args.add_option("out", "trace.csv", "output path for generate/synth-swf/convert-swf");
  args.add_option("scheduler", "bidding", "scheduler for replay");
  args.add_option("fleet", "all-equal", "fleet preset for replay");
  args.add_option("workers", "5", "fleet size for replay");
  args.add_option("seed", "42", "seed for generate/replay/synth-swf");
  args.add_option("executables", "15", "distinct applications for synth-swf");
  args.add_option("time-scale", "1.0", "arrival-timeline scale for convert-swf");
  args.add_option("top", "10", "rows in the profile's top-spans table");
  args.add_option("width", "60", "sparkline width (buckets) for timeseries");
  args.add_option("log-level", "warn", "log verbosity: trace|debug|info|warn|error|off");
  if (!args.parse(argc, argv)) return 1;
  set_log_level(parse_log_level(args.get("log-level")));

  const std::string command = args.positionals()[0];
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "synth-swf") return cmd_synth_swf(args);
    if (command == "info" || command == "replay" || command == "profile" ||
        command == "timeseries" || command == "convert-swf") {
      if (args.positionals().size() < 2) {
        std::cerr << command << " needs an input file\n";
        return 1;
      }
      const std::string& file = args.positionals()[1];
      if (command == "info") return cmd_info(file);
      if (command == "profile") return cmd_profile(args, file);
      if (command == "timeseries") return cmd_timeseries(args, file);
      if (command == "convert-swf") return cmd_convert_swf(args, file);
      return cmd_replay(args, file);
    }
    std::cerr << "unknown command: " << command << "\n" << args.usage();
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
