// dlaja_msr — run the full MSR pipeline (the paper's §6.4 protocol) from
// the command line.
//
//   dlaja_msr --scheduler bidding --libraries 30 --repositories 90
//   dlaja_msr --scheduler baseline --runs 3 --jobs-csv jobs.csv

#include <fstream>
#include <iostream>

#include "core/engine.hpp"
#include "metrics/timeline.hpp"
#include "msr/msr.hpp"
#include "sched/factory.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/trace_io.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  ArgParser args("dlaja_mine", "run the GitHub-mining (MSR) pipeline end to end");
  args.add_option("scheduler", "bidding", "scheduler name");
  args.add_option("libraries", "30", "NPM libraries streamed into the pipeline");
  args.add_option("repositories", "90", "synthetic GitHub repositories");
  args.add_option("match", "0.15", "base library-in-repository probability");
  args.add_option("workers", "5", "fleet size");
  args.add_option("runs", "3", "independent runs (fresh caches each, like §6.4)");
  args.add_option("seed", "42", "base seed (runs use seed, seed+1, ...)");
  args.add_option("flatten", "", "write the analyzer workload as a trace to this file");
  args.add_option("jobs-csv", "", "write the last run's per-job Gantt rows to this file");
  if (!args.parse(argc, argv)) return 1;

  msr::MsrConfig config;
  config.library_count = static_cast<std::size_t>(args.get_int("libraries"));
  config.repository_count = static_cast<std::size_t>(args.get_int("repositories"));
  config.match_probability = args.get_double("match");

  const auto pipeline = msr::build_msr_pipeline(config, SeedSequencer(42));
  std::cout << "pipeline: " << config.library_count << " libraries, "
            << config.repository_count << " repositories ("
            << fmt_fixed(pipeline.catalog.total_mb() / 1024.0, 1) << " GB), "
            << pipeline.analyzer_job_count() << " analyzer jobs\n\n";

  if (!args.get("flatten").empty()) {
    workload::save_trace_file(args.get("flatten"),
                              msr::flatten_to_workload(pipeline, config));
    std::cout << "analyzer workload -> " << args.get("flatten") << "\n";
  }

  TextTable table("MSR runs under " + args.get("scheduler") +
                  " (historic speed estimation, 100 MB probe)");
  table.set_header({"run", "exec (s)", "data load (MB)", "cache misses", "co-occur hits"});
  const int runs = static_cast<int>(args.get_int("runs"));
  for (int r = 0; r < runs; ++r) {
    // Fresh pipeline per run so the results counter starts clean.
    const auto run_pipeline = msr::build_msr_pipeline(config, SeedSequencer(42));
    core::EngineConfig engine_config;
    engine_config.seed = static_cast<std::uint64_t>(args.get_int("seed") + r);
    engine_config.estimation = cluster::SpeedEstimator::Mode::kHistoric;
    engine_config.probe_speeds = true;
    core::Engine engine(
        msr::make_msr_fleet(static_cast<std::size_t>(args.get_int("workers"))),
        sched::make_scheduler(args.get("scheduler")), engine_config);
    engine.set_workflow(run_pipeline.workflow);
    const auto report = engine.run(run_pipeline.seed_jobs);
    table.add_row({"run " + std::to_string(r + 1), fmt_fixed(report.exec_time_s, 2),
                   fmt_fixed(report.data_load_mb, 2), std::to_string(report.cache_misses),
                   std::to_string(run_pipeline.results->total_hits())});

    if (r == runs - 1 && !args.get("jobs-csv").empty()) {
      std::ofstream out(args.get("jobs-csv"));
      if (!out) {
        std::cerr << "cannot open " << args.get("jobs-csv") << "\n";
        return 1;
      }
      metrics::write_jobs_csv(out, engine.metrics());
      std::cout << "per-job rows -> " << args.get("jobs-csv") << "\n";
    }
  }
  table.print(std::cout);
  return 0;
}
