// dlaja_run — general experiment runner.
//
// Runs (scheduler × workload × fleet) for N carried iterations and prints
// the run reports; optionally dumps raw rows as CSV and per-run concurrency
// timelines.
//
//   dlaja_run --scheduler bidding --workload 80%_large --fleet fast-slow
//   dlaja_run --scheduler baseline --jobs 240 --iters 5 --noise lognormal:0.5
//   dlaja_run --scheduler bidding --estimation historic --csv runs.csv
//   dlaja_run --scenario examples/scenarios/paper_bidding.json
//   dlaja_run --scenario federated_2x.json --set scheduler.fanout=cached:8 \
//             --set scheduler.federation.partitions=4
//
// Spec sources compose by one precedence rule: flags < scenario < --set.
// Flags fill scenario keys the file leaves out; --set dotted-path
// overrides beat both.

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/experiment.hpp"
#include "metrics/timeline.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  ArgParser args("dlaja_run",
                 "run a locality-scheduling experiment and print the paper's metrics");
  args.add_option("scenario", "",
                  "run a scenario file (JSON); spec flags fill keys the file "
                  "leaves out (precedence: flags < scenario < --set), and output "
                  "flags (--csv, --timeline, --trace, ...) still apply");
  args.add_multi_option(
      "set",
      "dotted-path scenario override, e.g. --set scheduler.fanout=cached:8 or "
      "--set scheduler.federation.partitions=2 or --set workers=16; repeatable, "
      "applied last (precedence: flags < scenario < --set); values parse as "
      "JSON when possible, else as strings");
  args.add_option("scheduler", "bidding",
                  "scheduler spec, e.g. bidding, bidding:fanout=probe:4, "
                  "baseline:declines=2, bidding:fed.partitions=2,fed.spill=1.5 "
                  "(see sched::scheduler_names())");
  args.add_option("workload", "80%_large",
                  "job config: all_diff_equal|all_diff_large|all_diff_small|80%_large|80%_small");
  args.add_option("fleet", "all-equal", "fleet preset: all-equal|one-fast|one-slow|fast-slow");
  args.add_option("workers", "5", "fleet size");
  args.add_option("jobs", "120", "jobs per run");
  args.add_option("iters", "3", "iterations with cache carry-over");
  args.add_option("seed", "42", "master seed");
  args.add_option("noise", "throttle:0.1,0.3", "noise scheme for effective speeds");
  args.add_option("faults", "",
                  "fault plan, e.g. \"crash:w=1,at=15,down=30;drop:p=0.01\" "
                  "(crash | crashes | sched_crash | degrade | drop | dup "
                  "clauses, ';'-separated)");
  args.add_option("estimation", "nominal", "bid speeds: nominal | historic");
  args.add_option("csv", "", "write raw run rows to this file");
  args.add_option("timeline", "", "write the last run's concurrency series to this file");
  args.add_option("trace", "", "write a Chrome trace-event JSON of a detail run to this file");
  args.add_option("trace-csv", "", "write the detail run's trace events as CSV to this file");
  args.add_option("log-level", "warn", "log verbosity: trace|debug|info|warn|error|off");
  args.add_option("shards", "",
                  "worker shards for the parallel kernel (1 = classic single-threaded "
                  "kernel); also overrides a scenario's 'shards' field");
  args.add_option("telemetry-interval", "",
                  "sample in-run telemetry gauges every this many simulated seconds "
                  "(0 = off); also overrides a scenario's 'telemetry' interval");
  args.add_option("telemetry-csv", "",
                  "write the detail run's telemetry series to this file (implies "
                  "telemetry at the default 30s cadence if no interval is given)");
  args.add_option("telemetry-json", "",
                  "write the detail run's telemetry series as JSON to this file");
  args.add_flag("no-carry", "do not carry caches across iterations");
  args.add_flag("flat-latency",
                "zero all latency jitter (with --noise none, reports become "
                "independent of the shard count)");
  if (!args.parse(argc, argv)) return 1;
  set_log_level(parse_log_level(args.get("log-level")));

  // Assemble ONE scenario document from the three spec sources, weakest
  // first: spec flags, then the scenario file, then --set overrides. The
  // merged document flows through ExperimentSpec::from_json exactly like a
  // scenario file would, so every surface shares one parser and one set of
  // error messages.
  core::ExperimentSpec spec;
  const bool have_scenario = !args.get("scenario").empty();
  try {
    json::Object doc;
    if (have_scenario) {
      std::ifstream in(args.get("scenario"));
      if (!in) {
        std::cerr << "cannot open " << args.get("scenario") << "\n";
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      const json::Value parsed = json::parse(text.str());
      if (!parsed.is_object()) {
        throw std::invalid_argument("scenario: document must be a JSON object");
      }
      doc = parsed.as_object();
    }
    // Flags are the weakest layer: with a scenario, a flag fills its key
    // only when explicitly given AND the file leaves the key out; without
    // one, the flag defaults build the whole document.
    const auto fill = [&](const char* flag, const std::string& key, const json::Value& value) {
      if (have_scenario ? (args.given(flag) && !doc.contains(key)) : true) doc[key] = value;
    };
    fill("scheduler", "scheduler", json::Value{args.get("scheduler")});
    fill("workload", "workload", json::Value{args.get("workload")});
    fill("jobs", "jobs", json::Value{args.get_int("jobs")});
    fill("fleet", "fleet", json::Value{args.get("fleet")});
    fill("workers", "workers", json::Value{args.get_int("workers")});
    fill("iters", "iterations", json::Value{args.get_int("iters")});
    fill("seed", "seed", json::Value{args.get_int("seed")});
    fill("noise", "noise", json::Value{args.get("noise")});
    fill("estimation", "estimation", json::Value{args.get("estimation")});
    if (!args.get("faults").empty()) {
      fill("faults", "faults", json::Value{args.get("faults")});
    }
    if (args.given("no-carry")) fill("no-carry", "carry_cache", json::Value{false});

    // --set overrides beat both layers. Paths into a config-string
    // "scheduler" first expand it to the object form so dotted scheduler
    // keys compose with either wire form.
    for (const std::string& entry : args.get_all("set")) {
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "--set wants path=value, got '" << entry << "'\n";
        return 1;
      }
      const std::string path = entry.substr(0, eq);
      const std::string text = entry.substr(eq + 1);
      std::vector<std::string> segments;
      for (std::size_t pos = 0; pos <= path.size();) {
        const std::size_t dot = path.find('.', pos);
        segments.push_back(
            path.substr(pos, dot == std::string::npos ? std::string::npos : dot - pos));
        if (segments.back().empty()) {
          std::cerr << "--set: empty path segment in '" << path << "'\n";
          return 1;
        }
        pos = dot == std::string::npos ? path.size() + 1 : dot + 1;
      }
      if (segments.size() > 1 && segments.front() == "scheduler") {
        const json::Value* current = doc.find("scheduler");
        if (current == nullptr || current->is_string()) {
          const sched::SchedulerSpec base =
              current == nullptr ? sched::SchedulerSpec{}
                                 : sched::SchedulerSpec::parse(current->as_string());
          if (!base.parse_error().empty()) {
            throw std::invalid_argument(base.parse_error());
          }
          json::Object expanded;
          expanded["type"] = base.type();
          for (const auto& [okey, ovalue] : base.options()) expanded[okey] = ovalue;
          doc["scheduler"] = json::Value{std::move(expanded)};
        }
      }
      // Values parse as JSON when they can (numbers, bools, arrays), and
      // fall back to plain strings ("cached:8", "80%_large", fault plans).
      json::Value leaf;
      try {
        leaf = json::parse(text);
      } catch (const std::invalid_argument&) {
        leaf = json::Value{text};
      }
      json::Object* cursor = &doc;
      std::vector<json::Object> spine;  // copies of intermediate objects
      spine.reserve(segments.size());
      for (std::size_t depth = 0; depth + 1 < segments.size(); ++depth) {
        json::Value& slot = (*cursor)[segments[depth]];
        if (!slot.is_null() && !slot.is_object()) {
          std::cerr << "--set: '" << segments[depth] << "' in '" << path
                    << "' is not an object\n";
          return 1;
        }
        spine.push_back(slot.is_object() ? slot.as_object() : json::Object{});
        cursor = &spine.back();
      }
      (*cursor)[segments.back()] = std::move(leaf);
      // Fold the copied spine back up into the document.
      for (std::size_t depth = spine.size(); depth-- > 0;) {
        json::Object* parent = depth == 0 ? &doc : &spine[depth - 1];
        (*parent)[segments[depth]] = json::Value{std::move(spine[depth])};
      }
    }

    spec = core::ExperimentSpec::from_json(json::Value{std::move(doc)});
  } catch (const std::invalid_argument& error) {
    if (have_scenario) std::cerr << args.get("scenario") << ": ";
    std::cerr << error.what() << "\n";
    return 1;
  }
  if (!spec.name.empty()) std::cout << "scenario: " << spec.name << "\n";

  // --shards / --flat-latency / --telemetry-interval apply on top of either
  // source, so one scenario file can be diffed across shard counts or probed
  // with telemetry (the CI shard-smoke and telemetry-smoke jobs do).
  if (args.given("shards")) spec.shards = static_cast<std::size_t>(args.get_int("shards"));
  if (args.given("flat-latency")) spec.flat_control_plane = true;
  if (args.given("telemetry-interval")) {
    spec.telemetry_interval_s = args.get_double("telemetry-interval");
  } else if (spec.telemetry_interval_s == 0.0 &&
             (args.given("telemetry-csv") || args.given("telemetry-json"))) {
    // Asking for a telemetry export opts in; sample at the default cadence.
    spec.telemetry_interval_s = core::kTelemetryDefaultIntervalS;
  }

  const auto issues = spec.validate();
  if (!issues.empty()) {
    std::cerr << "invalid experiment spec:\n";
    for (const auto& issue : issues) {
      std::cerr << "  " << issue.field << ": " << issue.message << "\n";
    }
    return 1;
  }
  if (!spec.faults.empty()) std::cout << "fault plan: " << spec.faults.describe() << "\n";

  std::vector<metrics::RunReport> reports;
  try {
    reports = core::run_experiment(spec);
  } catch (const std::runtime_error& error) {
    // The telemetry watchdog aborts the run by throwing; the series tail has
    // already been dumped to stderr by the engine.
    std::cerr << error.what() << "\n";
    return 2;
  }

  const bool with_faults = !spec.faults.empty();
  TextTable table(spec.scheduler.to_config_string() + " on " + spec.workload_name() + " / " +
                  spec.fleet_name());
  std::vector<std::string> header = {"iter",      "exec (s)",      "misses",  "data (MB)",
                                     "completed", "alloc lat (s)", "hit rate"};
  if (with_faults) {
    header.push_back("retried");
    header.push_back("dead");
  }
  table.set_header(header);
  for (const auto& r : reports) {
    std::vector<std::string> row = {std::to_string(r.iteration), fmt_fixed(r.exec_time_s, 1),
                                    std::to_string(r.cache_misses), fmt_fixed(r.data_load_mb, 1),
                                    std::to_string(r.jobs_completed),
                                    fmt_fixed(r.avg_alloc_latency_s, 3),
                                    fmt_percent(r.cache_hit_rate)};
    if (with_faults) {
      row.push_back(std::to_string(r.jobs_retried));
      row.push_back(std::to_string(r.jobs_dead_lettered));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  if (spec.open_arrivals) {
    // Open-arrival runs are about steady state, not batch makespan: report
    // sustained throughput and the sojourn distribution the streaming
    // engine folded into the registry (percentiles via the log-linear
    // histogram; p99/p999 live in the telemetry series / --telemetry-csv).
    for (const auto& r : reports) {
      const double jps = r.exec_time_s > 0.0
                             ? static_cast<double>(r.jobs_completed) / r.exec_time_s
                             : 0.0;
      std::cout << "steady state (iter " << r.iteration << "): " << fmt_fixed(jps, 1)
                << " jobs/s sustained, sojourn mean=" << fmt_fixed(r.stat("job.sojourn_s.mean"), 3)
                << "s p50=" << fmt_fixed(r.stat("job.sojourn_s.p50"), 3)
                << "s p95=" << fmt_fixed(r.stat("job.sojourn_s.p95"), 3)
                << "s max=" << fmt_fixed(r.stat("job.sojourn_s.max"), 3) << "s over "
                << static_cast<std::uint64_t>(r.stat("job.sojourn_s.count")) << " jobs\n";
    }
  }

  if (with_faults) {
    // Job conservation across all iterations: every submission is a root or
    // a retry, and every attempt ends acked, voided-then-retried, or
    // dead-lettered. `lost` counts attempts that did none of those by the
    // end of the run; the fault-smoke CI gate pins it at zero.
    std::uint64_t submitted = 0, completed = 0, retried = 0, dead = 0, lost = 0;
    for (const auto& r : reports) {
      submitted += r.jobs_submitted;
      completed += r.jobs_completed;
      retried += r.jobs_retried;
      dead += r.jobs_dead_lettered;
      lost += r.jobs_lost;
    }
    std::cout << "fault summary: submitted=" << submitted << " completed=" << completed
              << " retried=" << retried << " dead_lettered=" << dead << " lost=" << lost
              << "\n";
  }

  if (!args.get("csv").empty()) {
    std::ofstream out(args.get("csv"));
    if (!out) {
      std::cerr << "cannot open " << args.get("csv") << "\n";
      return 1;
    }
    metrics::write_reports_csv(out, reports);
    std::cout << "raw rows -> " << args.get("csv") << "\n";
  }

  const std::string timeline_path = args.get("timeline");
  const std::string trace_path = args.get("trace");
  const std::string trace_csv_path = args.get("trace-csv");
  const std::string telemetry_csv_path = args.get("telemetry-csv");
  const std::string telemetry_json_path = args.get("telemetry-json");
  const bool want_telemetry = spec.telemetry_interval_s > 0.0;
  if (!timeline_path.empty() || !trace_path.empty() || !trace_csv_path.empty() ||
      want_telemetry) {
    // Re-run one iteration standalone to extract per-run detail (the
    // experiment loop only keeps aggregate reports).
    core::EngineConfig config;
    config.seed = spec.seed;
    config.noise = spec.noise;
    config.estimation = spec.estimation;
    config.probe_speeds = spec.probe_speeds;
    config.faults = spec.faults;
    config.lifecycle = spec.lifecycle;
    config.coalesce_deliveries = spec.coalesce_deliveries;
    config.shards = spec.shards;
    if (want_telemetry) {
      config.telemetry.interval = ticks_from_seconds(spec.telemetry_interval_s);
      config.telemetry.capacity = spec.telemetry_capacity;
      config.telemetry.watchdog = spec.telemetry_watchdog;
    }
    const workload::WorkloadSpec wspec =
        spec.custom_workload ? *spec.custom_workload : workload::make_workload_spec(spec.job_config);
    workload::GeneratedWorkload workload;
    if (!spec.open_arrivals) {
      workload = workload::generate_workload(wspec, SeedSequencer(spec.seed));
    }
    std::vector<cluster::WorkerConfig> fleet = cluster::make_fleet(spec.fleet, spec.worker_count);
    if (spec.flat_control_plane) {
      for (cluster::WorkerConfig& cfg : fleet) cfg.latency_jitter_ms = 0.0;
      config.master_link.latency_jitter_ms = 0.0;
    }
    core::Engine engine(std::move(fleet), spec.scheduler.build(spec.seed), config);
    obs::Tracer tracer;
    if (!trace_path.empty() || !trace_csv_path.empty()) {
      tracer.set_enabled(true);
      engine.simulator().set_tracer(&tracer);
    }
    try {
      if (spec.open_arrivals) {
        const SeedSequencer workload_seeds(spec.seed);
        workload::OpenArrivalStream stream(wspec, *spec.open_arrivals, workload_seeds);
        (void)engine.run_stream([&stream] { return stream.next(); });
      } else {
        (void)engine.run(workload.jobs);
      }
    } catch (const std::runtime_error& error) {
      std::cerr << error.what() << "\n";
      return 2;
    }

    if (!timeline_path.empty()) {
      std::ofstream out(timeline_path);
      if (!out) {
        std::cerr << "cannot open " << timeline_path << "\n";
        return 1;
      }
      const Tick horizon = engine.metrics().last_completion();
      metrics::write_concurrency_csv(
          out, metrics::concurrency_series(engine.metrics(), engine.worker_count(), horizon,
                                           horizon / 200 + 1));
      std::cout << "concurrency series -> " << timeline_path << "\n";
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot open " << trace_path << "\n";
        return 1;
      }
      obs::write_chrome_trace(out, tracer);
      std::cout << tracer.events().size() << " trace events -> " << trace_path << "\n";
    }
    if (!trace_csv_path.empty()) {
      std::ofstream out(trace_csv_path);
      if (!out) {
        std::cerr << "cannot open " << trace_csv_path << "\n";
        return 1;
      }
      obs::write_trace_csv(out, tracer);
      std::cout << tracer.events().size() << " trace events -> " << trace_csv_path << "\n";
    }
    if (want_telemetry && engine.telemetry()) {
      const obs::TelemetryTable& series = *engine.telemetry();
      // The watchdog throws out of engine.run() on a violation, so reaching
      // this line means every sampled invariant held.
      std::cout << "telemetry: " << series.names.size() << " series x " << series.ticks.size()
                << " samples, watchdog " << (config.telemetry.watchdog ? "clean" : "off")
                << "\n";
      if (spec.open_arrivals && !series.empty()) {
        // Final sampled values of the streaming gauges: the steady-state
        // sojourn tail and sustained throughput at the end of the horizon.
        const auto last_of = [&](const std::string& name) {
          for (std::size_t s = 0; s < series.names.size(); ++s) {
            if (series.names[s] == name && !series.values[s].empty()) {
              return series.values[s].back();
            }
          }
          return 0.0;
        };
        std::cout << "steady state @ end: " << fmt_fixed(last_of("master.throughput_jps"), 1)
                  << " jobs/s, sojourn p50=" << fmt_fixed(last_of("job.sojourn_p50_s"), 3)
                  << "s p99=" << fmt_fixed(last_of("job.sojourn_p99_s"), 3)
                  << "s p999=" << fmt_fixed(last_of("job.sojourn_p999_s"), 3) << "s\n";
      }
      if (!telemetry_csv_path.empty()) {
        std::ofstream out(telemetry_csv_path);
        if (!out) {
          std::cerr << "cannot open " << telemetry_csv_path << "\n";
          return 1;
        }
        obs::write_telemetry_csv(out, series);
        std::cout << "telemetry series -> " << telemetry_csv_path << "\n";
      }
      if (!telemetry_json_path.empty()) {
        std::ofstream out(telemetry_json_path);
        if (!out) {
          std::cerr << "cannot open " << telemetry_json_path << "\n";
          return 1;
        }
        obs::write_telemetry_json(out, series);
        std::cout << "telemetry series -> " << telemetry_json_path << "\n";
      }
    }
  }
  return 0;
}
