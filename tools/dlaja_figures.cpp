// dlaja_figures — regenerate the paper's figures as gnuplot data + scripts.
//
//   dlaja_figures --out figures/
//
// Produces, under the output directory:
//   fig3_exec.dat / fig3_misses.dat / fig3_data.dat   (bars per workload)
//   fig4_exec.dat                                      (per fleet x workload)
//   a2_crossover.dat                                   (size sweep ratio)
//   figures.gp                                         (one script, all plots)
//
// Run `gnuplot figures.gp` in that directory to render PNGs.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"

using namespace dlaja;

namespace {

std::ofstream open_or_die(const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("dlaja_figures", "emit gnuplot data + scripts for the paper's figures");
  args.add_option("out", "figures", "output directory");
  args.add_option("jobs", "120", "jobs per run");
  args.add_option("iters", "3", "iterations per cell");
  args.add_option("seed", "42", "master seed");
  args.add_option("threads", "0", "worker threads (0 = all cores)");
  if (!args.parse(argc, argv)) return 1;

  const std::filesystem::path dir(args.get("out"));
  std::filesystem::create_directories(dir);

  // --- run the full §6.3 matrix once -------------------------------------
  std::vector<core::ExperimentSpec> specs;
  for (const std::string scheduler : {"bidding", "baseline"}) {
    for (const auto config : workload::all_job_configs()) {
      for (const auto fleet : cluster::all_fleet_presets()) {
        core::ExperimentSpec spec;
        spec.scheduler = scheduler;
        workload::WorkloadSpec wspec = workload::make_workload_spec(config);
        wspec.job_count = static_cast<std::size_t>(args.get_int("jobs"));
        spec.custom_workload = wspec;
        spec.fleet = fleet;
        spec.iterations = static_cast<int>(args.get_int("iters"));
        spec.seed = static_cast<std::uint64_t>(args.get_int("seed"));
        specs.push_back(std::move(spec));
      }
    }
  }
  const auto reports =
      core::run_matrix(specs, static_cast<std::size_t>(args.get_int("threads")));
  metrics::Aggregator by_workload, by_cell;
  for (const auto& r : reports) {
    by_workload.add(r.scheduler + "|" + r.workload, r);
    by_cell.add(r.scheduler + "|" + r.workload + "|" + r.worker_config, r);
  }

  // --- Fig. 3 data ---------------------------------------------------------
  const auto fig3 = [&](const char* file, auto metric) {
    auto out = open_or_die(dir / file);
    out << "# workload bidding baseline\n";
    for (const auto config : workload::all_job_configs()) {
      const std::string name = workload::job_config_name(config);
      out << '"' << name << "\" " << metric(by_workload.cell("bidding|" + name)) << ' '
          << metric(by_workload.cell("baseline|" + name)) << '\n';
    }
  };
  fig3("fig3_exec.dat", [](const metrics::AggregateCell& c) { return c.exec_time_s.mean(); });
  fig3("fig3_misses.dat",
       [](const metrics::AggregateCell& c) { return c.cache_misses.mean(); });
  fig3("fig3_data.dat", [](const metrics::AggregateCell& c) { return c.data_load_mb.mean(); });

  // --- Fig. 4 data ---------------------------------------------------------
  {
    auto out = open_or_die(dir / "fig4_exec.dat");
    out << "# cell bidding baseline\n";
    for (const auto fleet : cluster::all_fleet_presets()) {
      for (const auto config : workload::all_job_configs()) {
        const std::string key =
            workload::job_config_name(config) + "\\n" + cluster::fleet_preset_name(fleet);
        const std::string suffix = "|" + workload::job_config_name(config) + "|" +
                                   cluster::fleet_preset_name(fleet);
        out << '"' << key << "\" " << by_cell.cell("bidding" + suffix).exec_time_s.mean()
            << ' ' << by_cell.cell("baseline" + suffix).exec_time_s.mean() << '\n';
      }
    }
  }

  // --- A2 crossover curve ----------------------------------------------------
  {
    auto out = open_or_die(dir / "a2_crossover.dat");
    out << "# size_mb bidding_over_baseline\n";
    for (const double size : {2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0}) {
      double exec[2] = {0.0, 0.0};
      int idx = 0;
      for (const std::string scheduler : {"bidding", "baseline"}) {
        core::ExperimentSpec spec;
        spec.scheduler = scheduler;
        workload::WorkloadSpec wspec;
        wspec.name = "pin";
        wspec.job_count = static_cast<std::size_t>(args.get_int("jobs"));
        wspec.weight_small = 1.0;
        wspec.weight_medium = 0.0;
        wspec.weight_large = 0.0;
        wspec.ranges.small_lo = size;
        wspec.ranges.small_hi = size;
        wspec.arrival_mean_s = 0.5;
        spec.custom_workload = wspec;
        spec.fleet = cluster::FleetPreset::kOneFast;
        spec.iterations = static_cast<int>(args.get_int("iters"));
        spec.seed = static_cast<std::uint64_t>(args.get_int("seed"));
        for (const auto& r : core::run_experiment(spec)) {
          exec[idx] += r.exec_time_s / static_cast<double>(spec.iterations);
        }
        ++idx;
      }
      out << size << ' ' << exec[0] / exec[1] << '\n';
    }
  }

  // --- one gnuplot script for everything ---------------------------------
  {
    auto out = open_or_die(dir / "figures.gp");
    out << R"GP(# Render with: gnuplot figures.gp
set terminal pngcairo size 1000,520 font ",11"
set style data histograms
set style histogram clustered gap 1
set style fill solid 0.8 border -1
set grid ytics
set key top left

set output "fig3_exec.png"
set title "Figure 3a - average execution time per workload (s)"
plot "fig3_exec.dat" using 2:xtic(1) title "Bidding", "" using 3 title "Baseline"

set output "fig3_misses.png"
set title "Figure 3b - average cache misses per workload"
plot "fig3_misses.dat" using 2:xtic(1) title "Bidding", "" using 3 title "Baseline"

set output "fig3_data.png"
set title "Figure 3c - average data load per workload (MB)"
plot "fig3_data.dat" using 2:xtic(1) title "Bidding", "" using 3 title "Baseline"

set terminal pngcairo size 1600,560 font ",10"
set output "fig4_exec.png"
set title "Figure 4 - average execution time per workload per worker config (s)"
set xtics rotate by -40
plot "fig4_exec.dat" using 2:xtic(1) title "Bidding", "" using 3 title "Baseline"

set terminal pngcairo size 900,520 font ",11"
set output "a2_crossover.png"
set title "Ablation A2 - bidding/baseline execution ratio vs resource size"
set style data linespoints
set logscale x
set xlabel "resource size (MB)"
set ylabel "bidding / baseline"
set xtics rotate by 0
plot "a2_crossover.dat" using 1:2 title "ratio", 1 with lines dashtype 2 title "parity"
)GP";
  }

  std::cout << "wrote figure data + gnuplot script to " << dir
            << "\nrender with: (cd " << dir.string() << " && gnuplot figures.gp)\n";
  return 0;
}
