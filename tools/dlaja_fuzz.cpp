// dlaja_fuzz — seeded scenario fuzzer.
//
// Sweeps deterministic random scenarios (workload × fault plan × fleet
// shape × scheduler config × shard count) through the simulator with the
// telemetry watchdog armed, checking the conservation, broker-conservation,
// cache-capacity, bit-determinism and shard-equivalence invariants. On a
// violation the scenario is shrunk to a minimal reproducing spec, written
// to --out-dir, and a one-line repro command is printed.
//
//   dlaja_fuzz --seed 1 --count 100
//   dlaja_fuzz --seed 7 --count 25 --verbose
//   dlaja_fuzz --check examples/scenarios/repro_jobs_conservation_s1_i4.json

#include <fstream>
#include <iostream>
#include <sstream>

#include "fuzz/fuzz.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  ArgParser args("dlaja_fuzz",
                 "fuzz random scenarios under the simulator's invariants; shrink and "
                 "write a minimal repro on failure");
  args.add_option("seed", "1", "sweep seed: scenario i is a pure function of (seed, i)");
  args.add_option("count", "100", "scenarios to check");
  args.add_option("check", "",
                  "check one scenario file (JSON) instead of sweeping; exit 1 if any "
                  "invariant is violated");
  args.add_option("out-dir", "examples/scenarios",
                  "where repro_*.json lands on failure (empty = do not write)");
  args.add_option("max-shrink", "120", "max candidate checks during shrinking");
  args.add_option("log-level", "error", "log verbosity: trace|debug|info|warn|error|off");
  args.add_flag("no-determinism", "skip the run-twice bit-determinism check");
  args.add_flag("no-shard-diff", "skip the shards=1-vs-N equivalence check");
  args.add_flag("verbose", "one line per scenario instead of a progress dot");
  if (!args.parse(argc, argv)) return 1;
  set_log_level(parse_log_level(args.get("log-level")));

  fuzz::CheckOptions check;
  check.determinism = !args.given("no-determinism");
  check.shard_equivalence = !args.given("no-shard-diff");

  if (!args.get("check").empty()) {
    const std::string path = args.get("check");
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    core::ExperimentSpec spec;
    try {
      spec = core::ExperimentSpec::from_json(json::parse(text.str()));
    } catch (const std::exception& error) {
      std::cerr << path << ": " << error.what() << "\n";
      return 1;
    }
    const auto violation = fuzz::check_spec(spec, check);
    if (violation.has_value()) {
      std::cout << "FAIL: " << path << " violated '" << violation->invariant << "'\n      "
                << violation->detail << "\n";
      return 1;
    }
    std::cout << "OK: " << path << " passed all invariants\n";
    return 0;
  }

  fuzz::FuzzConfig config;
  config.seed = std::stoull(args.get("seed"));
  config.count = std::stoull(args.get("count"));
  config.check = check;
  config.max_shrink_checks = std::stoull(args.get("max-shrink"));
  config.repro_dir = args.get("out-dir");
  config.verbose = args.given("verbose");

  const fuzz::FuzzResult result = fuzz::run_fuzz(config, std::cout);
  return result.failed ? 1 : 0;
}
