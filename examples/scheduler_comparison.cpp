// Scheduler comparison example: run one workload under every scheduler in
// the library and rank them on the paper's three metrics.
//
//   ./scheduler_comparison [workload] [fleet] [iterations]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "sched/factory.hpp"
#include "util/table.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "80%_large";
  const std::string fleet_name = argc > 2 ? argv[2] : "fast-slow";
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 3;

  struct Row {
    std::string scheduler;
    double exec_s = 0.0;
    double misses = 0.0;
    double data_mb = 0.0;
    double alloc_s = 0.0;
  };
  std::vector<Row> rows;

  for (const std::string& name : sched::scheduler_names()) {
    core::ExperimentSpec spec;
    spec.scheduler = name;
    spec.job_config = workload::job_config_from_name(workload_name);
    spec.fleet = cluster::fleet_preset_from_name(fleet_name);
    spec.iterations = iterations;

    Row row;
    row.scheduler = name;
    const auto reports = core::run_experiment(spec);
    for (const auto& r : reports) {
      const auto n = static_cast<double>(reports.size());
      row.exec_s += r.exec_time_s / n;
      row.misses += static_cast<double>(r.cache_misses) / n;
      row.data_mb += r.data_load_mb / n;
      row.alloc_s += r.avg_alloc_latency_s / n;
    }
    rows.push_back(std::move(row));
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.exec_s < b.exec_s; });

  TextTable table("scheduler ranking — " + workload_name + " on " + fleet_name + " (" +
                  std::to_string(iterations) + " iterations, caches carried)");
  table.set_header({"#", "scheduler", "exec (s)", "misses", "data (MB)", "alloc lat (s)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({std::to_string(i + 1), rows[i].scheduler, fmt_fixed(rows[i].exec_s, 1),
                   fmt_fixed(rows[i].misses, 1), fmt_fixed(rows[i].data_mb, 0),
                   fmt_fixed(rows[i].alloc_s, 3)});
  }
  table.print(std::cout);
  std::cout << "\nNote: 'least-queue' is an omniscient load-balance reference the paper's\n"
               "decentralized setting cannot implement; 'random'/'round-robin' are floors.\n";
  return 0;
}
