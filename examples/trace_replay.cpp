// Trace replay example: generate a workload trace, save it to CSV, reload
// it, and replay it deterministically under two schedulers — the workflow
// for experimenting with external/public workload traces.
//
//   ./trace_replay [path] [workload]

#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "sched/factory.hpp"
#include "util/table.hpp"
#include "workload/trace_io.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/dlaja_trace.csv";
  const std::string workload_name = argc > 2 ? argv[2] : "80%_large";

  // 1. Generate and archive a trace.
  workload::WorkloadSpec wspec =
      workload::make_workload_spec(workload::job_config_from_name(workload_name));
  const auto generated = workload::generate_workload(wspec, SeedSequencer(99));
  workload::save_trace_file(path, generated);
  std::cout << "wrote " << generated.jobs.size() << " jobs ("
            << fmt_fixed(generated.naive_mb() / 1024.0, 1) << " GB naive, "
            << fmt_fixed(generated.unique_mb() / 1024.0, 1) << " GB unique) to " << path
            << "\n\n";

  // 2. Reload and replay under two schedulers.
  const auto loaded = workload::load_trace_file(path);
  TextTable table("replay of " + path);
  table.set_header({"scheduler", "exec (s)", "misses", "data (MB)"});
  for (const std::string name : {"bidding", "baseline"}) {
    core::EngineConfig config;
    config.seed = 99;
    core::Engine engine(cluster::make_fleet(cluster::FleetPreset::kAllEqual),
                        sched::make_scheduler(name), config);
    const auto report = engine.run(loaded.jobs);
    table.add_row({name, fmt_fixed(report.exec_time_s, 1),
                   std::to_string(report.cache_misses),
                   fmt_fixed(report.data_load_mb, 0)});
  }
  table.print(std::cout);
  std::cout << "\nreplaying the same file with the same seed reproduces these rows "
               "bit-for-bit.\n";
  return 0;
}
