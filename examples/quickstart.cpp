// Quickstart: build a cluster, run one workload under the Bidding Scheduler
// and the Crossflow Baseline, and compare the paper's three metrics.
//
//   ./quickstart [workload] [fleet] [jobs]
//     workload: all_diff_equal | all_diff_large | all_diff_small |
//               80%_large | 80%_small            (default 80%_large)
//     fleet:    all-equal | one-fast | one-slow | fast-slow (default fast-slow)
//     jobs:     job count (default 120)

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "80%_large";
  const std::string fleet_name = argc > 2 ? argv[2] : "fast-slow";
  const std::size_t jobs = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 120;

  TextTable table("Bidding vs Baseline — " + workload_name + " on " + fleet_name);
  table.set_header({"scheduler", "iter", "exec time (s)", "cache misses", "data load (MB)"});

  double exec[2] = {0, 0};
  int row = 0;
  for (const std::string& scheduler : {std::string("bidding"), std::string("baseline")}) {
    core::ExperimentSpec spec;
    spec.scheduler = scheduler;
    workload::WorkloadSpec wspec =
        workload::make_workload_spec(workload::job_config_from_name(workload_name));
    wspec.job_count = jobs;
    spec.custom_workload = wspec;
    spec.fleet = cluster::fleet_preset_from_name(fleet_name);
    spec.iterations = 3;

    for (const metrics::RunReport& r : core::run_experiment(spec)) {
      table.add_row({r.scheduler, std::to_string(r.iteration), fmt_fixed(r.exec_time_s, 1),
                     std::to_string(r.cache_misses), fmt_fixed(r.data_load_mb, 1)});
      exec[row] += r.exec_time_s / 3.0;
    }
    table.add_separator();
    ++row;
  }
  table.print(std::cout);
  std::cout << "\nmean end-to-end: bidding " << fmt_fixed(exec[0], 1) << "s vs baseline "
            << fmt_fixed(exec[1], 1) << "s  (speedup " << fmt_ratio(exec[1] / exec[0])
            << ")\n";
  return 0;
}
