// MSR pipeline example: the paper's motivating use case (§2) end to end.
//
// Builds the Fig. 1 pipeline — RepositorySearcher -> RepositoryAnalyzer ->
// CoOccurrenceAggregator — over a synthetic GitHub, runs it on a 5-worker
// cluster under the Bidding Scheduler, and prints the pipeline's business
// result: the most frequently co-occurring NPM library pairs.
//
//   ./msr_pipeline [libraries] [repositories] [scheduler]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/engine.hpp"
#include "msr/msr.hpp"
#include "sched/factory.hpp"
#include "util/table.hpp"

using namespace dlaja;

namespace {

// A plausible set of popular NPM package names for readable output.
const char* kLibraries[] = {
    "lodash",   "react",    "axios",     "express", "chalk",   "moment",
    "commander", "debug",   "fs-extra",  "uuid",    "classnames", "yargs",
    "webpack",  "typescript", "jest",    "eslint",  "prettier", "rxjs",
    "vue",      "jquery",   "underscore", "async",  "bluebird", "ramda",
    "dotenv",   "mocha",    "chai",      "sinon",   "redux",    "next"};

[[nodiscard]] std::string library_name(std::uint32_t index) {
  if (index < std::size(kLibraries)) return kLibraries[index];
  return "pkg-" + std::to_string(index);
}

}  // namespace

int main(int argc, char** argv) {
  msr::MsrConfig config;
  if (argc > 1) config.library_count = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) config.repository_count = std::strtoul(argv[2], nullptr, 10);
  const std::string scheduler_name = argc > 3 ? argv[3] : "bidding";

  const SeedSequencer seeds(2026);
  const auto pipeline = msr::build_msr_pipeline(config, seeds);
  std::cout << "synthetic GitHub: " << config.repository_count << " large repositories ("
            << fmt_fixed(pipeline.catalog.total_mb() / 1024.0, 1) << " GB total), "
            << config.library_count << " libraries, " << pipeline.analyzer_job_count()
            << " (library, repository) analysis jobs\n\n";

  core::EngineConfig engine_config;
  engine_config.seed = 2026;
  engine_config.estimation = cluster::SpeedEstimator::Mode::kHistoric;
  engine_config.probe_speeds = true;
  core::Engine engine(msr::make_msr_fleet(), sched::make_scheduler(scheduler_name),
                      engine_config);
  engine.set_workflow(pipeline.workflow);
  const auto report = engine.run(pipeline.seed_jobs);

  std::cout << "pipeline finished in " << fmt_fixed(report.exec_time_s, 1)
            << " simulated seconds under '" << scheduler_name << "'\n"
            << "  jobs completed : " << report.jobs_completed << "\n"
            << "  cache misses   : " << report.cache_misses << "\n"
            << "  data load      : " << fmt_fixed(report.data_load_mb / 1024.0, 1) << " GB\n\n";

  // Per-worker view: who did the cloning.
  TextTable workers("per-worker breakdown");
  workers.set_header({"worker", "jobs", "clones", "downloaded (GB)", "busy (s)"});
  for (const auto& w : report.workers) {
    workers.add_row({w.name, std::to_string(w.jobs_completed),
                     std::to_string(w.cache_misses),
                     fmt_fixed(w.downloaded_mb / 1024.0, 1),
                     fmt_fixed(seconds_from_ticks(w.busy_ticks), 0)});
  }
  workers.print(std::cout);

  // The business result: top co-occurring library pairs (§2 step 4).
  using Pair = std::pair<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>;
  std::vector<Pair> pairs;
  for (const auto& entry : pipeline.results->matrix()) pairs.push_back(entry);
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.second > b.second; });

  std::cout << "\n";
  TextTable top("top 10 co-occurring library pairs");
  top.set_header({"library A", "library B", "co-occurrences"});
  for (std::size_t i = 0; i < pairs.size() && i < 10; ++i) {
    top.add_row({library_name(pairs[i].first.first), library_name(pairs[i].first.second),
                 std::to_string(pairs[i].second)});
  }
  top.print(std::cout);
  return 0;
}
