// Volatile-cluster example: the paper argues the Bidding Scheduler suits
// "volatile environments, as workers' performance metrics can fluctuate
// over time" (§5) — and that it has no fault-tolerance policies (worker
// death loses its jobs). This example demonstrates both:
//
//  1. heavy network throttling with historic-average speed estimation
//     (§6.4): the master's decisions adapt as measured speeds drift;
//  2. a mid-run worker failure: the run still terminates, surviving
//     workers absorb the rest, and the lost jobs are reported.
//
//   ./volatile_cluster [jobs] [fail_at_seconds]

#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "sched/bidding.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace dlaja;

int main(int argc, char** argv) {
  const std::size_t jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const double fail_at_s = argc > 2 ? std::atof(argv[2]) : 120.0;

  workload::WorkloadSpec wspec = workload::make_workload_spec(workload::JobConfig::k80Large);
  wspec.job_count = jobs;
  const auto workload = workload::generate_workload(wspec, SeedSequencer(7));

  // --- part 1: throttled network, adaptive estimation --------------------
  std::cout << "part 1 — throttled network (30% of transfers at 1/5 speed), "
               "historic-average estimation\n\n";
  {
    core::EngineConfig config;
    config.seed = 7;
    config.noise = net::NoiseConfig::throttle(0.30, 0.20);
    config.estimation = cluster::SpeedEstimator::Mode::kHistoric;
    config.probe_speeds = true;
    core::Engine engine(cluster::make_fleet(cluster::FleetPreset::kFastSlow),
                        std::make_unique<sched::BiddingScheduler>(), config);
    const auto report = engine.run(workload.jobs);
    std::cout << "  completed " << report.jobs_completed << "/" << jobs << " jobs in "
              << fmt_fixed(report.exec_time_s, 1) << " s; data load "
              << fmt_fixed(report.data_load_mb, 0) << " MB\n";
    for (cluster::WorkerIndex w = 0; w < engine.worker_count(); ++w) {
      auto& worker = engine.worker(w);
      std::cout << "  " << worker.config().name << ": nominal "
                << fmt_fixed(worker.config().network_mbps, 0) << " MB/s, learned "
                << fmt_fixed(worker.network_estimator().estimate(), 1) << " MB/s over "
                << worker.network_estimator().observations() << " transfers\n";
    }
  }

  // --- part 2: worker failure mid-run -------------------------------------
  std::cout << "\npart 2 — worker-1 dies at t=" << fail_at_s
            << " s (no fault tolerance: its queue is lost)\n\n";
  {
    core::EngineConfig config;
    config.seed = 7;
    core::Engine engine(cluster::make_fleet(cluster::FleetPreset::kAllEqual),
                        std::make_unique<sched::BiddingScheduler>(), config);
    engine.fail_worker_at(1, ticks_from_seconds(fail_at_s));
    const auto report = engine.run(workload.jobs);

    TextTable table("outcome");
    table.set_header({"worker", "jobs completed", "downloaded (MB)"});
    for (const auto& w : report.workers) {
      table.add_row({w.name, std::to_string(w.jobs_completed),
                     fmt_fixed(w.downloaded_mb, 0)});
    }
    table.print(std::cout);
    std::cout << "\n  completed " << report.jobs_completed << "/" << jobs << " jobs ("
              << (jobs - report.jobs_completed)
              << " lost with the failed worker — the paper leaves fault-tolerance "
                 "policies to future work)\n";
  }
  return 0;
}
