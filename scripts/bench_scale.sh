#!/usr/bin/env bash
# Benchmarks the large-fleet placement path and emits BENCH_scale.json.
#
# Sweeps {5, 50, 500, 2000, 10000} workers x {full, probe:4, cached:4}
# fan-out with the bidding scheduler (delivery coalescing on — the scale
# configuration) and reports per-cell wall time, decision throughput,
# messages per job, placement quality vs the full broadcast, and the
# probe-vs-full / cached-vs-probe speedups per fleet size. The 10k-worker
# full-broadcast cell is skipped unless BENCH_SCALE_FULL=1.
#
# Usage: scripts/bench_scale.sh [build-dir] [output.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_scale.json}"
JOBS="${BENCH_SCALE_JOBS:-2000}"
BENCH_BIN="${BUILD_DIR}/bench/bench_scale"

if [[ ! -x "${BENCH_BIN}" ]]; then
  echo "error: ${BENCH_BIN} not found — configure with -DDLAJA_BUILD_BENCH=ON and build" >&2
  exit 1
fi

"${BENCH_BIN}" --out "${OUT}" --jobs "${JOBS}"
