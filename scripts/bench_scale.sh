#!/usr/bin/env bash
# Benchmarks the large-fleet contest path and emits BENCH_scale.json.
#
# Sweeps {5, 50, 500, 2000} workers x {full, probe:4} contest fan-out with
# the bidding scheduler (delivery coalescing on — the scale configuration)
# and reports per-cell wall time, contest throughput, and the probe-vs-full
# speedup per fleet size.
#
# Usage: scripts/bench_scale.sh [build-dir] [output.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_scale.json}"
JOBS="${BENCH_SCALE_JOBS:-200}"
BENCH_BIN="${BUILD_DIR}/bench/bench_scale"

if [[ ! -x "${BENCH_BIN}" ]]; then
  echo "error: ${BENCH_BIN} not found — configure with -DDLAJA_BUILD_BENCH=ON and build" >&2
  exit 1
fi

"${BENCH_BIN}" --out "${OUT}" --jobs "${JOBS}"
