#!/usr/bin/env bash
# Shard smoke: a contest-free (flat control plane, zero jitter) workload must
# produce the same results at 1, 2, and 4 shards. Runs the flat smoke
# scenario at each shard count and compares the CSVs field by field:
#
#   - wall_time_s is skipped (host timing, never reproducible);
#   - every other numeric field must agree within 1e-9 relative tolerance —
#     histogram-derived stats can differ in the last ulp because N-shard runs
#     absorb per-shard histograms in shard order, which reorders the fp sums;
#   - non-numeric fields must match exactly.
#
# The report's first-class fields (exec time, turnaround, alloc latency,
# cache misses, jobs, messages, fairness) are exact across shard counts —
# that invariant is pinned by ShardFlat.ReportIndependentOfShardCount in
# tests/test_shard.cpp; this smoke extends the check to the full CSV export.
#
# Usage: scripts/shard_smoke.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"
RUN="${BUILD}/tools/dlaja_run"
SCENARIO="examples/scenarios/shard_flat_smoke.json"
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

if [[ ! -x "${RUN}" ]]; then
  echo "error: ${RUN} not found — build the tools first" >&2
  exit 1
fi

for shards in 1 2 4; do
  "${RUN}" --scenario "${SCENARIO}" --shards "${shards}" \
    --csv "${TMP}/s${shards}.csv" \
    --telemetry-interval 5 --telemetry-csv "${TMP}/t${shards}.csv" >/dev/null
done

compare() {
  awk -F, -v tol=1e-9 '
    NR == FNR {
      if (FNR == 1) for (i = 1; i <= NF; i++) if ($i == "wall_time_s") skip = i
      for (i = 1; i <= NF; i++) a[FNR, i] = $i
      cols[FNR] = NF
      rows = FNR
      next
    }
    {
      if (FNR > rows || NF != cols[FNR]) { bad = 1; exit }
      for (i = 1; i <= NF; i++) {
        if (i == skip) continue
        x = a[FNR, i]; y = $i
        if (x == y) continue
        if (x + 0 != x || y + 0 != y) {  # not numeric: must match exactly
          printf "row %d col %d: %s != %s\n", FNR, i, x, y; bad = 1; continue
        }
        d = x - y; if (d < 0) d = -d
        m = (x < 0 ? -x : x); n = (y < 0 ? -y : y); if (n > m) m = n
        if (d > tol * (m > 1 ? m : 1)) {
          printf "row %d col %d: %s vs %s (rel err too large)\n", FNR, i, x, y
          bad = 1
        }
      }
    }
    END { exit bad }
  ' "$1" "$2"
}

for shards in 2 4; do
  if compare "${TMP}/s1.csv" "${TMP}/s${shards}.csv"; then
    echo "shard smoke: ${shards}-shard run matches 1-shard"
  else
    echo "shard smoke: ${shards}-shard run DIVERGES from 1-shard" >&2
    exit 1
  fi
done

# Telemetry series sampled on the same flat runs must also be shard-count
# independent: identical tick grid and per-worker series, cross-shard sums
# within the same 1e-9 relative tolerance (fp summation order differs).
for shards in 2 4; do
  if compare "${TMP}/t1.csv" "${TMP}/t${shards}.csv"; then
    echo "shard smoke: ${shards}-shard telemetry series match 1-shard"
  else
    echo "shard smoke: ${shards}-shard telemetry series DIVERGE from 1-shard" >&2
    exit 1
  fi
done
echo "SHARD SMOKE PASSED"
