#!/usr/bin/env bash
# Full local check: configure, build (warnings are errors), test, run every
# benchmark harness once, then rebuild the kernel-critical tests under
# ASan/UBSan and run them — the event core does placement-new/launder tricks
# that only the sanitizers can vouch for. Usage: scripts/check.sh [build-dir]
set -euo pipefail
BUILD="${1:-build-check}"
cmake -B "$BUILD" -G Ninja -DDLAJA_WERROR=ON
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "==== $bench"
  "$bench"
done

echo "==== sanitizer pass (address;undefined)"
SAN_BUILD="${BUILD}-asan"
cmake -B "$SAN_BUILD" -G Ninja \
  -DDLAJA_SANITIZE="address;undefined" \
  -DDLAJA_BUILD_BENCH=OFF -DDLAJA_BUILD_EXAMPLES=OFF
cmake --build "$SAN_BUILD" --target test_simulator test_sim_alloc test_stress
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
"$SAN_BUILD"/tests/test_simulator
"$SAN_BUILD"/tests/test_sim_alloc
"$SAN_BUILD"/tests/test_stress
echo "ALL CHECKS PASSED"
