#!/usr/bin/env bash
# Full local check: configure, build (warnings are errors), test, run every
# benchmark harness once, then rebuild the kernel-critical tests under
# ASan/UBSan and run them — the event core does placement-new/launder tricks
# that only the sanitizers can vouch for. Usage: scripts/check.sh [build-dir]
set -euo pipefail
BUILD="${1:-build-check}"
cmake -B "$BUILD" -G Ninja -DDLAJA_WERROR=ON
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "==== $bench"
  "$bench"
done

# Kernel-critical and flow-model tests under both sanitizer presets: the
# event core does placement-new/launder tricks and the flow network recycles
# generation-tagged slots whose handlers can re-enter it — exactly the
# lifetime bugs the sanitizers exist to catch. test_fault rides along
# because the lifecycle slab-parks retries and cancels in-flight lease
# events, another lifetime-heavy path. test_scale covers the broker's
# subscriber slab and in-flight message slab (generation-tagged slots,
# handler re-entry, coalesced batches). test_telemetry rides along because
# samplers hold raw pointers into the probe registry and the watchdog path
# dumps mid-run state. test_federation and test_sched_spec ride along
# because the federated wrapper hands each instance a masked view of the
# shared fleet (raw WorkerNode pointers nulled outside the partition) and
# re-routes in-flight jobs across instances on crash/adoption — pointer
# lifetime paths only the sanitizers can vouch for. The asan preset bundles
# address+undefined; the ubsan preset runs undefined alone (no shadow
# memory), which changes layout enough to surface different misuses.
SAN_TESTS=(test_simulator test_sim_alloc test_stress
           test_flow test_flow_properties test_flow_alloc test_obs test_fault
           test_scale test_shard test_telemetry test_sched_spec test_federation)
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
for PRESET in asan ubsan; do
  echo "==== sanitizer pass ($PRESET)"
  cmake --preset "$PRESET"
  cmake --build --preset "$PRESET" --target "${SAN_TESTS[@]}" dlaja_fuzz
  for t in "${SAN_TESTS[@]}"; do
    "build-$PRESET/tests/$t"
  done
  # A short fuzz sweep under the sanitizer: random scenarios reach engine
  # paths (fault x shard x open-arrival combinations) no fixed test pins.
  # Repro files from a failure land inside the build tree, not examples/.
  "build-$PRESET/tools/dlaja_fuzz" --seed 20240808 --count 10 \
    --out-dir "build-$PRESET"
done

# The sharded kernel runs shards on real threads; TSan is the only sanitizer
# that can vouch for the window-barrier protocol (shard sims run in parallel,
# cross-shard traffic parks in per-shard outboxes drained at barriers).
# test_thread_pool exercises the pool itself, test_shard the full engine,
# test_scale the fan-out policies (the cached goldens run under --shards 4),
# test_telemetry the per-shard samplers confirmed at window barriers.
# test_federation rides along for its 4-shard federated golden: N scheduler
# instances sharing one broker while shard sims run on real threads.
TSAN_TESTS=(test_thread_pool test_shard test_scale test_telemetry test_federation)
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
echo "==== sanitizer pass (tsan)"
cmake --preset tsan
cmake --build --preset tsan --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
  "build-tsan/tests/$t"
done
echo "ALL CHECKS PASSED"
