#!/usr/bin/env bash
# Full local check: configure, build (warnings are errors), test, and run
# every benchmark harness once. Usage: scripts/check.sh [build-dir]
set -euo pipefail
BUILD="${1:-build-check}"
cmake -B "$BUILD" -G Ninja -DDLAJA_WERROR=ON
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "==== $bench"
  "$bench"
done
echo "ALL CHECKS PASSED"
