#!/usr/bin/env bash
# Benchmarks the sharded parallel kernel and emits BENCH_shard.json.
#
# Sweeps {1, 2, 4, 8} shards at 10k workers (add the 100k fleet with
# BENCH_SHARD_FULL=1) with probe fan-out + delivery coalescing — the scale
# configuration — and reports per-cell wall time plus each shard count's
# speedup over the 1-shard run. The emitted JSON records the host's
# hardware_concurrency: the >= 3x @ 4-shards target only applies on hosts
# with >= 4 physical cores.
#
# Usage: scripts/bench_shard.sh [build-dir] [output.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_shard.json}"
JOBS="${BENCH_SHARD_JOBS:-0}"  # 0 = 4x the fleet size, per cell
BENCH_BIN="${BUILD_DIR}/bench/bench_shard"

if [[ ! -x "${BENCH_BIN}" ]]; then
  echo "error: ${BENCH_BIN} not found — configure with -DDLAJA_BUILD_BENCH=ON and build" >&2
  exit 1
fi

ARGS=(--out "${OUT}" --jobs "${JOBS}")
if [[ "${BENCH_SHARD_FULL:-0}" == "1" ]]; then
  ARGS+=(--full)
fi
"${BENCH_BIN}" "${ARGS[@]}"
