#!/usr/bin/env bash
# Benchmarks the flow-network hot loop and emits BENCH_flow.json.
#
# Same methodology as scripts/bench_kernel.sh: run with repetitions and
# aggregate the per-repetition samples ourselves (best / p50 / p99) — on
# noisy virtualised machines best-of-N is the robust estimator of the true
# cost, because additive noise only ever slows a run down.
#
# Set BENCH_FLOW_BASELINE=<path.json> to embed a previously captured run
# (e.g. the pre-rewrite implementation) under "baseline" and report a
# best-vs-best speedup per benchmark.
#
# Usage: scripts/bench_flow.sh [build-dir] [output.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_flow.json}"
REPS="${BENCH_FLOW_REPS:-9}"
BENCH_BIN="${BUILD_DIR}/bench/bench_flow_churn"

if [[ ! -x "${BENCH_BIN}" ]]; then
  echo "error: ${BENCH_BIN} not found — configure with -DDLAJA_BUILD_BENCH=ON and build" >&2
  exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "${RAW}"' EXIT

"${BENCH_BIN}" \
  --benchmark_filter='BM_Flow' \
  --benchmark_repetitions="${REPS}" \
  --benchmark_format=json >"${RAW}"

python3 - "${RAW}" "${OUT}" <<'PY'
import json
import math
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

samples = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") != "iteration":
        continue
    name = b["run_name"]
    items = b.get("items_per_second")
    per_op_ns = 1e9 / items if items else b["real_time"]
    samples.setdefault(name, []).append(
        {"items_per_second": items, "per_op_ns": per_op_ns}
    )

def percentile(values, pct):
    ordered = sorted(values)
    rank = (len(ordered) - 1) * pct / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac

report = {
    "context": raw.get("context", {}),
    "repetitions": None,
    "benchmarks": {},
}
for name, rows in samples.items():
    ns = [r["per_op_ns"] for r in rows]
    ips = [r["items_per_second"] for r in rows if r["items_per_second"]]
    report["repetitions"] = len(rows)
    report["benchmarks"][name] = {
        "ops_per_second_best": max(ips) if ips else None,
        "ops_per_second_p50": percentile(ips, 50) if ips else None,
        "per_op_ns_best": min(ns),
        "per_op_ns_p50": percentile(ns, 50),
        "per_op_ns_p99": percentile(ns, 99),
    }

baseline_path = os.environ.get("BENCH_FLOW_BASELINE")
if baseline_path:
    with open(baseline_path) as f:
        baseline = json.load(f)
    report["baseline"] = baseline.get("benchmarks", baseline)
    speedups = {}
    for name, cell in report["benchmarks"].items():
        base = report["baseline"].get(name)
        if base and base.get("per_op_ns_best") and cell.get("per_op_ns_best"):
            speedups[name] = base["per_op_ns_best"] / cell["per_op_ns_best"]
    report["speedup_best_vs_best"] = speedups

with open(out_path, "w") as f:
    json.dump(report, f, indent=2, sort_keys=True)
    f.write("\n")

for name in sorted(report["benchmarks"]):
    r = report["benchmarks"][name]
    line = f"{name}: best {r['per_op_ns_best']:.0f} ns/op, p50 {r['per_op_ns_p50']:.0f} ns/op"
    speedup = report.get("speedup_best_vs_best", {}).get(name)
    if speedup:
        line += f"  ({speedup:.2f}x vs baseline)"
    print(line)
PY

echo "wrote ${OUT}"
